"""Setuptools shim.

The primary metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e .`` works on minimal environments that lack the
``wheel`` package needed by the PEP 660 editable-install path.
"""

from setuptools import setup

setup()
