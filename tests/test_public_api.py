"""Public-API surface tests: the imports the README promises exist."""

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_readme_imports(self):
        from repro import (
            Engine,
            EnactmentResult,
            InputDataSet,
            MoteurEnactor,
            OptimizationConfig,
            WorkflowBuilder,
        )

        assert all(
            cls is not None
            for cls in (Engine, EnactmentResult, InputDataSet, MoteurEnactor,
                        OptimizationConfig, WorkflowBuilder)
        )

    def test_readme_quickstart_runs(self):
        """The README's second quickstart snippet, verbatim."""
        from repro import Engine, MoteurEnactor, OptimizationConfig, WorkflowBuilder
        from repro.services.base import LocalService

        engine = Engine()
        double = LocalService(engine, "double", ("x",), ("y",),
                              function=lambda x: {"y": 2 * x}, duration=10.0)
        wf = (WorkflowBuilder("demo")
              .source("numbers").service("double", double).sink("out")
              .connect("numbers:output", "double:x")
              .connect("double:y", "out:input")
              .build())
        result = MoteurEnactor(engine, wf, OptimizationConfig.dp()).run(
            {"numbers": [1, 2, 3]}
        )
        assert result.output_values("out") == [2, 4, 6]
        assert result.makespan == 10.0


class TestSubpackageExports:
    @pytest.mark.parametrize(
        "module,names",
        [
            ("repro.sim", ["Engine", "Event", "Timeout", "Process", "Resource", "Store"]),
            ("repro.grid", ["Grid", "JobDescription", "JobState", "LogicalFile",
                            "ideal_testbed", "cluster_testbed", "egee_like_testbed"]),
            ("repro.services", ["Service", "GridData", "GenericWrapperService",
                                "CompositeService", "BatchingService",
                                "descriptor_from_xml", "descriptor_to_xml"]),
            ("repro.workflow", ["Workflow", "WorkflowBuilder", "InputDataSet",
                                "workflow_from_scufl", "workflow_to_scufl",
                                "validate_workflow", "to_dot", "summarize"]),
            ("repro.core", ["MoteurEnactor", "OptimizationConfig", "HistoryTree",
                            "DataToken", "NO_DATA", "ExecutionTrace", "group_workflow"]),
            ("repro.model", ["makespan_sequential", "makespan_dp", "makespan_sp",
                             "makespan_dsp", "speedup", "y_intercept_ratio",
                             "slope_ratio"]),
            ("repro.taskbased", ["TaskDescription", "render_jdl", "expand_workflow",
                                 "DagmanExecutor"]),
            ("repro.apps", ["BronzeStandardApplication", "ImageDatabase",
                            "RigidTransform", "mean_transform"]),
            ("repro.experiments", ["run_sweep", "run_configuration", "PAPER_TABLE1",
                                   "job_statistics", "overhead_breakdown"]),
        ],
        ids=lambda value: value if isinstance(value, str) else "",
    )
    def test_documented_names_importable(self, module, names):
        import importlib

        mod = importlib.import_module(module)
        for name in names:
            assert hasattr(mod, name), f"{module} lacks {name}"
            assert name in mod.__all__, f"{module}.__all__ lacks {name}"

    def test_no_import_cycles(self):
        # Importing everything in one process must succeed from scratch.
        import subprocess
        import sys

        code = (
            "import repro, repro.sim, repro.grid, repro.services, repro.workflow, "
            "repro.core, repro.model, repro.taskbased, repro.apps, repro.experiments; "
            "print('ok')"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, timeout=120
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "ok"
