"""State-store contract tests, run against both backends."""

import threading

import pytest

from repro.service.logic import RunRecord, RunState, TenantSpec
from repro.service.store import InMemoryStateStore, SQLiteStateStore


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        backend = InMemoryStateStore()
    else:
        backend = SQLiteStateStore(str(tmp_path / "state"))
    yield backend
    backend.close()


def make_run(run_id, seq, state=RunState.QUEUED, tenant="a"):
    return RunRecord(run_id=run_id, tenant=tenant, seq=seq, state=state)


class TestContract:
    def test_tenants_upsert_and_list(self, store):
        store.upsert_tenant(TenantSpec(name="a", weight=1.0))
        store.upsert_tenant(TenantSpec(name="a", weight=3.0, max_grid_jobs=10))
        store.upsert_tenant(TenantSpec(name="b"))
        tenants = store.tenants()
        assert set(tenants) == {"a", "b"}
        assert tenants["a"].weight == 3.0
        assert tenants["a"].max_grid_jobs == 10

    def test_run_seq_is_monotonic(self, store):
        assert [store.next_run_seq() for _ in range(3)] == [1, 2, 3]

    def test_runs_roundtrip_and_order_by_seq(self, store):
        store.put_run(make_run("r2", 2))
        store.put_run(make_run("r1", 1, state=RunState.DONE))
        assert [r.run_id for r in store.runs()] == ["r1", "r2"]
        assert store.get_run("r1").state is RunState.DONE
        assert store.get_run("missing") is None

    def test_runs_filter_by_state(self, store):
        store.put_run(make_run("r1", 1, state=RunState.DONE))
        store.put_run(make_run("r2", 2, state=RunState.QUEUED))
        store.put_run(make_run("r3", 3, state=RunState.FAILED))
        got = store.runs(states=[RunState.DONE, RunState.FAILED])
        assert [r.run_id for r in got] == ["r1", "r3"]

    def test_put_run_updates_in_place(self, store):
        run = make_run("r1", 1)
        store.put_run(run)
        store.put_run(run.advance(RunState.RUNNING))
        assert store.get_run("r1").state is RunState.RUNNING
        assert len(store.runs()) == 1

    def test_usage_roundtrip(self, store):
        store.save_usage({"a": (120.5, 30.0), "b": (7.0, 0.0)})
        assert store.load_usage() == {"a": (120.5, 30.0), "b": (7.0, 0.0)}
        store.save_usage({"a": (1.0, 99.0)})
        assert store.load_usage() == {"a": (1.0, 99.0)}

    def test_result_payload_survives(self, store):
        run = make_run("r1", 1, state=RunState.DONE)
        run.result = {"makespan": 123.4, "outputs_digest": "abc"}
        store.put_run(run)
        assert store.get_run("r1").result == run.result


class TestSQLiteSpecifics:
    def test_state_survives_reopen(self, tmp_path):
        root = str(tmp_path / "state")
        first = SQLiteStateStore(root)
        first.upsert_tenant(TenantSpec(name="a", weight=2.0))
        first.put_run(make_run("r1", 1, state=RunState.RUNNING))
        first.save_usage({"a": (50.0, 10.0)})
        assert first.next_run_seq() == 1
        first.close()

        second = SQLiteStateStore(root)
        assert second.tenants()["a"].weight == 2.0
        assert second.get_run("r1").state is RunState.RUNNING
        assert second.load_usage() == {"a": (50.0, 10.0)}
        assert second.next_run_seq() == 2
        second.close()

    def test_journal_paths_are_per_run(self, tmp_path):
        store = SQLiteStateStore(str(tmp_path / "state"))
        a = store.journal_path("r1")
        b = store.journal_path("r2")
        assert a != b and a.endswith("r1.jsonl")
        store.close()

    def test_memory_store_has_no_journals(self):
        assert InMemoryStateStore().journal_path("r1") is None

    def test_threaded_access_is_safe(self, tmp_path):
        store = SQLiteStateStore(str(tmp_path / "state"))
        errors = []

        def worker(idx):
            try:
                for j in range(20):
                    seq = store.next_run_seq()
                    store.put_run(make_run(f"r-{idx}-{j}", seq))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        runs = store.runs()
        assert len(runs) == 80
        assert sorted(r.seq for r in runs) == list(range(1, 81))
        store.close()
