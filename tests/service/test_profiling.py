"""Service-level profiler integration: install, fold, and engine counters."""

from repro.grid.testbeds import cluster_testbed
from repro.observability.profiling import Profiler, TickClock
from repro.observability.runstore import RunStore
from repro.service import EnactmentService, InMemoryStateStore, TenantSpec


def small_cluster(engine, streams):
    return cluster_testbed(engine, streams, workers=4, slots_per_worker=2)


def make_service(**overrides):
    kwargs = dict(
        policy="fair-share",
        max_concurrent_runs=2,
        testbed=small_cluster,
        seed=0,
    )
    kwargs.update(overrides)
    return EnactmentService(InMemoryStateStore(), **kwargs)


def drain_one(service):
    service.add_tenant(TenantSpec(name="alice", weight=1.0))
    service.submit("alice", n_items=1, seed=1)
    service.drain()
    return service


class TestServiceProfiler:
    def test_profiler_installed_across_the_stack(self):
        profiler = Profiler(clock=TickClock())
        service = drain_one(make_service(profiler=profiler))
        assert service.engine.profiler is profiler
        assert service.grid.profiler is profiler
        components = profiler.snapshot().by_component()
        assert "engine" in components
        assert components["engine"]["self"] > 0

    def test_runstore_rows_fold_in_profile_counters(self, tmp_path):
        runstore = RunStore(tmp_path / "runstore")
        drain_one(
            make_service(
                runstore=runstore, profiler=Profiler(clock=TickClock())
            )
        )
        (summary,) = runstore.runs()
        assert summary.counters["perf.profile.engine"] > 0
        assert summary.counters["perf.profile.engine.calls"] > 0

    def test_unprofiled_rows_have_no_profile_counters(self, tmp_path):
        runstore = RunStore(tmp_path / "runstore")
        drain_one(make_service(runstore=runstore))
        (summary,) = runstore.runs()
        assert not any(
            key.startswith("perf.profile.") for key in summary.counters
        )

    def test_perf_counters_include_engine_lifetime_counters(self):
        service = drain_one(make_service())
        counters = service.perf_counters()
        assert counters["engine.events_processed"] > 0
        assert counters["engine.events_scheduled"] >= (
            counters["engine.events_processed"]
        )
        assert counters["engine.peak_heap_size"] >= 1
