"""Smoke tests for the ``python -m repro.service`` command line."""

import json

from repro.service.__main__ import main


def test_submit_drain_status_cancel_round_trip(tmp_path):
    state = str(tmp_path / "state")
    base = ["--state", state]
    assert main(base + ["tenants", "--add", "a", "--weight", "2"]) == 0
    assert main(base + ["tenants"]) == 0
    assert main(base + ["submit", "--tenant", "a", "--pairs", "1"]) == 0
    assert main(base + ["status"]) == 0
    assert main(base + ["drain"]) == 0
    assert main(base + ["status", "svc-0001"]) == 0
    # cancelling a finished run is a reported no-op, not an error
    assert main(base + ["cancel", "svc-0001"]) == 0
    assert main(base + ["status", "svc-9999"]) == 1


def test_submit_for_unknown_tenant_fails_cleanly(tmp_path):
    base = ["--state", str(tmp_path / "state")]
    assert main(base + ["submit", "--tenant", "nobody"]) == 2


def test_demo_replays_a_traffic_script(tmp_path):
    script = {
        "tenants": [
            {"name": "a", "weight": 2.0, "max_concurrent_runs": 2},
            {"name": "b", "weight": 1.0, "max_concurrent_runs": 1},
        ],
        "runs": [
            {"tenant": "a", "n_items": 1},
            {"tenant": "b", "n_items": 1},
            {"tenant": "a", "n_items": 1, "not_before": 100.0},
        ],
    }
    path = tmp_path / "traffic.json"
    path.write_text(json.dumps(script), encoding="utf-8")
    code = main(
        [
            "--store",
            "memory",
            "--state",
            str(tmp_path / "unused"),
            "demo",
            "--script",
            str(path),
        ]
    )
    assert code == 0
