"""The scheduler's audit trail: coverage, persistence, determinism.

Every control-plane decision must land in the store as an
:class:`~repro.observability.ops.audit.AuditEvent`, and — because
events are timestamped in simulated seconds and sequenced by the store
— two identically configured services replaying the same traffic must
produce **byte-identical** audit logs.  That byte-identity is the
regression guard for the whole decision path: any nondeterminism in
admission order, scoring, or quota handling shows up as a diff here.
"""

import os

import pytest

from repro.grid.testbeds import cluster_testbed
from repro.observability.ops import audit_events_to_jsonl, explain_run
from repro.service import (
    EnactmentService,
    InMemoryStateStore,
    RunState,
    SQLiteStateStore,
    TenantSpec,
)


def small_cluster(engine, streams):
    return cluster_testbed(engine, streams, workers=4, slots_per_worker=2)


def make_service(store=None, max_runs=3):
    return EnactmentService(
        store if store is not None else InMemoryStateStore(),
        policy="fair-share",
        max_concurrent_runs=max_runs,
        testbed=small_cluster,
        seed=0,
    )


def run_traffic(service):
    service.add_tenant(TenantSpec(name="alice", weight=2.0, max_concurrent_runs=2))
    service.add_tenant(TenantSpec(name="bob", weight=1.0, max_concurrent_runs=1))
    service.submit("alice", n_items=1, seed=1)
    service.submit("bob", n_items=1, seed=2)
    service.submit("bob", n_items=1, seed=3)  # over bob's quota: must wait
    service.drain()
    return service


class TestCoverage:
    def test_lifecycle_kinds_recorded_for_every_run(self):
        service = run_traffic(make_service())
        events = service.audit()
        kinds = {e.kind for e in events}
        assert {"submit", "admit", "finish"} <= kinds
        # bob's second run exceeded max_concurrent_runs=1 at least once
        assert any(
            e.kind == "quota-block" and e.tenant == "bob" for e in events
        )
        for run_id in ("svc-0001", "svc-0002", "svc-0003"):
            own = [e for e in service.audit(run_id) if e.run_id == run_id]
            assert [e.kind for e in own if e.kind == "submit"] == ["submit"]
            assert [e.kind for e in own if e.kind == "finish"] == ["finish"]

    def test_admit_carries_decision_payload(self):
        service = run_traffic(make_service())
        admit = next(e for e in service.audit() if e.kind == "admit")
        attrs = admit.attributes
        assert attrs["policy"] == "fair-share"
        assert admit.run_id in attrs["eligible"]
        assert admit.tenant in attrs["scores"]
        assert admit.tenant in attrs["usage"]
        assert attrs["wait"] >= 0.0

    def test_finish_reports_terminal_state_and_accounting(self):
        service = run_traffic(make_service())
        finishes = [e for e in service.audit() if e.kind == "finish"]
        assert len(finishes) == 3
        for event in finishes:
            assert event.attributes["state"] == "done"
            assert event.attributes["makespan"] > 0
            assert event.attributes["grid_jobs"] > 0
            assert event.attributes["usage"] >= 0.0

    def test_cancel_of_queued_run_audits_request_and_finish(self):
        service = make_service()
        service.add_tenant(TenantSpec(name="alice"))
        run = service.submit("alice", n_items=1)
        service.cancel(run.run_id, reason="operator said so")
        events = service.audit(run.run_id)
        kinds = [e.kind for e in events if e.run_id == run.run_id]
        assert kinds == ["submit", "cancel", "finish"]
        cancel = events[kinds.index("cancel")]
        assert cancel.attributes["was"] == "queued"
        assert "operator said so" in cancel.message
        finish = events[-1]
        assert finish.attributes["state"] == "cancelled"
        assert finish.attributes["from"] == "queued"

    def test_quota_block_deduplicates_on_reason_transitions(self):
        service = run_traffic(make_service())
        blocks = [e for e in service.audit() if e.kind == "quota-block"]
        # the blocked run waits through many scheduler passes but each
        # distinct reason is audited once, not once per pass
        per_run = {}
        for event in blocks:
            per_run.setdefault(event.run_id, []).append(event.message)
        for messages in per_run.values():
            assert len(messages) == len(set(messages))

    def test_explain_run_renders_the_stored_trail(self):
        service = run_traffic(make_service())
        lines = explain_run(service.audit(), run_id="svc-0003")
        assert any("submit svc-0003" in line for line in lines)
        assert any("-> done" in line for line in lines)


class TestPersistence:
    def test_sqlite_store_persists_audit_across_lives(self, tmp_path):
        root = str(tmp_path / "state")
        service = run_traffic(make_service(store=SQLiteStateStore(root)))
        before = audit_events_to_jsonl(service.audit())
        service.close()

        reopened = SQLiteStateStore(root)
        try:
            assert audit_events_to_jsonl(reopened.audit_events()) == before
        finally:
            reopened.close()

    def test_recover_emits_recover_events(self, tmp_path):
        root = str(tmp_path / "state")
        first_life = make_service(store=SQLiteStateStore(root))
        first_life.add_tenant(TenantSpec(name="alice", max_concurrent_runs=2))
        run = first_life.submit("alice", n_items=2, seed=7)
        for _ in range(4000):
            first_life.tick(max_events=10)
            path = first_life.store.journal_path(run.run_id)
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as handle:
                    if sum(1 for _ in handle) >= 3:
                        break
        else:
            pytest.fail("service never journalled enough progress")
        first_life.store.close()
        del first_life

        second_life = make_service(store=SQLiteStateStore(root))
        requeued = second_life.recover()
        assert requeued
        recovers = [e for e in second_life.audit() if e.kind == "recover"]
        assert {e.run_id for e in recovers} == {r.run_id for r in requeued}
        assert all(e.attributes["resume"] in (True, False) for e in recovers)
        second_life.drain()
        assert second_life.status(run.run_id).state is RunState.DONE
        second_life.close()


class TestDeterminism:
    def trail(self, store=None):
        service = run_traffic(make_service(store=store))
        text = audit_events_to_jsonl(service.audit())
        service.close()
        return text

    def test_identical_runs_produce_byte_identical_audit_logs(self):
        assert self.trail() == self.trail()

    def test_sqlite_and_memory_stores_agree(self, tmp_path):
        sqlite_trail = self.trail(store=SQLiteStateStore(str(tmp_path / "s")))
        assert sqlite_trail == self.trail()
