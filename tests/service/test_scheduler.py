"""End-to-end tests of the multi-tenant enactment service."""

import pytest

from repro.grid.testbeds import cluster_testbed
from repro.service import (
    EnactmentService,
    EnactmentServiceError,
    InMemoryStateStore,
    RunState,
    SQLiteStateStore,
    TenantSpec,
)


def small_cluster(engine, streams):
    """A modest shared cluster: enough slots, fast to simulate."""
    return cluster_testbed(engine, streams, workers=4, slots_per_worker=2)


def one_slot_cluster(engine, streams):
    """A single-slot cluster: everything contends, jobs queue up."""
    return cluster_testbed(engine, streams, workers=1, slots_per_worker=1)


def make_service(policy="fair-share", max_runs=4, testbed=small_cluster, store=None):
    return EnactmentService(
        store if store is not None else InMemoryStateStore(),
        policy=policy,
        max_concurrent_runs=max_runs,
        testbed=testbed,
        seed=0,
    )


class TestMultiTenantEnactment:
    def test_three_tenants_six_runs_all_done(self):
        service = make_service()
        service.add_tenant(TenantSpec(name="alice", weight=2.0, max_concurrent_runs=2))
        service.add_tenant(TenantSpec(name="bob", max_concurrent_runs=2))
        service.add_tenant(TenantSpec(name="carol", max_concurrent_runs=1))
        for tenant in ("alice", "bob", "carol"):
            service.submit(tenant, n_items=1)
            service.submit(tenant, n_items=1)
        runs = service.drain()
        assert len(runs) == 6
        assert all(run.state is RunState.DONE for run in runs)
        # The paper's job accounting holds per run on the shared grid:
        # 6 submissions per image pair, attributed by the run tag.
        for run in runs:
            assert run.result["grid_jobs"] == 6 * run.n_items
            assert run.result["invocations"] > 0
            assert run.makespan is not None and run.makespan > 0

    def test_per_tenant_concurrency_quota_serializes_runs(self):
        service = make_service()
        service.add_tenant(TenantSpec(name="carol", max_concurrent_runs=1))
        service.submit("carol", n_items=1)
        service.submit("carol", n_items=1)
        first, second = sorted(service.drain(), key=lambda r: r.started_at)
        assert first.state is RunState.DONE and second.state is RunState.DONE
        # quota 1: the second run only starts once the first finished
        assert second.started_at >= first.finished_at

    def test_fair_share_interleaves_tenants_where_fifo_batches(self):
        def admission_order(policy):
            service = make_service(policy=policy, max_runs=1)
            service.add_tenant(TenantSpec(name="a"))
            service.add_tenant(TenantSpec(name="b"))
            for tenant in ("a", "a", "b", "b"):
                service.submit(tenant, n_items=1)
            runs = service.drain()
            return [run.tenant for run in sorted(runs, key=lambda r: r.started_at)]

        assert admission_order("fifo") == ["a", "a", "b", "b"]
        # Fair share: b gets the second slot despite a's earlier seqs
        # (provisional charge), and neither tenant's second run waits
        # for the other tenant's whole batch.  The exact tail order
        # depends on measured makespans, so assert the invariant, not
        # one permutation.
        fair = admission_order("fair-share")
        assert fair[:2] == ["a", "b"]
        assert set(fair[2:]) == {"a", "b"}

    def test_grid_job_quota_too_small_is_reported_as_stuck(self):
        service = make_service()
        service.add_tenant(TenantSpec(name="a", max_grid_jobs=6))
        service.submit("a", n_items=2)  # estimate 12 jobs > quota 6
        with pytest.raises(EnactmentServiceError, match="stuck"):
            service.drain()

    def test_submit_validates_inputs(self):
        service = make_service()
        service.add_tenant(TenantSpec(name="a"))
        with pytest.raises(EnactmentServiceError, match="unknown tenant"):
            service.submit("nobody")
        with pytest.raises(EnactmentServiceError, match="unknown configuration"):
            service.submit("a", config_label="WARP")
        with pytest.raises(EnactmentServiceError, match="unknown workload"):
            service.submit("a", workload="mandelbrot")

    def test_usage_ledger_lands_in_store(self):
        service = make_service()
        service.add_tenant(TenantSpec(name="a"))
        service.submit("a", n_items=1)
        service.drain()
        usage = service.store.load_usage()
        assert "a" in usage and usage["a"][0] > 0


class TestCancellation:
    def test_cancel_queued_run_goes_terminal_immediately(self):
        service = make_service(max_runs=1)
        service.add_tenant(TenantSpec(name="a", max_concurrent_runs=2))
        first = service.submit("a", n_items=1)
        second = service.submit("a", n_items=1)
        service.tick(max_events=5)  # admit + start the first run only
        cancelled = service.cancel(second.run_id, reason="operator says no")
        assert cancelled.state is RunState.CANCELLED
        assert cancelled.error == "operator says no"
        runs = {run.run_id: run for run in service.drain()}
        assert runs[first.run_id].state is RunState.DONE
        assert runs[second.run_id].state is RunState.CANCELLED

    def test_cancel_running_run_releases_queued_grid_jobs(self):
        service = make_service(testbed=one_slot_cluster, max_runs=2)
        service.add_tenant(TenantSpec(name="a"))
        service.add_tenant(TenantSpec(name="b"))
        victim = service.submit("a", n_items=1)
        survivor = service.submit("b", n_items=1)

        def queued_for(run_id):
            return sum(
                1
                for ce in service.grid.computing_elements
                for entry in ce.policy.entries()
                if entry.record.description.tags.get("run") == run_id
            )

        # Step in small bites until the victim is RUNNING with jobs
        # actually waiting in the shared batch queue.
        for _ in range(400):
            service.tick(max_events=5)
            if (
                service.status(victim.run_id).state is RunState.RUNNING
                and queued_for(victim.run_id) > 0
            ):
                break
        else:
            pytest.fail("victim never reached RUNNING with queued grid jobs")

        record = service.cancel(victim.run_id, reason="mid-run cancel")
        assert record.state is RunState.CANCELLED
        assert record.error == "mid-run cancel"
        # cancel_queued(resubmit=False) withdrew the run's queued jobs...
        assert record.result["cancelled_jobs"] > 0
        assert queued_for(victim.run_id) == 0
        # ...and the released capacity lets the other tenant finish.
        runs = {run.run_id: run for run in service.drain()}
        assert runs[survivor.run_id].state is RunState.DONE
        assert runs[victim.run_id].state is RunState.CANCELLED

    def test_cancel_is_idempotent_and_rejects_unknown_runs(self):
        service = make_service()
        service.add_tenant(TenantSpec(name="a"))
        run = service.submit("a", n_items=1)
        service.cancel(run.run_id)
        again = service.cancel(run.run_id, reason="second try")
        assert again.state is RunState.CANCELLED
        assert again.error != "second try"  # first cancellation stands
        with pytest.raises(EnactmentServiceError, match="unknown run"):
            service.cancel("svc-9999")


class TestRecovery:
    def test_recover_requeues_orphaned_running_runs(self, tmp_path):
        store = SQLiteStateStore(str(tmp_path / "state"))
        service = make_service(store=store)
        service.add_tenant(TenantSpec(name="a"))
        run = service.submit("a", n_items=1)
        # Fake a kill: the store says RUNNING but nothing is active.
        started = run.advance(RunState.RUNNING)
        started.started_at = 1.0
        store.put_run(started)
        requeued = service.recover()
        assert [r.run_id for r in requeued] == [run.run_id]
        assert requeued[0].state is RunState.QUEUED
        assert requeued[0].resume is True
        assert requeued[0].started_at is None


class TestBackgroundWorker:
    def test_threaded_service_front_completes_submissions(self):
        service = make_service()
        service.add_tenant(TenantSpec(name="a", max_concurrent_runs=2))
        service.start(poll=0.001)
        try:
            first = service.submit("a", n_items=1)
            second = service.submit("a", n_items=1)
            import time

            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                states = {service.status(r.run_id).state for r in (first, second)}
                if states == {RunState.DONE}:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("background worker did not finish the runs")
        finally:
            service.stop()
        assert service.status(first.run_id).result["grid_jobs"] == 6
