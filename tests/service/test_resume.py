"""Kill/restart the service and resume in-flight runs to the same results."""

import os

import pytest

from repro.grid.testbeds import cluster_testbed
from repro.service import (
    EnactmentService,
    RunState,
    SQLiteStateStore,
    TenantSpec,
)


def small_cluster(engine, streams):
    return cluster_testbed(engine, streams, workers=4, slots_per_worker=2)


def build_service(root):
    return EnactmentService(
        SQLiteStateStore(root),
        policy="fair-share",
        max_concurrent_runs=2,
        testbed=small_cluster,
        seed=0,
    )


def submit_pair(service):
    service.add_tenant(TenantSpec(name="a", max_concurrent_runs=2))
    # 2 pairs: single-pair accuracy statistics are 0.0 for any seed,
    # which would let a resume bug slip past the digest comparison.
    return (
        service.submit("a", n_items=2, seed=7),
        service.submit("a", n_items=2, seed=8),
    )


def journal_lines(store, run_id):
    path = store.journal_path(run_id)
    if not os.path.exists(path):
        return 0
    with open(path, "r", encoding="utf-8") as handle:
        return sum(1 for _ in handle)


def test_killed_service_resumes_to_identical_outputs(tmp_path):
    # Reference: the same two submissions executed uninterrupted.
    reference = build_service(str(tmp_path / "reference"))
    submit_pair(reference)
    expected = {
        run.run_id: run.result["outputs_digest"] for run in reference.drain()
    }
    reference.close()

    # Interrupted: drive the service partway — at least one journalled
    # invocation beyond the run header — then drop it on the floor
    # without any shutdown, as a crash would.
    root = str(tmp_path / "victim")
    first_life = build_service(root)
    r1, r2 = submit_pair(first_life)
    for _ in range(4000):
        first_life.tick(max_events=10)
        if journal_lines(first_life.store, r1.run_id) >= 3:
            break
    else:
        pytest.fail("service never journalled enough progress to interrupt")
    in_flight = [
        run.run_id
        for run in first_life.store.runs(states=[RunState.RUNNING])
    ]
    assert in_flight, "expected at least one RUNNING run at the crash point"
    first_life.store.close()  # the process dies; no drain, no stop
    del first_life

    # Second life: recover and drain on a fresh engine.
    second_life = build_service(root)
    requeued = second_life.recover()
    assert {run.run_id for run in requeued} >= set(in_flight)
    assert all(run.resume for run in requeued if run.run_id in in_flight)
    runs = {run.run_id: run for run in second_life.drain()}
    assert runs[r1.run_id].state is RunState.DONE
    assert runs[r2.run_id].state is RunState.DONE
    # Replay actually happened: the interrupted run re-used journalled
    # invocations instead of re-executing them.
    assert any(runs[rid].result["replayed"] > 0 for rid in in_flight)
    # The headline guarantee: byte-identical outputs after the crash.
    for run_id, digest in expected.items():
        assert runs[run_id].result["outputs_digest"] == digest
    second_life.close()
