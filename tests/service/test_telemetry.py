"""Live control-plane telemetry: rollups, replay equivalence, SLO burns.

The rollups the console and exporter display must (a) sum exactly to
the independently accumulated global totals, (b) agree with the run
records the store holds, and (c) be reproducible by replaying the
recorded span stream and audit trail — the same contract the run
monitor honours at enactment level.
"""

import pytest

from repro.grid.testbeds import cluster_testbed
from repro.observability import InstrumentationBus
from repro.observability.ops import ControlPlaneTelemetry
from repro.observability.ops.slo import SLO
from repro.observability.runstore import RunStore
from repro.service import (
    EnactmentService,
    InMemoryStateStore,
    RunState,
    TenantSpec,
)


def small_cluster(engine, streams):
    return cluster_testbed(engine, streams, workers=4, slots_per_worker=2)


def make_service(**overrides):
    kwargs = dict(
        store=InMemoryStateStore(),
        policy="fair-share",
        max_concurrent_runs=3,
        testbed=small_cluster,
        seed=0,
    )
    kwargs.update(overrides)
    store = kwargs.pop("store")
    return EnactmentService(store, **kwargs)


def run_traffic(service):
    service.add_tenant(TenantSpec(name="alice", weight=2.0, max_concurrent_runs=2))
    service.add_tenant(TenantSpec(name="bob", weight=1.0, max_concurrent_runs=1))
    service.submit("alice", n_items=1, seed=1)
    service.submit("bob", n_items=1, seed=2)
    service.submit("bob", n_items=1, seed=3)
    service.drain()
    return service


ADDITIVE_FIELDS = (
    "submitted", "done", "failed", "cancelled", "recovered", "quota_blocks",
    "invocations", "jobs_started", "jobs_completed", "jobs_failed",
    "cpu_seconds", "queued", "running",
)


class TestLiveRollups:
    def test_per_tenant_sums_equal_global_totals(self):
        service = run_traffic(make_service(instrumentation=InstrumentationBus()))
        totals = service.telemetry.totals()
        rollups = service.telemetry.rollups()
        assert totals.submitted == 3 and totals.done == 3
        for attribute in ADDITIVE_FIELDS:
            total = getattr(totals, attribute)
            summed = sum(getattr(r, attribute) for r in rollups)
            if isinstance(total, float):
                # float accumulation order differs between buckets
                assert summed == pytest.approx(total), attribute
            else:
                assert summed == total, attribute
        assert sorted(
            w for r in rollups for w in r.admission_waits
        ) == sorted(totals.admission_waits)

    def test_rollups_agree_with_run_records(self):
        service = run_traffic(make_service(instrumentation=InstrumentationBus()))
        records = service.runs()
        for rollup in service.telemetry.rollups():
            own = [r for r in records if r.tenant == rollup.tenant]
            assert rollup.submitted == len(own)
            assert rollup.done == sum(
                1 for r in own if r.state is RunState.DONE
            )
            # the run result counts every firing (failed attempts
            # included); the rollup counts processed items only
            assert 0 < rollup.invocations <= sum(
                r.result.get("invocations", 0) for r in own
            )
            assert rollup.jobs_completed == sum(
                r.result.get("grid_jobs", 0) for r in own
            )
            assert sorted(rollup.makespans) == sorted(
                r.makespan for r in own if r.makespan is not None
            )

    def test_rollups_without_instrumentation_still_track_audit_side(self):
        service = run_traffic(make_service())
        alice = service.telemetry.tenant("alice")
        assert alice.submitted == 1 and alice.done == 1
        # span-derived fields stay zero without a bus — and the global
        # totals stay consistent with that
        assert alice.invocations == 0
        assert service.telemetry.totals().invocations == 0


class TestReplayEquivalence:
    def test_replaying_spans_and_audit_reproduces_live_snapshot(self):
        bus = InstrumentationBus()
        collector = bus.collector()
        service = run_traffic(make_service(instrumentation=bus))

        replayed = ControlPlaneTelemetry()
        replayed.replay(collector.spans)
        replayed.replay_audit(service.audit())
        assert replayed.snapshot() == service.telemetry.snapshot()


class TestSLOBurns:
    def test_starved_tenant_trips_queue_wait_burn(self):
        seen = []
        service = make_service(
            instrumentation=InstrumentationBus(),
            slos=[
                SLO(
                    name="queue-wait-p95",
                    kind="queue-wait",
                    objective=1.0,
                    burn_threshold=2.0,
                    min_samples=2,
                )
            ],
            alert_sinks=[seen.append],
        )
        run_traffic(service)
        burns = [a for a in seen if a.kind == "slo-burn"]
        assert burns, "quota-starved tenant never tripped the queue-wait SLO"
        assert any(a.subject == "queue-wait-p95/bob" for a in burns)
        assert service.slo_tracker.alerts == seen
        # the bus-side gate the compare-runs --budget-alerts check reads
        snap = service.instrumentation.metrics.snapshot()
        assert snap.counter("monitor.alerts.slo-burn") == len(burns)

    def test_healthy_traffic_does_not_burn_default_slos(self):
        service = run_traffic(make_service(instrumentation=InstrumentationBus()))
        assert service.slo_tracker.alerts == []


class TestPerfCounters:
    def test_throughput_counters_land_in_runstore_rows(self, tmp_path):
        runstore = RunStore(tmp_path / "runstore")
        service = run_traffic(
            make_service(
                instrumentation=InstrumentationBus(), runstore=runstore
            )
        )
        assert len(runstore) == 3
        counters = runstore.latest().counters
        assert counters["perf.events"] > 0
        assert counters["perf.ticks"] > 0
        assert counters["perf.wall_seconds"] >= 0.0
        live = service.perf_counters()
        assert live["perf.events"] == service.engine.events_processed
        if "perf.events_per_sec" in live:
            assert live["perf.events_per_sec"] > 0
