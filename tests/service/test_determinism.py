"""Interleaved multi-tenant runs are byte-identical to serial execution.

The regression guard for the instance-owned RNG audit: two runs
multiplexed on one engine (fair-share, two slots) must produce exactly
the outputs they produce when executed one after the other (FIFO, one
slot).  This only holds because every run owns its
:class:`~repro.util.rng.RandomStreams` and application outputs key
their generators by input identity — any module-global generator (or
draw ordered by scheduling) would break it.
"""

from repro.grid.testbeds import cluster_testbed
from repro.service import EnactmentService, InMemoryStateStore, RunState, TenantSpec


def small_cluster(engine, streams):
    return cluster_testbed(engine, streams, workers=4, slots_per_worker=2)


def run_digests(policy, max_runs):
    service = EnactmentService(
        InMemoryStateStore(),
        policy=policy,
        max_concurrent_runs=max_runs,
        testbed=small_cluster,
        seed=0,
    )
    service.add_tenant(TenantSpec(name="a"))
    service.add_tenant(TenantSpec(name="b"))
    # 2 pairs: with a single pair the accuracy statistics degenerate
    # to 0.0 for any seed, which would make the digest check vacuous.
    service.submit("a", n_items=2, seed=11)
    service.submit("b", n_items=2, seed=22)
    runs = service.drain()
    assert all(run.state is RunState.DONE for run in runs)
    interleaved = _overlaps(runs)
    digests = {run.run_id: run.result["outputs_digest"] for run in runs}
    return digests, interleaved


def _overlaps(runs):
    (a, b) = sorted(runs, key=lambda r: r.started_at)
    return b.started_at < a.finished_at


def test_interleaved_runs_match_serial_byte_for_byte():
    serial, serial_overlap = run_digests("fifo", max_runs=1)
    concurrent, concurrent_overlap = run_digests("fair-share", max_runs=2)
    # Sanity on the premise: one execution was serial, one interleaved.
    assert not serial_overlap
    assert concurrent_overlap
    assert serial == concurrent
