"""Smoke tests for the observability subcommands: audit, metrics, top."""

import json

from repro.observability.ops import (
    audit_events_from_jsonl,
    parse_prometheus,
)
from repro.service.__main__ import main


def seeded_state(tmp_path, telemetry=False, alerts=None, slos=()):
    """Drive a tiny two-tenant workload into a SQLite state dir."""
    state = str(tmp_path / "state")
    base = ["--state", state]
    extras = []
    if telemetry:
        extras.append("--telemetry")
    if alerts:
        extras.extend(["--alerts", alerts])
    for slo in slos:
        extras.extend(["--slo", slo])
    assert main(base + ["tenants", "--add", "a", "--weight", "2"]) == 0
    assert main(base + ["tenants", "--add", "b", "--max-tenant-runs", "1"]) == 0
    assert main(base + ["submit", "--tenant", "a", "--pairs", "1"]) == 0
    assert main(base + ["submit", "--tenant", "b", "--pairs", "1"]) == 0
    assert main(base + ["submit", "--tenant", "b", "--pairs", "1"]) == 0
    assert main(base + extras + ["drain"]) == 0
    return base


class TestAuditCommand:
    def test_full_trail_renders(self, tmp_path, capsys):
        base = seeded_state(tmp_path)
        assert main(base + ["audit"]) == 0
        output = capsys.readouterr().out
        assert "submit svc-0001" in output
        assert "-> done" in output

    def test_single_run_filter_and_json(self, tmp_path, capsys):
        base = seeded_state(tmp_path)
        assert main(base + ["audit", "svc-0002"]) == 0
        human = capsys.readouterr().out
        assert "svc-0002" in human
        assert main(base + ["audit", "svc-0002", "--json"]) == 0
        events = audit_events_from_jsonl(capsys.readouterr().out)
        assert events
        assert all(e.run_id == "svc-0002" for e in events)

    def test_unknown_run_fails(self, tmp_path):
        base = seeded_state(tmp_path)
        assert main(base + ["audit", "svc-9999"]) == 1

    def test_audit_is_identical_across_identical_states(self, tmp_path, capsys):
        first = seeded_state(tmp_path / "one")
        assert main(first + ["audit", "--json"]) == 0
        first_trail = capsys.readouterr().out
        second = seeded_state(tmp_path / "two")
        assert main(second + ["audit", "--json"]) == 0
        assert capsys.readouterr().out == first_trail


class TestMetricsCommand:
    def test_stdout_output_parses_strictly(self, tmp_path, capsys):
        base = seeded_state(tmp_path)
        capsys.readouterr()  # drop the seeding chatter
        assert main(base + ["metrics"]) == 0
        parsed = parse_prometheus(capsys.readouterr().out)
        tenants = {
            labels["tenant"]
            for name, labels, _ in parsed["samples"]
            if name == "repro_tenant_runs_submitted_total"
        }
        assert tenants == {"a", "b"}

    def test_out_file(self, tmp_path, capsys):
        base = seeded_state(tmp_path)
        out = tmp_path / "metrics.prom"
        assert main(base + ["metrics", "--out", str(out)]) == 0
        parsed = parse_prometheus(out.read_text(encoding="utf-8"))
        assert parsed["families"]["repro_tenant_runs_total"] == "counter"

    def test_empty_state_still_renders(self, tmp_path, capsys):
        base = ["--state", str(tmp_path / "fresh")]
        assert main(base + ["metrics"]) == 0
        parse_prometheus(capsys.readouterr().out)


class TestTopCommand:
    def test_once_renders_tenant_table(self, tmp_path, capsys):
        base = seeded_state(tmp_path)
        assert main(base + ["top", "--once"]) == 0
        frame = capsys.readouterr().out
        assert "TENANT" in frame
        assert "\na" in frame and "\nb" in frame
        assert "SLOs:" in frame

    def test_once_against_empty_state(self, tmp_path, capsys):
        base = ["--state", str(tmp_path / "fresh")]
        assert main(base + ["top", "--once"]) == 0
        assert "(no tenants)" in capsys.readouterr().out

    def test_top_shows_alerts_from_jsonl(self, tmp_path, capsys):
        alerts = str(tmp_path / "alerts.jsonl")
        base = seeded_state(
            tmp_path,
            telemetry=True,
            alerts=alerts,
            slos=["share-deviation=0.01"],
        )
        assert main(
            base + ["--alerts", alerts, "top", "--once"]
        ) == 0
        frame = capsys.readouterr().out
        assert "Recent alerts" in frame
        assert "slo-burn" in frame


class TestDemoTelemetry:
    def test_demo_reports_rollups_and_slo_burns(self, tmp_path, capsys):
        script = {
            "tenants": [
                {"name": "a", "weight": 2.0, "max_concurrent_runs": 2},
                {"name": "b", "weight": 1.0, "max_concurrent_runs": 1},
            ],
            "runs": [
                {"tenant": "a", "n_items": 1},
                {"tenant": "b", "n_items": 1},
                {"tenant": "b", "n_items": 1},
            ],
        }
        path = tmp_path / "traffic.json"
        path.write_text(json.dumps(script), encoding="utf-8")
        alerts = str(tmp_path / "alerts.jsonl")
        code = main(
            [
                "--store", "memory",
                "--state", str(tmp_path / "unused"),
                "--telemetry",
                "--alerts", alerts,
                "--slo", "share-deviation=0.01",
                "demo",
                "--script", str(path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "slo burns:" in output
        # the lopsided usage tripped the tight share-deviation objective
        assert "share-deviation-slo/" in output
