"""Unit tests for the pure control-plane logic layer."""

import pytest

from repro.service.logic import (
    FairShareLedger,
    RunRecord,
    RunState,
    TenantSpec,
    TransitionError,
    pick_next,
    quota_headroom,
    validate_transition,
)


def queued_run(run_id, tenant, seq, not_before=0.0, jobs=6):
    return RunRecord(
        run_id=run_id,
        tenant=tenant,
        seq=seq,
        state=RunState.QUEUED,
        not_before=not_before,
        jobs_estimate=jobs,
    )


class TestLifecycle:
    def test_legal_path_to_done(self):
        run = RunRecord(run_id="r1", tenant="a")
        run = run.advance(RunState.QUEUED)
        run = run.advance(RunState.RUNNING)
        run = run.advance(RunState.DONE)
        assert run.state.terminal

    def test_queued_run_may_be_cancelled(self):
        run = queued_run("r1", "a", 1)
        assert run.advance(RunState.CANCELLED).state is RunState.CANCELLED

    def test_illegal_transitions_raise(self):
        with pytest.raises(TransitionError):
            validate_transition(RunState.SUBMITTED, RunState.DONE)
        with pytest.raises(TransitionError):
            validate_transition(RunState.DONE, RunState.RUNNING)

    def test_terminal_states_have_no_exits(self):
        for state in (RunState.DONE, RunState.FAILED, RunState.CANCELLED):
            for target in RunState:
                with pytest.raises(TransitionError):
                    validate_transition(state, target)

    def test_record_roundtrips_through_dict(self):
        run = queued_run("r1", "a", 3, not_before=12.5)
        run.result = {"makespan": 1.0}
        assert RunRecord.from_dict(run.to_dict()) == run


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="")
        with pytest.raises(ValueError):
            TenantSpec(name="a", weight=0)
        with pytest.raises(ValueError):
            TenantSpec(name="a", max_concurrent_runs=0)
        with pytest.raises(ValueError):
            TenantSpec(name="a", max_grid_jobs=0)

    def test_roundtrip(self):
        spec = TenantSpec(name="a", weight=2.0, max_concurrent_runs=3, max_grid_jobs=24)
        assert TenantSpec.from_dict(spec.to_dict()) == spec

    def test_quota_headroom(self):
        spec = TenantSpec(name="a", max_concurrent_runs=2, max_grid_jobs=12)
        assert quota_headroom(spec, running_runs=1, jobs_in_flight=6, jobs_estimate=6) is None
        assert "max_concurrent_runs" in quota_headroom(spec, 2, 0, 6)
        assert "max_grid_jobs" in quota_headroom(spec, 1, 8, 6)


class TestFairShareLedger:
    def test_usage_decays_with_half_life(self):
        ledger = FairShareLedger(half_life=100.0)
        ledger.charge("a", 80.0, now=0.0)
        assert ledger.usage("a", 0.0) == pytest.approx(80.0)
        assert ledger.usage("a", 100.0) == pytest.approx(40.0)
        assert ledger.usage("a", 200.0) == pytest.approx(20.0)

    def test_charges_accumulate_on_decayed_base(self):
        ledger = FairShareLedger(half_life=100.0)
        ledger.charge("a", 80.0, now=0.0)
        total = ledger.charge("a", 10.0, now=100.0)
        assert total == pytest.approx(50.0)

    def test_snapshot_restores(self):
        ledger = FairShareLedger(half_life=100.0)
        ledger.charge("a", 80.0, now=0.0)
        clone = FairShareLedger(half_life=100.0, initial=ledger.snapshot())
        assert clone.usage("a", 100.0) == pytest.approx(40.0)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            FairShareLedger().charge("a", -1.0, now=0.0)


class TestPickNext:
    def specs(self):
        return {
            "a": TenantSpec(name="a", weight=1.0, max_concurrent_runs=2),
            "b": TenantSpec(name="b", weight=1.0, max_concurrent_runs=2),
        }

    def test_fifo_takes_lowest_seq(self):
        queue = [queued_run("r2", "b", 2), queued_run("r1", "a", 1)]
        pick = pick_next(queue, self.specs(), {}, {}, FairShareLedger(), 0.0, policy="fifo")
        assert pick.run_id == "r1"

    def test_fair_share_prefers_low_usage_tenant(self):
        ledger = FairShareLedger(half_life=100.0)
        ledger.charge("a", 500.0, now=0.0)
        queue = [queued_run("r1", "a", 1), queued_run("r2", "b", 2)]
        pick = pick_next(queue, self.specs(), {}, {}, ledger, 0.0)
        assert pick.tenant == "b"

    def test_weight_scales_the_share(self):
        specs = {
            "a": TenantSpec(name="a", weight=4.0),
            "b": TenantSpec(name="b", weight=1.0),
        }
        ledger = FairShareLedger(half_life=1000.0)
        ledger.charge("a", 200.0, now=0.0)
        ledger.charge("b", 100.0, now=0.0)
        queue = [queued_run("r1", "a", 1), queued_run("r2", "b", 2)]
        # a's effective share 200/4=50 beats b's 100/1=100
        assert pick_next(queue, specs, {}, {}, ledger, 0.0).tenant == "a"

    def test_provisional_charge_breaks_bursts(self):
        # Both tenants at zero usage, but a has a run in flight with a
        # provisional charge: b goes next despite a's lower seq.
        queue = [queued_run("r2", "a", 2), queued_run("r3", "b", 3)]
        pick = pick_next(
            queue,
            self.specs(),
            {"a": 1},
            {},
            FairShareLedger(),
            0.0,
            provisional={"a": 600.0},
        )
        assert pick.tenant == "b"

    def test_not_before_gates_eligibility(self):
        queue = [queued_run("r1", "a", 1, not_before=50.0)]
        assert pick_next(queue, self.specs(), {}, {}, FairShareLedger(), 0.0) is None
        assert pick_next(queue, self.specs(), {}, {}, FairShareLedger(), 50.0) is not None

    def test_quota_blocked_tenant_is_skipped(self):
        queue = [queued_run("r1", "a", 1), queued_run("r2", "b", 2)]
        pick = pick_next(
            queue, self.specs(), {"a": 2}, {}, FairShareLedger(), 0.0, policy="fifo"
        )
        assert pick.tenant == "b"

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            pick_next([], self.specs(), {}, {}, FairShareLedger(), 0.0, policy="lottery")
