"""Tests for execution traces."""

import pytest

from repro.core.trace import ExecutionTrace, TraceEvent


def make_trace(events):
    trace = ExecutionTrace()
    for processor, label, start, end in events:
        trace.add(TraceEvent(processor=processor, label=label, start=start, end=end))
    return trace


class TestTraceEvent:
    def test_duration(self):
        event = TraceEvent("P1", "D0", 10.0, 25.0)
        assert event.duration == 15.0

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent("P1", "D0", 10.0, 5.0)

    def test_overlaps(self):
        event = TraceEvent("P1", "D0", 10.0, 20.0)
        assert event.overlaps(15.0, 25.0)
        assert event.overlaps(5.0, 11.0)
        assert not event.overlaps(20.0, 30.0)  # half-open
        assert not event.overlaps(0.0, 10.0)

    def test_overlaps_zero_duration(self):
        event = TraceEvent("P1", "D0", 10.0, 10.0)  # e.g. a cache hit
        assert event.overlaps(5.0, 15.0)
        assert event.overlaps(10.0, 11.0)  # sits on the window start
        assert not event.overlaps(10.0, 10.0)  # empty window
        assert not event.overlaps(0.0, 10.0)  # half-open window end
        assert not event.overlaps(11.0, 20.0)


class TestExecutionTrace:
    def test_makespan(self):
        trace = make_trace([("P1", "D0", 5.0, 10.0), ("P2", "D0", 10.0, 22.0)])
        assert trace.makespan == 17.0
        assert trace.start_time == 5.0
        assert trace.end_time == 22.0

    def test_empty_trace(self):
        trace = ExecutionTrace()
        assert trace.makespan == 0.0
        assert trace.start_time is None
        assert len(trace) == 0

    def test_processors_first_appearance_order(self):
        trace = make_trace([("B", "D0", 0, 1), ("A", "D0", 0, 1), ("B", "D1", 1, 2)])
        assert trace.processors() == ["B", "A"]

    def test_for_processor_sorted_by_start(self):
        trace = make_trace([("P", "D1", 5, 6), ("P", "D0", 0, 1), ("Q", "D0", 0, 1)])
        labels = [e.label for e in trace.for_processor("P")]
        assert labels == ["D0", "D1"]

    def test_busy_time_merges_overlaps(self):
        trace = make_trace([("P", "D0", 0, 10), ("P", "D1", 5, 15), ("P", "D2", 20, 25)])
        assert trace.busy_time("P") == 20.0  # [0,15] + [20,25]

    def test_busy_time_empty(self):
        assert ExecutionTrace().busy_time("P") == 0.0

    def test_busy_time_out_of_order_events(self):
        # the union sweep must not depend on insertion order: a late
        # event starting before earlier ones used to be able to break
        # the merge if intervals were swept unsorted
        trace = make_trace(
            [("P", "D2", 20, 25), ("P", "D1", 5, 15), ("P", "D0", 0, 10)]
        )
        assert trace.busy_time("P") == 20.0  # [0,15] + [20,25]

    def test_busy_time_out_of_order_same_start(self):
        trace = make_trace(
            [("P", "b", 0, 2), ("P", "a", 0, 30), ("P", "c", 5, 10)]
        )
        assert trace.busy_time("P") == 30.0

    def test_max_concurrency(self):
        trace = make_trace(
            [("P", "D0", 0, 10), ("P", "D1", 2, 8), ("P", "D2", 3, 5), ("Q", "D0", 0, 100)]
        )
        assert trace.max_concurrency("P") == 3
        assert trace.max_concurrency() == 4
        assert trace.max_concurrency("Q") == 1

    def test_concurrency_profile_steps(self):
        trace = make_trace([("P", "D0", 0, 10), ("P", "D1", 5, 15)])
        profile = dict(trace.concurrency_profile("P"))
        assert profile[0] == 1
        assert profile[5] == 2
        assert profile[10] == 1
        assert profile[15] == 0

    def test_concurrency_profile_zero_duration_burst(self):
        # An instantaneous event (cached invocation) must show up as a
        # momentary +1 followed by a drop back at the same time.
        trace = make_trace([("P", "D0", 0, 10), ("P", "D1", 5, 5)])
        profile = trace.concurrency_profile("P")
        assert (5, 2) in profile
        assert profile.index((5, 2)) < profile.index((5, 1))
        assert trace.max_concurrency("P") == 2

    def test_concurrency_profile_only_zero_duration(self):
        trace = make_trace([("P", "D0", 3, 3)])
        assert trace.concurrency_profile("P") == [(3, 1), (3, 0)]
        assert trace.max_concurrency("P") == 1

    def test_events_copy(self):
        trace = make_trace([("P", "D0", 0, 1)])
        trace.events.append("tampered")
        assert len(trace) == 1

    def test_to_jsonl_round_trips_as_spans(self):
        from repro.observability.spans import spans_from_jsonl

        trace = ExecutionTrace()
        trace.add(TraceEvent("P", "D0", 0.0, 10.0, kind="cached"))
        trace.add(TraceEvent("Q", "D0", 10.0, 12.5))
        trace.add(TraceEvent("P", "D0", 12.5, 13.0))
        spans = spans_from_jsonl(trace.to_jsonl(trace_id="t1"))
        assert len(spans) == 3
        assert [s.start for s in spans] == [0.0, 10.0, 12.5]
        assert [s.end for s in spans] == [10.0, 12.5, 13.0]
        assert all(s.name == "invocation" for s in spans)
        assert all(s.trace_id == "t1" for s in spans)
        assert spans[0].attributes["processor"] == "P"
        assert spans[0].attributes["kind"] == "cached"
        assert spans[1].attributes["processor"] == "Q"
        # span ids are unique even for identical (processor, label) pairs
        assert len({s.span_id for s in spans}) == 3
