"""Tests for execution traces."""

import pytest

from repro.core.trace import ExecutionTrace, TraceEvent


def make_trace(events):
    trace = ExecutionTrace()
    for processor, label, start, end in events:
        trace.add(TraceEvent(processor=processor, label=label, start=start, end=end))
    return trace


class TestTraceEvent:
    def test_duration(self):
        event = TraceEvent("P1", "D0", 10.0, 25.0)
        assert event.duration == 15.0

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent("P1", "D0", 10.0, 5.0)

    def test_overlaps(self):
        event = TraceEvent("P1", "D0", 10.0, 20.0)
        assert event.overlaps(15.0, 25.0)
        assert event.overlaps(5.0, 11.0)
        assert not event.overlaps(20.0, 30.0)  # half-open
        assert not event.overlaps(0.0, 10.0)


class TestExecutionTrace:
    def test_makespan(self):
        trace = make_trace([("P1", "D0", 5.0, 10.0), ("P2", "D0", 10.0, 22.0)])
        assert trace.makespan == 17.0
        assert trace.start_time == 5.0
        assert trace.end_time == 22.0

    def test_empty_trace(self):
        trace = ExecutionTrace()
        assert trace.makespan == 0.0
        assert trace.start_time is None
        assert len(trace) == 0

    def test_processors_first_appearance_order(self):
        trace = make_trace([("B", "D0", 0, 1), ("A", "D0", 0, 1), ("B", "D1", 1, 2)])
        assert trace.processors() == ["B", "A"]

    def test_for_processor_sorted_by_start(self):
        trace = make_trace([("P", "D1", 5, 6), ("P", "D0", 0, 1), ("Q", "D0", 0, 1)])
        labels = [e.label for e in trace.for_processor("P")]
        assert labels == ["D0", "D1"]

    def test_busy_time_merges_overlaps(self):
        trace = make_trace([("P", "D0", 0, 10), ("P", "D1", 5, 15), ("P", "D2", 20, 25)])
        assert trace.busy_time("P") == 20.0  # [0,15] + [20,25]

    def test_busy_time_empty(self):
        assert ExecutionTrace().busy_time("P") == 0.0

    def test_max_concurrency(self):
        trace = make_trace(
            [("P", "D0", 0, 10), ("P", "D1", 2, 8), ("P", "D2", 3, 5), ("Q", "D0", 0, 100)]
        )
        assert trace.max_concurrency("P") == 3
        assert trace.max_concurrency() == 4
        assert trace.max_concurrency("Q") == 1

    def test_concurrency_profile_steps(self):
        trace = make_trace([("P", "D0", 0, 10), ("P", "D1", 5, 15)])
        profile = dict(trace.concurrency_profile("P"))
        assert profile[0] == 1
        assert profile[5] == 2
        assert profile[10] == 1
        assert profile[15] == 0

    def test_events_copy(self):
        trace = make_trace([("P", "D0", 0, 1)])
        trace.events.append("tampered")
        assert len(trace) == 1
