"""Enactor execution policies vs the analytical model (equations 1-4).

On an ideal substrate with constant service times T, the enactor's four
policies must land exactly on the paper's closed forms:

    NOP   -> n_D * n_W * T
    DP    -> n_W * T
    SP    -> (n_D + n_W - 1) * T
    SP+DP -> n_W * T
"""

import pytest

from repro.core import MoteurEnactor, OptimizationConfig
from repro.model.makespan import makespans
from repro.services.base import LocalService
from repro.workflow.patterns import chain_workflow


def constant_chain(engine, n_w, T=1.0):
    def factory(name, inputs, outputs):
        return LocalService(engine, name, inputs, outputs, duration=T)

    return chain_workflow(factory, n_w)


def heterogeneous_chain(engine, times):
    """times[i][j]: duration of service i on item j (matched by value)."""

    def factory(name, inputs, outputs):
        index = int(name[1:]) - 1

        def duration(inputs_dict):
            item = inputs_dict["x"].value
            return float(times[index][item])

        return LocalService(
            engine, name, inputs, outputs,
            function=lambda x: {"y": x}, duration=duration,
        )

    return chain_workflow(factory, len(times))


CASES = [
    ("NOP", OptimizationConfig.nop()),
    ("DP", OptimizationConfig.dp()),
    ("SP", OptimizationConfig.sp()),
    ("SP+DP", OptimizationConfig.sp_dp()),
]


class TestConstantTimes:
    @pytest.mark.parametrize("label,config", CASES)
    @pytest.mark.parametrize("n_w,n_d", [(1, 1), (1, 5), (3, 1), (3, 3), (4, 7), (5, 2)])
    def test_matches_closed_form(self, engine, label, config, n_w, n_d):
        T = 2.0
        workflow = constant_chain(engine, n_w, T=T)
        result = MoteurEnactor(engine, workflow, config).run({"input": list(range(n_d))})
        expected = makespans([[T] * n_d] * n_w)[label]
        assert result.makespan == pytest.approx(expected), (label, n_w, n_d)


class TestHeterogeneousTimes:
    """Random-ish T_ij matrices: simulation must equal the model exactly."""

    TIMES = [
        [2.0, 1.0, 3.0, 1.0],
        [1.0, 4.0, 1.0, 2.0],
        [3.0, 1.0, 2.0, 5.0],
    ]

    @pytest.mark.parametrize("label,config", CASES)
    def test_matches_closed_form(self, engine, label, config):
        workflow = heterogeneous_chain(engine, self.TIMES)
        result = MoteurEnactor(engine, workflow, config).run(
            {"input": list(range(len(self.TIMES[0])))}
        )
        expected = makespans(self.TIMES)[label]
        assert result.makespan == pytest.approx(expected), label


class TestFigure6:
    """Service parallelism pays under DP when times are not constant.

    The paper's example: T(P1, D0) = 2T and T(P2, D1) = 3T; with SP the
    computations overlap, without SP the stage barrier wastes time.
    """

    TIMES = [
        [2.0, 1.0, 1.0],  # P1: D0 takes twice as long
        [1.0, 3.0, 1.0],  # P2: D1 blocked on a queue
    ]

    def test_sp_beats_dp_alone(self, engine):
        dp_wf = heterogeneous_chain(engine, self.TIMES)
        dp = MoteurEnactor(engine, dp_wf, OptimizationConfig.dp()).run(
            {"input": [0, 1, 2]}
        )
        engine2 = type(engine)()
        dsp_wf = heterogeneous_chain(engine2, self.TIMES)
        dsp = MoteurEnactor(engine2, dsp_wf, OptimizationConfig.sp_dp()).run(
            {"input": [0, 1, 2]}
        )
        assert dp.makespan == pytest.approx(5.0)  # max(2,1,1) + max(1,3,1)
        assert dsp.makespan == pytest.approx(4.0)  # max item path: D1 = 1+3
        assert dsp.makespan < dp.makespan

    def test_constant_times_make_sp_useless_under_dp(self, engine):
        # S_SDP = 1 under the constant-time hypothesis.
        wf = constant_chain(engine, 3, T=2.0)
        dp = MoteurEnactor(engine, wf, OptimizationConfig.dp()).run({"input": [0, 1, 2]})
        engine2 = type(engine)()
        wf2 = constant_chain(engine2, 3, T=2.0)
        dsp = MoteurEnactor(engine2, wf2, OptimizationConfig.sp_dp()).run(
            {"input": [0, 1, 2]}
        )
        assert dp.makespan == dsp.makespan


class TestOrdering:
    """Policy dominance: DSP <= DP <= NOP and DSP <= SP <= NOP, always."""

    TIMES = [
        [5.0, 1.0, 2.0],
        [1.0, 1.0, 4.0],
        [2.0, 3.0, 1.0],
        [1.0, 2.0, 2.0],
    ]

    def test_dominance(self):
        from repro.sim.engine import Engine

        measured = {}
        for label, config in CASES:
            engine = Engine()
            workflow = heterogeneous_chain(engine, self.TIMES)
            measured[label] = MoteurEnactor(engine, workflow, config).run(
                {"input": [0, 1, 2]}
            ).makespan
        assert measured["SP+DP"] <= measured["DP"] <= measured["NOP"]
        assert measured["SP+DP"] <= measured["SP"] <= measured["NOP"]
