"""Tests for the optimization configuration."""

import pytest

from repro.core.config import OptimizationConfig


class TestLabels:
    def test_paper_labels(self):
        assert OptimizationConfig.nop().label == "NOP"
        assert OptimizationConfig.dp().label == "DP"
        assert OptimizationConfig.sp().label == "SP"
        assert OptimizationConfig.jg().label == "JG"
        assert OptimizationConfig.sp_dp().label == "SP+DP"
        assert OptimizationConfig.sp_dp_jg().label == "SP+DP+JG"

    def test_str_is_label(self):
        assert str(OptimizationConfig.sp_dp()) == "SP+DP"

    def test_paper_configurations_order(self):
        labels = [c.label for c in OptimizationConfig.paper_configurations()]
        assert labels == ["NOP", "JG", "SP", "DP", "SP+DP", "SP+DP+JG"]


class TestSemantics:
    def test_service_concurrency_without_dp(self):
        assert OptimizationConfig.nop().service_concurrency == 1
        assert OptimizationConfig.sp().service_concurrency == 1

    def test_service_concurrency_with_dp(self):
        assert OptimizationConfig.dp().service_concurrency == float("inf")

    def test_dp_cap(self):
        config = OptimizationConfig(data_parallelism=True, data_parallelism_cap=4)
        assert config.service_concurrency == 4

    def test_cap_without_dp_rejected(self):
        with pytest.raises(ValueError):
            OptimizationConfig(data_parallelism_cap=4)

    def test_cap_below_one_rejected(self):
        with pytest.raises(ValueError):
            OptimizationConfig(data_parallelism=True, data_parallelism_cap=0)

    def test_frozen(self):
        config = OptimizationConfig.nop()
        with pytest.raises(AttributeError):
            config.data_parallelism = True
