"""HistoryTree identity semantics: equality, hashing, label round-trips.

The result cache keys on history trees, so their value semantics are
load-bearing: two trees built independently from the same provenance
must be equal, hash equal, and render the same label — and any
structural difference (index, iteration, parent order) must break all
three.
"""


from repro.core.provenance import HistoryTree


def pair_tree(i, j, producer="match"):
    """A typical two-parent derivation: match(imgs[i], refs[j])."""
    return HistoryTree.derive(
        producer, (HistoryTree.leaf("imgs", i), HistoryTree.leaf("refs", j))
    )


class TestEqualityHashContract:
    def test_independently_built_trees_are_interchangeable(self):
        a, b = pair_tree(0, 0), pair_tree(0, 0)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_usable_as_dict_keys(self):
        table = {pair_tree(i, i): f"result-{i}" for i in range(4)}
        # a freshly built equal tree finds the stored value
        assert table[pair_tree(2, 2)] == "result-2"
        assert len(table) == 4

    def test_structural_differences_break_equality(self):
        base = pair_tree(0, 0)
        assert base != pair_tree(1, 0)  # different leaf index
        assert base != pair_tree(0, 0, producer="other")  # different producer
        # different parent order is a different dot-product pairing
        swapped = HistoryTree.derive(
            "match", (HistoryTree.leaf("refs", 0), HistoryTree.leaf("imgs", 0))
        )
        assert base != swapped

    def test_iteration_participates_in_identity(self):
        parents = (HistoryTree.leaf("s", 0),)
        round0 = HistoryTree.derive("loop", parents, iteration=0)
        round1 = HistoryTree.derive("loop", parents, iteration=1)
        assert round0 != round1
        assert len({round0, round1}) == 2

    def test_not_equal_to_foreign_types(self):
        assert HistoryTree.leaf("s", 0) != ("s", 0)
        assert HistoryTree.leaf("s", 0) != "s[0]"

    def test_deep_trees_compare_recursively(self):
        def deep():
            t = HistoryTree.leaf("src", 3)
            for stage in ("a", "b", "c", "d"):
                t = HistoryTree.derive(stage, (t,))
            return t

        assert deep() == deep()
        assert hash(deep()) == hash(deep())


class TestLabelRoundTrips:
    def test_equal_trees_render_equal_labels(self):
        assert pair_tree(5, 5).label() == pair_tree(5, 5).label()
        assert pair_tree(5, 5).label() == "D5"

    def test_label_is_stable_under_rederivation(self):
        """Processing a datum further never changes its item label."""
        tree = HistoryTree.leaf("imgs", 7)
        labels = {tree.label()}
        for stage in ("crestLines", "crestMatch", "PFMatchICP"):
            tree = HistoryTree.derive(stage, (tree,))
            labels.add(tree.label())
        assert labels == {"D7"}

    def test_cross_product_label_is_parent_order_insensitive(self):
        """Labels come from lineage (a set), not from tuple order."""
        ab = HistoryTree.derive(
            "P", (HistoryTree.leaf("s", 0), HistoryTree.leaf("t", 1))
        )
        ba = HistoryTree.derive(
            "P", (HistoryTree.leaf("t", 1), HistoryTree.leaf("s", 0))
        )
        assert ab.label() == ba.label() == "D0x1"
        assert ab != ba  # ...even though identity still distinguishes them

    def test_synchronization_label_compresses_ranges(self):
        parents = tuple(
            HistoryTree.derive("stage", (HistoryTree.leaf("imgs", i),))
            for i in range(12)
        )
        merged = HistoryTree.derive("stats", parents)
        assert merged.label() == "D(0-11)"
        rebuilt = HistoryTree.derive("stats", parents)
        assert rebuilt.label() == merged.label()

    def test_describe_and_label_agree_on_leaves(self):
        leaf = HistoryTree.leaf("imgs", 4)
        assert leaf.label() == "D4"
        assert leaf.describe() == "imgs[4]"
