"""Tests for execution-trace export and SP ordering guarantees."""


from repro.core import MoteurEnactor, OptimizationConfig
from repro.core.trace import ExecutionTrace, TraceEvent
from repro.services.base import LocalService
from repro.workflow.patterns import chain_workflow


class TestExport:
    def test_to_rows(self):
        trace = ExecutionTrace()
        trace.add(TraceEvent("P1", "D0", 1.0, 3.0, kind="invocation", job_ids=(7,)))
        rows = trace.to_rows()
        assert rows == [
            {
                "processor": "P1",
                "label": "D0",
                "start": 1.0,
                "end": 3.0,
                "duration": 2.0,
                "kind": "invocation",
                "job_ids": [7],
            }
        ]

    def test_to_csv(self):
        trace = ExecutionTrace()
        trace.add(TraceEvent("P1", "D0", 1.0, 3.0, job_ids=(7, 8)))
        trace.add(TraceEvent("P2", "D0", 3.0, 4.0))
        csv = trace.to_csv()
        lines = csv.splitlines()
        assert lines[0] == "processor,label,start,end,duration,kind,job_ids"
        assert lines[1] == "P1,D0,1.0,3.0,2.0,invocation,7;8"
        assert lines[2].startswith("P2,D0,3.0,4.0,1.0,invocation,")

    def test_empty_trace_exports(self):
        trace = ExecutionTrace()
        assert trace.to_rows() == []
        assert trace.to_csv() == "processor,label,start,end,duration,kind,job_ids"

    def test_to_csv_quotes_commas_and_quotes(self):
        import csv as csv_module
        import io

        trace = ExecutionTrace()
        trace.add(TraceEvent("crestLines, v2", 'D"0"', 0.0, 1.0))
        parsed = list(csv_module.reader(io.StringIO(trace.to_csv())))
        assert parsed[1][0] == "crestLines, v2"
        assert parsed[1][1] == 'D"0"'
        assert len(parsed[1]) == 7  # the comma did not split the row


class TestServiceParallelOrdering:
    def test_sp_processes_items_in_definition_order(self, engine):
        """Equation (3)'s hidden assumption: each service consumes its
        stream in item order; the enactor's FIFO gates guarantee it."""

        def factory(name, inputs, outputs):
            return LocalService(engine, name, inputs, outputs,
                                function=lambda x: {"y": x}, duration=2.0)

        workflow = chain_workflow(factory, 3)
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp()).run(
            {"input": list(range(5))}
        )
        for processor in ("P1", "P2", "P3"):
            labels = [e.label for e in result.trace.for_processor(processor)]
            assert labels == [f"D{i}" for i in range(5)], processor

    def test_rows_match_events(self, engine):
        def factory(name, inputs, outputs):
            return LocalService(engine, name, inputs, outputs, duration=1.0)

        workflow = chain_workflow(factory, 2)
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"input": [0, 1]}
        )
        assert len(result.trace.to_rows()) == len(result.trace.events) == 4
