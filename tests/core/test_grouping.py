"""Tests for the job-grouping workflow transformation."""

import pytest

from repro.core.grouping import group_workflow
from repro.services.base import GridData, LocalService
from repro.services.composite import CompositeService
from repro.services.descriptor import (
    AccessMethod,
    ExecutableDescriptor,
    InputSpec,
    OutputSpec,
)
from repro.services.wrapper import GenericWrapperService
from repro.workflow.builder import WorkflowBuilder


def wrapped(engine, grid, name, inputs=("x",), outputs=("y",), compute=10.0):
    descriptor = ExecutableDescriptor(
        name=name,
        access=AccessMethod("URL", "http://host"),
        value=name,
        inputs=tuple(InputSpec(p, f"-{p}", AccessMethod("GFN")) for p in inputs),
        outputs=tuple(OutputSpec(p, f"-{p}") for p in outputs),
    )
    return GenericWrapperService(engine, grid, descriptor, compute_time=compute)


@pytest.fixture
def chain3(engine, ideal_grid):
    builder = WorkflowBuilder("chain3").source("in")
    for name in ("A", "B", "C"):
        builder.service(name, wrapped(engine, ideal_grid, name))
    builder.sink("out")
    builder.connect("in:output", "A:x").connect("A:y", "B:x").connect("B:y", "C:x")
    builder.connect("C:y", "out:input")
    return builder.build()


class TestGroupFormation:
    def test_whole_chain_grouped(self, engine, chain3):
        grouped, groups = group_workflow(chain3, engine)
        assert [g.name for g in groups] == ["A+B+C"]
        assert groups[0].members == ("A", "B", "C")
        assert isinstance(groups[0].composite, CompositeService)

    def test_grouped_workflow_structure(self, engine, chain3):
        grouped, groups = group_workflow(chain3, engine)
        assert set(grouped.processors) == {"in", "A+B+C", "out"}
        assert len(grouped.links) == 2  # in->group, group->out

    def test_original_untouched(self, engine, chain3):
        group_workflow(chain3, engine)
        assert set(chain3.processors) == {"in", "A", "B", "C", "out"}

    def test_group_processor_not_regroupable(self, engine, chain3):
        grouped, _ = group_workflow(chain3, engine)
        assert not grouped.processor("A+B+C").groupable

    def test_no_chains_returns_copy(self, engine, ideal_grid, local_factory):
        from repro.workflow.patterns import figure1_workflow

        workflow = figure1_workflow(local_factory)
        grouped, groups = group_workflow(workflow, engine)
        assert groups == []
        assert set(grouped.processors) == set(workflow.processors)

    def test_local_services_not_grouped(self, engine):
        # Only generic-wrapper services expose descriptors.
        builder = WorkflowBuilder().source("in")
        builder.service("A", LocalService(engine, "A", ("x",), ("y",)))
        builder.service("B", LocalService(engine, "B", ("x",), ("y",)))
        builder.sink("out")
        builder.connect("in:output", "A:x").connect("A:y", "B:x").connect("B:y", "out:input")
        grouped, groups = group_workflow(builder.build(), engine)
        assert groups == []

    def test_external_input_rerouted_to_group(self, engine, ideal_grid):
        # B takes A's output plus a side input from another source.
        builder = WorkflowBuilder().source("in").source("side")
        builder.service("A", wrapped(engine, ideal_grid, "A"))
        builder.service("B", wrapped(engine, ideal_grid, "B", inputs=("x", "extra")))
        builder.sink("out")
        builder.connect("in:output", "A:x").connect("A:y", "B:x")
        builder.connect("side:output", "B:extra")
        builder.connect("B:y", "out:input")
        grouped, groups = group_workflow(builder.build(), engine)
        assert [g.name for g in groups] == ["A+B"]
        group_links = grouped.links_into("A+B")
        sources = {link.source.processor for link in group_links}
        assert sources == {"in", "side"}

    def test_coordination_constraints_renamed(self, engine, ideal_grid):
        builder = WorkflowBuilder().source("in")
        builder.service("A", wrapped(engine, ideal_grid, "A"))
        builder.service("B", wrapped(engine, ideal_grid, "B"))
        builder.service("C", LocalService(engine, "C", ("x",), ("y",)), synchronization=True)
        builder.sink("out")
        builder.connect("in:output", "A:x").connect("A:y", "B:x").connect("B:y", "C:x")
        builder.connect("C:y", "out:input")
        builder.coordinate("B", "C")
        grouped, groups = group_workflow(builder.build(), engine)
        assert [g.name for g in groups] == ["A+B"]
        assert grouped.coordination_constraints == [("A+B", "C")]


class TestGroupedExecution:
    def test_job_count_halved(self, engine, ideal_grid, chain3):
        from repro.core import MoteurEnactor, OptimizationConfig

        enactor = MoteurEnactor(
            engine, chain3,
            OptimizationConfig(job_grouping=True, service_parallelism=True, data_parallelism=True),
        )
        result = enactor.run({"in": [GridData(1), GridData(2), GridData(3)]})
        assert len(ideal_grid.records) == 3  # one grouped job per item, not 9
        assert result.invocation_count == 3

    def test_makespan_sums_compute(self, engine, ideal_grid, chain3):
        from repro.core import MoteurEnactor, OptimizationConfig

        enactor = MoteurEnactor(
            engine, chain3,
            OptimizationConfig(job_grouping=True, service_parallelism=True, data_parallelism=True),
        )
        result = enactor.run({"in": [GridData(1)]})
        assert result.makespan == pytest.approx(30.0)  # 3 stages x 10s in one job
