"""Tests for data tokens and the NO_DATA sentinel."""

import pickle

from repro.core.provenance import HistoryTree
from repro.core.tokens import NO_DATA, DataToken, NoData
from repro.services.base import GridData


class TestNoData:
    def test_singleton(self):
        assert NoData() is NO_DATA
        assert NoData() is NoData()

    def test_repr(self):
        assert repr(NO_DATA) == "NO_DATA"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(NO_DATA)) is NO_DATA


class TestDataToken:
    def test_label_delegates_to_history(self):
        token = DataToken(GridData(value=5), HistoryTree.leaf("S", 3))
        assert token.label == "D3"

    def test_value_shortcut(self):
        token = DataToken(GridData(value="payload"), HistoryTree.leaf("S", 0))
        assert token.value == "payload"

    def test_repr(self):
        token = DataToken(GridData(value=1), HistoryTree.leaf("S", 7))
        assert "D7" in repr(token)

    def test_frozen(self):
        import pytest

        token = DataToken(GridData(value=1), HistoryTree.leaf("S", 0))
        with pytest.raises(AttributeError):
            token.data = GridData(value=2)
