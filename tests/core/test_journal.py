"""The enactment journal: WAL round-trips, torn lines, crash markers."""

import json

import pytest

from repro.core.journal import EnactmentJournal, JournalEntry, SimulatedCrash
from repro.services.base import GridData


def make_entry(key="k1", processor="P1", value=42, **overrides):
    fields = dict(
        key=key,
        processor=processor,
        label="D0",
        kind="invocation",
        started=10.0,
        finished=25.0,
        job_ids=(3, 7),
        outputs={"y": GridData(value=value)},
    )
    fields.update(overrides)
    return JournalEntry(**fields)


class TestJournalEntry:
    def test_document_round_trip(self):
        entry = make_entry()
        doc = entry.to_document()
        # the document must be plain JSON (the WAL is JSONL)
        restored = JournalEntry.from_document(json.loads(json.dumps(doc)))
        assert restored.key == entry.key
        assert restored.processor == entry.processor
        assert restored.job_ids == (3, 7)
        assert restored.outputs["y"].value == 42

    def test_document_is_tagged(self):
        assert make_entry().to_document()["event"] == "invocation"


class TestEnactmentJournal:
    def test_append_and_load(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with EnactmentJournal(path) as journal:
            journal.append_run("bronze", "SP+DP", at=0.0)
            journal.append_invocation(make_entry(key="a", value=1))
            journal.append_invocation(make_entry(key="b", value=2))
            assert journal.appended == 3  # run marker + 2 invocations

        loaded = EnactmentJournal(path).load()
        assert set(loaded) == {"a", "b"}
        assert loaded["a"].outputs["y"].value == 1

    def test_missing_file_loads_empty(self, tmp_path):
        journal = EnactmentJournal(tmp_path / "absent.jsonl")
        assert journal.load() == {}
        assert journal.runs() == []

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with EnactmentJournal(path) as journal:
            journal.append_invocation(make_entry(key="a"))
            journal.append_invocation(make_entry(key="b"))
        # simulate a crash mid-write: truncate the last line
        raw = path.read_text()
        path.write_text(raw[: len(raw) - 20])

        loaded = EnactmentJournal(path).load()
        assert set(loaded) == {"a"}  # entry b re-executes, nothing raises

    def test_later_entries_win_on_key_collision(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with EnactmentJournal(path) as journal:
            journal.append_invocation(make_entry(key="a", value=1))
            journal.append_invocation(make_entry(key="a", value=99))
        assert EnactmentJournal(path).load()["a"].outputs["y"].value == 99

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with EnactmentJournal(path) as journal:
            journal.append_invocation(make_entry(key="a"))
        with EnactmentJournal(path) as journal:
            journal.append_invocation(make_entry(key="b"))
            assert journal.appended == 1  # counts THIS process only
        assert set(EnactmentJournal(path).load()) == {"a", "b"}

    def test_run_markers(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with EnactmentJournal(path) as journal:
            journal.append_run("bronze", "SP+DP", at=0.0)
            journal.append_invocation(make_entry(key="a"))
            journal.append_run("bronze", "SP+DP", at=120.0)
        markers = journal.runs()
        assert [m["at"] for m in markers] == [0.0, 120.0]
        assert markers[0]["config"] == "SP+DP"

    def test_non_invocation_lines_ignored_by_load(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with EnactmentJournal(path) as journal:
            journal.append_run("bronze", "NOP", at=0.0)
        assert EnactmentJournal(path).load() == {}


class TestSimulatedCrash:
    def test_carries_progress(self):
        crash = SimulatedCrash(7)
        assert crash.completed == 7
        assert "7" in str(crash)

    def test_is_a_runtime_error(self):
        with pytest.raises(RuntimeError):
            raise SimulatedCrash(1)
