"""Enactor advanced features: loops, synchronization, coordination,
iteration strategies at workflow scale, grouping end-to-end."""

import pytest

from repro.core import MoteurEnactor, NO_DATA, OptimizationConfig
from repro.services.base import LocalService
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.graph import WorkflowError
from repro.workflow.patterns import figure2_workflow


def loop_factory(engine, threshold=3):
    def factory(name, inputs, outputs):
        if name == "P1":
            return LocalService(engine, name, inputs, outputs,
                                function=lambda x: {"y": 0}, duration=1.0)
        if name == "P2":
            return LocalService(engine, name, inputs, outputs,
                                function=lambda x: {"y": x + 1}, duration=1.0)
        if name == "P3":
            def decide(x):
                if x >= threshold:
                    return {"loop": NO_DATA, "done": x}
                return {"loop": x, "done": NO_DATA}

            return LocalService(engine, name, inputs, outputs, function=decide, duration=1.0)
        raise AssertionError(name)

    return factory


class TestLoops:
    def test_loop_converges(self, engine):
        workflow = figure2_workflow(loop_factory(engine, threshold=3))
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp()).run(
            {"source": [99]}
        )
        assert result.output_values("sink") == [3]
        # P1 once + 3 iterations of (P2, P3)
        assert result.invocation_count == 7
        assert result.makespan == 7.0

    def test_loop_iteration_count_is_dynamic(self, engine):
        workflow = figure2_workflow(loop_factory(engine, threshold=5))
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp()).run(
            {"source": [0]}
        )
        assert result.output_values("sink") == [5]
        assert result.invocation_count == 1 + 2 * 5

    def test_loop_with_multiple_items(self, engine):
        workflow = figure2_workflow(loop_factory(engine, threshold=2))
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"source": [1, 2]}
        )
        assert sorted(result.output_values("sink")) == [2, 2]

    def test_loop_requires_service_parallelism(self, engine):
        workflow = figure2_workflow(loop_factory(engine))
        with pytest.raises(WorkflowError, match="loops require service parallelism"):
            MoteurEnactor(engine, workflow, OptimizationConfig.nop())

    def test_loop_with_dp_also_allowed(self, engine):
        workflow = figure2_workflow(loop_factory(engine))
        MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp())  # no raise


def sync_workflow(engine, square_duration=1.0, mean_duration=2.0):
    square = LocalService(
        engine, "square", ("x",), ("y",),
        function=lambda x: {"y": x * x}, duration=square_duration,
    )
    mean = LocalService(
        engine, "mean", ("values",), ("mu",),
        function=lambda values: {"mu": sum(values) / len(values)},
        duration=mean_duration,
    )
    return (
        WorkflowBuilder("sync")
        .source("nums")
        .service("square", square)
        .service("mean", mean, synchronization=True)
        .sink("out")
        .connect("nums:output", "square:x")
        .connect("square:y", "mean:values")
        .connect("mean:mu", "out:input")
        .build()
    )


class TestSynchronization:
    def test_barrier_waits_for_whole_stream(self, engine):
        workflow = sync_workflow(engine)
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"nums": [1, 2, 3, 4]}
        )
        assert result.output_values("out") == [7.5]
        assert result.makespan == 3.0  # squares parallel (1s) + mean (2s)

    def test_sync_fires_exactly_once(self, engine):
        workflow = sync_workflow(engine)
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"nums": list(range(10))}
        )
        sync_events = [e for e in result.trace.events if e.processor == "mean"]
        assert len(sync_events) == 1
        assert sync_events[0].kind == "synchronization"

    def test_sync_label_spans_stream(self, engine):
        workflow = sync_workflow(engine)
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"nums": list(range(4))}
        )
        event = next(e for e in result.trace.events if e.processor == "mean")
        assert event.label == "D(0-3)"

    def test_sync_works_in_nop_mode(self, engine):
        workflow = sync_workflow(engine)
        result = MoteurEnactor(engine, workflow, OptimizationConfig.nop()).run(
            {"nums": [1, 2]}
        )
        assert result.output_values("out") == [2.5]
        assert result.makespan == 4.0  # two serial squares + mean

    def test_sync_with_empty_stream(self, engine):
        mean = LocalService(
            engine, "mean", ("values",), ("mu",),
            function=lambda values: {"mu": len(values)}, duration=1.0,
        )
        workflow = (
            WorkflowBuilder()
            .source("nums")
            .service("mean", mean, synchronization=True)
            .sink("out")
            .connect("nums:output", "mean:values")
            .connect("mean:mu", "out:input")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp()).run({"nums": []})
        assert result.output_values("out") == [0]


class TestCoordinationConstraints:
    def test_constraint_target_becomes_synchronized(self, engine):
        # The paper uses coordination constraints to mark data
        # synchronization: the target waits for the whole stream.
        collect = LocalService(
            engine, "collect", ("x",), ("y",),
            function=lambda x: {"y": sum(x)}, duration=1.0,
        )
        double = LocalService(
            engine, "double", ("x",), ("y",), function=lambda x: {"y": 2 * x}, duration=1.0
        )
        workflow = (
            WorkflowBuilder()
            .source("s")
            .service("double", double)
            .service("collect", collect)  # NOT flagged; constraint will flag it
            .sink("out")
            .connect("s:output", "double:x")
            .connect("double:y", "collect:x")
            .connect("collect:y", "out:input")
            .coordinate("double", "collect")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"s": [1, 2, 3]}
        )
        assert result.output_values("out") == [12]  # sum of doubled stream


class TestIterationStrategiesAtWorkflowScale:
    def test_cross_product_processor(self, engine):
        combine = LocalService(
            engine, "combine", ("a", "b"), ("y",),
            function=lambda a, b: {"y": f"{a}{b}"}, duration=1.0,
        )
        workflow = (
            WorkflowBuilder()
            .source("letters")
            .source("digits")
            .service("combine", combine, iteration_strategy="cross")
            .sink("out")
            .connect("letters:output", "combine:a")
            .connect("digits:output", "combine:b")
            .connect("combine:y", "out:input")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"letters": ["x", "y"], "digits": [1, 2, 3]}
        )
        assert sorted(result.output_values("out")) == [
            "x1", "x2", "x3", "y1", "y2", "y3"
        ]

    def test_dot_product_processor(self, engine):
        combine = LocalService(
            engine, "combine", ("a", "b"), ("y",),
            function=lambda a, b: {"y": f"{a}{b}"}, duration=1.0,
        )
        workflow = (
            WorkflowBuilder()
            .source("letters")
            .source("digits")
            .service("combine", combine, iteration_strategy="dot")
            .sink("out")
            .connect("letters:output", "combine:a")
            .connect("digits:output", "combine:b")
            .connect("combine:y", "out:input")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"letters": ["x", "y"], "digits": [1, 2, 3]}
        )
        assert sorted(result.output_values("out")) == ["x1", "y2"]  # min(2, 3)


class TestConditionalOutputs:
    def test_no_data_port_emits_nothing(self, engine):
        splitter = LocalService(
            engine, "split", ("x",), ("even", "odd"),
            function=lambda x: (
                {"even": x, "odd": NO_DATA} if x % 2 == 0 else {"even": NO_DATA, "odd": x}
            ),
            duration=1.0,
        )
        workflow = (
            WorkflowBuilder()
            .source("nums")
            .service("split", splitter)
            .sink("evens")
            .sink("odds")
            .connect("nums:output", "split:x")
            .connect("split:even", "evens:input")
            .connect("split:odd", "odds:input")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"nums": [0, 1, 2, 3, 4]}
        )
        assert sorted(result.output_values("evens")) == [0, 2, 4]
        assert sorted(result.output_values("odds")) == [1, 3]
