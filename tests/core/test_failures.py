"""Failure containment: error tokens, dead letters, the failure report."""

import pytest

from repro.core import MoteurEnactor, OptimizationConfig
from repro.core.enactor import EnactmentError
from repro.core.failures import FailureReport
from repro.services.base import LocalService
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.patterns import chain_workflow


def failing_chain(engine, fail_stage, fail_values, length=3, duration=1.0):
    """A +1 chain whose stage *fail_stage* dies on the given input values.

    Values are checked against the item as seen at that stage (the
    original input plus one per upstream stage).
    """

    def factory(name, inputs, outputs):
        index = int(name[1:])

        def fn(x):
            if index == fail_stage and x in fail_values:
                raise RuntimeError(f"injected failure at {name} on {x}")
            return {"y": x + 1}

        return LocalService(engine, name, inputs, outputs, function=fn, duration=duration)

    return chain_workflow(factory, length)


class TestStrictMode:
    def test_strict_is_the_default(self):
        assert OptimizationConfig.nop().failure_mode == "strict"
        assert not OptimizationConfig.nop().best_effort

    def test_strict_run_still_raises(self, engine):
        workflow = failing_chain(engine, fail_stage=2, fail_values={2})
        with pytest.raises(EnactmentError, match="injected failure"):
            MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
                {"input": [0, 1, 2]}
            )

    def test_invalid_failure_mode_rejected(self):
        with pytest.raises(ValueError, match="failure_mode"):
            OptimizationConfig(failure_mode="yolo")

    def test_with_best_effort_keeps_label(self):
        config = OptimizationConfig.sp_dp()
        relaxed = config.with_best_effort()
        assert relaxed.best_effort
        assert relaxed.label == config.label


class TestBestEffortContainment:
    def test_run_completes_with_survivors(self, engine):
        workflow = failing_chain(engine, fail_stage=2, fail_values={2})
        config = OptimizationConfig.sp_dp().with_best_effort()
        result = MoteurEnactor(engine, workflow, config).run({"input": [0, 1, 2]})
        # items 0 and 2 survive the whole chain (+1 per stage)
        assert sorted(result.output_values("result")) == [3, 5]

    def test_failure_report_populated(self, engine):
        workflow = failing_chain(engine, fail_stage=2, fail_values={2})
        config = OptimizationConfig.sp_dp().with_best_effort()
        result = MoteurEnactor(engine, workflow, config).run({"input": [0, 1, 2]})
        report = result.failures
        assert report is not None and not report.empty
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.processor == "P2"
        assert "injected failure" in failure.error
        # the stage after the failure is skipped, the sink gets a dead letter
        assert report.skipped == 1
        assert len(report.dead_letters) == 1
        assert report.dead_letters[0].sink == "result"
        assert report.dead_letters[0].root is failure

    def test_strict_result_has_no_report(self, engine):
        workflow = failing_chain(engine, fail_stage=99, fail_values=set())
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"input": [1]}
        )
        assert result.failures is None

    def test_clean_best_effort_report_is_empty(self, engine):
        workflow = failing_chain(engine, fail_stage=99, fail_values=set())
        config = OptimizationConfig.sp_dp().with_best_effort()
        result = MoteurEnactor(engine, workflow, config).run({"input": [1, 2]})
        assert result.failures is not None
        assert result.failures.empty

    def test_lineage_identifies_lost_inputs(self, engine):
        workflow = failing_chain(engine, fail_stage=1, fail_values={10})
        config = OptimizationConfig.sp_dp().with_best_effort()
        result = MoteurEnactor(engine, workflow, config).run({"input": [0, 10, 20]})
        lost = result.failures.poisoned_lineage()
        assert lost == {"input": frozenset({1})}  # index 1 carried value 10

    def test_trace_kinds(self, engine):
        workflow = failing_chain(engine, fail_stage=1, fail_values={5}, length=3)
        config = OptimizationConfig.sp_dp().with_best_effort()
        result = MoteurEnactor(engine, workflow, config).run({"input": [5, 6]})
        kinds = result.trace.count_by_kind()
        assert kinds.get("failed") == 1
        assert kinds.get("poisoned") == 2  # stages 2 and 3 skip the dead lineage
        assert kinds.get("invocation") == 3  # item 6 runs all three stages
        # completed-invocation counter excludes failures and skips
        assert result.invocation_count == 3

    def test_failures_under_every_policy(self, engine_factory=None):
        for config in (
            OptimizationConfig.nop(),
            OptimizationConfig.dp(),
            OptimizationConfig.sp(),
            OptimizationConfig.sp_dp(),
        ):
            from repro.sim.engine import Engine

            engine = Engine()
            workflow = failing_chain(engine, fail_stage=2, fail_values={2})
            result = MoteurEnactor(engine, workflow, config.with_best_effort()).run(
                {"input": [0, 1, 2]}
            )
            assert sorted(result.output_values("result")) == [3, 5], config.label
            assert len(result.failures.failures) == 1, config.label

    def test_to_rows_schema(self, engine):
        workflow = failing_chain(engine, fail_stage=1, fail_values={5})
        config = OptimizationConfig.sp_dp().with_best_effort()
        result = MoteurEnactor(engine, workflow, config).run({"input": [5]})
        (row,) = result.failures.to_rows()
        for key in (
            "processor", "label", "kind", "lineage", "error",
            "failed_at", "job_ids", "attempts", "computing_elements",
        ):
            assert key in row
        assert row["kind"] == "failed"


class TestDotProductPoisoning:
    def test_error_token_pairs_with_its_sibling_only(self, engine):
        """Dot iteration: the poison kills item i's pairing, not item j's."""
        left = LocalService(
            engine, "left", ("x",), ("y",),
            function=lambda x: (_ for _ in ()).throw(RuntimeError("boom"))
            if x == 1 else {"y": x},
            duration=1.0,
        )
        right = LocalService(
            engine, "right", ("x",), ("y",), function=lambda x: {"y": x * 10},
            duration=1.0,
        )
        join = LocalService(
            engine, "join", ("a", "b"), ("y",),
            function=lambda a, b: {"y": (a, b)}, duration=1.0,
        )
        workflow = (
            WorkflowBuilder("dot")
            .source("items")
            .service("left", left).service("right", right).service("join", join)
            .sink("out")
            .connect("items:output", "left:x")
            .connect("items:output", "right:x")
            .connect("left:y", "join:a")
            .connect("right:y", "join:b")
            .connect("join:y", "out:input")
            .build()
        )
        config = OptimizationConfig.sp_dp().with_best_effort()
        result = MoteurEnactor(engine, workflow, config).run({"items": [0, 1, 2]})
        assert sorted(result.output_values("out")) == [(0, 0), (2, 20)]
        report = result.failures
        assert len(report.failures) == 1
        assert report.skipped == 1  # join for item 1
        assert len(report.dead_letters) == 1


class TestSynchronizationBarriers:
    def _sync_workflow(self, engine, fail_values):
        def stage(x):
            if x in fail_values:
                raise RuntimeError(f"stage died on {x}")
            return {"y": x + 1}

        s = LocalService(engine, "S", ("x",), ("y",), function=stage, duration=1.0)
        gather = LocalService(
            engine, "gather", ("xs",), ("total",),
            function=lambda xs: {"total": sorted(xs)}, duration=1.0,
        )
        return (
            WorkflowBuilder("sync")
            .source("items")
            .service("S", s)
            .service("gather", gather, synchronization=True)
            .sink("out")
            .connect("items:output", "S:x")
            .connect("S:y", "gather:xs")
            .connect("gather:total", "out:input")
            .build()
        )

    def test_barrier_drops_poisoned_and_runs_on_survivors(self, engine):
        workflow = self._sync_workflow(engine, fail_values={1})
        config = OptimizationConfig.sp_dp().with_best_effort()
        result = MoteurEnactor(engine, workflow, config).run({"items": [0, 1, 2]})
        assert result.output_values("out") == [[1, 3]]
        assert result.failures.barrier_drops == 1
        assert len(result.failures.dead_letters) == 0

    def test_fully_starved_barrier_emits_dead_letter(self, engine):
        workflow = self._sync_workflow(engine, fail_values={0, 1, 2})
        config = OptimizationConfig.sp_dp().with_best_effort()
        result = MoteurEnactor(engine, workflow, config).run({"items": [0, 1, 2]})
        assert result.output_values("out") == []
        report = result.failures
        assert len(report.failures) == 3
        assert len(report.dead_letters) == 1
        assert result.trace.count_by_kind().get("poisoned") == 1


class TestReportAggregation:
    def test_by_service_counts(self):
        report = FailureReport()
        assert report.empty
        assert report.by_service() == {}
        assert report.by_computing_element() == {}
        assert report.to_rows() == []
