"""Tests for the paper-style execution diagrams (Figures 4-6)."""

import pytest

from repro.core import MoteurEnactor, OptimizationConfig
from repro.core.diagrams import diagram_rows, execution_diagram, infer_cell_width
from repro.core.trace import ExecutionTrace, TraceEvent
from repro.workflow.patterns import figure1_workflow


def enact_figure1(engine, local_factory, config):
    workflow = figure1_workflow(local_factory)
    enactor = MoteurEnactor(engine, workflow, config)
    return enactor.run({"source": [0, 1, 2]})


class TestFigure4:
    """Data-parallel execution diagram of the Figure 1 workflow."""

    def test_matches_paper(self, engine, local_factory):
        result = enact_figure1(engine, local_factory, OptimizationConfig.dp())
        rows = diagram_rows(result.trace, cell=1.0)
        assert rows["P1"] == ["D0 D1 D2", "X"]
        assert rows["P2"] == ["X", "D0 D1 D2"]
        assert rows["P3"] == ["X", "D0 D1 D2"]

    def test_makespan_is_two_slots(self, engine, local_factory):
        result = enact_figure1(engine, local_factory, OptimizationConfig.dp())
        assert result.makespan == 2.0


class TestFigure5:
    """Service-parallel execution diagram of the Figure 1 workflow."""

    def test_matches_paper(self, engine, local_factory):
        result = enact_figure1(engine, local_factory, OptimizationConfig.sp())
        rows = diagram_rows(result.trace, cell=1.0)
        assert rows["P1"] == ["D0", "D1", "D2", "X"]
        assert rows["P2"] == ["X", "D0", "D1", "D2"]
        assert rows["P3"] == ["X", "D0", "D1", "D2"]

    def test_makespan_is_four_slots(self, engine, local_factory):
        result = enact_figure1(engine, local_factory, OptimizationConfig.sp())
        assert result.makespan == 4.0


class TestRendering:
    def test_reverse_puts_last_processor_on_top(self, engine, local_factory):
        result = enact_figure1(engine, local_factory, OptimizationConfig.dp())
        text = execution_diagram(result.trace, cell=1.0)
        lines = text.splitlines()
        assert lines[0].startswith("P3") or lines[0].lstrip().startswith("P3")
        assert lines[-1].lstrip().startswith("P1")

    def test_no_reverse(self, engine, local_factory):
        result = enact_figure1(engine, local_factory, OptimizationConfig.dp())
        text = execution_diagram(result.trace, cell=1.0, reverse=False)
        assert text.splitlines()[0].lstrip().startswith("P1")

    def test_long_event_repeats_label(self):
        # Figure 6 visual: a 3-slot job shows D1 D1 D1.
        trace = ExecutionTrace()
        trace.add(TraceEvent("P", "D1", 0.0, 3.0))
        rows = diagram_rows(trace, cell=1.0)
        assert rows["P"] == ["D1", "D1", "D1"]

    def test_idle_cells_are_crosses(self):
        trace = ExecutionTrace()
        trace.add(TraceEvent("P", "D0", 0.0, 1.0))
        trace.add(TraceEvent("P", "D1", 2.0, 3.0))
        rows = diagram_rows(trace, cell=1.0)
        assert rows["P"] == ["D0", "X", "D1"]

    def test_infer_cell_width(self):
        trace = ExecutionTrace()
        trace.add(TraceEvent("P", "D0", 0.0, 2.0))
        trace.add(TraceEvent("P", "D1", 2.0, 8.0))
        assert infer_cell_width(trace) == 2.0

    def test_infer_cell_width_empty(self):
        assert infer_cell_width(ExecutionTrace()) == 1.0

    def test_invalid_cell_rejected(self):
        trace = ExecutionTrace()
        trace.add(TraceEvent("P", "D0", 0.0, 1.0))
        with pytest.raises(ValueError):
            diagram_rows(trace, cell=0.0)

    def test_explicit_processor_selection(self, engine, local_factory):
        result = enact_figure1(engine, local_factory, OptimizationConfig.dp())
        rows = diagram_rows(result.trace, processors=["P1"], cell=1.0)
        assert list(rows) == ["P1"]
