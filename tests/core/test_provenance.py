"""Tests for history trees and dot-compatibility."""

import pytest

from repro.core.provenance import HistoryTree, compatible, format_indices, merged_lineage


class TestConstruction:
    def test_leaf(self):
        leaf = HistoryTree.leaf("images", 3)
        assert leaf.lineage == {"images": frozenset({3})}
        assert leaf.depth == 0
        assert leaf.size == 1

    def test_derive(self):
        a = HistoryTree.leaf("A", 0)
        b = HistoryTree.leaf("B", 1)
        node = HistoryTree.derive("P", (a, b))
        assert node.lineage == {"A": frozenset({0}), "B": frozenset({1})}
        assert node.depth == 1
        assert node.size == 3

    def test_leaf_with_parents_rejected(self):
        leaf = HistoryTree.leaf("A", 0)
        with pytest.raises(ValueError):
            HistoryTree("X", parents=(leaf,), index=1)

    def test_equality_and_hash(self):
        a1 = HistoryTree.derive("P", (HistoryTree.leaf("A", 0),))
        a2 = HistoryTree.derive("P", (HistoryTree.leaf("A", 0),))
        b = HistoryTree.derive("P", (HistoryTree.leaf("A", 1),))
        assert a1 == a2 and hash(a1) == hash(a2)
        assert a1 != b

    def test_iteration_disambiguates_loop_rounds(self):
        parent = HistoryTree.leaf("A", 0)
        first = HistoryTree.derive("P", (parent,), iteration=0)
        second = HistoryTree.derive("P", (parent,), iteration=1)
        assert first != second


class TestLineage:
    def test_union_of_parents(self):
        a0 = HistoryTree.leaf("A", 0)
        a1 = HistoryTree.leaf("A", 1)
        node = HistoryTree.derive("P", (a0, a1))
        assert node.lineage == {"A": frozenset({0, 1})}

    def test_deep_chain_preserves_leaf(self):
        node = HistoryTree.leaf("S", 7)
        for step in range(10):
            node = HistoryTree.derive(f"P{step}", (node,))
        assert node.lineage == {"S": frozenset({7})}
        assert node.depth == 10

    def test_merged_lineage_function(self):
        trees = (HistoryTree.leaf("A", 0), HistoryTree.leaf("B", 2), HistoryTree.leaf("A", 1))
        assert merged_lineage(trees) == {"A": frozenset({0, 1}), "B": frozenset({2})}


class TestCompatibility:
    def test_same_index_same_source_compatible(self):
        a = HistoryTree.derive("P1", (HistoryTree.leaf("S", 2),))
        b = HistoryTree.derive("P2", (HistoryTree.leaf("S", 2),))
        assert compatible(a, b)

    def test_different_index_same_source_incompatible(self):
        a = HistoryTree.derive("P1", (HistoryTree.leaf("S", 2),))
        b = HistoryTree.derive("P2", (HistoryTree.leaf("S", 3),))
        assert not compatible(a, b)

    def test_disjoint_sources_always_compatible(self):
        a = HistoryTree.leaf("A", 0)
        b = HistoryTree.leaf("B", 99)
        assert compatible(a, b)

    def test_partial_overlap_checks_common_source_only(self):
        # derived from (A0, B1) vs derived from (A0, C5): common source A agrees
        left = HistoryTree.derive("P", (HistoryTree.leaf("A", 0), HistoryTree.leaf("B", 1)))
        right = HistoryTree.derive("Q", (HistoryTree.leaf("A", 0), HistoryTree.leaf("C", 5)))
        assert compatible(left, right)

    def test_partial_overlap_conflict(self):
        left = HistoryTree.derive("P", (HistoryTree.leaf("A", 0), HistoryTree.leaf("B", 1)))
        right = HistoryTree.derive("Q", (HistoryTree.leaf("A", 7),))
        assert not compatible(left, right)

    def test_symmetric(self):
        a = HistoryTree.derive("P", (HistoryTree.leaf("A", 0), HistoryTree.leaf("B", 1)))
        b = HistoryTree.leaf("A", 0)
        assert compatible(a, b) == compatible(b, a)

    def test_bronze_standard_case(self):
        # crestMatch's output for pair 3 must pair with the images of
        # pair 3, never pair 4, regardless of completion order.
        floating3 = HistoryTree.leaf("floatingImage", 3)
        reference3 = HistoryTree.leaf("referenceImage", 3)
        crest3 = HistoryTree.derive("crestLines", (floating3, reference3))
        transform3 = HistoryTree.derive("crestMatch", (crest3,))
        floating4 = HistoryTree.leaf("floatingImage", 4)
        assert compatible(transform3, floating3)
        assert not compatible(transform3, floating4)


class TestLabels:
    def test_source_item_label(self):
        assert HistoryTree.leaf("S", 0).label() == "D0"

    def test_pipeline_preserves_label(self):
        node = HistoryTree.derive("P1", (HistoryTree.leaf("S", 2),))
        assert node.label() == "D2"

    def test_multi_source_same_index(self):
        node = HistoryTree.derive(
            "P", (HistoryTree.leaf("A", 1), HistoryTree.leaf("B", 1))
        )
        assert node.label() == "D1"

    def test_cross_pair_label(self):
        node = HistoryTree.derive(
            "P", (HistoryTree.leaf("A", 0), HistoryTree.leaf("B", 2))
        )
        assert node.label() == "D0x2"

    def test_synchronization_label_compressed(self):
        parents = tuple(HistoryTree.leaf("S", i) for i in range(12))
        node = HistoryTree.derive("MTT", parents)
        assert node.label() == "D(0-11)"

    def test_empty_lineage_label(self):
        node = HistoryTree("generator")
        assert node.label() == "generator()"

    def test_describe_renders_tree(self):
        node = HistoryTree.derive("P", (HistoryTree.leaf("S", 0),))
        text = node.describe()
        assert "P" in text and "S[0]" in text


class TestFormatIndices:
    def test_runs_compressed(self):
        assert format_indices([0, 1, 2, 3, 7, 9, 10, 11]) == "0-3,7,9-11"

    def test_single(self):
        assert format_indices([5]) == "5"

    def test_empty(self):
        assert format_indices([]) == ""
