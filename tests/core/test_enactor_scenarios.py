"""Enactor scenario tests: fan-out, merges, multi-sink, stream shapes."""


from repro.core import MoteurEnactor, OptimizationConfig
from repro.services.base import LocalService
from repro.workflow.builder import WorkflowBuilder


class TestFanOut:
    def test_one_output_port_feeds_many_consumers(self, engine):
        producer = LocalService(engine, "producer", ("x",), ("y",),
                                function=lambda x: {"y": x * 10}, duration=1.0)
        left = LocalService(engine, "left", ("x",), ("y",),
                            function=lambda x: {"y": x + 1}, duration=1.0)
        right = LocalService(engine, "right", ("x",), ("y",),
                             function=lambda x: {"y": x + 2}, duration=1.0)
        workflow = (
            WorkflowBuilder()
            .source("s")
            .service("producer", producer)
            .service("left", left)
            .service("right", right)
            .sink("lout").sink("rout")
            .connect("s:output", "producer:x")
            .connect("producer:y", "left:x")
            .connect("producer:y", "right:x")
            .connect("left:y", "lout:input")
            .connect("right:y", "rout:input")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"s": [1, 2]}
        )
        assert sorted(result.output_values("lout")) == [11, 21]
        assert sorted(result.output_values("rout")) == [12, 22]

    def test_one_port_to_two_ports_of_same_consumer(self, engine):
        combine = LocalService(engine, "combine", ("a", "b"), ("y",),
                               function=lambda a, b: {"y": a + b}, duration=1.0)
        workflow = (
            WorkflowBuilder()
            .source("s")
            .service("combine", combine)
            .sink("out")
            .connect("s:output", "combine:a")
            .connect("s:output", "combine:b")
            .connect("combine:y", "out:input")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"s": [3, 5]}
        )
        # item i pairs with itself on both ports (lineage-matched)
        assert sorted(result.output_values("out")) == [6, 10]


class TestMerges:
    def test_two_sources_merge_into_one_port(self, engine):
        # "an input port can collect data from different sources"
        double = LocalService(engine, "double", ("x",), ("y",),
                              function=lambda x: {"y": 2 * x}, duration=1.0)
        workflow = (
            WorkflowBuilder()
            .source("a")
            .source("b")
            .service("double", double)
            .sink("out")
            .connect("a:output", "double:x")
            .connect("b:output", "double:x")
            .connect("double:y", "out:input")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"a": [1, 2], "b": [10]}
        )
        assert sorted(result.output_values("out")) == [2, 4, 20]

    def test_merged_streams_count_toward_barrier(self, engine):
        # With SP off, the downstream barrier must wait for BOTH sources'
        # streams to drain through the merge.
        double = LocalService(engine, "double", ("x",), ("y",),
                              function=lambda x: {"y": 2 * x}, duration=1.0)
        total = LocalService(engine, "total", ("v",), ("sum",),
                             function=lambda v: {"sum": sum(v)}, duration=1.0)
        workflow = (
            WorkflowBuilder()
            .source("a")
            .source("b")
            .service("double", double)
            .service("total", total, synchronization=True)
            .sink("out")
            .connect("a:output", "double:x")
            .connect("b:output", "double:x")
            .connect("double:y", "total:v")
            .connect("total:sum", "out:input")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.nop()).run(
            {"a": [1, 2], "b": [3]}
        )
        assert result.output_values("out") == [12]  # (1+2+3)*2


class TestStreamShapes:
    def test_unbalanced_dot_leaves_extras_unprocessed(self, engine):
        combine = LocalService(engine, "combine", ("a", "b"), ("y",),
                               function=lambda a, b: {"y": (a, b)}, duration=1.0)
        workflow = (
            WorkflowBuilder()
            .source("A").source("B")
            .service("combine", combine)
            .sink("out")
            .connect("A:output", "combine:a")
            .connect("B:output", "combine:b")
            .connect("combine:y", "out:input")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"A": list(range(10)), "B": [0]}
        )
        assert len(result.output_values("out")) == 1
        assert result.invocation_count == 1

    def test_single_item_through_long_chain(self, engine):
        from repro.workflow.patterns import chain_workflow

        def factory(name, inputs, outputs):
            return LocalService(engine, name, inputs, outputs,
                                function=lambda x: {"y": x + 1}, duration=2.0)

        workflow = chain_workflow(factory, 10)
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"input": [0]}
        )
        assert result.output_values("result") == [10]
        assert result.makespan == 20.0

    def test_wide_fanout_workflow_parallelism(self, engine):
        builder = WorkflowBuilder().source("s")
        for i in range(20):
            builder.service(
                f"branch{i}",
                LocalService(engine, f"branch{i}", ("x",), ("y",), duration=5.0),
            )
            builder.sink(f"out{i}")
            builder.connect("s:output", f"branch{i}:x")
            builder.connect(f"branch{i}:y", f"out{i}:input")
        workflow = builder.build()
        result = MoteurEnactor(engine, workflow, OptimizationConfig.nop()).run({"s": [0]})
        # 20 branches, all concurrent even in NOP (workflow parallelism)
        assert result.makespan == 5.0


class TestEnactmentEmbedding:
    def test_two_enactments_share_one_engine(self, engine):
        def build(tag):
            service = LocalService(engine, f"svc-{tag}", ("x",), ("y",),
                                   function=lambda x: {"y": x}, duration=10.0)
            return (
                WorkflowBuilder(f"wf-{tag}")
                .source("s").service("svc", service).sink("out")
                .connect("s:output", "svc:x").connect("svc:y", "out:input")
                .build()
            )

        first = MoteurEnactor(engine, build("a"), OptimizationConfig.sp_dp())
        second = MoteurEnactor(engine, build("b"), OptimizationConfig.sp_dp())
        done_a = first.enact({"s": [1, 2]})
        done_b = second.enact({"s": [3]})
        result_a = engine.run(until=done_a)
        result_b = engine.run(until=done_b)
        assert sorted(result_a.output_values("out")) == [1, 2]
        assert result_b.output_values("out") == [3]
        # concurrent enactments overlapped in simulated time
        assert engine.now == 10.0
