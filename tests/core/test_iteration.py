"""Tests for dot/cross iteration strategies."""

import pytest

from repro.core.iteration import IterationEngine, expected_bindings
from repro.core.provenance import HistoryTree
from repro.core.tokens import DataToken
from repro.services.base import GridData


def token(source, index):
    return DataToken(GridData(value=f"{source}{index}"), HistoryTree.leaf(source, index))


def derived(producer, *parents):
    return DataToken(
        GridData(value=producer), HistoryTree.derive(producer, tuple(p.history for p in parents))
    )


class TestSinglePort:
    def test_every_token_fires(self):
        eng = IterationEngine(("x",), "dot")
        for i in range(3):
            bindings = eng.offer("x", token("S", i))
            assert len(bindings) == 1
            assert bindings[0]["x"].value == f"S{i}"

    def test_cross_same_as_dot_for_single_port(self):
        eng = IterationEngine(("x",), "cross")
        assert len(eng.offer("x", token("S", 0))) == 1


class TestDotProduct:
    def test_in_order_pairing(self):
        eng = IterationEngine(("a", "b"), "dot")
        assert eng.offer("a", token("A", 0)) == []
        bindings = eng.offer("b", token("B", 0))
        assert len(bindings) == 1
        assert bindings[0]["a"].value == "A0"
        assert bindings[0]["b"].value == "B0"

    def test_min_cardinality(self):
        # paper: "producing min(n, m) results"
        eng = IterationEngine(("a", "b"), "dot")
        fired = 0
        for i in range(5):
            fired += len(eng.offer("a", token("A", i)))
        for j in range(3):
            fired += len(eng.offer("b", token("B", j)))
        assert fired == 3
        assert eng.buffered("a") == 2  # two unmatched leftovers

    def test_out_of_order_arrival_matched_by_provenance(self):
        # The Section 4.1 causality problem: items overtake each other
        # under DP+SP; provenance restores correct pairing.
        eng = IterationEngine(("left", "right"), "dot")
        s0, s1 = token("S", 0), token("S", 1)
        left1 = derived("P1", s1)   # item 1 finished P1 first
        left0 = derived("P1", s0)
        right0 = derived("P2", s0)  # item 0 finished P2 first
        right1 = derived("P2", s1)
        assert eng.offer("left", left1) == []
        assert eng.offer("left", left0) == []
        b0 = eng.offer("right", right0)
        assert len(b0) == 1 and b0[0]["left"] is left0  # not left1!
        b1 = eng.offer("right", right1)
        assert len(b1) == 1 and b1[0]["left"] is left1

    def test_independent_sources_pair_positionally(self):
        eng = IterationEngine(("a", "b"), "dot")
        eng.offer("a", token("A", 0))
        eng.offer("a", token("A", 1))
        b0 = eng.offer("b", token("B", 0))
        assert b0[0]["a"].value == "A0"  # arrival order

    def test_three_port_dot(self):
        eng = IterationEngine(("a", "b", "c"), "dot")
        eng.offer("a", token("S", 0))
        eng.offer("b", derived("P", token("S", 0)))
        bindings = eng.offer("c", derived("Q", token("S", 0)))
        assert len(bindings) == 1
        assert set(bindings[0]) == {"a", "b", "c"}

    def test_tokens_consumed_once(self):
        eng = IterationEngine(("a", "b"), "dot")
        eng.offer("a", token("S", 0))
        assert len(eng.offer("b", derived("P", token("S", 0)))) == 1
        # a second b-token for the same item finds no unconsumed partner
        assert eng.offer("b", derived("P", token("S", 0))) == []


class TestCrossProduct:
    def test_full_cartesian(self):
        # paper: "producing m x n results"
        eng = IterationEngine(("a", "b"), "cross")
        fired = 0
        for i in range(3):
            fired += len(eng.offer("a", token("A", i)))
        for j in range(4):
            fired += len(eng.offer("b", token("B", j)))
        assert fired == 12

    def test_combinations_unique(self):
        eng = IterationEngine(("a", "b"), "cross")
        seen = set()
        for i in range(2):
            for binding in eng.offer("a", token("A", i)):
                seen.add((binding["a"].value, binding["b"].value))
        for j in range(2):
            for binding in eng.offer("b", token("B", j)):
                seen.add((binding["a"].value, binding["b"].value))
        assert seen == {("A0", "B0"), ("A0", "B1"), ("A1", "B0"), ("A1", "B1")}

    def test_interleaved_arrivals(self):
        eng = IterationEngine(("a", "b"), "cross")
        total = 0
        total += len(eng.offer("a", token("A", 0)))  # 0
        total += len(eng.offer("b", token("B", 0)))  # 1
        total += len(eng.offer("a", token("A", 1)))  # 1
        total += len(eng.offer("b", token("B", 1)))  # 2
        assert total == 4


class TestValidation:
    def test_unknown_port_rejected(self):
        eng = IterationEngine(("a",), "dot")
        with pytest.raises(KeyError):
            eng.offer("zzz", token("S", 0))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            IterationEngine(("a",), "zip")

    def test_empty_ports_rejected(self):
        with pytest.raises(ValueError):
            IterationEngine((), "dot")


class TestExpectedBindings:
    def test_dot_is_min(self):
        assert expected_bindings("dot", {"a": 5, "b": 3}) == 3

    def test_cross_is_product(self):
        assert expected_bindings("cross", {"a": 5, "b": 3}) == 15

    def test_no_ports_fires_once(self):
        assert expected_bindings("dot", {}) == 1

    def test_zero_stream(self):
        assert expected_bindings("dot", {"a": 0, "b": 3}) == 0
        assert expected_bindings("cross", {"a": 0, "b": 3}) == 0

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            expected_bindings("zip", {"a": 1})
