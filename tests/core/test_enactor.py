"""Core enactor tests: basic execution, results, provenance, errors."""

import pytest

from repro.core import MoteurEnactor, OptimizationConfig
from repro.core.enactor import EnactmentError
from repro.services.base import LocalService
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.datasets import InputDataSet
from repro.workflow.graph import WorkflowError
from repro.workflow.patterns import chain_workflow, diamond_workflow


def value_chain(engine, length=2, duration=1.0):
    """A chain whose services actually compute (+1 per stage)."""

    def factory(name, inputs, outputs):
        return LocalService(
            engine, name, inputs, outputs, function=lambda x: {"y": x + 1}, duration=duration
        )

    return chain_workflow(factory, length)


class TestBasicExecution:
    def test_values_flow_to_sink(self, engine):
        workflow = value_chain(engine, length=3)
        result = MoteurEnactor(engine, workflow).run({"input": [0, 10]})
        assert result.output_values("result") == [3, 13]

    def test_invocation_count(self, engine):
        workflow = value_chain(engine, length=3)
        result = MoteurEnactor(engine, workflow).run({"input": [0, 10]})
        assert result.invocation_count == 6

    def test_empty_dataset_completes_instantly(self, engine):
        workflow = value_chain(engine)
        result = MoteurEnactor(engine, workflow).run({"input": []})
        assert result.makespan == 0.0
        assert result.output_values("result") == []

    def test_accepts_input_dataset_object(self, engine):
        workflow = value_chain(engine)
        dataset = InputDataSet.from_values("d", input=[5])
        result = MoteurEnactor(engine, workflow).run(dataset)
        assert result.output_values("result") == [7]

    def test_bad_dataset_type_rejected(self, engine):
        workflow = value_chain(engine)
        with pytest.raises(TypeError):
            MoteurEnactor(engine, workflow).run("not a dataset")

    def test_result_metadata(self, engine):
        workflow = value_chain(engine)
        config = OptimizationConfig.sp()
        result = MoteurEnactor(engine, workflow, config).run({"input": [1]})
        assert result.config is config
        assert result.workflow_name == workflow.name
        assert result.finished_at >= result.started_at
        assert result.makespan == result.finished_at - result.started_at

    def test_unbound_service_rejected_at_init(self, engine):
        builder = WorkflowBuilder().abstract_service("P", ("x",), ("y",))
        with pytest.raises(WorkflowError, match="no bound service"):
            MoteurEnactor(engine, builder.build())

    def test_multiple_runs_same_enactor(self, engine):
        workflow = value_chain(engine)
        enactor = MoteurEnactor(engine, workflow)
        first = enactor.run({"input": [1]})
        second = enactor.run({"input": [2, 3]})
        assert first.output_values("result") == [3]
        assert second.output_values("result") == [4, 5]

    def test_source_only_to_sink(self, engine):
        workflow = (
            WorkflowBuilder().source("s").sink("k").connect("s:output", "k:input").build()
        )
        result = MoteurEnactor(engine, workflow).run({"s": [1, 2, 3]})
        assert result.output_values("k") == [1, 2, 3]
        assert result.makespan == 0.0


class TestWorkflowParallelism:
    def test_branches_always_concurrent(self, engine):
        # Workflow parallelism is on even in NOP (Section 3.2).
        def factory(name, inputs, outputs):
            return LocalService(engine, name, inputs, outputs, duration=10.0)

        from repro.workflow.patterns import figure1_workflow

        workflow = figure1_workflow(factory)
        result = MoteurEnactor(engine, workflow, OptimizationConfig.nop()).run(
            {"source": [0]}
        )
        # P1 then P2 || P3: 20, not 30.
        assert result.makespan == 20.0

    def test_diamond_joins_correctly(self, engine):
        def factory(name, inputs, outputs):
            if name == "D":
                return LocalService(
                    engine, name, inputs, outputs,
                    function=lambda left, right: {"y": left + right}, duration=1.0,
                )
            return LocalService(
                engine, name, inputs, outputs,
                function=lambda x: {"y": x * 2}, duration=1.0,
            )

        workflow = diamond_workflow(factory)
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"source": [3]}
        )
        # A doubles (6), B and C double again (12 each), D sums (24).
        assert result.output_values("sink") == [24]


class TestProvenance:
    def test_sink_histories_trace_back_to_sources(self, engine):
        workflow = value_chain(engine, length=2)
        result = MoteurEnactor(engine, workflow).run({"input": [7, 8]})
        histories = result.histories["result"]
        assert [h.label() for h in histories] == ["D0", "D1"]
        assert all(h.depth == 2 for h in histories)

    def test_trace_labels_match_items(self, engine):
        workflow = value_chain(engine, length=1)
        result = MoteurEnactor(engine, workflow).run({"input": [0, 1, 2]})
        labels = sorted(e.label for e in result.trace.events)
        assert labels == ["D0", "D1", "D2"]


class TestErrors:
    def test_service_failure_fails_enactment(self, engine):
        def boom(x):
            raise RuntimeError("algorithm crashed")

        service = LocalService(engine, "bad", ("x",), ("y",), function=boom)
        workflow = (
            WorkflowBuilder()
            .source("s")
            .service("bad", service)
            .sink("k")
            .connect("s:output", "bad:x")
            .connect("bad:y", "k:input")
            .build()
        )
        enactor = MoteurEnactor(engine, workflow)
        with pytest.raises(EnactmentError, match="algorithm crashed"):
            enactor.run({"s": [1]})

    def test_missing_source_data_means_empty_stream(self, engine):
        workflow = value_chain(engine)
        result = MoteurEnactor(engine, workflow).run({})
        assert result.output_values("result") == []


class TestTraceConsistency:
    def test_makespan_at_least_trace_span(self, engine):
        workflow = value_chain(engine, length=3, duration=2.0)
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"input": [1, 2, 3]}
        )
        assert result.makespan >= result.trace.makespan

    def test_dp_off_never_overlaps_per_service(self, engine):
        workflow = value_chain(engine, length=2, duration=3.0)
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp()).run(
            {"input": [1, 2, 3]}
        )
        assert result.trace.max_concurrency("P1") == 1
        assert result.trace.max_concurrency("P2") == 1

    def test_dp_on_overlaps(self, engine):
        workflow = value_chain(engine, length=1, duration=3.0)
        result = MoteurEnactor(engine, workflow, OptimizationConfig.dp()).run(
            {"input": [1, 2, 3]}
        )
        assert result.trace.max_concurrency("P1") == 3

    def test_dp_cap_limits_overlap(self, engine):
        workflow = value_chain(engine, length=1, duration=3.0)
        config = OptimizationConfig(
            data_parallelism=True, service_parallelism=True, data_parallelism_cap=2
        )
        result = MoteurEnactor(engine, workflow, config).run({"input": [1, 2, 3, 4]})
        assert result.trace.max_concurrency("P1") == 2
