"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.grid.testbeds import cluster_testbed, egee_like_testbed, ideal_testbed
from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams


@pytest.fixture
def engine() -> Engine:
    """A fresh simulation engine."""
    return Engine()


@pytest.fixture
def streams() -> RandomStreams:
    """Deterministic random streams."""
    return RandomStreams(seed=1234)


@pytest.fixture
def ideal_grid(engine):
    """Zero-overhead, infinite-capacity grid."""
    return ideal_testbed(engine)


@pytest.fixture
def cluster_grid(engine, streams):
    """Low-latency single-site cluster."""
    return cluster_testbed(engine, streams)


@pytest.fixture
def egee_grid(engine, streams):
    """Small EGEE-like grid (no background load for determinism)."""
    return egee_like_testbed(
        engine, streams, n_sites=3, workers_per_ce=8, with_background_load=False
    )


@pytest.fixture
def cache_dir(request, tmp_path):
    """Throwaway directory for FileStore-backed cache tests.

    Tagged with the ``cache_files`` marker so disk-writing cache tests
    are greppable (``pytest -m cache_files``) and guaranteed isolated:
    every test gets its own tmp_path-backed directory and never shares
    entries with another test.
    """
    request.node.add_marker(pytest.mark.cache_files)
    directory = tmp_path / "result-cache"
    directory.mkdir()
    return directory


@pytest.fixture
def local_factory(engine):
    """Service factory producing constant-duration local stubs.

    ``factory(name, inputs, outputs)`` -> LocalService with duration 1s,
    which is what the workflow patterns module expects.
    """

    def factory(name, inputs, outputs):
        return LocalService(engine, name, tuple(inputs), tuple(outputs), duration=1.0)

    return factory
