"""Tests for the observed-critical-path reconstruction."""

import pytest

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.cache import ResultCache
from repro.core import MoteurEnactor, OptimizationConfig
from repro.observability import InstrumentationBus
from repro.observability.critical_path import (
    OVERHEAD_KEYS,
    CriticalPathError,
    diff_against_static,
    observed_critical_path,
)
from repro.observability.spans import Span
from repro.services.base import LocalService
from repro.workflow.patterns import chain_workflow

TIMINGS = {
    "crestLines": 10.0,
    "crestMatch": 10.0,
    "Baladin": 10.0,
    "Yasmina": 10.0,
    "PFMatchICP": 10.0,
    "PFRegister": 10.0,
}

POLICIES = [
    OptimizationConfig.nop(),
    OptimizationConfig.dp(),
    OptimizationConfig.sp(),
    OptimizationConfig.sp_dp(),
]


def enact_chain(engine, config, durations=(3.0, 5.0), n_items=3):
    def factory(name, inputs, outputs):
        index = int(name[1:]) - 1
        return LocalService(
            engine, name, inputs, outputs,
            function=lambda x: {"y": x}, duration=durations[index],
        )

    workflow = chain_workflow(factory, len(durations))
    bus = InstrumentationBus()
    collector = bus.collector()
    result = MoteurEnactor(engine, workflow, config, instrumentation=bus).run(
        {"input": list(range(n_items))}
    )
    return workflow, result, collector.spans


class TestReconstruction:
    @pytest.mark.parametrize("config", POLICIES, ids=lambda c: c.label)
    def test_chain_tiles_the_run_for_every_policy(self, engine, config):
        _wf, result, spans = enact_chain(engine, config)
        observed = observed_critical_path(spans)
        assert observed.policy == config.label
        assert observed.makespan == pytest.approx(result.makespan)
        assert observed.total == pytest.approx(observed.makespan)
        assert sum(observed.phase_totals().values()) == pytest.approx(
            observed.makespan
        )

    def test_local_services_attribute_to_execute(self, engine):
        _wf, _result, spans = enact_chain(engine, OptimizationConfig.nop())
        observed = observed_critical_path(spans)
        totals = observed.phase_totals()
        assert set(totals) == {"execute"}
        for step in observed.steps:
            assert step.job_ids == ()
            assert step.dominant_phase() == "execute"

    def test_diff_matches_for_a_chain(self, engine):
        workflow, _result, spans = enact_chain(engine, OptimizationConfig.nop())
        diff = diff_against_static(observed_critical_path(spans), workflow)
        assert diff.matches
        assert diff.static == diff.observed

    def test_no_run_span_raises(self):
        with pytest.raises(CriticalPathError, match="no finished run span"):
            observed_critical_path([])


class TestBronzeStandard:
    def test_ideal_grid_is_pure_execution(self, engine, ideal_grid, streams):
        app = BronzeStandardApplication(
            engine, ideal_grid, streams, timings=TIMINGS, mtt_time=5.0
        )
        bus = InstrumentationBus()
        collector = bus.collector()
        result = app.enact(
            OptimizationConfig.sp_dp(), n_pairs=2, instrumentation=bus
        )
        observed = observed_critical_path(collector.spans)
        assert observed.total == pytest.approx(result.makespan)
        # the ideal testbed has no submission/queueing latency: the whole
        # chain is useful execution
        assert observed.overhead_total() == pytest.approx(0.0)
        assert observed.phase_totals()["execute"] == pytest.approx(result.makespan)

    def test_egee_grid_shows_overhead_phases(self, engine, egee_grid, streams):
        app = BronzeStandardApplication(engine, egee_grid, streams)
        bus = InstrumentationBus()
        collector = bus.collector()
        result = app.enact(
            OptimizationConfig.sp_dp(), n_pairs=2, instrumentation=bus
        )
        observed = observed_critical_path(collector.spans)
        assert observed.total == pytest.approx(result.makespan)
        assert observed.overhead_total() > 0.0
        assert set(observed.phase_totals()) & set(OVERHEAD_KEYS)

    def test_warm_cached_run_has_an_empty_chain(self, engine, ideal_grid, streams):
        app = BronzeStandardApplication(
            engine, ideal_grid, streams, timings=TIMINGS, mtt_time=5.0
        )
        bus = InstrumentationBus()
        collector = bus.collector()
        cache = ResultCache()
        config = OptimizationConfig.sp_dp().with_cache()
        dataset = app.build_dataset(2)
        app.enact(config, dataset=dataset, cache=cache, instrumentation=bus)
        warm = app.enact(config, dataset=dataset, cache=cache, instrumentation=bus)
        # the collector now holds two runs; the most recent (warm) one
        # is selected by default
        observed = observed_critical_path(collector.spans)
        assert observed.makespan == pytest.approx(warm.makespan)
        assert observed.total == pytest.approx(observed.makespan)


class TestGapHandling:
    def test_uninstrumented_interval_becomes_a_wait_step(self):
        run = Span(
            name="run", category="enactor", span_id="r", trace_id="t",
            start=0.0, end=10.0,
            attributes={"workflow": "wf"},
        )
        invocation = Span(
            name="invocation", category="enactor", span_id="i", trace_id="t",
            start=0.0, end=4.0,
            attributes={"processor": "P1", "label": "D0"},
        )
        observed = observed_critical_path([run, invocation])
        assert [s.kind for s in observed.steps] == ["invocation", "wait"]
        assert observed.steps[1].phases == {"wait": 6.0}
        assert observed.total == pytest.approx(10.0)
