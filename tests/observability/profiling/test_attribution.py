"""Tests for profile counters, diffs, and regression attribution."""

import pytest

from repro.observability.profiling import (
    ManualClock,
    Profiler,
    attribute,
    components_from_counters,
    diff_profiles,
    format_attribution,
    format_profile_diff,
    format_profile_report,
    profile_counters,
)


def build_profile(engine_us=100, enactor_us=50, memory=False, label=None):
    profiler = Profiler(
        clock=ManualClock(), track_memory=memory, label=label
    )
    clock = profiler.clock
    with profiler.scope("engine.step"):
        clock.advance(engine_us * 1e-6)
        with profiler.scope("enactor.invoke"):
            clock.advance(enactor_us * 1e-6)
    profiler.count("engine.heap_pop", 3)
    return profiler.snapshot()


class TestProfileCounters:
    def test_counters_carry_self_micros_and_calls(self):
        counters = profile_counters(build_profile())
        assert counters["perf.profile.engine"] == pytest.approx(100.0)
        assert counters["perf.profile.engine.calls"] == 1.0
        assert counters["perf.profile.enactor"] == pytest.approx(50.0)

    def test_components_from_counters_is_the_inverse(self):
        counters = profile_counters(build_profile())
        table = components_from_counters(counters)
        assert table == {
            "engine": {"self_us": 100.0, "calls": 1.0},
            "enactor": {"self_us": 50.0, "calls": 1.0},
        }

    def test_non_profile_and_unknown_keys_ignored(self):
        table = components_from_counters(
            {
                "perf.events_per_sec": 9.0,
                "perf.profile.engine": 5.0,
                "perf.profile.engine.bogus.key": 1.0,
            }
        )
        assert table == {"engine": {"self_us": 5.0, "calls": 0.0}}


class TestAttribute:
    def test_worst_regression_ranks_first(self):
        base = profile_counters(build_profile(engine_us=100, enactor_us=50))
        cand = profile_counters(build_profile(engine_us=120, enactor_us=200))
        deltas = attribute(base, cand)
        assert deltas[0].component == "enactor"
        assert deltas[0].delta_us == pytest.approx(150.0)
        assert deltas[1].component == "engine"

    def test_one_sided_components_count_from_zero(self):
        deltas = attribute({}, {"perf.profile.cache": 30.0})
        assert len(deltas) == 1
        assert deltas[0].baseline_us == 0.0
        assert deltas[0].candidate_us == pytest.approx(30.0)

    def test_empty_when_no_breakdown_on_either_side(self):
        assert attribute({"perf.events_per_sec": 1.0}, {}) == []


class TestFormatAttribution:
    def test_names_the_regressed_component(self):
        base = profile_counters(build_profile(engine_us=100, enactor_us=50))
        cand = profile_counters(build_profile(engine_us=100, enactor_us=150))
        lines = format_attribution(attribute(base, cand))
        assert lines[0].startswith("top regressed components")
        assert any("enactor" in line for line in lines[1:])
        assert not any("engine:" in line for line in lines)

    def test_empty_when_nothing_regressed(self):
        counters = profile_counters(build_profile())
        assert format_attribution(attribute(counters, counters)) == []


class TestDiffProfiles:
    def test_components_scopes_and_counters(self):
        base = build_profile(engine_us=100, enactor_us=50, label="base")
        cand = build_profile(engine_us=100, enactor_us=90, label="cand")
        diff = diff_profiles(base, cand)
        assert diff.top_component.component == "enactor"
        worst_scope = diff.scopes[0]
        assert worst_scope.path == ("engine.step", "enactor.invoke")
        assert worst_scope.delta == pytest.approx(40e-6)
        assert diff.counters["engine.heap_pop"] == 0

    def test_top_component_none_when_nothing_grew(self):
        profile = build_profile()
        assert diff_profiles(profile, profile).top_component is None


class TestFormatting:
    def test_report_mentions_components_scopes_and_churn(self):
        text = format_profile_report(build_profile(memory=True, label="r"))
        assert "profile: r" in text
        assert "component" in text
        assert "engine.step;enactor.invoke" in text
        assert "engine.heap_pop" in text
        assert "memory (tracemalloc)" in text

    def test_diff_warns_on_clock_mismatch(self):
        wall_side = Profiler().snapshot()  # default clock -> "wall"
        manual_side = build_profile()  # ManualClock -> "custom"
        text = format_profile_diff(diff_profiles(wall_side, manual_side))
        assert "WARNING: clocks differ" in text
