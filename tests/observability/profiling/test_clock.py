"""Tests for the shared clock helpers."""

import pytest

from repro.observability.profiling import (
    ManualClock,
    TickClock,
    resolve_clock,
    wall_clock,
)


class TestWallClock:
    def test_monotone(self):
        readings = [wall_clock() for _ in range(10)]
        assert readings == sorted(readings)


class TestTickClock:
    def test_every_reading_advances_one_quantum(self):
        clock = TickClock(quantum=0.5)
        assert clock() == pytest.approx(0.5)
        assert clock() == pytest.approx(1.0)
        assert clock.ticks == 2

    def test_default_quantum_is_one_microsecond(self):
        clock = TickClock()
        assert clock() == pytest.approx(1e-6)

    def test_rejects_nonpositive_quantum(self):
        with pytest.raises(ValueError, match="quantum"):
            TickClock(quantum=0.0)

    def test_two_clocks_are_independent(self):
        a, b = TickClock(), TickClock()
        a()
        a()
        assert b() == pytest.approx(1e-6)


class TestManualClock:
    def test_reads_do_not_advance(self):
        clock = ManualClock(now=3.0)
        assert clock() == clock() == 3.0

    def test_advance(self):
        clock = ManualClock()
        assert clock.advance(2.5) == 2.5
        assert clock() == 2.5

    def test_rejects_backwards(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


class TestResolveClock:
    def test_none_and_wall_map_to_shared_helper(self):
        assert resolve_clock(None) is wall_clock
        assert resolve_clock("wall") is wall_clock

    def test_deterministic_returns_fresh_tick_clock(self):
        one = resolve_clock("deterministic")
        two = resolve_clock("tick")
        assert isinstance(one, TickClock) and isinstance(two, TickClock)
        assert one is not two

    def test_callable_passes_through(self):
        clock = ManualClock()
        assert resolve_clock(clock) is clock

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown clock"):
            resolve_clock("sundial")
