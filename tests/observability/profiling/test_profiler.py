"""Tests for the scope-tree profiler and the Profile snapshot."""

import json

import pytest

from repro.observability.profiling import (
    ManualClock,
    Profile,
    Profiler,
    ProfilerError,
    ScopeStats,
    TickClock,
    install,
    wall_clock,
)


def make_profiler():
    """A profiler over a manual clock the test can steer."""
    clock = ManualClock()
    return Profiler(clock=clock), clock


class TestScopeAccounting:
    def test_single_scope_self_equals_cum(self):
        profiler, clock = make_profiler()
        profiler.enter("engine.step")
        clock.advance(2.0)
        profiler.exit()
        node = profiler.root.children["engine.step"]
        assert node.calls == 1
        assert node.cum == pytest.approx(2.0)
        assert node.self_time == pytest.approx(2.0)

    def test_child_time_subtracted_from_parent_self(self):
        profiler, clock = make_profiler()
        profiler.enter("engine.step")
        clock.advance(1.0)
        profiler.enter("enactor.prepare")
        clock.advance(3.0)
        profiler.exit()
        clock.advance(0.5)
        profiler.exit()
        step = profiler.root.children["engine.step"]
        prepare = step.children["enactor.prepare"]
        assert step.cum == pytest.approx(4.5)
        assert step.self_time == pytest.approx(1.5)
        assert prepare.cum == prepare.self_time == pytest.approx(3.0)

    def test_repeat_calls_share_one_node(self):
        profiler, clock = make_profiler()
        for _ in range(5):
            profiler.enter("broker.rank")
            clock.advance(1.0)
            profiler.exit()
        assert list(profiler.root.children) == ["broker.rank"]
        node = profiler.root.children["broker.rank"]
        assert node.calls == 5
        assert node.cum == pytest.approx(5.0)

    def test_same_name_under_different_parents_is_two_nodes(self):
        profiler, clock = make_profiler()
        with profiler.scope("a"):
            with profiler.scope("cache.lookup"):
                clock.advance(1.0)
        with profiler.scope("cache.lookup"):
            clock.advance(2.0)
        assert profiler.root.children["a"].children["cache.lookup"].cum == (
            pytest.approx(1.0)
        )
        assert profiler.root.children["cache.lookup"].cum == pytest.approx(2.0)

    def test_exit_without_enter_raises(self):
        profiler, _ = make_profiler()
        with pytest.raises(ProfilerError, match="no open scope"):
            profiler.exit()

    def test_depth_tracks_open_scopes(self):
        profiler, _ = make_profiler()
        assert profiler.depth == 0
        profiler.enter("a")
        profiler.enter("b")
        assert profiler.depth == 2
        profiler.exit()
        profiler.exit()
        assert profiler.depth == 0

    def test_scope_context_manager_closes_on_exception(self):
        profiler, _ = make_profiler()
        with pytest.raises(RuntimeError, match="boom"):
            with profiler.scope("a"):
                raise RuntimeError("boom")
        assert profiler.depth == 0
        assert profiler.root.children["a"].calls == 1

    def test_count_accumulates(self):
        profiler, _ = make_profiler()
        profiler.count("enactor.tokens")
        profiler.count("enactor.tokens", 4)
        assert profiler.churn.get("enactor.tokens") == 5

    def test_reset_requires_closed_scopes(self):
        profiler, _ = make_profiler()
        profiler.enter("a")
        with pytest.raises(ProfilerError, match="open scope"):
            profiler.reset()
        profiler.exit()
        profiler.count("x")
        profiler.reset()
        assert not profiler.root.children and profiler.churn.get("x") == 0


class TestSnapshot:
    def test_root_cum_is_sum_of_top_level_children(self):
        profiler, clock = make_profiler()
        with profiler.scope("a"):
            clock.advance(1.0)
        with profiler.scope("b"):
            clock.advance(2.0)
        profile = profiler.snapshot()
        assert profile.total_time == pytest.approx(3.0)

    def test_snapshot_is_a_deep_copy(self):
        profiler, clock = make_profiler()
        with profiler.scope("a"):
            clock.advance(1.0)
        profile = profiler.snapshot()
        with profiler.scope("a"):
            clock.advance(1.0)
        assert profile.root.children["a"].calls == 1

    def test_snapshot_with_open_scopes_keeps_completed_calls(self):
        profiler, clock = make_profiler()
        with profiler.scope("done"):
            clock.advance(1.0)
        profiler.enter("open")
        profile = profiler.snapshot()
        assert profile.root.children["done"].calls == 1
        assert "open" not in profile.root.children or (
            profile.root.children["open"].calls == 0
        )
        profiler.exit()

    def test_clock_kind_recorded(self):
        assert Profiler(clock=TickClock()).snapshot().clock == "deterministic"
        assert Profiler(clock=wall_clock).snapshot().clock == "wall"
        assert Profiler(clock=ManualClock()).snapshot().clock == "custom"

    def test_label_override(self):
        profiler = Profiler(clock=TickClock(), label="default")
        assert profiler.snapshot().label == "default"
        assert profiler.snapshot(label="special").label == "special"


class TestProfileQueries:
    def build(self):
        profiler, clock = make_profiler()
        with profiler.scope("engine.step"):
            clock.advance(1.0)
            with profiler.scope("enactor.prepare"):
                clock.advance(2.0)
            with profiler.scope("cache.lookup"):
                clock.advance(0.5)
        return profiler.snapshot()

    def test_walk_yields_paths_in_name_order(self):
        profile = self.build()
        paths = [path for path, _node in profile.walk()]
        assert paths == [
            ("engine.step",),
            ("engine.step", "cache.lookup"),
            ("engine.step", "enactor.prepare"),
        ]

    def test_by_component_sums_self_times(self):
        table = self.build().by_component()
        assert set(table) == {"engine", "enactor", "cache"}
        assert table["engine"]["self"] == pytest.approx(1.0)
        assert table["enactor"]["self"] == pytest.approx(2.0)
        assert table["cache"]["self"] == pytest.approx(0.5)

    def test_hottest_ranks_by_self_time(self):
        hottest = self.build().hottest(2)
        assert [path[-1] for path, _ in hottest] == [
            "enactor.prepare",
            "engine.step",
        ]


class TestSerialization:
    def test_json_roundtrip(self):
        profiler, clock = make_profiler()
        with profiler.scope("engine.step"):
            clock.advance(1.0)
        profiler.count("engine.heap_pop", 7)
        profile = profiler.snapshot(label="roundtrip")
        loaded = Profile.from_dict(json.loads(profile.to_json()))
        assert loaded.to_json() == profile.to_json()
        assert loaded.counters == {"engine.heap_pop": 7}

    def test_save_and_load(self, tmp_path):
        profiler, clock = make_profiler()
        with profiler.scope("a"):
            clock.advance(1.0)
        path = profiler.snapshot().save(tmp_path / "deep" / "profile.json")
        assert Profile.load(path).root.children["a"].calls == 1

    def test_load_missing_file_raises_profiler_error(self, tmp_path):
        with pytest.raises(ProfilerError, match="cannot read"):
            Profile.load(tmp_path / "absent.json")

    def test_load_malformed_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ProfilerError):
            Profile.load(bad)

    def test_unsupported_format_rejected(self):
        with pytest.raises(ProfilerError, match="format"):
            Profile.from_dict({"format": 99, "root": {}})

    def test_malformed_scope_node_rejected(self):
        with pytest.raises(ProfilerError, match="malformed scope"):
            ScopeStats.from_dict({"name": "a"})


class TestInstall:
    class Target:
        profiler = None

    def test_install_sets_attribute_and_skips_none(self):
        profiler = Profiler(clock=TickClock())
        target = self.Target()
        assert install(profiler, target, None) is profiler
        assert target.profiler is profiler

    def test_uninstall(self):
        target = self.Target()
        install(Profiler(clock=TickClock()), target)
        install(None, target)
        assert target.profiler is None
