"""Tests for churn counters and the optional tracemalloc tracker."""

from repro.observability.profiling import ChurnCounters, MemoryTracker


class TestChurnCounters:
    def test_count_and_get(self):
        counters = ChurnCounters()
        counters.count("bus.spans")
        counters.count("bus.spans", 9)
        assert counters.get("bus.spans") == 10
        assert counters.get("never") == 0

    def test_snapshot_is_a_sorted_copy(self):
        counters = ChurnCounters()
        counters.count("z", 1)
        counters.count("a", 2)
        snap = counters.snapshot()
        assert list(snap) == ["a", "z"]
        counters.count("a")
        assert snap["a"] == 2

    def test_clear(self):
        counters = ChurnCounters()
        counters.count("x")
        counters.clear()
        assert counters.snapshot() == {}


class TestMemoryTracker:
    def test_disabled_reports_none(self):
        tracker = MemoryTracker(enabled=False)
        tracker.start()
        tracker.stop()
        assert tracker.report() is None

    def test_enabled_reports_alloc_and_peak(self):
        tracker = MemoryTracker(enabled=True)
        tracker.start()
        sink = [list(range(1000)) for _ in range(50)]
        tracker.stop()
        report = tracker.report()
        assert report is not None
        assert report["peak_bytes"] > 0
        assert report["allocated_bytes"] >= 0
        del sink

    def test_stop_is_idempotent(self):
        tracker = MemoryTracker(enabled=True)
        tracker.start()
        tracker.stop()
        first = tracker.report()
        tracker.stop()
        assert tracker.report() == first
