"""Flamegraph exporter tests: strict round-trips and byte-identity.

The byte-identity test is the acceptance criterion for the
deterministic clock: two identically seeded bronze enactments must
produce the same profile JSON and the same flamegraph exports, byte
for byte.
"""

import pytest

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core.config import OptimizationConfig
from repro.grid.testbeds import egee_like_testbed
from repro.observability.profiling import (
    ManualClock,
    Profiler,
    ProfilerError,
    TickClock,
    collapsed_weights,
    parse_collapsed,
    parse_speedscope,
    speedscope_json,
    to_collapsed,
    to_speedscope,
)
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams


def sample_profile():
    profiler = Profiler(clock=ManualClock(), label="sample")
    clock = profiler.clock
    with profiler.scope("engine.step"):
        clock.advance(10e-6)
        with profiler.scope("enactor.prepare"):
            clock.advance(25e-6)
        with profiler.scope("cache.lookup"):
            clock.advance(3e-6)
    with profiler.scope("broker.rank"):
        clock.advance(7e-6)
    return profiler.snapshot()


def profiled_bronze(seed=42, pairs=2):
    """One deterministic-clock bronze enactment; returns the Profile."""
    engine = Engine()
    streams = RandomStreams(seed=seed)
    grid = egee_like_testbed(
        engine, streams, n_sites=6, workers_per_ce=40, with_background_load=False
    )
    app = BronzeStandardApplication(engine, grid, streams)
    config = next(
        c for c in OptimizationConfig.paper_configurations() if c.label == "SP+DP"
    )
    profiler = Profiler(clock=TickClock(), label="bronze smoke")
    app.enact(config, n_pairs=pairs, profiler=profiler)
    return profiler.snapshot()


class TestCollapsed:
    def test_roundtrip_through_strict_parser(self):
        profile = sample_profile()
        assert parse_collapsed(to_collapsed(profile)) == collapsed_weights(profile)

    def test_weights_are_self_time_micros(self):
        weights = collapsed_weights(sample_profile())
        assert weights[("engine.step",)] == 10
        assert weights[("engine.step", "enactor.prepare")] == 25
        assert weights[("broker.rank",)] == 7

    def test_zero_weight_stacks_dropped(self):
        profiler = Profiler(clock=ManualClock())
        with profiler.scope("instant"):
            pass
        assert collapsed_weights(profiler.snapshot()) == {}
        assert to_collapsed(profiler.snapshot()) == ""

    def test_lines_sorted_and_newline_terminated(self):
        text = to_collapsed(sample_profile())
        assert text.endswith("\n")
        lines = text.splitlines()
        assert lines == sorted(lines)

    @pytest.mark.parametrize(
        "bad, message",
        [
            ("stackonly", "not 'stack weight'"),
            ("a;b twelve", "not an integer"),
            ("a;b 0", "must be positive"),
            ("a;;b 3", "empty frame"),
            ("a 1\na 2", "duplicate stack"),
        ],
    )
    def test_strict_parser_rejects(self, bad, message):
        with pytest.raises(ProfilerError, match=message):
            parse_collapsed(bad)


class TestSpeedscope:
    def test_roundtrip_through_strict_parser(self):
        profile = sample_profile()
        assert parse_speedscope(to_speedscope(profile)) == collapsed_weights(profile)
        assert parse_speedscope(speedscope_json(profile)) == (
            collapsed_weights(profile)
        )

    def test_end_value_equals_weight_sum(self):
        doc = to_speedscope(sample_profile())
        prof = doc["profiles"][0]
        assert prof["endValue"] == sum(prof["weights"])

    def test_parser_rejects_wrong_schema(self):
        doc = to_speedscope(sample_profile())
        doc["$schema"] = "https://example.com/nope.json"
        with pytest.raises(ProfilerError, match="schema"):
            parse_speedscope(doc)

    def test_parser_rejects_frame_index_out_of_range(self):
        doc = to_speedscope(sample_profile())
        doc["profiles"][0]["samples"][0] = [999]
        with pytest.raises(ProfilerError, match="out of range"):
            parse_speedscope(doc)

    def test_parser_rejects_mismatched_end_value(self):
        doc = to_speedscope(sample_profile())
        doc["profiles"][0]["endValue"] = 1
        with pytest.raises(ProfilerError, match="endValue"):
            parse_speedscope(doc)

    def test_parser_rejects_non_json_text(self):
        with pytest.raises(ProfilerError, match="not JSON"):
            parse_speedscope("{broken")


class TestByteIdentity:
    """Two identically seeded runs -> identical bytes, everywhere."""

    def test_profiles_and_flamegraphs_are_byte_identical(self):
        first = profiled_bronze(seed=42)
        second = profiled_bronze(seed=42)
        assert first.to_json() == second.to_json()
        assert to_collapsed(first) == to_collapsed(second)
        assert speedscope_json(first) == speedscope_json(second)

    def test_different_seeds_still_roundtrip(self):
        profile = profiled_bronze(seed=7)
        assert parse_collapsed(to_collapsed(profile)) == collapsed_weights(profile)
        assert parse_speedscope(speedscope_json(profile)) == (
            collapsed_weights(profile)
        )

    def test_bronze_profile_names_hot_components(self):
        components = profiled_bronze(seed=42).by_component()
        assert "engine" in components
        assert "enactor" in components
        assert components["engine"]["self"] > 0
