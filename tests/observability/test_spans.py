"""Tests for the span model and its JSONL serialization."""

import pytest

from repro.observability.spans import (
    Span,
    SpanError,
    span_sort_key,
    spans_from_jsonl,
    spans_to_jsonl,
)


def make_span(**overrides):
    payload = dict(
        name="invocation",
        category="enactor",
        span_id="s1",
        trace_id="run-1:wf",
        start=10.0,
    )
    payload.update(overrides)
    return Span(**payload)


class TestSpan:
    def test_open_until_closed(self):
        span = make_span()
        assert span.open
        assert span.duration == 0.0
        span.close(25.0)
        assert not span.open
        assert span.duration == 15.0

    def test_close_updates_status_and_attributes(self):
        span = make_span()
        span.close(12.0, status="error", reason="boom")
        assert span.status == "error"
        assert span.attributes["reason"] == "boom"

    def test_double_close_rejected(self):
        span = make_span()
        span.close(11.0)
        with pytest.raises(SpanError):
            span.close(12.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(SpanError):
            make_span().close(9.0)

    def test_zero_duration_allowed(self):
        span = make_span().close(10.0)
        assert span.duration == 0.0

    def test_dict_round_trip(self):
        span = make_span(parent_id="s0", attributes={"job_id": 3})
        span.close(20.0, status="hit")
        clone = Span.from_dict(span.to_dict())
        assert clone == span

    def test_from_dict_tolerates_reduced_schema(self):
        # ExecutionTrace.to_jsonl has no parent/status refinements; the
        # reader must default them so both formats stay interchangeable.
        span = Span.from_dict({"start": 1.0, "end": 2.0})
        assert span.name == "invocation"
        assert span.category == "enactor"
        assert span.parent_id is None
        assert span.status == "ok"
        assert span.duration == 1.0


class TestJsonl:
    def test_round_trip(self):
        spans = [
            make_span(span_id="a").close(11.0),
            make_span(span_id="b", start=11.0, parent_id="a").close(13.0, status="miss"),
        ]
        assert spans_from_jsonl(spans_to_jsonl(spans)) == spans

    def test_blank_lines_ignored(self):
        text = spans_to_jsonl([make_span().close(11.0)])
        assert len(spans_from_jsonl("\n" + text + "\n\n")) == 1

    def test_accepts_iterable_of_lines(self):
        spans = [make_span().close(11.0)]
        lines = spans_to_jsonl(spans).splitlines()
        assert spans_from_jsonl(iter(lines)) == spans

    def test_invalid_json_rejected(self):
        with pytest.raises(SpanError, match="line 1"):
            spans_from_jsonl("{not json")

    def test_non_span_record_rejected(self):
        with pytest.raises(SpanError, match="not a span record"):
            spans_from_jsonl('{"foo": 1}')


def test_sort_key_orders_by_start_then_end():
    late = make_span(span_id="late", start=5.0).close(6.0)
    early = make_span(span_id="early", start=1.0).close(9.0)
    still_open = make_span(span_id="open", start=5.0)
    ordered = sorted([still_open, late, early], key=span_sort_key)
    assert [s.span_id for s in ordered] == ["early", "late", "open"]
