"""Tests for live model-drift reporting against equations (1)-(4)."""

import pytest

from repro.core import MoteurEnactor, OptimizationConfig
from repro.core.trace import ExecutionTrace, TraceEvent
from repro.model.makespan import makespans
from repro.observability.drift import (
    DriftError,
    drift_report,
    drift_report_from_trace,
    overhead_by_job_from_spans,
    policy_key,
    time_matrix,
)
from repro.observability.spans import Span
from repro.services.base import LocalService
from repro.workflow.patterns import chain_workflow

# T[i][j]: service i, data set j — deliberately non-constant so the
# four policy equations give four different makespans.
TIMES = [
    [4.0, 1.0, 3.0],
    [2.0, 5.0, 1.0],
]

POLICIES = [
    ("NOP", OptimizationConfig.nop),
    ("DP", OptimizationConfig.dp),
    ("SP", OptimizationConfig.sp),
    ("SP+DP", OptimizationConfig.sp_dp),
]


def enact(engine, config):
    def factory(name, inputs, outputs):
        index = int(name[1:]) - 1

        def duration(inputs_dict):
            return float(TIMES[index][inputs_dict["x"].value])

        return LocalService(
            engine, name, inputs, outputs,
            function=lambda x: {"y": x}, duration=duration,
        )

    workflow = chain_workflow(factory, len(TIMES))
    return MoteurEnactor(engine, workflow, config).run(
        {"input": list(range(len(TIMES[0])))}
    )


class TestPolicyKey:
    def test_all_four(self):
        assert policy_key(OptimizationConfig.nop()) == "NOP"
        assert policy_key(OptimizationConfig.dp()) == "DP"
        assert policy_key(OptimizationConfig.sp()) == "SP"
        assert policy_key(OptimizationConfig.sp_dp()) == "SP+DP"

    def test_grouping_does_not_change_the_equation(self):
        assert policy_key(OptimizationConfig.sp_dp_jg()) == "SP+DP"
        assert policy_key(OptimizationConfig.jg()) == "NOP"


class TestTimeMatrix:
    def test_rebuilds_T_from_trace(self, engine):
        result = enact(engine, OptimizationConfig.sp_dp())
        T, names, rows = time_matrix(result.trace)
        assert names == ["P1", "P2"]
        assert T.tolist() == TIMES

    def test_cached_and_synchronization_events_excluded(self):
        trace = ExecutionTrace()
        trace.add(TraceEvent("P", "D0", 0.0, 2.0))
        trace.add(TraceEvent("P", "D1", 2.0, 2.0, kind="cached"))
        T, names, _ = time_matrix(trace)
        assert T.shape == (1, 1)

    def test_all_cached_trace_rejected(self):
        trace = ExecutionTrace()
        trace.add(TraceEvent("P", "D0", 0.0, 0.0, kind="cached"))
        with pytest.raises(DriftError, match="no executed invocations"):
            time_matrix(trace)

    def test_uneven_streams_rejected_without_selection(self):
        trace = ExecutionTrace()
        trace.add(TraceEvent("A", "D0", 0.0, 1.0))
        trace.add(TraceEvent("B", "D0", 1.0, 2.0))
        trace.add(TraceEvent("B", "D1", 2.0, 3.0))
        with pytest.raises(DriftError, match="different stream lengths"):
            time_matrix(trace)
        T, names, _ = time_matrix(trace, processors=["B"])
        assert names == ["B"]
        assert T.shape == (1, 2)

    def test_unknown_processor_rejected(self, engine):
        result = enact(engine, OptimizationConfig.nop())
        with pytest.raises(DriftError, match="never executed"):
            time_matrix(result.trace, processors=["P1", "ghost"])


class TestDriftReport:
    @pytest.mark.parametrize("label,config", POLICIES, ids=[p[0] for p in POLICIES])
    def test_exact_on_ideal_enactment(self, engine, label, config):
        # Simulator == model on overhead-free services: equations (1)-(4)
        # must predict the observed makespan exactly, for every policy.
        report = drift_report(enact(engine, config()))
        assert report.policy == label
        assert report.observed_makespan == pytest.approx(makespans(TIMES)[label])
        assert report.drift == pytest.approx(0.0)
        assert report.relative_error == pytest.approx(0.0)
        assert report.within(1e-9)

    def test_all_four_predictions_on_one_matrix(self, engine):
        report = drift_report(enact(engine, OptimizationConfig.nop()))
        expected = makespans(TIMES)
        for label, value in expected.items():
            assert report.predictions[label] == pytest.approx(value)
        assert report.speedup_vs_nop == pytest.approx(1.0)

    def test_speedup_vs_nop(self, engine):
        report = drift_report(enact(engine, OptimizationConfig.sp_dp()))
        expected = makespans(TIMES)
        assert report.speedup_vs_nop == pytest.approx(
            expected["NOP"] / expected["SP+DP"]
        )

    def test_overhead_split_feeds_intercept(self):
        # One service, two items, 3s of overhead inside each 5s slot:
        # the intercept estimate must follow the overhead matrix.
        trace = ExecutionTrace()
        trace.add(TraceEvent("P", "D0", 0.0, 5.0, job_ids=(1,)))
        trace.add(TraceEvent("P", "D1", 5.0, 10.0, job_ids=(2,)))
        report = drift_report_from_trace(
            trace, "NOP", overhead_by_job={1: 3.0, 2: 3.0}
        )
        assert report.y_intercept_estimate == pytest.approx(6.0)  # NOP sums
        assert report.slope_estimate == pytest.approx((10.0 - 6.0) / 2)

    def test_unknown_policy_rejected(self):
        trace = ExecutionTrace()
        trace.add(TraceEvent("P", "D0", 0.0, 1.0))
        with pytest.raises(DriftError, match="unknown policy"):
            drift_report_from_trace(trace, "TURBO")


class TestOverheadFromSpans:
    def test_sums_pre_running_phases_per_job(self):
        def phase(name, job_id, start, end):
            return Span(
                name=name, category="grid", span_id=f"{name}:{job_id}",
                trace_id="run-1:wf", start=start, end=end,
                attributes={"job_id": job_id},
            )

        spans = [
            phase("job.submit", 1, 0.0, 2.0),
            phase("job.schedule", 1, 2.0, 2.0),
            phase("job.queue", 1, 2.0, 7.0),
            phase("job.run", 1, 7.0, 20.0),  # execution: not overhead
            phase("job.fault", 2, 0.0, 4.0),
            phase("job.queue", 2, 5.0, 6.0),
        ]
        overheads = overhead_by_job_from_spans(spans)
        assert overheads == {1: 7.0, 2: 5.0}

    def test_open_and_jobless_spans_ignored(self):
        spans = [
            Span("job.queue", "grid", "a", "t", 0.0),  # still open
            Span("job.queue", "grid", "b", "t", 0.0, end=1.0),  # no job_id
        ]
        assert overhead_by_job_from_spans(spans) == {}
