"""Tests for the typed alert records, rules and JSONL writer."""

import io
import json

import pytest

from repro.observability.alerts import (
    ALERT_KINDS,
    Alert,
    AlertError,
    AlertRules,
    JsonlAlertWriter,
    alert_sort_key,
    alerts_from_jsonl,
    alerts_to_jsonl,
)
from repro.observability.health import HealthThresholds


class TestAlert:
    def test_unknown_kind_rejected(self):
        with pytest.raises(AlertError, match="unknown alert kind"):
            Alert(kind="meltdown", time=1.0, subject="ce0")

    def test_round_trip(self):
        alert = Alert(
            kind="blackhole",
            time=12.5,
            subject="site01-ce",
            scope="ce",
            severity="critical",
            message="fails fast",
            sequence=3,
            attributes={"fault_rate": 0.9},
        )
        assert Alert.from_dict(alert.to_dict()) == alert

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(AlertError, match="malformed"):
            Alert.from_dict({"kind": "straggler"})  # missing time/subject

    def test_sort_key_is_total_at_equal_timestamps(self):
        # two alerts at the same simulated instant: the emission
        # sequence makes the order deterministic
        a = Alert(kind="straggler", time=5.0, subject="ce0", sequence=1)
        b = Alert(kind="blackhole", time=5.0, subject="ce1", sequence=0)
        c = Alert(kind="fault-burst", time=4.0, subject="ce2", sequence=9)
        assert sorted([a, b, c], key=alert_sort_key) == [c, b, a]

    def test_jsonl_round_trip(self):
        alerts = [
            Alert(kind=kind, time=float(i), subject=f"ce{i}", sequence=i)
            for i, kind in enumerate(ALERT_KINDS)
        ]
        assert alerts_from_jsonl(alerts_to_jsonl(alerts)) == alerts

    def test_jsonl_rejects_non_alert_lines(self):
        with pytest.raises(AlertError, match="not an alert record"):
            alerts_from_jsonl('{"foo": 1}')
        with pytest.raises(AlertError, match="not valid JSON"):
            alerts_from_jsonl("{broken")


class TestAlertRules:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlertRules(fault_burst_count=0)
        with pytest.raises(ValueError):
            AlertRules(fault_burst_window=0.0)
        with pytest.raises(ValueError):
            AlertRules(eta_blowout_factor=1.0)

    def test_health_thresholds_mirror(self):
        rules = AlertRules(straggler_z=2.0, min_samples=7, blackhole_ttf_floor=60.0)
        thresholds = rules.health_thresholds()
        assert isinstance(thresholds, HealthThresholds)
        assert thresholds.straggler_z == 2.0
        assert thresholds.min_samples == 7
        assert thresholds.blackhole_ttf_floor == 60.0


class TestJsonlAlertWriter:
    def _alert(self, i=0):
        return Alert(kind="fault-burst", time=float(i), subject="ce0", sequence=i)

    def test_flushes_every_line_mid_run(self, tmp_path):
        # a concurrent reader (tail -f) must see each alert immediately,
        # before the writer is closed
        path = tmp_path / "alerts.jsonl"
        writer = JsonlAlertWriter(path)
        writer(self._alert(0))
        writer(self._alert(1))
        mid_run = alerts_from_jsonl(path.read_text())
        assert [a.sequence for a in mid_run] == [0, 1]
        writer.close()
        assert writer.lines_written == 2

    def test_file_like_destination_is_caller_owned(self):
        buffer = io.StringIO()
        with JsonlAlertWriter(buffer) as writer:
            writer(self._alert())
        assert not buffer.closed  # close() must not close a borrowed handle
        assert json.loads(buffer.getvalue())["kind"] == "fault-burst"

    def test_context_manager_closes_owned_file(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        with JsonlAlertWriter(path) as writer:
            writer(self._alert())
        assert len(alerts_from_jsonl(path.read_text())) == 1
