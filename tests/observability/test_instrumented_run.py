"""Integration: an instrumented Bronze Standard run, end to end.

This is the acceptance test of the observability layer: one enactment
under a caching configuration must produce a span stream from which the
per-job phase durations (submit -> schedule -> queue -> run, plus fault
time for retried jobs) reconstruct each job record's makespan exactly,
round-trip through JSONL, and export as loadable Chrome trace JSON.
"""

import io
import json
from types import SimpleNamespace

import pytest

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.cache import ResultCache
from repro.core import OptimizationConfig
from repro.observability.bus import (
    ChromeTraceExporter,
    InstrumentationBus,
    JsonlExporter,
)
from repro.observability.drift import drift_report
from repro.observability.spans import spans_from_jsonl

#: the phase spans that tile a job's SUBMITTED -> DONE interval
PHASES = ("job.submit", "job.schedule", "job.queue", "job.run", "job.fault")

CRITICAL_PATH = ("crestLines", "crestMatch", "PFMatchICP", "PFRegister")

TIMINGS = {
    "crestLines": 10.0,
    "crestMatch": 10.0,
    "Baladin": 10.0,
    "Yasmina": 10.0,
    "PFMatchICP": 10.0,
    "PFRegister": 10.0,
}


@pytest.fixture
def instrumented_run(engine, ideal_grid, streams):
    app = BronzeStandardApplication(
        engine, ideal_grid, streams, timings=TIMINGS, mtt_time=5.0
    )
    bus = InstrumentationBus()
    collector = bus.collector()
    buffer = io.StringIO()
    bus.subscribe(JsonlExporter(buffer))
    chrome = bus.subscribe(ChromeTraceExporter())
    cache = ResultCache()
    dataset = app.build_dataset(2)
    result = app.enact(
        OptimizationConfig.sp_dp().with_cache(),
        dataset=dataset,
        cache=cache,
        instrumentation=bus,
    )
    return SimpleNamespace(
        app=app, bus=bus, collector=collector, buffer=buffer,
        chrome=chrome, cache=cache, result=result, dataset=dataset,
    )


class TestPhaseTiling:
    def test_phase_spans_sum_to_job_makespans(self, instrumented_run, ideal_grid):
        collector = instrumented_run.collector
        records = ideal_grid.completed_records()
        assert records, "run submitted no jobs"
        for record in records:
            phases = [
                s for s in collector.for_job(record.job_id) if s.name in PHASES
            ]
            assert phases, f"no phase spans for job {record.job_id}"
            total = sum(s.duration for s in phases)
            assert total == pytest.approx(record.makespan, abs=1e-9)

    def test_every_job_has_one_grid_span(self, instrumented_run, ideal_grid):
        collector = instrumented_run.collector
        job_spans = collector.named("grid.job")
        assert len(job_spans) == len(ideal_grid.completed_records())
        run_span = collector.named("run")[0]
        assert all(s.parent_id == run_span.span_id for s in job_spans)

    def test_run_span_covers_the_enactment(self, instrumented_run):
        result = instrumented_run.result
        run_span = instrumented_run.collector.named("run")[0]
        assert run_span.start == result.started_at
        assert run_span.end == result.finished_at
        assert run_span.duration == pytest.approx(result.makespan)

    def test_invocation_span_ids_encode_lineage(self, instrumented_run):
        collector = instrumented_run.collector
        spans = collector.named("invocation")
        assert spans
        run_span = collector.named("run")[0]
        for span in spans:
            # run-N:workflow:processor:label — comparable across runs
            assert span.span_id.startswith(f"{run_span.trace_id}:")
            assert span.attributes["processor"] in span.span_id


class TestExports:
    def test_jsonl_round_trip_preserves_the_tiling(
        self, instrumented_run, ideal_grid
    ):
        collector = instrumented_run.collector
        buffer = instrumented_run.buffer
        spans = spans_from_jsonl(buffer.getvalue())
        assert len(spans) == len(collector.spans)
        by_job = {}
        for span in spans:
            if span.name in PHASES:
                job_id = span.attributes["job_id"]
                by_job[job_id] = by_job.get(job_id, 0.0) + span.duration
        for record in ideal_grid.completed_records():
            assert by_job[record.job_id] == pytest.approx(record.makespan, abs=1e-9)

    def test_chrome_trace_loads(self, instrumented_run):
        chrome = instrumented_run.chrome
        document = json.loads(chrome.to_json())
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        # every collected span surfaces either as a complete slice or,
        # when zero-duration (cache lookups), as an instant marker
        assert len(complete) + len(instants) == len(instrumented_run.collector.spans)
        zero = [s for s in instrumented_run.collector.spans if s.duration == 0.0]
        assert len(instants) == len(zero)
        assert all(e["s"] == "t" and "dur" not in e for e in instants)
        assert all(e["dur"] > 0 for e in complete)
        lanes = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M"
        }
        assert set(TIMINGS) <= lanes  # one lane per processor


class TestMetricsAndDrift:
    def test_metrics_snapshot_matches_the_run(self, instrumented_run, ideal_grid):
        result = instrumented_run.result
        metrics = result.metrics
        assert metrics is not None
        n_jobs = len(ideal_grid.completed_records())
        assert metrics.counter("grid.jobs.submitted") == n_jobs
        assert metrics.counter("grid.jobs.completed") == n_jobs
        assert metrics.counter("enactor.invocations") == result.invocation_count
        assert metrics.counter("cache.lookups.miss") == result.invocation_count
        assert metrics.gauge_peak("enactor.in_flight") >= 2  # DP overlapped
        assert metrics.histogram("grid.job.makespan").count == n_jobs

    def test_drift_is_zero_on_the_ideal_testbed(self, instrumented_run, ideal_grid):
        result = instrumented_run.result
        report = drift_report(
            result, records=ideal_grid.completed_records(), processors=CRITICAL_PATH
        )
        assert report.within(1e-9)
        assert report.predicted_makespan > 0

    def test_warm_rerun_hits_the_cache_and_submits_nothing(
        self, instrumented_run, ideal_grid
    ):
        run = instrumented_run
        app, bus, collector, cache, cold = run.app, run.bus, run.collector, run.cache, run.result
        jobs_before = len(ideal_grid.completed_records())
        warm = app.enact(
            OptimizationConfig.sp_dp().with_cache(),
            dataset=run.dataset,
            cache=cache,
            instrumentation=bus,
        )
        assert len(ideal_grid.completed_records()) == jobs_before
        assert warm.metrics.counter("cache.lookups.hit") == cold.invocation_count
        assert "grid.jobs.submitted" not in warm.metrics.counters
        # the two runs are distinct traces in the same span stream
        runs = collector.named("run")
        assert len(runs) == 2
        assert runs[0].trace_id != runs[1].trace_id
        hits = [s for s in collector.named("cache.lookup") if s.status == "hit"]
        assert len(hits) == cold.invocation_count
