"""Tests for the instrumentation bus, subscribers and exporters."""

import io
import json
import logging

from repro.observability.bus import (
    ChromeTraceExporter,
    InstrumentationBus,
    JsonlExporter,
    chrome_trace_json,
)
from repro.observability.logbridge import LoggingSubscriber, cli_logger, get_logger
from repro.observability.spans import spans_from_jsonl


class TestBus:
    def test_begin_end_notifies_subscribers(self):
        bus = InstrumentationBus()
        collector = bus.collector()
        span = bus.begin("run", "enactor", 0.0, trace_id="run-1:wf")
        assert len(collector) == 0  # only finished spans are collected
        bus.end(span, 10.0)
        assert collector.spans == [span]

    def test_record_emits_finished_span(self):
        bus = InstrumentationBus()
        collector = bus.collector()
        span = bus.record("job.queue", "grid", 2.0, 5.0, job_id=7)
        assert not span.open
        assert span.duration == 3.0
        assert collector.for_job(7) == [span]

    def test_ids_are_deterministic(self):
        assert [InstrumentationBus().next_span_id() for _ in range(1)] == ["s1"]
        bus = InstrumentationBus()
        assert [bus.next_span_id(), bus.next_span_id()] == ["s1", "s2"]
        assert bus.next_trace_id("wf") == "run-1:wf"
        assert bus.next_trace_id("wf") == "run-2:wf"

    def test_parent_propagates_trace_id(self):
        bus = InstrumentationBus()
        parent = bus.begin("run", "enactor", 0.0, trace_id="run-1:wf")
        child = bus.begin("grid.job", "grid", 1.0, parent=parent)
        assert child.parent_id == parent.span_id
        assert child.trace_id == "run-1:wf"


class TestInMemoryCollector:
    def _populate(self):
        bus = InstrumentationBus()
        collector = bus.collector()
        run = bus.begin("run", "enactor", 0.0, trace_id="run-1:wf")
        job = bus.record("grid.job", "grid", 1.0, 9.0, parent=run, job_id=1)
        bus.record("job.queue", "grid", 2.0, 4.0, parent=job, job_id=1)
        bus.record("invocation", "enactor", 1.0, 9.0, parent=run, job_ids=[1])
        bus.end(run, 10.0)
        return collector, run, job

    def test_named_and_category(self):
        collector, run, job = self._populate()
        assert [s.name for s in collector.named("grid.job")] == ["grid.job"]
        assert {s.name for s in collector.category("grid")} == {"grid.job", "job.queue"}

    def test_for_job_joins_both_layers(self):
        collector, run, job = self._populate()
        names = {s.name for s in collector.for_job(1)}
        assert names == {"grid.job", "job.queue", "invocation"}

    def test_children_of(self):
        collector, run, job = self._populate()
        assert {s.name for s in collector.children_of(run)} == {"grid.job", "invocation"}
        assert [s.name for s in collector.children_of(job)] == ["job.queue"]

    def test_clear(self):
        collector, _, _ = self._populate()
        collector.clear()
        assert len(collector) == 0


class TestJsonlExporter:
    def test_streams_to_file_like(self):
        buffer = io.StringIO()
        bus = InstrumentationBus(subscribers=[JsonlExporter(buffer)])
        bus.record("job.run", "grid", 0.0, 5.0, job_id=3)
        bus.record("job.run", "grid", 5.0, 9.0, job_id=4)
        spans = spans_from_jsonl(buffer.getvalue())
        assert [s.attributes["job_id"] for s in spans] == [3, 4]

    def test_writes_path_and_counts_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        exporter = JsonlExporter(path)
        bus = InstrumentationBus(subscribers=[exporter])
        bus.record("job.run", "grid", 0.0, 5.0)
        exporter.close()
        assert exporter.lines_written == 1
        assert len(spans_from_jsonl(path.read_text())) == 1

    def test_every_line_flushed_mid_run(self, tmp_path):
        # the trace on disk must be a readable JSONL prefix while the
        # run is still going (tail -f, live monitor replay) — not an
        # empty OS buffer that only materializes at close()
        path = tmp_path / "run.jsonl"
        exporter = JsonlExporter(path)
        bus = InstrumentationBus(subscribers=[exporter])
        bus.record("job.run", "grid", 0.0, 5.0, job_id=1)
        mid_run = spans_from_jsonl(path.read_text())
        assert [s.attributes["job_id"] for s in mid_run] == [1]
        bus.record("job.run", "grid", 5.0, 9.0, job_id=2)
        assert len(spans_from_jsonl(path.read_text())) == 2
        exporter.close()

    def test_context_manager_closes_owned_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlExporter(path) as exporter:
            bus = InstrumentationBus(subscribers=[exporter])
            bus.record("job.run", "grid", 0.0, 5.0)
        assert exporter._file is None  # owned handle released
        assert len(spans_from_jsonl(path.read_text())) == 1

    def test_context_manager_leaves_borrowed_handle_open(self):
        buffer = io.StringIO()
        with JsonlExporter(buffer) as exporter:
            bus = InstrumentationBus(subscribers=[exporter])
            bus.record("job.run", "grid", 0.0, 5.0)
        assert not buffer.closed
        assert len(spans_from_jsonl(buffer.getvalue())) == 1


class TestChromeTraceExporter:
    def _spans(self, bus):
        run = bus.begin("run", "enactor", 0.0, trace_id="run-1:wf")
        bus.record("invocation", "enactor", 0.0, 4.0, parent=run, processor="P1")
        bus.record("job.queue", "grid", 1.0, 2.0, parent=run, job_id=1)
        bus.end(run, 4.0)

    def test_document_structure(self):
        exporter = ChromeTraceExporter()
        bus = InstrumentationBus(subscribers=[exporter])
        self._spans(bus)
        document = json.loads(exporter.to_json())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        lanes = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 3
        # one lane per processor / grid category / enactor category
        assert {m["args"]["name"] for m in lanes} == {"P1", "grid jobs", "enactor"}
        invocation = next(e for e in complete if e["name"] == "invocation")
        assert invocation["ts"] == 0.0
        assert invocation["dur"] == 4.0 * 1e6  # microseconds
        assert invocation["args"]["processor"] == "P1"

    def test_write_and_one_shot_helper(self, tmp_path):
        exporter = ChromeTraceExporter()
        bus = InstrumentationBus(subscribers=[exporter])
        collector = bus.collector()
        self._spans(bus)
        path = tmp_path / "run.trace.json"
        exporter.write(path)
        assert json.loads(path.read_text())["traceEvents"]
        # the one-shot helper over collected spans produces the same events
        one_shot = json.loads(chrome_trace_json(collector.spans))
        assert len(one_shot["traceEvents"]) == len(
            json.loads(exporter.to_json())["traceEvents"]
        )


class TestLogBridge:
    def test_get_logger_nests_under_repro(self):
        assert get_logger("mymodule").name == "repro.mymodule"
        assert get_logger("repro.grid").name == "repro.grid"

    def test_library_root_has_null_handler(self):
        get_logger("anything")
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_cli_logger_writes_bare_messages_to_stdout(self, capsys):
        cli_logger().info("jobs: %d", 18)
        assert capsys.readouterr().out == "jobs: 18\n"

    def test_cli_logger_is_idempotent(self):
        logger = cli_logger()
        assert cli_logger() is logger
        assert len(logger.handlers) == 1

    def test_logging_subscriber_narrates_spans(self, caplog):
        logger = logging.getLogger("test.spanlog")
        bus = InstrumentationBus(
            subscribers=[LoggingSubscriber(logger, level=logging.INFO)]
        )
        with caplog.at_level(logging.INFO, logger="test.spanlog"):
            bus.record("job.queue", "grid", 2.0, 5.0, job_id=7)
            span = bus.begin("grid.job", "grid", 5.0)
            bus.end(span, 6.0, status="error")
        assert "job.queue" in caplog.records[0].getMessage()
        assert "job_id=7" in caplog.records[0].getMessage()
        assert caplog.records[1].levelno == logging.WARNING
