"""Chaos alert kinds: se-outage, replica-corruption, transfer-storm."""

import pytest

from repro.observability.alerts import ALERT_KINDS, Alert, AlertRules
from repro.observability.bus import InstrumentationBus
from repro.observability.monitor import RunMonitor


def attach_monitor(**kwargs):
    bus = InstrumentationBus()
    collector = bus.collector()
    monitor = RunMonitor.attach(bus, **kwargs)
    return bus, collector, monitor


class TestAlertKinds:
    def test_new_kinds_registered(self):
        for kind in ("se-outage", "replica-corruption", "transfer-storm"):
            assert kind in ALERT_KINDS

    def test_new_kinds_constructible(self):
        alert = Alert(kind="se-outage", time=10.0, subject="se0", scope="se")
        assert alert.kind == "se-outage"
        Alert(kind="replica-corruption", time=1.0, subject="se1", scope="se")
        Alert(kind="transfer-storm", time=2.0, subject="network", scope="run")

    def test_storm_rules_validated(self):
        with pytest.raises(ValueError):
            AlertRules(transfer_storm_count=0)
        with pytest.raises(ValueError):
            AlertRules(transfer_storm_window=-1.0)


class TestSeOutageAlerts:
    def test_outage_span_maps_to_alert(self):
        bus, _, monitor = attach_monitor()
        bus.record(
            "se.outage", "grid", 100.0, 100.0,
            se="se3", until=600.0, status="error",
        )
        alerts = monitor.alerts
        assert [a.kind for a in alerts] == ["se-outage"]
        assert alerts[0].subject == "se3"
        assert alerts[0].scope == "se"
        assert alerts[0].severity == "critical"
        assert monitor.alert_counts()["se-outage"] == 1

    def test_counter_lands_in_metrics(self):
        bus, _, monitor = attach_monitor()
        bus.record("se.outage", "grid", 0.0, 0.0, se="se0", until=10.0)
        assert bus.metrics.counter("monitor.alerts.se-outage").value == 1.0


class TestCorruptionAlerts:
    def test_corruption_span_maps_to_alert(self):
        bus, _, monitor = attach_monitor()
        bus.record(
            "replica.corruption", "grid", 50.0, 55.0,
            se="se1", gfn="gfn://x", status="error",
        )
        alerts = monitor.alerts
        assert [a.kind for a in alerts] == ["replica-corruption"]
        assert alerts[0].subject == "se1"
        assert alerts[0].attributes["gfn"] == "gfn://x"


class TestTransferStormAlerts:
    def _fault(self, bus, t):
        bus.record(
            "transfer.fault", "grid", t, t + 1.0,
            src="s0", dst="s1", gfn="gfn://x", status="error",
        )

    def test_storm_fires_at_threshold_once(self):
        bus, _, monitor = attach_monitor(
            rules=AlertRules(transfer_storm_count=3, transfer_storm_window=100.0)
        )
        for t in (0.0, 10.0):
            self._fault(bus, t)
        assert "transfer-storm" not in monitor.alert_counts()
        self._fault(bus, 20.0)
        assert monitor.alert_counts()["transfer-storm"] == 1
        # still inside the same storm: no re-fire
        self._fault(bus, 30.0)
        assert monitor.alert_counts()["transfer-storm"] == 1

    def test_storm_refires_after_window_drains(self):
        bus, _, monitor = attach_monitor(
            rules=AlertRules(transfer_storm_count=3, transfer_storm_window=100.0)
        )
        for t in (0.0, 10.0, 20.0):
            self._fault(bus, t)
        for t in (1000.0, 1010.0, 1020.0):
            self._fault(bus, t)
        assert monitor.alert_counts()["transfer-storm"] == 2

    def test_below_threshold_is_quiet(self):
        bus, _, monitor = attach_monitor(
            rules=AlertRules(transfer_storm_count=5, transfer_storm_window=50.0)
        )
        # spaced beyond the window: never 5 inside one window
        for t in (0.0, 100.0, 200.0, 300.0, 400.0, 500.0):
            self._fault(bus, t)
        assert "transfer-storm" not in monitor.alert_counts()


class TestChaoticRunGroundTruth:
    """Every scheduled SE outage alerts; healthy SEs never do."""

    def test_alerts_match_injected_outages_exactly(self):
        from repro.apps.bronze_standard import BronzeStandardApplication
        from repro.core import OptimizationConfig
        from repro.grid.testbeds import chaotic_testbed
        from repro.sim.engine import Engine
        from repro.util.rng import RandomStreams

        engine = Engine()
        streams = RandomStreams(seed=42)
        grid = chaotic_testbed(engine, streams)
        bus = InstrumentationBus()
        monitor = RunMonitor.attach(bus, expected_items=3)
        app = BronzeStandardApplication(engine, grid, streams)
        config = next(
            c
            for c in OptimizationConfig.paper_configurations()
            if c.label == "SP+DP"
        ).with_best_effort()
        result = app.enact(config, n_pairs=3, instrumentation=bus)

        ses = [s.storage_element for s in grid.sites if s.storage_element]
        outage_alerts = [a for a in monitor.alerts if a.kind == "se-outage"]
        alerted = {a.subject for a in outage_alerts}
        scheduled = {
            se.name
            for se in ses
            if any(
                start < result.makespan
                for subject in (se.name, se.site)
                for start, _ in grid.outages.down_windows(subject)
            )
        }
        # zero false positives AND full coverage of in-run windows
        assert alerted == scheduled
        expected_windows = sum(
            1
            for se in ses
            for subject in (se.name, se.site)
            for start, _ in grid.outages.down_windows(subject)
            if start < result.makespan
        )
        assert len(outage_alerts) == expected_windows
