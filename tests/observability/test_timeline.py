"""Tests for resource timelines and the ASCII Gantt renderer."""

import pytest

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core import OptimizationConfig
from repro.observability import InstrumentationBus
from repro.observability.spans import Span
from repro.observability.timeline import (
    busy_seconds,
    ce_queue_depth,
    ce_utilization,
    peak,
    render_gantt,
    step_function,
    time_average,
    utilization_table,
)


def job_span(name, ce, job_id, start, end):
    return Span(
        name=name, category="grid", span_id=f"{name}:{job_id}", trace_id="t",
        start=start, end=end, attributes={"ce": ce, "job_id": job_id},
    )


class TestStepFunctions:
    def test_step_function_counts_overlaps(self):
        profile = dict(step_function([(0.0, 10.0), (5.0, 15.0)]))
        assert profile[0.0] == 1
        assert profile[5.0] == 2
        assert profile[10.0] == 1
        assert profile[15.0] == 0

    def test_zero_duration_burst_is_visible(self):
        profile = step_function([(5.0, 5.0)])
        assert (5.0, 1) in profile
        assert profile[-1] == (5.0, 0)  # settles back to idle
        assert peak(profile) == 1

    def test_peak_empty(self):
        assert peak([]) == 0

    def test_time_average(self):
        profile = step_function([(0.0, 10.0), (5.0, 15.0)])
        # 1 for [0,5), 2 for [5,10), 1 for [10,15): mean 4/3 over [0,15]
        assert time_average(profile, 0.0, 15.0) == pytest.approx(4.0 / 3.0)
        assert time_average(profile, 0.0, 0.0) == 0.0

    def test_busy_seconds_merges_overlaps(self):
        assert busy_seconds([(20.0, 25.0), (0.0, 10.0), (5.0, 15.0)]) == 20.0
        assert busy_seconds([]) == 0.0


class TestPerCE:
    SPANS = [
        job_span("job.run", "ce-a", 1, 0.0, 10.0),
        job_span("job.run", "ce-a", 2, 5.0, 15.0),
        job_span("job.run", "ce-b", 3, 0.0, 4.0),
        job_span("job.queue", "ce-a", 2, 0.0, 5.0),
    ]

    def test_ce_utilization_groups_by_ce(self):
        profiles = ce_utilization(self.SPANS)
        assert set(profiles) == {"ce-a", "ce-b"}
        assert peak(profiles["ce-a"]) == 2
        assert peak(profiles["ce-b"]) == 1

    def test_ce_queue_depth(self):
        profiles = ce_queue_depth(self.SPANS)
        assert set(profiles) == {"ce-a"}
        assert peak(profiles["ce-a"]) == 1

    def test_utilization_table_rows(self):
        rows = {row["ce"]: row for row in utilization_table(self.SPANS)}
        assert rows["ce-a"]["jobs"] == 2
        assert rows["ce-a"]["peak_running"] == 2
        assert rows["ce-a"]["peak_queued"] == 1
        assert rows["ce-b"]["peak_queued"] == 0
        # without a run span the window is the stream envelope [0, 15]
        assert rows["ce-a"]["busy_fraction"] == pytest.approx(1.0)
        assert rows["ce-b"]["busy_fraction"] == pytest.approx(4.0 / 15.0)


class TestGantt:
    def test_render_empty(self):
        assert "no finished spans" in render_gantt([])

    def test_render_hand_built_lanes(self):
        text = render_gantt(self.run_spans(), width=20)
        assert "running jobs per CE" in text
        assert "queued jobs per CE" in text
        assert "ce-a" in text and "P1" in text

    def test_no_queue_lanes_when_disabled(self):
        text = render_gantt(self.run_spans(), width=20, include_queue=False)
        assert "queued jobs per CE" not in text

    @staticmethod
    def run_spans():
        run = Span(
            name="run", category="enactor", span_id="r", trace_id="t",
            start=0.0, end=20.0,
        )
        invocation = Span(
            name="invocation", category="enactor", span_id="i", trace_id="t",
            start=0.0, end=10.0, attributes={"processor": "P1", "label": "D0"},
        )
        return [run, invocation] + TestPerCE.SPANS

    def test_every_ce_of_a_real_run_gets_a_lane(self, engine, egee_grid, streams):
        app = BronzeStandardApplication(engine, egee_grid, streams)
        bus = InstrumentationBus()
        collector = bus.collector()
        app.enact(OptimizationConfig.sp_dp(), n_pairs=2, instrumentation=bus)
        spans = collector.spans
        text = render_gantt(spans, width=60)
        used = {
            str(s.attributes["ce"])
            for s in spans
            if s.name == "job.run" and "ce" in s.attributes
        }
        assert used  # the run did submit grid jobs
        for ce in used:
            assert ce in text
        for processor in ("crestLines", "crestMatch", "MultiTransfoTest"):
            assert processor in text
