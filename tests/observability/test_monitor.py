"""Tests for the live run monitor: progress, alerts, replay, feedback."""

import pytest

from repro.observability.alerts import AlertRules
from repro.observability.bus import InstrumentationBus
from repro.observability.monitor import HealthProvider, RunMonitor, ServiceProgress


def attach_monitor(**kwargs):
    bus = InstrumentationBus()
    collector = bus.collector()
    monitor = RunMonitor.attach(bus, **kwargs)
    return bus, collector, monitor


class TestProgress:
    def test_invocation_counting_and_in_flight(self):
        bus, _, monitor = attach_monitor(expected_items=3)
        span = bus.begin("invocation", "enactor", 0.0, processor="S", kind="invocation")
        progress = monitor.services["S"]
        assert progress.in_flight == 1 and progress.completed == 0
        bus.end(span, 10.0)
        assert progress.in_flight == 0 and progress.completed == 1
        assert progress.mean_seconds == 10.0
        assert monitor.completed_items() == 1
        assert monitor.expected_total() == 3
        assert monitor.completion_fraction() == pytest.approx(1 / 3)

    def test_synchronization_invocations_are_not_items(self):
        bus, _, monitor = attach_monitor()
        bus.record(
            "invocation", "enactor", 0.0, 5.0, processor="Sync", kind="synchronization"
        )
        assert monitor.completed_items() == 0

    def test_expected_items_mapping(self):
        _, _, monitor = attach_monitor(expected_items={"A": 2, "B": 4})
        assert monitor.expected_total() == 6
        assert monitor.services["A"].expected == 2

    def test_progress_line_and_ticks(self):
        lines = []
        bus, _, monitor = attach_monitor(
            expected_items=2, on_progress=lines.append, progress_every=1
        )
        bus.record("invocation", "enactor", 0.0, 4.0, processor="S", kind="invocation")
        assert len(lines) == 1
        assert "progress 1/2 (50%)" in lines[0]

    def test_service_progress_pending(self):
        progress = ServiceProgress(service="S", expected=5, started=3, completed=2)
        assert progress.pending == 2
        assert ServiceProgress(service="S").pending is None


class TestAlerts:
    def _fault(self, bus, t, ttf=10.0, ce="hole", job_id=1):
        bus.record(
            "job.fault", "grid", t, t + ttf, ce=ce, job_id=job_id, job_name="svc#1"
        )

    def test_fault_burst_fires_once_per_burst(self):
        bus, _, monitor = attach_monitor()
        for t in (0.0, 100.0, 200.0, 300.0):
            self._fault(bus, t)
        counts = monitor.alert_counts()
        assert counts["fault-burst"] == 1  # 3rd fault opens the burst, 4th is inside
        # after the window drains, a fresh burst alerts again
        for t in (5000.0, 5100.0, 5200.0):
            self._fault(bus, t)
        assert monitor.alert_counts()["fault-burst"] == 2

    def test_blackhole_alert_raises_once_on_transition(self):
        bus, _, monitor = attach_monitor()
        for t in (0.0, 10.0, 20.0, 30.0, 40.0):
            self._fault(bus, t, ttf=5.0)
        counts = monitor.alert_counts()
        assert counts["blackhole"] == 1
        assert monitor.flagged_ces() == ["hole"]
        burst = [a for a in monitor.alerts if a.kind == "blackhole"]
        assert burst[0].subject == "hole"
        assert burst[0].severity == "critical"

    def test_straggler_job_and_ce_alerts(self):
        bus, _, monitor = attach_monitor()
        for i in range(4):
            bus.record(
                "job.run", "grid", 0.0, 10.0,
                ce="ok", job_id=i, job_name=f"svc#{i}",
            )
        for i in range(4):
            bus.record(
                "job.run", "grid", 0.0, 10_000.0,
                ce="slow", job_id=100 + i, job_name=f"svc#{100 + i}",
            )
        job_scope = [
            a for a in monitor.alerts if a.kind == "straggler" and a.scope == "job"
        ]
        ce_scope = [
            a for a in monitor.alerts if a.kind == "straggler" and a.scope == "ce"
        ]
        assert job_scope  # individual jobs flagged against the fleet
        assert [a.subject for a in ce_scope] == ["slow"]  # CE flagged exactly once
        assert monitor.flagged_ces() == ["slow"]

    def test_queue_stall(self):
        bus, _, monitor = attach_monitor()
        bus.record("job.queue", "grid", 0.0, 4000.0, ce="ce0", job_id=7)
        stall = [a for a in monitor.alerts if a.kind == "queue-stall"]
        assert len(stall) == 1
        assert stall[0].subject == "job:7"

    def test_eta_blowout_fires_once(self):
        bus, _, monitor = attach_monitor(expected_items=10, policy="NOP")
        # mean 10s per item -> NOP model predicts 100s; two items done by
        # t=510 projects 2550s, far beyond 2x the model
        bus.record("invocation", "enactor", 0.0, 10.0, processor="S", kind="invocation")
        bus.record(
            "invocation", "enactor", 500.0, 510.0, processor="S", kind="invocation"
        )
        bus.record(
            "invocation", "enactor", 900.0, 910.0, processor="S", kind="invocation"
        )
        blowouts = [a for a in monitor.alerts if a.kind == "eta-blowout"]
        assert len(blowouts) == 1
        assert blowouts[0].scope == "run"

    def test_equal_timestamp_ordering_is_deterministic(self):
        bus, _, monitor = attach_monitor()
        # four faults all closing at t=10: the burst and blackhole alerts
        # share a timestamp, sequence numbers keep the order total
        for job in range(4):
            self._fault(bus, 0.0, ttf=10.0, job_id=job)
        ordered = monitor.sorted_alerts()
        assert [a.time for a in ordered] == [10.0, 10.0]
        assert [a.kind for a in ordered] == ["fault-burst", "blackhole"]
        assert [a.sequence for a in ordered] == [0, 1]

    def test_alert_counters_and_spans_on_the_bus(self):
        bus, collector, monitor = attach_monitor()
        for t in (0.0, 10.0, 20.0, 30.0):
            self._fault(bus, t)
        assert bus.metrics.counter("monitor.alerts.total").value == len(monitor.alerts)
        alert_spans = [s for s in collector.spans if s.category == "alert"]
        assert {s.name for s in alert_spans} == {"alert.fault-burst", "alert.blackhole"}

    def test_sinks_receive_alerts_in_emission_order(self):
        seen = []
        bus, _, monitor = attach_monitor()
        monitor.add_sink(seen.append)
        for t in (0.0, 10.0, 20.0):
            self._fault(bus, t)
        assert seen == monitor.alerts


class TestReplayInvariant:
    def test_synthetic_stream_replay_matches_live(self):
        bus, collector, live = attach_monitor(expected_items=10, policy="NOP")
        for i, t in enumerate((0.0, 10.0, 20.0, 30.0)):
            bus.record(
                "job.fault", "grid", t, t + 5.0, ce="hole", job_id=i, job_name="svc#1"
            )
        for i in range(4):
            bus.record(
                "job.run", "grid", 0.0, 10.0, ce="ok", job_id=50 + i,
                job_name=f"svc#{50 + i}",
            )
        bus.record("invocation", "enactor", 0.0, 10.0, processor="S", kind="invocation")
        # the collected stream includes the monitor's own alert spans;
        # replay must ignore them (no self-feedback) and still land on
        # the identical end state
        fresh = RunMonitor(expected_items=10, policy="NOP").replay(collector.spans)
        assert fresh.alerts == live.alerts
        assert fresh.health_table() == live.health_table()
        assert fresh.flagged_ces() == live.flagged_ces()
        assert fresh.completed_items() == live.completed_items()

    def test_faulty_run_replay_matches_live(self):
        from repro.apps.bronze_standard import BronzeStandardApplication
        from repro.core import OptimizationConfig
        from repro.grid.testbeds import faulty_testbed
        from repro.sim.engine import Engine
        from repro.util.rng import RandomStreams

        engine = Engine()
        streams = RandomStreams(seed=42)
        grid = faulty_testbed(engine, streams)
        bus = InstrumentationBus()
        collector = bus.collector()
        live = RunMonitor.attach(bus, expected_items=8, policy="SP+DP")
        app = BronzeStandardApplication(engine, grid, streams)
        config = next(
            c for c in OptimizationConfig.paper_configurations() if c.label == "SP+DP"
        )
        app.enact(config, n_pairs=8, instrumentation=bus)

        fresh = RunMonitor(expected_items=8, policy="SP+DP").replay(collector.spans)
        assert fresh.alerts == live.alerts
        assert fresh.health_table() == live.health_table()
        assert fresh.summary() == live.summary()
        # the injected pathologies -- and nothing else -- were flagged
        assert live.flagged_ces() == ["site01-ce", "site02-ce"]
        assert live.alert_counts()["blackhole"] == 1


class TestHealthProvider:
    def test_defaults_are_healthy(self):
        provider = HealthProvider()
        assert provider.penalty("any") == 0.0
        assert not provider.blacklisted("any")

    def test_unseen_ces_are_never_penalized(self):
        _, _, monitor = attach_monitor()
        assert monitor.penalty("never-observed") == 0.0
        assert not monitor.blacklisted("never-observed")
        # and asking must not pollute the health table
        assert monitor.health_table() == []

    def test_flagged_ce_is_blacklisted_and_penalized(self):
        bus, _, monitor = attach_monitor()
        for t in (0.0, 10.0, 20.0, 30.0):
            bus.record("job.fault", "grid", t, t + 5.0, ce="hole", job_id=1)
        assert monitor.blacklisted("hole")
        assert monitor.penalty("hole") == pytest.approx(RunMonitor.PENALTY_SCALE)


class TestSummary:
    def test_summary_is_json_plain(self):
        import json

        bus, _, monitor = attach_monitor(expected_items=2)
        bus.record("invocation", "enactor", 0.0, 5.0, processor="S", kind="invocation")
        summary = monitor.summary()
        assert summary["completed_items"] == 1
        assert json.loads(json.dumps(summary)) == summary

    def test_rules_flow_into_thresholds(self):
        monitor = RunMonitor(rules=AlertRules(min_samples=9))
        assert monitor.fleet.thresholds.min_samples == 9
