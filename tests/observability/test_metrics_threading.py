"""Threaded stress tests: the metrics registry must count exactly.

The enactment service folds telemetry from its worker thread while the
submitting thread reads snapshots; a racy counter would silently skew
the rollups the SLO tracker and Prometheus exporter build on.  These
tests hammer one registry from many threads and demand *exact* totals
— any lost update fails deterministically.
"""

import threading

from repro.observability.metrics import MetricsRegistry

THREADS = 8
ITERATIONS = 2_000


def _run_threads(target):
    workers = [
        threading.Thread(target=target, args=(index,)) for index in range(THREADS)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()


class TestThreadedCounters:
    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(THREADS)

        def work(_index):
            counter = registry.counter("shared")
            barrier.wait()
            for _ in range(ITERATIONS):
                counter.inc()

        _run_threads(work)
        assert registry.counter("shared").value == THREADS * ITERATIONS

    def test_concurrent_instrument_creation_yields_one_instance(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(THREADS)
        seen = []
        lock = threading.Lock()

        def work(_index):
            barrier.wait()
            counter = registry.counter("create-race")
            with lock:
                seen.append(counter)
            counter.inc()

        _run_threads(work)
        assert all(instance is seen[0] for instance in seen)
        assert registry.counter("create-race").value == THREADS


class TestThreadedGaugesAndHistograms:
    def test_gauge_deltas_balance(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(THREADS)

        def work(_index):
            gauge = registry.gauge("in_flight")
            barrier.wait()
            for _ in range(ITERATIONS):
                gauge.add(1)
                gauge.add(-1)

        _run_threads(work)
        assert registry.gauge("in_flight").value == 0.0
        # the high-water mark can be anything in [1, THREADS] but never more
        assert 1.0 <= registry.gauge("in_flight").high_water <= float(THREADS)

    def test_histogram_observation_count_and_total(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(THREADS)

        def work(index):
            histogram = registry.histogram("wait")
            barrier.wait()
            for _ in range(ITERATIONS):
                histogram.observe(float(index))

        _run_threads(work)
        snap = registry.snapshot().histogram("wait")
        assert snap.count == THREADS * ITERATIONS
        assert snap.total == sum(
            float(index) * ITERATIONS for index in range(THREADS)
        )

    def test_snapshot_under_concurrent_writes_is_consistent(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def writer():
            counter = registry.counter("writes")
            while not stop.is_set():
                counter.inc()

        workers = [threading.Thread(target=writer) for _ in range(4)]
        for worker in workers:
            worker.start()
        try:
            for _ in range(50):
                snap = registry.snapshot()
                # a snapshot is a frozen value, never a live view
                value = snap.counter("writes")
                assert value == snap.counter("writes")
        finally:
            stop.set()
            for worker in workers:
                worker.join()
        assert registry.counter("writes").value >= 0
