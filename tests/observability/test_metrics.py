"""Tests for the metrics registry and the snapshot-delta protocol."""

import pytest

from repro.observability.metrics import MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("jobs").inc(-1.0)

    def test_gauge_tracks_high_water(self):
        gauge = MetricsRegistry().gauge("in_flight")
        gauge.add(3)
        gauge.add(-2)
        gauge.add(4)
        assert gauge.value == 5.0
        assert gauge.high_water == 5.0
        gauge.set(1.0)
        assert gauge.high_water == 5.0

    def test_histogram_statistics(self):
        registry = MetricsRegistry()
        for value in (4.0, 1.0, 3.0, 2.0):
            registry.histogram("wait").observe(value)
        snap = registry.snapshot().histogram("wait")
        assert snap.count == 4
        assert snap.total == 10.0
        assert snap.mean == 2.5
        assert snap.minimum == 1.0
        assert snap.maximum == 4.0
        assert snap.percentile(0) == 1.0
        assert snap.percentile(100) == 4.0
        assert snap.percentile(50) == 3.0  # nearest-rank on [1,2,3,4]

    def test_create_on_first_use_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")


class TestSnapshotDelta:
    def test_since_subtracts_counters(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(5)
        baseline = registry.snapshot()
        registry.counter("jobs").inc(3)
        delta = registry.snapshot().since(baseline)
        assert delta.counter("jobs") == 3.0

    def test_since_drops_untouched_counters(self):
        registry = MetricsRegistry()
        registry.counter("cold").inc(5)
        baseline = registry.snapshot()
        registry.counter("warm").inc(1)
        delta = registry.snapshot().since(baseline)
        assert "cold" not in delta.counters
        assert delta.counter("warm") == 1.0

    def test_since_slices_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("wait").observe(100.0)
        baseline = registry.snapshot()
        registry.histogram("wait").observe(2.0)
        registry.histogram("wait").observe(4.0)
        delta = registry.snapshot().since(baseline)
        hist = delta.histogram("wait")
        assert hist.count == 2
        assert hist.mean == 3.0
        assert hist.maximum == 4.0

    def test_snapshot_is_frozen_in_time(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc()
        snap = registry.snapshot()
        registry.counter("jobs").inc()
        assert snap.counter("jobs") == 1.0

    def test_missing_names_default(self):
        snap = MetricsRegistry().snapshot()
        assert snap.counter("nope") == 0.0
        assert snap.histogram("nope").count == 0
        assert snap.names() == ()
