"""Tests for the data-plane observability layer (collector, DOT, report)."""

import pytest

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core import OptimizationConfig
from repro.grid.storage import LogicalFile
from repro.grid.testbeds import egee_like_testbed, ideal_testbed
from repro.observability import InstrumentationBus
from repro.observability.dataflow import (
    DataFlowCollector,
    DotParseError,
    TransferRecord,
    bandwidth_profile,
    dataflow_dot,
    format_dataflow_report,
    link_activity,
    parse_dot,
    sample_profile,
    sparkline,
)
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams


def bronze_with_collector(label, pairs=2, seed=42):
    """One instrumented Bronze Standard run with the collector attached."""
    engine = Engine()
    streams = RandomStreams(seed=seed)
    grid = egee_like_testbed(
        engine, streams, n_sites=6, workers_per_ce=40, with_background_load=False
    )
    app = BronzeStandardApplication(engine, grid, streams)
    config = {c.label: c for c in OptimizationConfig.paper_configurations()}[label]
    bus = InstrumentationBus()
    collector = DataFlowCollector().attach(grid)
    bus.subscribe(collector)
    result = app.enact(config, n_pairs=pairs, instrumentation=bus)
    return collector, result


class TestCollectorAccounting:
    def test_ledger_matches_bus_counters_exactly(self):
        collector, result = bronze_with_collector("SP+DP")
        counters = result.metrics.counters
        assert collector.total_bytes == int(counters["bytes.peer_moved"])
        for (src, dst), amount in collector.link_bytes().items():
            assert amount == int(counters[f"bytes.link.{src}.{dst}"])

    def test_purpose_split_sums_to_total(self):
        collector, result = bronze_with_collector("SP+DP")
        purposes = collector.purpose_bytes()
        assert sum(purposes.values()) == collector.total_bytes
        # a non-grouped run stages intermediates site-to-site
        assert purposes.get("intermediate", 0) > 0
        assert purposes["stage-in"] > 0
        counters = result.metrics.counters
        for purpose, amount in purposes.items():
            key = f"bytes.{purpose.replace('-', '_')}"
            assert amount == int(counters[key])

    def test_every_transfer_attributed_to_a_service(self):
        collector, _result = bronze_with_collector("SP+DP")
        assert collector.records
        assert all(record.service for record in collector.records)
        assert all(record.gfn for record in collector.records)

    def test_bytes_are_integers(self):
        collector, _result = bronze_with_collector("SP+DP")
        assert all(isinstance(record.bytes, int) for record in collector.records)

    def test_enactor_moved_and_total_ledger(self):
        _collector, result = bronze_with_collector("SP+DP")
        counters = result.metrics.counters
        assert counters["bytes.enactor_moved"] > 0
        assert counters["bytes.total"] == pytest.approx(
            counters["bytes.peer_moved"] + counters["bytes.enactor_moved"]
        )

    def test_site_gauges_track_registrations(self):
        collector, result = bronze_with_collector("SP+DP")
        assert collector.site_occupancy
        assert sum(collector.site_replicas.values()) >= len(collector.site_occupancy)
        gauges = result.metrics.gauges
        for site, occupancy in collector.site_occupancy.items():
            assert gauges[f"grid.storage.occupancy.{site}"] == occupancy
            assert gauges[f"grid.storage.replicas.{site}"] == collector.site_replicas[site]

    def test_span_cross_check_tally_matches_purposes(self):
        collector, _result = bronze_with_collector("SP+DP")
        purposes = collector.purpose_bytes()
        staged_in = (
            purposes.get("stage-in", 0)
            + purposes.get("intermediate", 0)
            + purposes.get("cache-refill", 0)
        )
        assert collector.phase_bytes["stage_in"] == staged_in
        assert collector.phase_bytes["stage_out"] == purposes.get("stage-out", 0)


class TestPurposeClassification:
    def test_cache_refill_purpose(self):
        engine = Engine()
        grid = ideal_testbed(engine, RandomStreams(seed=1))
        collector = DataFlowCollector().attach(grid)
        site = grid.default_site.name
        grid.add_input_file(LogicalFile("gfn://warm", size=1024), cache_refill=True)
        grid.stage_in_time("gfn://warm", site)
        assert [r.purpose for r in collector.records] == ["cache-refill"]

    def test_minted_output_stages_in_as_intermediate(self):
        engine = Engine()
        grid = ideal_testbed(engine, RandomStreams(seed=1))
        collector = DataFlowCollector().attach(grid)
        site = grid.default_site.name
        produced = LogicalFile("gfn://minted", size=2048)
        grid.register_output(produced, site)
        grid.stage_in_time("gfn://minted", site)
        assert [r.purpose for r in collector.records] == ["intermediate"]

    def test_plain_input_stages_in_as_stage_in(self):
        engine = Engine()
        grid = ideal_testbed(engine, RandomStreams(seed=1))
        collector = DataFlowCollector().attach(grid)
        grid.add_input_file(LogicalFile("gfn://cold", size=512))
        grid.stage_in_time("gfn://cold", grid.default_site.name)
        assert [r.purpose for r in collector.records] == ["stage-in"]

    def test_stage_out_purpose(self):
        engine = Engine()
        grid = ideal_testbed(engine, RandomStreams(seed=1))
        collector = DataFlowCollector().attach(grid)
        grid.stage_out_time(
            LogicalFile("gfn://out", size=256), grid.default_site.name
        )
        assert [r.purpose for r in collector.records] == ["stage-out"]

    def test_unattributed_network_watch(self):
        from repro.grid.transfer import NetworkModel

        model = NetworkModel.instantaneous()
        collector = DataFlowCollector().watch_network(model)
        model.transfer_time("a", "b", 99)
        record = collector.records[0]
        assert record.purpose == "stage-in"
        assert record.service is None
        assert record.bytes == 99


class TestGroupingSavings:
    def test_grouping_moves_strictly_fewer_intermediate_bytes(self):
        sp_collector, sp_result = bronze_with_collector("SP")
        jg_collector, jg_result = bronze_with_collector("SP+DP+JG")
        sp_intermediate = sp_collector.purpose_bytes().get("intermediate", 0)
        jg_intermediate = jg_collector.purpose_bytes().get("intermediate", 0)
        assert jg_intermediate < sp_intermediate
        saved = jg_result.metrics.counters["bytes.intermediate_saved_by_grouping"]
        assert saved > 0
        assert sp_result.metrics.counters.get(
            "bytes.intermediate_saved_by_grouping", 0.0
        ) == 0.0

    def test_policies_differ_in_bytes_moved(self):
        """SP vs DP vs JG are quantitatively distinct on the data plane."""
        totals = {}
        for label in ("SP", "DP", "SP+DP+JG"):
            collector, _ = bronze_with_collector(label)
            totals[label] = collector.total_bytes
        assert totals["SP+DP+JG"] < totals["SP"]
        assert len(set(totals.values())) > 1


class TestDotExport:
    def test_round_trip_is_lossless(self):
        collector, _result = bronze_with_collector("SP+DP")
        parsed = parse_dot(dataflow_dot(collector))
        link_bytes = collector.link_bytes()
        counts = collector.link_transfer_counts()
        services = collector.link_service_bytes()
        assert len(parsed["edges"]) == len(link_bytes)
        for src, dst, attrs in parsed["edges"]:
            assert attrs["bytes"] == link_bytes[(src, dst)]
            assert attrs["transfers"] == counts[(src, dst)]
            assert attrs["services"] == services[(src, dst)]

    def test_same_seed_runs_export_identical_dot(self):
        first, _ = bronze_with_collector("SP+DP+JG", seed=7)
        second, _ = bronze_with_collector("SP+DP+JG", seed=7)
        assert dataflow_dot(first) == dataflow_dot(second)

    def test_parser_rejects_missing_trailing_newline(self):
        collector, _ = bronze_with_collector("SP")
        with pytest.raises(DotParseError):
            parse_dot(dataflow_dot(collector).rstrip("\n"))

    def test_parser_rejects_tampered_byte_count(self):
        collector, _ = bronze_with_collector("SP")
        text = dataflow_dot(collector)
        (link, total), *_rest = collector.link_bytes().items()
        with pytest.raises(DotParseError):
            parse_dot(text.replace(f'bytes="{total}"', 'bytes="many"', 1))

    def test_parser_rejects_breakdown_not_summing(self):
        text = (
            "digraph dataflow {\n"
            "  rankdir=LR;\n"
            '  "a" [shape=box];\n'
            '  "b" [shape=box];\n'
            '  "a" -> "b" [label="1.0 KiB", bytes="1024", transfers="1", '
            'services="svc=1"];\n'
            "}\n"
        )
        with pytest.raises(DotParseError, match="does not sum"):
            parse_dot(text)

    def test_parser_rejects_undeclared_site(self):
        text = (
            "digraph dataflow {\n"
            "  rankdir=LR;\n"
            '  "a" [shape=box];\n'
            '  "a" -> "ghost" [label="1 B", bytes="1", transfers="1", '
            'services="s=1"];\n'
            "}\n"
        )
        with pytest.raises(DotParseError, match="undeclared"):
            parse_dot(text)

    def test_parser_rejects_duplicate_edge(self):
        edge = (
            '  "a" -> "a" [label="1 B", bytes="1", transfers="1", services="s=1"];\n'
        )
        text = (
            "digraph dataflow {\n  rankdir=LR;\n"
            '  "a" [shape=box];\n' + edge + edge + "}\n"
        )
        with pytest.raises(DotParseError, match="duplicate edge"):
            parse_dot(text)


class TestReport:
    def test_report_contains_tables_and_sparklines(self):
        collector, result = bronze_with_collector("SP+DP+JG")
        counters = {k: float(v) for k, v in result.metrics.counters.items()}
        report = format_dataflow_report(collector, counters)
        assert "top links by bytes" in report
        assert "top services by bytes" in report
        assert "bytes by purpose:" in report
        assert "storage by site:" in report
        assert "enactor-moved" in report
        assert "|" in report  # sparkline frames

    def test_report_deterministic(self):
        first, result1 = bronze_with_collector("SP+DP", seed=3)
        second, result2 = bronze_with_collector("SP+DP", seed=3)
        c1 = {k: float(v) for k, v in result1.metrics.counters.items()}
        c2 = {k: float(v) for k, v in result2.metrics.counters.items()}
        assert format_dataflow_report(first, c1) == format_dataflow_report(second, c2)

    def test_empty_collector_renders(self):
        report = format_dataflow_report(DataFlowCollector())
        assert "0 transfers" in report


class TestTimelines:
    def records(self):
        return [
            TransferRecord(time=0.0, src="a", dst="b", gfn="g", bytes=100, seconds=10.0),
            TransferRecord(time=5.0, src="a", dst="b", gfn="g", bytes=50, seconds=5.0),
        ]

    def test_bandwidth_profile_is_a_step_function(self):
        profile = bandwidth_profile(self.records())
        # 10 B/s alone, then +10 B/s overlapping, then both drain to 0
        assert profile == [(0.0, 10.0), (5.0, 20.0), (10.0, 0.0)]

    def test_zero_duration_transfers_carry_no_rate(self):
        instant = [
            TransferRecord(time=1.0, src="a", dst="b", gfn="g", bytes=10, seconds=0.0)
        ]
        assert bandwidth_profile(instant) == []

    def test_link_activity_counts_in_flight_transfers(self):
        activity = link_activity(self.records())
        assert max(level for _, level in activity) == 2

    def test_sample_profile_integrates_exactly(self):
        profile = [(0.0, 10.0), (5.0, 20.0), (10.0, 0.0)]
        samples = sample_profile(profile, 0.0, 10.0, 2)
        assert samples == [pytest.approx(10.0), pytest.approx(20.0)]
        # one bucket = the time average over the whole window
        assert sample_profile(profile, 0.0, 10.0, 1) == [pytest.approx(15.0)]

    def test_sample_profile_validates_buckets(self):
        with pytest.raises(ValueError):
            sample_profile([], 0.0, 1.0, 0)

    def test_sparkline_maps_extremes(self):
        strip = sparkline([0.0, 5.0, 10.0], peak=10.0)
        assert len(strip) == 3
        assert strip[0] == " "
        assert strip[2] == "@"

    def test_sparkline_all_zero_is_blank(self):
        assert sparkline([0.0, 0.0]) == "  "
