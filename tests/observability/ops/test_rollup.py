"""Tests for per-tenant rollups: folding, invariants, replay == live."""

from repro.observability.ops.audit import AuditEvent
from repro.observability.ops.rollup import (
    ControlPlaneTelemetry,
    TenantRollup,
    rollups_from_records,
)
from repro.observability.spans import Span


_SPAN_IDS = iter(range(10_000))


def span(name, category, start, end, status="ok", **attributes):
    s = Span(
        name=name,
        category=category,
        span_id=f"s{next(_SPAN_IDS)}",
        trace_id="trace",
        start=start,
        attributes=attributes,
    )
    s.close(end, status=status)
    return s


def audit(kind, time, run_id, tenant, sequence, **attributes):
    return AuditEvent(
        kind=kind,
        time=time,
        run_id=run_id,
        tenant=tenant,
        sequence=sequence,
        attributes=attributes,
    )


def sample_spans():
    return [
        span("grid.job", "grid", 0.0, 30.0, tenant="alice", run="svc-0001"),
        span("job.queue", "grid", 0.0, 10.0, tenant="alice", run="svc-0001"),
        span("job.run", "grid", 10.0, 30.0, tenant="alice", run="svc-0001"),
        span(
            "invocation", "enactor", 0.0, 30.0,
            tenant="alice", run="svc-0001", kind="invocation",
        ),
        span(
            "grid.job", "grid", 5.0, 40.0,
            status="error", tenant="bob", run="svc-0002",
        ),
        span("job.queue", "grid", 5.0, 25.0, tenant="bob", run="svc-0002"),
        span(
            "invocation", "enactor", 5.0, 40.0,
            tenant="bob", run="svc-0002", kind="cached",
        ),
        # a span with no tenant tag lands in the untagged bucket
        span("grid.job", "grid", 0.0, 1.0),
    ]


def sample_audit():
    return [
        audit("submit", 0.0, "svc-0001", "alice", 1, weight=2.0, n_items=1),
        audit("submit", 0.0, "svc-0002", "bob", 2, weight=1.0, n_items=1),
        audit(
            "admit", 1.0, "svc-0001", "alice", 3,
            wait=1.0, usage={"alice": 0.0, "bob": 0.0},
        ),
        audit("quota-block", 1.0, "svc-0002", "bob", 4),
        audit("admit", 2.0, "svc-0002", "bob", 5, wait=2.0, usage={"bob": 0.5}),
        audit(
            "finish", 30.0, "svc-0001", "alice", 6,
            state="done", makespan=29.0, usage=30.0,
        ),
        audit("finish", 40.0, "svc-0002", "bob", 7, state="failed"),
    ]


class TestFolding:
    def fed(self):
        telemetry = ControlPlaneTelemetry()
        telemetry.replay(sample_spans())
        telemetry.replay_audit(sample_audit())
        return telemetry

    def test_span_side_counters(self):
        telemetry = self.fed()
        alice = telemetry.tenant("alice")
        assert alice.jobs_started == 1
        assert alice.jobs_completed == 1
        assert alice.jobs_failed == 0
        assert alice.cpu_seconds == 20.0
        assert alice.grid_queue_waits == [10.0]
        assert alice.invocations == 1
        bob = telemetry.tenant("bob")
        assert bob.jobs_failed == 1
        assert bob.jobs_completed == 0
        assert bob.invocations == 1  # "cached" counts as a processed item
        untagged = telemetry.tenant(ControlPlaneTelemetry.UNTAGGED)
        assert untagged.jobs_started == 1

    def test_audit_side_state_machine(self):
        telemetry = self.fed()
        alice = telemetry.tenant("alice")
        assert alice.submitted == 1
        assert alice.done == 1 and alice.failed == 0
        assert alice.queued == 0 and alice.running == 0
        assert alice.weight == 2.0
        assert alice.admission_waits == [1.0]
        assert alice.makespans == [29.0]
        assert alice.usage == 30.0  # finish-time usage wins
        bob = telemetry.tenant("bob")
        assert bob.failed == 1 and bob.done == 0
        assert bob.quota_blocks == 1
        assert bob.usage == 0.5

    def test_success_rate_and_p95(self):
        telemetry = self.fed()
        assert telemetry.tenant("alice").success_rate == 1.0
        assert telemetry.tenant("bob").success_rate == 0.0
        assert telemetry.totals().success_rate == 0.5
        assert telemetry.tenant("alice").queue_wait_p95() == 1.0
        assert TenantRollup(tenant="x").success_rate is None
        assert TenantRollup(tenant="x").queue_wait_p95() == 0.0

    def test_per_tenant_sums_equal_global_totals(self):
        telemetry = self.fed()
        totals = telemetry.totals()
        rollups = telemetry.rollups()
        for attribute in (
            "submitted", "done", "failed", "cancelled", "recovered",
            "quota_blocks", "invocations", "jobs_started", "jobs_completed",
            "jobs_failed", "cpu_seconds", "queued", "running",
        ):
            assert sum(getattr(r, attribute) for r in rollups) == getattr(
                totals, attribute
            ), attribute
        assert sorted(
            w for r in rollups for w in r.admission_waits
        ) == sorted(totals.admission_waits)

    def test_replay_matches_live_snapshot(self):
        live = ControlPlaneTelemetry()
        # interleave the two streams the way the service would
        events = sample_audit()
        spans = sample_spans()
        live.on_audit(events[0])
        live.on_audit(events[1])
        live.on_audit(events[2])
        for s in spans[:4]:
            live.on_start(s)
            live.on_end(s)
        for e in events[3:5]:
            live.on_audit(e)
        for s in spans[4:]:
            live.on_start(s)
            live.on_end(s)
        for e in events[5:]:
            live.on_audit(e)

        replayed = ControlPlaneTelemetry()
        replayed.replay(spans)
        replayed.replay_audit(events)
        assert replayed.snapshot() == live.snapshot()


class TestRollupsFromRecords:
    class Record:
        class _State:
            def __init__(self, value):
                self.value = value

        def __init__(self, tenant, state, submitted_at=0.0, started_at=None,
                     result=None):
            self.tenant = tenant
            self.state = self._State(state)
            self.submitted_at = submitted_at
            self.started_at = started_at
            self.result = result or {}

    def test_records_fold_into_rollups(self):
        records = [
            self.Record(
                "alice", "done", submitted_at=0.0, started_at=4.0,
                result={"grid_jobs": 6, "invocations": 9, "makespan": 80.0},
            ),
            self.Record("alice", "queued"),
            self.Record("bob", "running", submitted_at=1.0, started_at=2.0),
            self.Record("bob", "failed", submitted_at=0.0, started_at=0.0),
        ]
        rollups = rollups_from_records(
            records, weights={"alice": 2.0}, usage={"alice": 12.0}
        )
        assert [r.tenant for r in rollups] == ["alice", "bob"]
        alice, bob = rollups
        assert alice.submitted == 2 and alice.done == 1 and alice.queued == 1
        assert alice.admission_waits == [4.0]
        assert alice.jobs_completed == 6
        assert alice.invocations == 9
        assert alice.makespans == [80.0]
        assert alice.weight == 2.0 and alice.usage == 12.0
        assert bob.running == 1 and bob.failed == 1
        assert bob.admission_waits == [1.0, 0.0]

    def test_empty_records_yield_no_rollups(self):
        assert rollups_from_records([]) == []


class TestDataPlaneBytes:
    def test_stage_spans_fold_into_byte_totals(self):
        telemetry = ControlPlaneTelemetry()
        telemetry.replay([
            span("job.stage_in", "grid", 0.0, 1.0, tenant="alice", bytes=1024),
            span("job.stage_in", "grid", 1.0, 2.0, tenant="alice", bytes=512),
            span("job.stage_out", "grid", 2.0, 3.0, tenant="bob", bytes=256),
        ])
        assert telemetry.tenant("alice").bytes_in == 1536
        assert telemetry.tenant("alice").bytes_out == 0
        assert telemetry.tenant("bob").bytes_out == 256
        # per-tenant sums equal the independently accumulated global
        assert telemetry.totals().bytes_in == 1536
        assert telemetry.totals().bytes_out == 256

    def test_untagged_stage_spans_land_in_the_untagged_bucket(self):
        telemetry = ControlPlaneTelemetry()
        telemetry.replay([span("job.stage_in", "grid", 0.0, 1.0, bytes=64)])
        assert telemetry.tenant(ControlPlaneTelemetry.UNTAGGED).bytes_in == 64
        assert telemetry.totals().bytes_in == 64

    def test_bytes_serialize_in_to_dict(self):
        rollup = TenantRollup(tenant="t", bytes_in=10, bytes_out=20)
        payload = rollup.to_dict()
        assert payload["bytes_in"] == 10
        assert payload["bytes_out"] == 20
