"""Tests for SLO declaration, burn-rate math and alert emission."""

import pytest

from repro.observability.bus import InstrumentationBus
from repro.observability.ops.rollup import ControlPlaneTelemetry
from repro.observability.ops.slo import (
    SLO,
    SLO_KINDS,
    SLOTracker,
    default_slos,
    parse_slo,
)


def telemetry_with(tenant="alice", waits=(), done=0, failed=0, weight=1.0,
                   usage=0.0, extra=None):
    telemetry = ControlPlaneTelemetry()
    rollup = telemetry.tenant(tenant)
    rollup.weight = weight
    rollup.usage = usage
    rollup.admission_waits.extend(waits)
    rollup.done = done
    rollup.failed = failed
    for name, (other_weight, other_usage) in (extra or {}).items():
        other = telemetry.tenant(name)
        other.weight = other_weight
        other.usage = other_usage
    return telemetry


class TestDeclarations:
    def test_kinds_are_validated(self):
        with pytest.raises(ValueError):
            SLO(name="x", kind="latency", objective=1.0)
        for kind in SLO_KINDS:
            objective = 0.9 if kind == "success-rate" else 100.0
            assert SLO(name="x", kind=kind, objective=objective).kind == kind

    def test_objective_ranges(self):
        with pytest.raises(ValueError):
            SLO(name="x", kind="success-rate", objective=1.5)
        with pytest.raises(ValueError):
            SLO(name="x", kind="queue-wait", objective=0.0)
        with pytest.raises(ValueError):
            SLO(name="x", kind="queue-wait", objective=10.0, burn_threshold=0.0)

    def test_default_slos_cover_every_kind(self):
        assert sorted(s.kind for s in default_slos()) == sorted(SLO_KINDS)

    def test_parse_slo(self):
        slo = parse_slo("queue-wait=900")
        assert slo.kind == "queue-wait"
        assert slo.objective == 900.0
        assert slo.burn_threshold == 2.0
        slo = parse_slo("success-rate=0.95:1.5")
        assert slo.objective == 0.95
        assert slo.burn_threshold == 1.5
        for bad in ("queue-wait", "queue-wait=", "queue-wait=abc", "=5"):
            with pytest.raises(ValueError):
                parse_slo(bad)


class TestBurnMath:
    def test_queue_wait_burn_is_p95_over_objective(self):
        telemetry = telemetry_with(waits=[10.0] * 19 + [100.0])
        tracker = SLOTracker(
            slos=[SLO(name="qw", kind="queue-wait", objective=50.0)],
            telemetry=telemetry,
        )
        (status,) = tracker.statuses()
        assert status.value == telemetry.tenant("alice").queue_wait_p95()
        assert status.burn_rate == pytest.approx(status.value / 50.0)
        assert status.samples == 20

    def test_success_rate_burn_scales_with_error_budget(self):
        # 80% success against a 90% objective: errors at 2x budget
        telemetry = telemetry_with(done=8, failed=2)
        tracker = SLOTracker(
            slos=[SLO(name="sr", kind="success-rate", objective=0.9)],
            telemetry=telemetry,
        )
        (status,) = tracker.statuses()
        assert status.value == pytest.approx(0.8)
        assert status.burn_rate == pytest.approx(2.0)
        assert status.breached

    def test_success_rate_skipped_before_any_finish(self):
        tracker = SLOTracker(
            slos=[SLO(name="sr", kind="success-rate", objective=0.9)],
            telemetry=telemetry_with(),
        )
        assert tracker.statuses() == []

    def test_share_deviation_burn(self):
        # equal weights but alice holds 90% of usage: deviation 0.4
        telemetry = telemetry_with(
            done=2, usage=9.0, extra={"bob": (1.0, 1.0)}
        )
        tracker = SLOTracker(
            slos=[SLO(name="fs", kind="share-deviation", objective=0.2)],
            telemetry=telemetry,
        )
        alice, bob = sorted(tracker.statuses(), key=lambda s: s.tenant)
        assert alice.value == pytest.approx(0.4)
        assert alice.burn_rate == pytest.approx(2.0)
        assert bob.value == pytest.approx(0.4)

    def test_min_samples_gates_breach(self):
        telemetry = telemetry_with(done=1, failed=1)  # 50% success, 2 samples
        tracker = SLOTracker(
            slos=[
                SLO(name="sr", kind="success-rate", objective=0.9, min_samples=3)
            ],
            telemetry=telemetry,
        )
        (status,) = tracker.statuses()
        assert status.burn_rate > 2.0
        assert not status.breached  # needs 3 finished runs first

    def test_tenant_scoped_slo_only_evaluates_that_tenant(self):
        telemetry = telemetry_with(done=1, extra={"bob": (1.0, 0.0)})
        telemetry.tenant("bob").done = 1
        tracker = SLOTracker(
            slos=[
                SLO(name="sr", kind="success-rate", objective=0.9, tenant="bob")
            ],
            telemetry=telemetry,
        )
        statuses = tracker.statuses()
        assert [s.tenant for s in statuses] == ["bob"]


class TestAlerting:
    def breached_tracker(self, sinks=None, bus=None):
        telemetry = telemetry_with(done=0, failed=3)
        return SLOTracker(
            slos=[SLO(name="sr", kind="success-rate", objective=0.9,
                      min_samples=3)],
            telemetry=telemetry,
            bus=bus,
            alert_sinks=sinks,
        ), telemetry

    def test_fires_once_per_transition_and_rearms(self):
        tracker, telemetry = self.breached_tracker()
        assert len(tracker.update(time=10.0)) == 1
        assert tracker.update(time=20.0) == []  # still burning: no re-fire
        # recovery: flood the tenant with successes
        telemetry.tenant("alice").done = 100
        assert tracker.update(time=30.0) == []
        # breach again: re-armed, fires again
        telemetry.tenant("alice").done = 0
        assert len(tracker.update(time=40.0)) == 1
        assert len(tracker.alerts) == 2

    def test_alert_shape_and_sinks(self):
        seen = []
        tracker, _ = self.breached_tracker(sinks=[seen.append])
        (alert,) = tracker.update(time=10.0)
        assert seen == [alert]
        assert alert.kind == "slo-burn"
        assert alert.scope == "service"
        assert alert.subject == "sr/alice"
        assert alert.attributes["kind"] == "success-rate"
        assert alert.severity == "critical"  # burn 10x >= 2 * threshold

    def test_bus_counters_and_span_for_compare_runs_gate(self):
        bus = InstrumentationBus()
        collector = bus.collector()
        tracker, _ = self.breached_tracker(bus=bus)
        tracker.update(time=10.0)
        snap = bus.metrics.snapshot()
        assert snap.counter("monitor.alerts.total") == 1.0
        assert snap.counter("monitor.alerts.slo-burn") == 1.0
        (span,) = collector.named("alert.slo-burn")
        assert span.attributes["subject"] == "sr/alice"
