"""Tests for the pure-string ops console frames."""

from repro.observability.alerts import Alert
from repro.observability.ops.console import CLEAR_SCREEN, render_top
from repro.observability.ops.rollup import TenantRollup
from repro.observability.ops.slo import SLOStatus


def make_rollup(tenant="alice", **overrides):
    rollup = TenantRollup(tenant=tenant, weight=2.0)
    rollup.submitted = 4
    rollup.queued = 1
    rollup.running = 1
    rollup.done = 2
    rollup.jobs_completed = 12
    rollup.cpu_seconds = 7200.0
    rollup.admission_waits.extend([5.0, 10.0, 20.0])
    rollup.makespans.append(120.0)
    rollup.usage = 3.0
    for key, value in overrides.items():
        setattr(rollup, key, value)
    return rollup


class TestRenderTop:
    def test_frame_contains_header_and_tenant_rows(self):
        frame = render_top(
            [make_rollup(), make_rollup(tenant="bob", usage=1.0)], now=120.0
        )
        assert frame.startswith("== enactment service :: t=120s ==")
        assert "TENANT" in frame and "WAITP95" in frame and "HEALTH" in frame
        lines = frame.splitlines()
        alice_row = next(line for line in lines if line.startswith("alice"))
        assert " 100%" in alice_row  # 2/2 done -> health
        assert "#" in alice_row  # usage bar has filled cells
        assert any(line.startswith("bob") for line in lines)

    def test_offline_frame_without_now(self):
        frame = render_top([make_rollup()])
        assert ":: offline ==" in frame

    def test_empty_store_still_renders(self):
        frame = render_top([])
        assert "(no tenants)" in frame
        assert frame.endswith("\n")

    def test_slo_section_marks_burning_objectives(self):
        ok = SLOStatus(
            slo="qw", kind="queue-wait", tenant="alice", value=10.0,
            objective=100.0, burn_rate=0.1, samples=3, breached=False,
        )
        burning = SLOStatus(
            slo="sr", kind="success-rate", tenant="bob", value=0.5,
            objective=0.9, burn_rate=5.0, samples=4, breached=True,
        )
        frame = render_top([make_rollup()], slo_statuses=[ok, burning])
        assert "[ ok ] qw" in frame
        assert "[BURN] sr" in frame
        assert "burn=5.00x (n=4)" in frame

    def test_alert_tail_shows_most_recent(self):
        alerts = [
            Alert(kind="slo-burn", time=float(i), subject=f"s{i}",
                  scope="service", severity="warning", message=f"m{i}",
                  sequence=i)
            for i in range(8)
        ]
        frame = render_top([make_rollup()], alerts=alerts, max_alerts=3)
        assert "Recent alerts (last 3):" in frame
        assert "s7: m7" in frame
        assert "s4: m4" not in frame

    def test_perf_line(self):
        frame = render_top(
            [make_rollup()], perf={"perf.events_per_sec": 9000.0}
        )
        assert "perf: perf.events_per_sec=9000.0" in frame

    def test_frames_are_deterministic(self):
        kwargs = dict(rollups=[make_rollup()], now=60.0)
        assert render_top(**kwargs) == render_top(**kwargs)

    def test_clear_screen_is_ansi(self):
        assert CLEAR_SCREEN.startswith("\x1b[")


class TestDataPlaneColumns:
    def test_byte_columns_render(self):
        frame = render_top([
            TenantRollup(tenant="alice", bytes_in=2 * 1024 * 1024, bytes_out=1024)
        ])
        assert "B-IN" in frame and "B-OUT" in frame
        assert "2.0 MiB" in frame
        assert "1.0 KiB" in frame

    def test_zero_bytes_render_as_dash(self):
        frame = render_top([TenantRollup(tenant="idle")])
        row = next(line for line in frame.splitlines() if line.startswith("idle"))
        assert " - " in row or row.endswith("-")
