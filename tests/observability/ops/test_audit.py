"""Tests for the audit event model, ordering and rendering."""

import pytest

from repro.observability.ops.audit import (
    AUDIT_KINDS,
    AuditError,
    AuditEvent,
    audit_events_from_jsonl,
    audit_events_to_jsonl,
    audit_sort_key,
    explain_run,
)


def make_event(**overrides):
    base = dict(
        kind="submit",
        time=10.0,
        run_id="svc-0001",
        tenant="alice",
        message="bronze x1 (SP+DP)",
        sequence=1,
        attributes={"n_items": 1, "config_label": "SP+DP", "seed": 1},
    )
    base.update(overrides)
    return AuditEvent(**base)


class TestModel:
    def test_every_declared_kind_constructs(self):
        for kind in AUDIT_KINDS:
            assert make_event(kind=kind).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(AuditError):
            make_event(kind="promoted")

    def test_sort_key_orders_by_time_then_sequence(self):
        events = [
            make_event(time=5.0, sequence=9),
            make_event(time=5.0, sequence=2),
            make_event(time=1.0, sequence=30),
        ]
        ordered = sorted(events, key=audit_sort_key)
        assert [(e.time, e.sequence) for e in ordered] == [
            (1.0, 30),
            (5.0, 2),
            (5.0, 9),
        ]

    def test_dict_round_trip(self):
        event = make_event(kind="finish", attributes={"state": "done", "makespan": 42.5})
        assert AuditEvent.from_dict(event.to_dict()) == event

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(AuditError):
            AuditEvent.from_dict({"kind": "submit"})  # missing time/run_id


class TestJsonl:
    def test_round_trip_preserves_events_and_order(self):
        events = [
            make_event(time=3.0, sequence=2, kind="admit"),
            make_event(time=1.0, sequence=1),
            make_event(time=3.0, sequence=3, kind="finish"),
        ]
        text = audit_events_to_jsonl(events)
        parsed = audit_events_from_jsonl(text)
        assert parsed == sorted(events, key=audit_sort_key)

    def test_serialization_is_deterministic(self):
        events = [make_event(sequence=i, time=float(i)) for i in range(5)]
        assert audit_events_to_jsonl(events) == audit_events_to_jsonl(
            list(reversed(events))
        )

    def test_blank_lines_ignored_bad_json_rejected(self):
        text = audit_events_to_jsonl([make_event()])
        assert audit_events_from_jsonl(text + "\n\n") == audit_events_from_jsonl(text)
        with pytest.raises(AuditError):
            audit_events_from_jsonl("not json")
        with pytest.raises(AuditError):
            audit_events_from_jsonl('{"no": "kind"}')


class TestExplainRun:
    def trail(self):
        return [
            make_event(time=0.0, sequence=1, run_id="svc-0001"),
            make_event(time=0.0, sequence=2, run_id="svc-0002", tenant="bob"),
            make_event(
                kind="admit",
                time=5.0,
                sequence=3,
                run_id="svc-0001",
                attributes={
                    "policy": "fair-share",
                    "wait": 5.0,
                    "scores": {"alice": 1.0, "bob": 2.0},
                    "eligible": ["svc-0001", "svc-0002"],
                    "blocked": [],
                },
            ),
            make_event(
                kind="quota-block",
                time=5.0,
                sequence=4,
                run_id="svc-0002",
                tenant="bob",
                message="tenant bob at max_concurrent_runs=1",
            ),
            make_event(
                kind="finish",
                time=90.0,
                sequence=5,
                run_id="svc-0001",
                attributes={"state": "done", "makespan": 85.0},
            ),
        ]

    def test_full_trail_renders_one_line_per_event(self):
        lines = explain_run(self.trail())
        assert len(lines) == 5
        assert "submit svc-0001" in lines[0]
        assert "scores[alice=1.0, bob=2.0]" in lines[2]
        assert "-> done" in lines[4]
        assert "makespan=85.0s" in lines[4]

    def test_run_filter_keeps_admits_that_mention_the_run(self):
        # svc-0002's trail: its own submit + quota-block, plus the
        # admit where it was in the eligible set (why it lost the pick)
        lines = explain_run(self.trail(), run_id="svc-0002")
        assert len(lines) == 3
        assert "submit svc-0002" in lines[0]
        assert "admit  svc-0001" in lines[1]
        assert "block  svc-0002" in lines[2]

    def test_run_filter_for_unmentioned_run_is_empty(self):
        assert explain_run(self.trail(), run_id="svc-9999") == []
