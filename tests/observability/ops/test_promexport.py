"""Tests for the Prometheus exporter, its strict parser, and the endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.observability.ops.promexport import (
    CONTENT_TYPE,
    MetricsHTTPServer,
    PromParseError,
    parse_prometheus,
    render_prometheus,
)
from repro.observability.ops.rollup import TenantRollup
from repro.observability.ops.slo import SLOStatus


def make_rollup(tenant="alice", **overrides):
    rollup = TenantRollup(tenant=tenant, weight=2.0)
    rollup.submitted = 3
    rollup.done = 2
    rollup.failed = 1
    rollup.jobs_completed = 12
    rollup.jobs_failed = 1
    rollup.invocations = 18
    rollup.cpu_seconds = 1234.5
    rollup.admission_waits.extend([1.0, 2.0, 3.0])
    rollup.usage = 42.0
    for key, value in overrides.items():
        setattr(rollup, key, value)
    return rollup


def sample(parsed, metric, **labels):
    for sample_name, sample_labels, value in parsed["samples"]:
        if sample_name == metric and all(
            sample_labels.get(k) == v for k, v in labels.items()
        ):
            return value
    raise AssertionError(f"no sample {metric} with {labels}")


class TestRender:
    def test_output_parses_cleanly_and_round_trips_values(self):
        totals = make_rollup(tenant="*")
        status = SLOStatus(
            slo="qw", kind="queue-wait", tenant="alice", value=3.0,
            objective=2.0, burn_rate=1.5, samples=3, breached=False,
        )
        registry = MetricsRegistry()
        registry.counter("grid.jobs.submitted").inc(13)
        registry.gauge("grid.slots.busy").set(4)
        text = render_prometheus(
            [make_rollup()],
            totals=totals,
            slo_statuses=[status],
            snapshot=registry.snapshot(),
            perf={"perf.events_per_sec": 9000.5},
        )
        parsed = parse_prometheus(text)
        assert parsed["families"]["repro_tenant_runs_submitted_total"] == "counter"
        assert parsed["families"]["repro_tenant_queue_wait_seconds"] == "summary"
        assert sample(parsed, "repro_tenant_runs_submitted_total", tenant="alice") == 3
        assert sample(parsed, "repro_tenant_runs_total", tenant="alice",
                      state="done") == 2
        assert sample(parsed, "repro_tenant_grid_jobs_total", tenant="*",
                      outcome="completed") == 12
        assert sample(parsed, "repro_tenant_queue_wait_seconds_count",
                      tenant="alice") == 3
        assert sample(parsed, "repro_tenant_queue_wait_seconds_sum",
                      tenant="alice") == 6.0
        assert sample(parsed, "repro_slo_burn_rate", slo="qw",
                      tenant="alice") == 1.5
        assert sample(parsed, "repro_bus_counter",
                      name="grid.jobs.submitted") == 13
        assert sample(parsed, "repro_bus_gauge", name="grid.slots.busy") == 4
        assert sample(parsed, "repro_service_perf",
                      name="perf.events_per_sec") == 9000.5

    def test_label_values_are_escaped(self):
        rollup = make_rollup(tenant='we"ird\\te\nnant')
        text = render_prometheus([rollup])
        parsed = parse_prometheus(text)
        assert sample(
            parsed, "repro_tenant_runs_submitted_total",
            tenant='we"ird\\te\nnant',
        ) == 3

    def test_empty_rollups_still_render_valid_text(self):
        parsed = parse_prometheus(render_prometheus([]))
        assert parsed["samples"] == []

    def test_ends_with_newline(self):
        assert render_prometheus([make_rollup()]).endswith("\n")


class TestStrictParser:
    def test_rejects_sample_without_type(self):
        with pytest.raises(PromParseError, match="no preceding TYPE"):
            parse_prometheus("orphan_metric 1\n")

    def test_rejects_missing_trailing_newline(self):
        with pytest.raises(PromParseError, match="newline"):
            parse_prometheus("# TYPE a counter\na 1")

    def test_rejects_duplicate_series(self):
        text = (
            "# TYPE a counter\n"
            'a{t="x"} 1\n'
            'a{t="x"} 2\n'
        )
        with pytest.raises(PromParseError, match="duplicate series"):
            parse_prometheus(text)

    def test_rejects_bad_metric_type(self):
        with pytest.raises(PromParseError, match="bad metric type"):
            parse_prometheus("# TYPE a thermometer\na 1\n")

    def test_rejects_bad_escape_and_unterminated_label(self):
        with pytest.raises(PromParseError, match="bad escape"):
            parse_prometheus('# TYPE a counter\na{t="\\x"} 1\n')
        with pytest.raises(PromParseError, match="unterminated"):
            parse_prometheus('# TYPE a counter\na{t="x} 1\n')

    def test_rejects_bad_value(self):
        with pytest.raises(PromParseError, match="bad sample value"):
            parse_prometheus("# TYPE a counter\na one\n")

    def test_sum_count_resolve_to_summary_family(self):
        text = (
            "# TYPE lat summary\n"
            'lat{quantile="0.5"} 1\n'
            "lat_sum 10\n"
            "lat_count 4\n"
        )
        parsed = parse_prometheus(text)
        assert len(parsed["samples"]) == 3

    def test_sum_suffix_on_counter_family_is_rejected(self):
        text = "# TYPE lat counter\nlat_sum 10\n"
        with pytest.raises(PromParseError, match="no preceding TYPE"):
            parse_prometheus(text)

    def test_empty_text_rejected(self):
        with pytest.raises(PromParseError):
            parse_prometheus("")


class TestHTTPEndpoint:
    def test_scrape_round_trip(self):
        text = render_prometheus([make_rollup()])
        with MetricsHTTPServer(lambda: text) as server:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
        assert body == text
        parse_prometheus(body)

    def test_unknown_path_is_404(self):
        with MetricsHTTPServer(lambda: "") as server:
            url = f"http://127.0.0.1:{server.port}/nope"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 404

    def test_supplier_called_per_scrape(self):
        calls = []

        def supplier():
            calls.append(1)
            return "# TYPE a counter\na %d\n" % len(calls)

        with MetricsHTTPServer(supplier) as server:
            url = f"http://127.0.0.1:{server.port}/metrics"
            first = urllib.request.urlopen(url, timeout=5).read()
            second = urllib.request.urlopen(url, timeout=5).read()
        assert first != second


class TestTenantBytesFamily:
    def test_bytes_exported_per_direction(self):
        rollup = TenantRollup(tenant="alice", bytes_in=2048, bytes_out=1024)
        text = render_prometheus([rollup])
        parsed = parse_prometheus(text)
        assert parsed["families"]["repro_tenant_bytes_total"] == "counter"
        samples = {
            (labels["tenant"], labels["direction"]): value
            for name, labels, value in parsed["samples"]
            if name == "repro_tenant_bytes_total"
        }
        assert samples[("alice", "in")] == 2048
        assert samples[("alice", "out")] == 1024
