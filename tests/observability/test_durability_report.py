"""DurabilityReport: construction, rendering, and the strict parser."""

import pytest

from repro.observability.durability import (
    DurabilityReport,
    DurabilityReportError,
    format_durability_report,
    parse_durability_report,
)


def sample_report(**overrides):
    fields = dict(
        expected_items=6,
        delivered_items=4,
        lost_items=2,
        repair_transfers=42,
        repair_bytes=90435584,
        transfer_failures=6,
        transfer_retries=6,
        outage_waits=3,
        replicas_lost=4,
        replicas_quarantined=0,
        se_outage_windows=5,
        alerts={"se-outage": 5, "replica-corruption": 0, "transfer-storm": 1},
    )
    fields.update(overrides)
    return DurabilityReport(**fields)


class TestConstruction:
    def test_partition_enforced(self):
        with pytest.raises(DurabilityReportError):
            sample_report(delivered_items=3)  # 3 + 2 != 6

    def test_unknown_alert_kind_rejected(self):
        with pytest.raises(DurabilityReportError):
            sample_report(alerts={"made-up": 1})

    def test_to_dict_round_trips_values(self):
        payload = sample_report().to_dict()
        assert payload["delivered_items"] == 4
        assert payload["alerts"]["se-outage"] == 5


class TestRoundTrip:
    def test_format_then_parse_is_identity(self):
        report = sample_report()
        assert parse_durability_report(format_durability_report(report)) == report

    def test_surrounding_noise_rejected(self):
        text = "prologue\n" + format_durability_report(sample_report())
        with pytest.raises(DurabilityReportError):
            parse_durability_report(text)


class TestStrictness:
    def test_missing_header(self):
        with pytest.raises(DurabilityReportError, match="header"):
            parse_durability_report("items delivered : 4")

    def test_missing_field(self):
        text = format_durability_report(sample_report())
        tampered = "\n".join(
            line for line in text.splitlines() if "repair bytes" not in line
        )
        with pytest.raises(DurabilityReportError, match="missing field"):
            parse_durability_report(tampered)

    def test_malformed_value(self):
        text = format_durability_report(sample_report())
        tampered = text.replace(": 42", ": forty-two")
        with pytest.raises(DurabilityReportError, match="malformed"):
            parse_durability_report(tampered)

    def test_unknown_field(self):
        text = format_durability_report(sample_report()) + "\nbogus rows : 1"
        with pytest.raises(DurabilityReportError, match="unknown field"):
            parse_durability_report(text)

    def test_inconsistent_partition_caught_at_parse(self):
        text = format_durability_report(sample_report())
        tampered = text.replace("items delivered           : 4",
                                "items delivered           : 5")
        with pytest.raises(DurabilityReportError):
            parse_durability_report(tampered)


class TestBuildFromRun:
    def test_built_from_chaotic_run(self):
        from repro.apps.bronze_standard import BronzeStandardApplication
        from repro.core import OptimizationConfig
        from repro.grid.testbeds import chaotic_testbed
        from repro.observability import InstrumentationBus
        from repro.observability.durability import build_durability_report
        from repro.sim.engine import Engine
        from repro.util.rng import RandomStreams

        engine = Engine()
        streams = RandomStreams(seed=42)
        grid = chaotic_testbed(engine, streams)
        bus = InstrumentationBus()
        app = BronzeStandardApplication(engine, grid, streams)
        config = next(
            c
            for c in OptimizationConfig.paper_configurations()
            if c.label == "SP+DP"
        ).with_best_effort()
        result = app.enact(config, n_pairs=3, instrumentation=bus)
        report = build_durability_report(result, n_items=3)
        assert report.expected_items == 3
        assert report.delivered_items + report.lost_items == 3
        assert report.repair_bytes > 0
        assert report.repair_transfers > 0
        # rendering a real run's report still round-trips strictly
        assert (
            parse_durability_report(format_durability_report(report)) == report
        )
