"""Concurrent writers against one run-history store.

The store allocates ``run-NNNN`` ids by scanning existing files, which
is only safe because :meth:`RunStore.append` serializes the
scan-allocate-write sequence under an advisory lock (thread lock +
``flock`` for other processes) and lands each file atomically via a
unique temp name + ``os.replace``.  This stress test is the regression
guard: racing appenders must never drop, duplicate, or torn-write a
summary.
"""

import threading

from repro.observability.runstore import RunStore, RunSummary


def summary(thread_id, iteration):
    return RunSummary(
        workflow="bronze-standard",
        policy="SP+DP",
        makespan=100.0 + thread_id,
        n_items=iteration,
        note=f"writer-{thread_id}-{iteration}",
    )


def test_racing_appenders_never_collide(tmp_path):
    store = RunStore(tmp_path / "runstore")
    threads_n, appends_n = 8, 5
    allocated = []
    errors = []

    def writer(thread_id):
        try:
            for iteration in range(appends_n):
                written = store.append(summary(thread_id, iteration))
                allocated.append(written.run_id)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(threads_n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    total = threads_n * appends_n
    # every append got its own id...
    assert len(allocated) == total
    assert len(set(allocated)) == total
    # ...every file landed and parses back whole (no torn writes)
    assert len(store) == total
    notes = {run.note for run in store.runs()}
    assert len(notes) == total


def test_two_store_instances_share_one_directory(tmp_path):
    # Same directory through two instances (as two processes would):
    # the flock path, not just the per-instance thread lock.
    first = RunStore(tmp_path / "runstore")
    second = RunStore(tmp_path / "runstore")
    ids = []

    def writer(store, thread_id):
        for iteration in range(10):
            ids.append(store.append(summary(thread_id, iteration)).run_id)

    threads = [
        threading.Thread(target=writer, args=(first, 0)),
        threading.Thread(target=writer, args=(second, 1)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(set(ids)) == 20
    assert len(first.runs()) == 20
