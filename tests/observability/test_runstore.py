"""Tests for the run-history store and the budgeted comparison."""

import json

import pytest

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core import OptimizationConfig
from repro.observability import InstrumentationBus
from repro.observability.runstore import (
    Budgets,
    RunStore,
    RunStoreError,
    RunSummary,
    compare,
    summarize_run,
)


def make_summary(**overrides):
    base = dict(
        workflow="bronze-standard",
        policy="SP+DP",
        makespan=100.0,
        n_items=4,
        seed=42,
        phase_totals={"execute": 70.0, "queue": 30.0},
        drift={"relative_error": 0.05},
        cache={"hit_rate": 0.9},
        counters={"grid.jobs.submitted": 24.0},
    )
    base.update(overrides)
    return RunSummary(**base)


class TestStore:
    def test_append_assigns_sequential_ids(self, tmp_path):
        store = RunStore(tmp_path / "store")
        assert store.append(make_summary()).run_id == "run-0001"
        assert store.append(make_summary()).run_id == "run-0002"
        assert store.run_ids() == ["run-0001", "run-0002"]
        assert len(store) == 2

    def test_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "store")
        written = store.append(make_summary(note="hello"))
        loaded = store.get(written.run_id)
        assert loaded == written

    def test_latest_and_policy_filter(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.append(make_summary(policy="NOP"))
        store.append(make_summary(policy="SP+DP"))
        store.append(make_summary(policy="NOP", makespan=90.0))
        assert store.latest().makespan == 90.0
        assert store.latest(policy="SP+DP").policy == "SP+DP"
        assert store.resolve("latest:NOP").makespan == 90.0

    def test_resolve_file_path(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(make_summary().to_dict()))
        loaded = RunStore(tmp_path / "store").resolve(str(path))
        assert loaded.makespan == 100.0

    def test_unknown_run_raises(self, tmp_path):
        store = RunStore(tmp_path / "store")
        with pytest.raises(RunStoreError, match="no runs"):
            store.latest()
        with pytest.raises(RunStoreError, match="no run"):
            store.get("run-0042")

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(RunStoreError, match="not JSON"):
            RunSummary.from_file(path)


class TestCompare:
    def test_identical_runs_are_ok(self):
        comparison = compare(make_summary(), make_summary())
        assert comparison.ok
        assert "makespan" in comparison.checked
        assert "phase.execute" in comparison.checked

    def test_inflated_candidate_is_flagged(self):
        candidate = make_summary(
            makespan=150.0, phase_totals={"execute": 105.0, "queue": 45.0}
        )
        comparison = compare(make_summary(), candidate)
        assert not comparison.ok
        metrics = {entry.metric for entry in comparison.regressions}
        assert {"makespan", "phase.execute", "phase.queue"} <= metrics

    def test_improvement_is_not_a_regression(self):
        candidate = make_summary(makespan=50.0)
        comparison = compare(make_summary(), candidate)
        assert comparison.ok
        assert any(e.metric == "makespan" for e in comparison.improvements)

    def test_policy_mismatch_raises(self):
        with pytest.raises(RunStoreError, match="cannot compare across policy"):
            compare(make_summary(), make_summary(policy="NOP"))

    def test_size_mismatch_raises(self):
        with pytest.raises(RunStoreError, match="input sizes"):
            compare(make_summary(), make_summary(n_items=8))

    def test_hit_rate_drop_is_a_regression(self):
        candidate = make_summary(cache={"hit_rate": 0.5})
        comparison = compare(make_summary(), candidate)
        assert any(
            e.metric == "cache.hit_rate" for e in comparison.regressions
        )

    def test_tiny_phases_are_noise(self):
        baseline = make_summary(phase_totals={"execute": 100.0, "stage_out": 0.01})
        candidate = make_summary(phase_totals={"execute": 100.0, "stage_out": 0.09})
        comparison = compare(baseline, candidate)  # 9x growth, but < 1s
        assert comparison.ok

    def test_budgets_are_tunable(self):
        candidate = make_summary(makespan=120.0)
        assert not compare(make_summary(), candidate).ok
        relaxed = compare(make_summary(), candidate, Budgets(makespan=0.5))
        assert relaxed.ok

    def test_extra_jobs_over_budget(self):
        candidate = make_summary(counters={"grid.jobs.submitted": 30.0})
        comparison = compare(make_summary(), candidate)
        assert any(
            e.metric == "counter.grid.jobs.submitted"
            for e in comparison.regressions
        )


class TestSummarizeRun:
    def test_summary_from_a_real_run(self, engine, egee_grid, streams, tmp_path):
        app = BronzeStandardApplication(engine, egee_grid, streams)
        bus = InstrumentationBus()
        collector = bus.collector()
        result = app.enact(
            OptimizationConfig.sp_dp(), n_pairs=2, instrumentation=bus
        )
        summary = summarize_run(
            result,
            spans=collector.spans,
            records=egee_grid.completed_records(),
            n_items=2,
            seed=1234,
            note="test",
        )
        assert summary.workflow == "bronze-standard"
        assert summary.policy == "SP+DP"
        assert summary.makespan == pytest.approx(result.makespan)
        assert sum(summary.phase_totals.values()) == pytest.approx(
            result.makespan, rel=1e-4
        )
        assert summary.counters["grid.jobs.submitted"] == 12.0
        assert summary.critical_path  # the gating services were recorded
        # round-trip through the store preserves everything
        store = RunStore(tmp_path / "store")
        store.append(summary)
        assert compare(store.latest(), summary).ok
        # the chaos/durability ledger is zero-filled on healthy runs, so
        # pre-chaos baselines and chaotic rows share one schema
        for key in (
            "bytes.repair",
            "grid.transfer.failures",
            "grid.transfer.retries",
            "grid.transfer.outage_waits",
            "grid.repair.transfers",
            "grid.replicas.lost",
            "grid.replicas.quarantined",
            "grid.se.outage_windows",
            "monitor.alerts.se-outage",
            "monitor.alerts.replica-corruption",
            "monitor.alerts.transfer-storm",
        ):
            assert summary.counters[key] == 0.0


class TestThroughputGate:
    def perf_summary(self, events_per_sec=10_000.0, us_per_invocation=50.0):
        return make_summary(
            counters={
                "grid.jobs.submitted": 24.0,
                "perf.events_per_sec": events_per_sec,
                "perf.us_per_invocation": us_per_invocation,
            }
        )

    def test_gate_is_off_by_default(self):
        slow = self.perf_summary(events_per_sec=10.0, us_per_invocation=5000.0)
        comparison = compare(self.perf_summary(), slow)
        assert comparison.ok
        assert not any("perf." in metric for metric in comparison.checked)

    def test_events_per_sec_drop_trips_the_gate(self):
        slow = self.perf_summary(events_per_sec=5_000.0)
        comparison = compare(self.perf_summary(), slow, Budgets(throughput=0.2))
        assert not comparison.ok
        assert any(
            e.metric == "counter.perf.events_per_sec"
            for e in comparison.regressions
        )

    def test_events_per_sec_gain_counts_as_improvement(self):
        fast = self.perf_summary(events_per_sec=20_000.0)
        comparison = compare(self.perf_summary(), fast, Budgets(throughput=0.2))
        assert comparison.ok
        assert any(
            e.metric == "counter.perf.events_per_sec"
            for e in comparison.improvements
        )

    def test_us_per_invocation_growth_trips_the_gate(self):
        slow = self.perf_summary(us_per_invocation=100.0)
        comparison = compare(self.perf_summary(), slow, Budgets(throughput=0.2))
        assert not comparison.ok
        assert any(
            e.metric == "counter.perf.us_per_invocation"
            for e in comparison.regressions
        )

    def test_within_budget_passes(self):
        close = self.perf_summary(
            events_per_sec=9_500.0, us_per_invocation=52.0
        )
        comparison = compare(self.perf_summary(), close, Budgets(throughput=0.2))
        assert comparison.ok
        assert "counter.perf.events_per_sec" in comparison.checked
        assert "counter.perf.us_per_invocation" in comparison.checked

    def test_gate_skips_runs_without_perf_counters(self):
        bare = make_summary()
        comparison = compare(bare, bare, Budgets(throughput=0.2))
        assert comparison.ok
        assert not any("perf." in metric for metric in comparison.checked)
