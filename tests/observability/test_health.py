"""Tests for the rolling robust health statistics."""

import math

import pytest

from repro.observability.health import (
    MAD_SCALE,
    MEAN_AD_SCALE,
    FleetHealth,
    HealthThresholds,
    RollingSample,
    robust_stats,
    robust_z,
)


class TestRobustStats:
    def test_median_and_mad(self):
        stats = robust_stats([1.0, 2.0, 3.0, 4.0, 100.0])
        assert stats.median == 3.0
        assert stats.mad == 1.0  # deviations 2,1,0,1,97 -> median 1
        assert stats.scale == pytest.approx(MAD_SCALE)

    def test_even_sample_interpolates_median(self):
        assert robust_stats([1.0, 3.0]).median == 2.0

    def test_mad_zero_falls_back_to_mean_ad(self):
        # more than half the sample on the median: MAD degenerates, but
        # the spread is real and must yield a usable scale
        values = [5.0, 5.0, 5.0, 5.0, 100.0]
        stats = robust_stats(values)
        assert stats.mad == 0.0
        mean_ad = 95.0 / 5
        assert stats.scale == pytest.approx(MEAN_AD_SCALE * mean_ad)

    def test_constant_sample_has_zero_scale(self):
        stats = robust_stats([7.0, 7.0, 7.0])
        assert stats.mad == 0.0
        assert stats.scale == 0.0

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError, match="empty"):
            robust_stats([])


class TestRobustZ:
    def test_normal_scale(self):
        stats = robust_stats([1.0, 2.0, 3.0, 4.0, 5.0])
        assert robust_z(3.0, stats) == 0.0
        assert robust_z(3.0 + MAD_SCALE, stats) == pytest.approx(1.0)

    def test_degenerate_scale_never_divides_by_zero(self):
        stats = robust_stats([7.0, 7.0, 7.0])
        assert robust_z(7.0, stats) == 0.0
        assert robust_z(8.0, stats) == math.inf
        assert robust_z(6.0, stats) == -math.inf


class TestRollingSample:
    def test_window_evicts_oldest(self):
        sample = RollingSample(maxlen=3)
        for v in (1.0, 2.0, 3.0, 4.0):
            sample.add(v)
        assert sample.values() == [2.0, 3.0, 4.0]
        assert len(sample) == 3

    def test_stats_cache_invalidated_by_add(self):
        sample = RollingSample()
        sample.add(1.0)
        assert sample.stats().median == 1.0
        sample.add(3.0)
        assert sample.stats().median == 2.0

    def test_maxlen_validated(self):
        with pytest.raises(ValueError):
            RollingSample(maxlen=0)


class TestHealthThresholds:
    def test_validation(self):
        with pytest.raises(ValueError):
            HealthThresholds(min_samples=0)
        with pytest.raises(ValueError):
            HealthThresholds(ce_straggler_fraction=0.0)
        with pytest.raises(ValueError):
            HealthThresholds(blackhole_fault_rate=1.5)


class TestFleetHealth:
    def test_single_sample_ce_scores_healthy(self):
        # one unlucky job can neither brand a blackhole nor a straggler
        fleet = FleetHealth()
        fleet.observe_fault("ce0", time_to_failure=1.0)
        health = fleet.health_of("ce0")
        assert not health.flagged
        assert health.fault_rate == 1.0  # evidence recorded, flag gated

    def test_all_faulted_ce_is_blackhole_via_floor(self):
        # no successful run anywhere: "fast" falls back to the absolute
        # time-to-failure floor
        fleet = FleetHealth()
        for _ in range(4):
            fleet.observe_fault("hole", time_to_failure=10.0)
        health = fleet.health_of("hole")
        assert health.is_blackhole
        assert health.score == 0.0

    def test_slow_failures_are_not_a_blackhole(self):
        # a CE failing every attempt but *slowly* (above the floor, no
        # fleet context) is broken, not a blackhole
        fleet = FleetHealth()
        for _ in range(4):
            fleet.observe_fault("slowfail", time_to_failure=500.0)
        assert not fleet.health_of("slowfail").is_blackhole

    def test_blackhole_relative_to_fleet_run_median(self):
        fleet = FleetHealth()
        # fleet context: healthy CEs run ~100s
        for i in range(6):
            fleet.observe_phase("ok", "job.run", 100.0, job_id=i)
        for _ in range(4):
            fleet.observe_fault("hole", time_to_failure=130.0)
        # 130s ttf > floor but <= 0.5 * fleet median? 0.5*100 = 50 -> NOT fast
        assert not fleet.health_of("hole").is_blackhole
        fleet2 = FleetHealth()
        for i in range(6):
            fleet2.observe_phase("ok", "job.run", 100.0, job_id=i)
        for _ in range(4):
            fleet2.observe_fault("hole", time_to_failure=40.0)
        assert fleet2.health_of("hole").is_blackhole

    def test_straggler_jobs_flag_the_ce(self):
        fleet = FleetHealth()
        # reference population: 8 ordinary completions elsewhere
        for i in range(8):
            fleet.observe_phase("ok", "job.run", 100.0 + i, job_id=i)
        # slowpoke completes 4 jobs, all wildly beyond the fleet z-threshold
        flagged = [
            fleet.observe_phase("slow", "job.run", 5000.0, job_id=100 + i)
            for i in range(4)
        ]
        assert all(flagged)
        health = fleet.health_of("slow")
        assert health.is_straggler
        assert health.straggler_fraction == 1.0

    def test_grouped_windows_isolate_services(self):
        fleet = FleetHealth()
        # service A runs ~1000s, service B ~50s; without grouping B's
        # population would make every A job look like a straggler
        for i in range(6):
            fleet.observe_phase("ce0", "job.run", 50.0, job_id=i, group="B")
        for i in range(6):
            straggler = fleet.observe_phase(
                "ce1", "job.run", 1000.0, job_id=100 + i, group="A"
            )
            assert not straggler
        assert not fleet.health_of("ce1").is_straggler

    def test_ungrouped_observations_share_one_window(self):
        fleet = FleetHealth()
        for i in range(6):
            fleet.observe_phase("ce0", "job.run", 50.0, job_id=i)
        assert fleet.observe_phase("ce1", "job.run", 5000.0, job_id=99)

    def test_z_computed_before_adding_the_observation(self):
        fleet = FleetHealth(HealthThresholds(min_samples=4))
        for i in range(4):
            fleet.observe_phase("ce0", "job.queue", 10.0, job_id=i)
        # the outlier may not drag the reference median toward itself
        assert fleet.observe_phase("ce0", "job.queue", 10_000.0, job_id=9)

    def test_seen_and_first_seen_order(self):
        fleet = FleetHealth()
        assert not fleet.seen("ce0")
        fleet.observe_phase("ce0", "job.run", 1.0)
        fleet.observe_fault("ce1", 1.0)
        assert fleet.seen("ce0") and fleet.seen("ce1")
        assert fleet.ces() == ["ce0", "ce1"]
        assert [h.ce for h in fleet.table()] == ["ce0", "ce1"]

    def test_score_composition(self):
        fleet = FleetHealth()
        for i in range(2):
            fleet.observe_phase("mixed", "job.run", 100.0, job_id=i)
        fleet.observe_fault("mixed", 60.0)
        fleet.observe_fault("mixed", 60.0)
        health = fleet.health_of("mixed")
        # fault rate 0.5, no flags (ttf 60 > 0.5 * fleet median 100 = 50)
        assert not health.flagged
        assert health.score == pytest.approx(0.5)
