"""Tests for reproducible named random streams."""

import numpy as np
import pytest

from repro.util.rng import RandomStreams, stable_hash64


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("overhead") == stable_hash64("overhead")

    def test_distinct_names_distinct_hashes(self):
        names = [f"stream-{i}" for i in range(100)]
        hashes = {stable_hash64(n) for n in names}
        assert len(hashes) == 100

    def test_fits_in_64_bits(self):
        assert 0 <= stable_hash64("x") < 2**64


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(seed=7).get("alpha").random(10)
        b = RandomStreams(seed=7).get("alpha").random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("alpha").random(10)
        b = RandomStreams(seed=2).get("alpha").random(10)
        assert not np.array_equal(a, b)

    def test_different_names_independent(self):
        streams = RandomStreams(seed=7)
        a = streams.get("alpha").random(10)
        b = streams.get("beta").random(10)
        assert not np.array_equal(a, b)

    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(seed=0)
        assert streams.get("x") is streams.get("x")

    def test_order_of_creation_does_not_matter(self):
        s1 = RandomStreams(seed=3)
        s1.get("a")
        draw1 = s1.get("b").random()

        s2 = RandomStreams(seed=3)
        draw2 = s2.get("b").random()  # "a" never created
        assert draw1 == draw2

    def test_fork_is_deterministic(self):
        a = RandomStreams(seed=5).fork("site0").get("x").random()
        b = RandomStreams(seed=5).fork("site0").get("x").random()
        assert a == b

    def test_fork_differs_from_parent(self):
        parent = RandomStreams(seed=5)
        child = parent.fork("sub")
        assert parent.get("x").random() != child.get("x").random()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams(seed="42")

    def test_names_lists_created_streams(self):
        streams = RandomStreams(seed=0)
        streams.get("b")
        streams.get("a")
        assert list(streams.names()) == ["a", "b"]

    def test_seed_property(self):
        assert RandomStreams(seed=9).seed == 9
