"""Tests for argument-validation helpers."""

import pytest

from repro.util.validation import (
    require_in,
    require_non_negative,
    require_positive,
    require_type,
)


class TestRequirePositive:
    def test_passes_through(self):
        assert require_positive(1.5, "x") == 1.5

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive(0, "x")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            require_positive(-2, "x")


class TestRequireNonNegative:
    def test_zero_ok(self):
        assert require_non_negative(0, "x") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="x must be >= 0"):
            require_non_negative(-0.1, "x")


class TestRequireIn:
    def test_member_ok(self):
        assert require_in("dot", ("dot", "cross"), "strategy") == "dot"

    def test_non_member_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            require_in("zip", ("dot", "cross"), "strategy")


class TestRequireType:
    def test_instance_ok(self):
        assert require_type(3, int, "n") == 3

    def test_tuple_of_types(self):
        assert require_type(3.5, (int, float), "n") == 3.5

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="n must be int"):
            require_type("3", int, "n")
