"""Tests for linear regression and summaries."""

import numpy as np
import pytest

from repro.util.stats import linear_fit, summarize


class TestLinearFit:
    def test_exact_line_recovered(self):
        x = [12, 66, 126]
        y = [20784 + 884 * xi for xi in x]  # the paper's NOP line
        fit = linear_fit(x, y)
        assert fit.intercept == pytest.approx(20784)
        assert fit.slope == pytest.approx(884)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line_r_squared_below_one(self):
        rng = np.random.default_rng(0)
        x = np.arange(50)
        y = 3.0 * x + 10 + rng.normal(0, 5.0, size=50)
        fit = linear_fit(x, y)
        assert 0.9 < fit.r_squared < 1.0
        assert fit.slope == pytest.approx(3.0, abs=0.3)

    def test_predict(self):
        fit = linear_fit([0, 1], [1, 3])
        assert fit.predict(2) == pytest.approx(5.0)

    def test_constant_y_r_squared_one(self):
        fit = linear_fit([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == 1.0

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1], [2])

    def test_degenerate_x_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([2, 2, 2], [1, 2, 3])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1, 2, 3])


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)

    def test_single_value_has_zero_std(self):
        assert summarize([7.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
