"""Tests for the probability-distribution toolkit."""

import numpy as np
import pytest

from repro.util.distributions import (
    Constant,
    Empirical,
    Exponential,
    LogNormal,
    Shifted,
    SumOf,
    TruncatedNormal,
    Uniform,
    as_distribution,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestConstant:
    def test_always_same_value(self, rng):
        dist = Constant(5.0)
        assert all(dist.sample(rng) == 5.0 for _ in range(10))
        assert dist.mean() == 5.0

    def test_sample_many(self, rng):
        assert np.all(Constant(2.0).sample_many(rng, 7) == 2.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Constant(-1.0)


class TestUniform:
    def test_bounds_respected(self, rng):
        dist = Uniform(2.0, 4.0)
        samples = dist.sample_many(rng, 1000)
        assert samples.min() >= 2.0 and samples.max() <= 4.0

    def test_mean(self, rng):
        dist = Uniform(2.0, 4.0)
        assert dist.mean() == 3.0
        assert dist.sample_many(rng, 5000).mean() == pytest.approx(3.0, abs=0.05)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Uniform(4.0, 2.0)
        with pytest.raises(ValueError):
            Uniform(-1.0, 2.0)


class TestTruncatedNormal:
    def test_floor_respected(self, rng):
        dist = TruncatedNormal(mu=10.0, sigma=20.0, floor=5.0)
        samples = dist.sample_many(rng, 2000)
        assert samples.min() >= 5.0

    def test_zero_sigma_is_constant(self, rng):
        dist = TruncatedNormal(mu=10.0, sigma=0.0, floor=0.0)
        assert dist.sample(rng) == 10.0
        assert dist.mean() == 10.0

    def test_zero_sigma_below_floor_clamps(self, rng):
        dist = TruncatedNormal(mu=1.0, sigma=0.0, floor=5.0)
        assert dist.sample(rng) == 5.0

    def test_analytical_mean_matches_empirical(self, rng):
        dist = TruncatedNormal(mu=600.0, sigma=300.0, floor=30.0)
        empirical = dist.sample_many(rng, 50000).mean()
        assert dist.mean() == pytest.approx(empirical, rel=0.02)

    def test_paper_overhead_regime(self, rng):
        # ~10 minutes +/- 5 minutes, never below 30s
        dist = TruncatedNormal(mu=600.0, sigma=300.0, floor=30.0)
        samples = dist.sample_many(rng, 10000)
        assert 550 < samples.mean() < 700
        assert 200 < samples.std() < 350

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            TruncatedNormal(mu=1.0, sigma=-1.0)


class TestLogNormal:
    def test_mean_parameterization(self, rng):
        dist = LogNormal(mean_value=360.0, sigma_log=0.8)
        assert dist.mean() == 360.0
        assert dist.sample_many(rng, 100000).mean() == pytest.approx(360.0, rel=0.03)

    def test_heavy_tail(self, rng):
        dist = LogNormal(mean_value=100.0, sigma_log=1.0)
        samples = dist.sample_many(rng, 20000)
        assert np.median(samples) < samples.mean()  # right skew

    def test_zero_sigma_is_constant(self, rng):
        dist = LogNormal(mean_value=50.0, sigma_log=0.0)
        assert dist.sample(rng) == 50.0

    def test_positive_mean_required(self):
        with pytest.raises(ValueError):
            LogNormal(mean_value=0.0, sigma_log=1.0)


class TestExponential:
    def test_mean(self, rng):
        dist = Exponential(mean_value=20.0)
        assert dist.mean() == 20.0
        assert dist.sample_many(rng, 50000).mean() == pytest.approx(20.0, rel=0.03)

    def test_positive_mean_required(self):
        with pytest.raises(ValueError):
            Exponential(mean_value=-5.0)


class TestEmpirical:
    def test_samples_from_observed(self, rng):
        dist = Empirical([1.0, 2.0, 3.0])
        samples = set(dist.sample_many(rng, 200).tolist())
        assert samples <= {1.0, 2.0, 3.0}
        assert len(samples) == 3

    def test_mean(self):
        assert Empirical([2.0, 4.0]).mean() == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            Empirical([1.0, -2.0])

    def test_values_view_read_only(self):
        dist = Empirical([1.0, 2.0])
        with pytest.raises(ValueError):
            dist.values[0] = 9.0


class TestComposites:
    def test_shifted(self, rng):
        dist = Shifted(Constant(3.0), offset=2.0)
        assert dist.sample(rng) == 5.0
        assert dist.mean() == 5.0
        assert np.all(dist.sample_many(rng, 4) == 5.0)

    def test_shifted_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            Shifted(Constant(1.0), offset=-1.0)

    def test_sum_of_means_add(self, rng):
        dist = SumOf([Constant(1.0), Constant(2.0), Uniform(0.0, 2.0)])
        assert dist.mean() == pytest.approx(4.0)
        assert dist.sample_many(rng, 5000).mean() == pytest.approx(4.0, abs=0.05)

    def test_sum_of_empty_rejected(self):
        with pytest.raises(ValueError):
            SumOf([])

    def test_sum_of_non_distribution_rejected(self):
        with pytest.raises(TypeError):
            SumOf([Constant(1.0), 2.0])


class TestAsDistribution:
    def test_number_becomes_constant(self):
        dist = as_distribution(4)
        assert isinstance(dist, Constant) and dist.value == 4.0

    def test_distribution_passes_through(self):
        dist = Uniform(0, 1)
        assert as_distribution(dist) is dist

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_distribution("fast")
