"""Tests for unit constants and formatters."""


from repro.util.units import (
    GIBIBYTE,
    HOUR,
    KIBIBYTE,
    MEBIBYTE,
    MINUTE,
    format_duration,
    format_size,
)


class TestConstants:
    def test_time_hierarchy(self):
        assert MINUTE == 60.0
        assert HOUR == 3600.0

    def test_size_hierarchy(self):
        assert MEBIBYTE == 1024 * KIBIBYTE
        assert GIBIBYTE == 1024 * MEBIBYTE


class TestFormatDuration:
    def test_sub_minute(self):
        assert format_duration(59.5) == "59.5s"

    def test_minutes(self):
        assert format_duration(125) == "2m05s"

    def test_hours(self):
        assert format_duration(32855) == "9h07m35s"

    def test_zero(self):
        assert format_duration(0) == "0.0s"

    def test_negative(self):
        assert format_duration(-90) == "-1m30s"

    def test_paper_total_experiment_duration(self):
        # "a total running time of 9 days and 8 hours"
        nine_days_eight_hours = (9 * 24 + 8) * HOUR
        assert format_duration(nine_days_eight_hours) == "224h00m00s"


class TestFormatSize:
    def test_bytes(self):
        assert format_size(512) == "512 B"

    def test_kibibytes(self):
        assert format_size(2048) == "2.0 KiB"

    def test_paper_image_size(self):
        assert format_size(7.8 * MEBIBYTE) == "7.8 MiB"

    def test_gibibytes(self):
        assert format_size(3 * GIBIBYTE) == "3.0 GiB"

    def test_negative(self):
        assert format_size(-1024) == "-1.0 KiB"
