"""Tests for workflow rendering."""


from repro.workflow.patterns import chain_workflow, figure2_workflow
from repro.workflow.render import summarize, to_dot


class TestDot:
    def test_chain_structure(self, local_factory):
        workflow = chain_workflow(local_factory, 2)
        dot = to_dot(workflow)
        assert dot.startswith('digraph "chain"')
        assert '"P1" [shape=box' in dot
        assert '"input" [shape=ellipse];' in dot
        assert '"P1" -> "P2";' in dot
        assert dot.rstrip().endswith("}")

    def test_port_labels_optional(self, local_factory):
        workflow = chain_workflow(local_factory, 2)
        assert "label=" not in to_dot(workflow).split("\n", 2)[2].split('"P1" [')[0]
        detailed = to_dot(workflow, include_ports=True)
        assert 'label="y -> x"' in detailed

    def test_sync_double_boxed(self, engine):
        from repro.services.base import LocalService
        from repro.workflow.builder import WorkflowBuilder

        workflow = (
            WorkflowBuilder()
            .source("s")
            .service("stat", LocalService(engine, "stat", ("x",), ("y",)),
                     synchronization=True)
            .sink("k")
            .connect("s:output", "stat:x")
            .connect("stat:y", "k:input")
            .build()
        )
        assert "peripheries=2" in to_dot(workflow)

    def test_cross_strategy_annotated(self, engine):
        from repro.services.base import LocalService
        from repro.workflow.builder import WorkflowBuilder

        workflow = (
            WorkflowBuilder()
            .source("a").source("b")
            .service("x", LocalService(engine, "x", ("a", "b"), ("y",)),
                     iteration_strategy="cross")
            .sink("k")
            .connect("a:output", "x:a").connect("b:output", "x:b")
            .connect("x:y", "k:input")
            .build()
        )
        assert "[cross]" in to_dot(workflow)

    def test_coordination_dashed(self, engine):
        from repro.services.base import LocalService
        from repro.workflow.builder import WorkflowBuilder

        workflow = (
            WorkflowBuilder()
            .service("a", LocalService(engine, "a", ("x",), ("y",)))
            .service("b", LocalService(engine, "b", ("x",), ("y",)))
            .coordinate("a", "b")
            .build()
        )
        assert '"a" -> "b" [style=dashed];' in to_dot(workflow)

    def test_bronze_standard_renders(self, engine, ideal_grid, streams):
        from repro.apps.bronze_standard import BronzeStandardApplication

        app = BronzeStandardApplication(engine, ideal_grid, streams)
        dot = to_dot(app.workflow)
        assert '"MultiTransfoTest" [shape=box, peripheries=2' in dot
        assert dot.count("->") == len(app.workflow.links)


class TestSummarize:
    def test_chain_summary(self, local_factory):
        text = summarize(chain_workflow(local_factory, 3))
        assert "sources:  input" in text
        assert "services: P1, P2, P3" in text
        assert "critical path: 3 services" in text

    def test_loop_summary(self, local_factory):
        text = summarize(figure2_workflow(local_factory))
        assert "loops:" in text
        assert "P2" in text and "P3" in text

    def test_bronze_summary(self, engine, ideal_grid, streams):
        from repro.apps.bronze_standard import BronzeStandardApplication

        app = BronzeStandardApplication(engine, ideal_grid, streams)
        text = summarize(app.workflow)
        assert "synchronization barriers: MultiTransfoTest" in text
        assert "critical path: 5 services" in text
