"""Tests for the input-data-set language."""

import pytest

from repro.workflow.datasets import (
    DataItem,
    DataSetError,
    InputDataSet,
    dataset_from_xml,
    dataset_to_xml,
)

DOCUMENT = """
<dataset name="bronze-2">
  <input name="floatingImage">
    <item gfn="gfn://images/p0/t0.mhd" size="8178892"/>
    <item gfn="gfn://images/p0/t1.mhd" size="8178892"/>
  </input>
  <input name="scale">
    <item value="8"/>
    <item value="8"/>
  </input>
</dataset>
"""


class TestDataItem:
    def test_needs_value_or_gfn(self):
        with pytest.raises(DataSetError):
            DataItem()

    def test_file_item(self):
        item = DataItem(gfn="gfn://a", size=100)
        assert item.is_file
        assert item.logical_file().size == 100
        assert item.grid_data().gfn == "gfn://a"

    def test_value_item(self):
        item = DataItem(value=8)
        assert not item.is_file
        assert item.logical_file() is None
        assert item.grid_data().value == 8

    def test_negative_size_rejected(self):
        with pytest.raises(DataSetError):
            DataItem(gfn="gfn://a", size=-1)


class TestInputDataSet:
    def test_from_values(self):
        ds = InputDataSet.from_values("d", a=[1, 2, 3], b=["x"])
        assert ds.size("a") == 3
        assert ds.size("b") == 1
        assert ds.size("missing") == 0
        assert len(ds) == 4

    def test_items_returns_copies(self):
        ds = InputDataSet.from_values("d", a=[1])
        items = ds.items("a")
        items.append("tampered")
        assert ds.size("a") == 1

    def test_files_deduplicated(self):
        ds = InputDataSet("d")
        ds.add_file("a", "gfn://same", 10)
        ds.add_file("b", "gfn://same", 10)
        ds.add_file("b", "gfn://other", 20)
        assert sorted(f.gfn for f in ds.files()) == ["gfn://other", "gfn://same"]

    def test_restricted_to(self):
        ds = InputDataSet.from_values("d", imgs=[1, 2, 3, 4], scale=[8, 8, 8, 8])
        subset = ds.restricted_to(2, input_names=["imgs"])
        assert subset.size("imgs") == 2
        assert subset.size("scale") == 4  # untouched: not selected

    def test_restricted_to_all_inputs_by_default(self):
        ds = InputDataSet.from_values("d", a=[1, 2, 3], b=[4, 5, 6])
        subset = ds.restricted_to(1)
        assert subset.size("a") == 1 and subset.size("b") == 1

    def test_restricted_to_negative_rejected(self):
        with pytest.raises(DataSetError):
            InputDataSet("d").restricted_to(-1)

    def test_input_names_ordered(self):
        ds = InputDataSet("d")
        ds.add("z", DataItem(value=1))
        ds.add("a", DataItem(value=2))
        assert ds.input_names() == ["z", "a"]


class TestXml:
    def test_parse(self):
        ds = dataset_from_xml(DOCUMENT)
        assert ds.name == "bronze-2"
        assert ds.size("floatingImage") == 2
        assert ds.size("scale") == 2
        item = ds.items("floatingImage")[0]
        assert item.gfn == "gfn://images/p0/t0.mhd"
        assert item.size == 8178892
        assert ds.items("scale")[0].value == "8"

    def test_round_trip(self):
        ds = dataset_from_xml(DOCUMENT)
        again = dataset_from_xml(dataset_to_xml(ds))
        assert again.name == ds.name
        for name in ds.input_names():
            assert [i.gfn for i in again.items(name)] == [i.gfn for i in ds.items(name)]
            assert [i.value for i in again.items(name)] == [i.value for i in ds.items(name)]

    def test_malformed_rejected(self):
        with pytest.raises(DataSetError, match="well-formed"):
            dataset_from_xml("<dataset><broken>")

    def test_wrong_root_rejected(self):
        with pytest.raises(DataSetError, match="root"):
            dataset_from_xml("<other/>")

    def test_input_without_name_rejected(self):
        with pytest.raises(DataSetError):
            dataset_from_xml("<dataset><input><item value='1'/></input></dataset>")
