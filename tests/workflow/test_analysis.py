"""Tests for workflow graph analysis."""

import pytest

from repro.workflow.analysis import (
    all_paths,
    critical_path,
    critical_path_length,
    find_cycles,
    sequential_chains,
    services_on_critical_path,
    topological_order,
)
from repro.workflow.graph import WorkflowError
from repro.workflow.patterns import (
    chain_workflow,
    diamond_workflow,
    figure1_workflow,
    figure2_workflow,
)


class TestPaths:
    def test_chain_single_path(self, local_factory):
        wf = chain_workflow(local_factory, 3)
        paths = all_paths(wf)
        assert paths == [["input", "P1", "P2", "P3", "result"]]

    def test_figure1_two_paths(self, local_factory):
        wf = figure1_workflow(local_factory)
        paths = {tuple(p) for p in all_paths(wf)}
        assert ("source", "P1", "P2", "sink2") in paths
        assert ("source", "P1", "P3", "sink3") in paths

    def test_cyclic_rejected(self, local_factory):
        wf = figure2_workflow(local_factory)
        with pytest.raises(WorkflowError):
            all_paths(wf)


class TestCriticalPath:
    def test_unweighted_counts_services(self, local_factory):
        wf = chain_workflow(local_factory, 4)
        assert services_on_critical_path(wf) == 4

    def test_weighted_picks_heavier_branch(self, engine, local_factory):
        wf = figure1_workflow(local_factory)
        path = critical_path(wf, durations={"P2": 100.0, "P3": 1.0})
        assert "P2" in path and "P3" not in path

    def test_length_sums_durations(self, local_factory):
        wf = chain_workflow(local_factory, 3)
        length = critical_path_length(wf, durations={"P1": 1.0, "P2": 2.0, "P3": 3.0})
        assert length == pytest.approx(6.0)

    def test_diamond_critical_path(self, local_factory):
        wf = diamond_workflow(local_factory)
        path = critical_path(wf, durations={"A": 1, "B": 10, "C": 1, "D": 1})
        assert path == ["source", "A", "B", "D", "sink"]


class TestCycles:
    def test_dag_has_no_cycles(self, local_factory):
        assert find_cycles(chain_workflow(local_factory, 2)) == []

    def test_figure2_loop_found(self, local_factory):
        cycles = find_cycles(figure2_workflow(local_factory))
        assert len(cycles) == 1
        assert set(cycles[0]) == {"P2", "P3"}


class TestTopologicalOrder:
    def test_respects_dependencies(self, local_factory):
        wf = diamond_workflow(local_factory)
        order = topological_order(wf)
        assert order.index("A") < order.index("B")
        assert order.index("B") < order.index("D")
        assert order.index("C") < order.index("D")

    def test_cyclic_rejected(self, local_factory):
        with pytest.raises(WorkflowError):
            topological_order(figure2_workflow(local_factory))

    def test_deterministic(self, local_factory):
        wf = diamond_workflow(local_factory)
        assert topological_order(wf) == topological_order(wf)


class TestSequentialChains:
    def test_chain_workflow_fully_groupable(self, local_factory):
        wf = chain_workflow(local_factory, 3)
        # P3 feeds the sink, so it cannot absorb further, but P1->P2->P3
        # is chainable because each service's outputs go to exactly one
        # service... except P3 whose output goes to a sink.
        chains = sequential_chains(wf)
        assert chains == [["P1", "P2", "P3"]] or chains == [["P1", "P2"]]

    def test_fanout_breaks_chain(self, local_factory):
        wf = figure1_workflow(local_factory)
        # P1 feeds both P2 and P3: nothing to group.
        assert sequential_chains(wf) == []

    def test_sync_processor_never_grouped(self, engine, local_factory):
        from repro.workflow.builder import WorkflowBuilder
        from repro.services.base import LocalService

        wf = (
            WorkflowBuilder()
            .source("s")
            .service("A", LocalService(engine, "A", ("x",), ("y",)))
            .service("B", LocalService(engine, "B", ("x",), ("y",)), synchronization=True)
            .sink("k")
            .connect("s:output", "A:x")
            .connect("A:y", "B:x")
            .connect("B:y", "k:input")
            .build()
        )
        assert sequential_chains(wf) == []

    def test_cross_strategy_breaks_chain(self, engine):
        from repro.workflow.builder import WorkflowBuilder
        from repro.services.base import LocalService

        wf = (
            WorkflowBuilder()
            .source("s")
            .service("A", LocalService(engine, "A", ("x",), ("y",)))
            .service("B", LocalService(engine, "B", ("x",), ("y",)), iteration_strategy="cross")
            .sink("k")
            .connect("s:output", "A:x")
            .connect("A:y", "B:x")
            .connect("B:y", "k:input")
            .build()
        )
        assert sequential_chains(wf) == []

    def test_ungroupable_flag_respected(self, engine):
        from repro.workflow.builder import WorkflowBuilder
        from repro.services.base import LocalService

        wf = (
            WorkflowBuilder()
            .source("s")
            .service("A", LocalService(engine, "A", ("x",), ("y",)), groupable=False)
            .service("B", LocalService(engine, "B", ("x",), ("y",)))
            .sink("k")
            .connect("s:output", "A:x")
            .connect("A:y", "B:x")
            .connect("B:y", "k:input")
            .build()
        )
        assert sequential_chains(wf) == []

    def test_bronze_standard_shape_two_chains(self, engine, streams, ideal_grid):
        from repro.apps.bronze_standard import BronzeStandardApplication

        app = BronzeStandardApplication(engine, ideal_grid, streams)
        chains = sequential_chains(app.workflow)
        assert chains == [["crestLines", "crestMatch"], ["PFMatchICP", "PFRegister"]]
