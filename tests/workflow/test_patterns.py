"""Tests for the canned workflow patterns."""

import pytest

from repro.workflow.patterns import (
    chain_workflow,
    diamond_workflow,
    figure1_workflow,
    figure2_workflow,
)
from repro.workflow.validation import validate_workflow


class TestChain:
    def test_structure(self, local_factory):
        wf = chain_workflow(local_factory, 3)
        assert [p.name for p in wf.services()] == ["P1", "P2", "P3"]
        assert len(wf.links) == 4
        assert wf.is_dag()

    def test_length_one(self, local_factory):
        wf = chain_workflow(local_factory, 1)
        assert len(wf.links) == 2

    def test_invalid_length(self, local_factory):
        with pytest.raises(ValueError):
            chain_workflow(local_factory, 0)

    def test_validates_cleanly(self, local_factory):
        issues = validate_workflow(chain_workflow(local_factory, 5))
        assert not [i for i in issues if i.severity == "error"]


class TestFigure1:
    def test_branches(self, local_factory):
        wf = figure1_workflow(local_factory)
        assert wf.successors("P1") == ["P2", "P3"]
        assert wf.is_dag()

    def test_two_sinks(self, local_factory):
        wf = figure1_workflow(local_factory)
        assert [s.name for s in wf.sinks()] == ["sink2", "sink3"]


class TestFigure2:
    def test_has_loop(self, local_factory):
        wf = figure2_workflow(local_factory)
        assert not wf.is_dag()

    def test_loop_back_merges_into_same_port(self, local_factory):
        wf = figure2_workflow(local_factory)
        feeders = {link.source.processor for link in wf.links_into("P2", "x")}
        assert feeders == {"P1", "P3"}

    def test_conditional_output_ports(self, local_factory):
        wf = figure2_workflow(local_factory)
        assert wf.processor("P3").output_ports == ("loop", "done")


class TestDiamond:
    def test_fan_out_fan_in(self, local_factory):
        wf = diamond_workflow(local_factory)
        assert wf.successors("A") == ["B", "C"]
        assert wf.predecessors("D") == ["B", "C"]
        assert wf.is_dag()
