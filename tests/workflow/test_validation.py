"""Tests for structural workflow validation."""

import pytest

from repro.services.base import LocalService
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.graph import Processor, ProcessorKind, Workflow
from repro.workflow.patterns import chain_workflow, figure2_workflow
from repro.workflow.validation import require_valid, validate_workflow


def severities(issues, severity):
    return [i for i in issues if i.severity == severity]


class TestValidation:
    def test_clean_workflow_no_errors(self, local_factory):
        wf = chain_workflow(local_factory, 2)
        assert severities(validate_workflow(wf), "error") == []

    def test_empty_workflow_is_error(self):
        issues = validate_workflow(Workflow())
        assert severities(issues, "error")

    def test_unbound_service_is_error(self):
        wf = Workflow()
        wf.add_processor(Processor(name="P", input_ports=("x",), output_ports=("y",)))
        issues = validate_workflow(wf)
        assert any("neither" in i.message for i in severities(issues, "error"))

    def test_service_ref_is_acceptable(self):
        wf = Workflow()
        wf.add_processor(
            Processor(name="P", input_ports=("x",), output_ports=("y",), service_ref="impl")
        )
        assert severities(validate_workflow(wf), "error") == []

    def test_unconnected_ports_warn(self, engine):
        wf = Workflow()
        wf.add_processor(
            Processor(
                name="P",
                service=LocalService(engine, "svc", ("x",), ("y",)),
                input_ports=("x",),
                output_ports=("y",),
            )
        )
        warnings = severities(validate_workflow(wf), "warning")
        messages = " ".join(w.message for w in warnings)
        assert "not fed" in messages and "feeds nothing" in messages

    def test_dangling_source_and_sink_warn(self):
        wf = Workflow()
        wf.add_source("s")
        wf.add_sink("k")
        warnings = severities(validate_workflow(wf), "warning")
        assert len(warnings) == 2

    def test_sync_on_cycle_is_error(self, engine, local_factory):
        wf = figure2_workflow(local_factory)
        sync_version = Workflow(wf.name)
        for name, processor in wf.processors.items():
            if name == "P2":
                processor = Processor(
                    name="P2",
                    kind=ProcessorKind.SERVICE,
                    service=processor.service,
                    input_ports=processor.input_ports,
                    output_ports=processor.output_ports,
                    synchronization=True,
                )
            sync_version.add_processor(processor)
        for link in wf.links:
            sync_version.add_link(link.source, link.target)
        errors = severities(validate_workflow(sync_version), "error")
        assert any("cycle" in e.message for e in errors)

    def test_require_valid_raises_on_errors(self):
        with pytest.raises(ValueError, match="invalid"):
            require_valid(Workflow())

    def test_require_valid_passes_clean(self, local_factory):
        require_valid(chain_workflow(local_factory, 1))

    def test_coordination_to_sink_warns(self, engine):
        wf = (
            WorkflowBuilder()
            .source("s")
            .service("A", LocalService(engine, "A", ("x",), ("y",)))
            .sink("k")
            .connect("s:output", "A:x")
            .connect("A:y", "k:input")
            .coordinate("A", "k")
            .build()
        )
        warnings = severities(validate_workflow(wf), "warning")
        assert any("non-service" in w.message for w in warnings)
