"""Tests for the fluent workflow builder."""

import pytest

from repro.services.base import LocalService
from repro.workflow.builder import WorkflowBuilder


class TestBuilder:
    def test_builds_connected_workflow(self, engine):
        svc = LocalService(engine, "svc", ("x",), ("y",))
        wf = (
            WorkflowBuilder("demo")
            .source("in")
            .service("P", svc)
            .sink("out")
            .connect("in:output", "P:x")
            .connect("P:y", "out:input")
            .build()
        )
        assert wf.name == "demo"
        assert set(wf.processors) == {"in", "P", "out"}
        assert len(wf.links) == 2

    def test_service_flags_forwarded(self, engine):
        svc = LocalService(engine, "svc", ("x",), ("y",))
        wf = (
            WorkflowBuilder()
            .service("P", svc, iteration_strategy="cross", synchronization=True, groupable=False)
            .build()
        )
        processor = wf.processor("P")
        assert processor.iteration_strategy == "cross"
        assert processor.synchronization
        assert not processor.groupable

    def test_abstract_service(self):
        wf = (
            WorkflowBuilder()
            .abstract_service("P", ("x",), ("y",), service_ref="svc-impl")
            .build()
        )
        assert wf.processor("P").service_ref == "svc-impl"
        assert wf.processor("P").service is None

    def test_abstract_service_defaults_ref_to_name(self):
        wf = WorkflowBuilder().abstract_service("P", ("x",), ("y",)).build()
        assert wf.processor("P").service_ref == "P"

    def test_coordinate(self, engine):
        svc = LocalService(engine, "svc", ("x",), ("y",))
        wf = (
            WorkflowBuilder()
            .service("A", svc)
            .service("B", LocalService(engine, "svc2", ("x",), ("y",)))
            .coordinate("A", "B")
            .build()
        )
        assert wf.coordination_constraints == [("A", "B")]

    def test_builder_single_use(self, engine):
        builder = WorkflowBuilder().source("s")
        builder.build()
        with pytest.raises(RuntimeError, match="already"):
            builder.build()
        with pytest.raises(RuntimeError):
            builder.sink("late")

    def test_custom_ports(self):
        wf = WorkflowBuilder().source("s", port="images").sink("k", port="collect").build()
        assert wf.processor("s").output_ports == ("images",)
        assert wf.processor("k").input_ports == ("collect",)
