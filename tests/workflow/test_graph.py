"""Tests for the workflow graph model."""

import pytest

from repro.services.base import LocalService
from repro.workflow.graph import (
    PortRef,
    Processor,
    ProcessorKind,
    Workflow,
    WorkflowError,
)


@pytest.fixture
def simple(engine):
    wf = Workflow("simple")
    wf.add_source("src")
    wf.add_processor(
        Processor(name="P1", input_ports=("x",), output_ports=("y",))
    )
    wf.add_sink("out")
    wf.add_link("src:output", "P1:x")
    wf.add_link("P1:y", "out:input")
    return wf


class TestPortRef:
    def test_parse(self):
        ref = PortRef.parse("P1:out")
        assert ref == PortRef("P1", "out")
        assert str(ref) == "P1:out"

    def test_parse_rejects_malformed(self):
        with pytest.raises(WorkflowError):
            PortRef.parse("no-colon")
        with pytest.raises(WorkflowError):
            PortRef.parse(":port")
        with pytest.raises(WorkflowError):
            PortRef.parse("proc:")


class TestProcessor:
    def test_source_cannot_have_inputs(self):
        with pytest.raises(WorkflowError):
            Processor(name="s", kind=ProcessorKind.SOURCE, input_ports=("x",))

    def test_sink_cannot_have_outputs(self):
        with pytest.raises(WorkflowError):
            Processor(name="s", kind=ProcessorKind.SINK, output_ports=("y",))

    def test_unknown_iteration_strategy_rejected(self):
        with pytest.raises(WorkflowError, match="iteration strategy"):
            Processor(name="p", iteration_strategy="zip")

    def test_duplicate_ports_rejected(self):
        with pytest.raises(WorkflowError):
            Processor(name="p", input_ports=("x", "x"))

    def test_needs_name(self):
        with pytest.raises(WorkflowError):
            Processor(name="")

    def test_service_ports_must_match_declaration(self, engine):
        service = LocalService(engine, "svc", ("a",), ("b",))
        with pytest.raises(WorkflowError, match="do not match"):
            Processor(name="p", service=service, input_ports=("x",), output_ports=("b",))

    def test_with_service_adopts_ports(self, engine):
        service = LocalService(engine, "svc", ("a",), ("b",))
        processor = Processor(name="p").with_service(service)
        assert processor.effective_input_ports() == ("a",)
        assert processor.effective_output_ports() == ("b",)


class TestWorkflowConstruction:
    def test_duplicate_processor_rejected(self, simple):
        with pytest.raises(WorkflowError, match="duplicate"):
            simple.add_source("src")

    def test_link_to_unknown_processor_rejected(self, simple):
        with pytest.raises(WorkflowError, match="unknown processor"):
            simple.add_link("nope:y", "P1:x")

    def test_link_to_unknown_port_rejected(self, simple):
        with pytest.raises(WorkflowError, match="no input port"):
            simple.add_link("src:output", "P1:zzz")

    def test_link_direction_checked(self, simple):
        # outputs cannot be link targets
        with pytest.raises(WorkflowError):
            simple.add_link("P1:y", "src:output")

    def test_duplicate_link_rejected(self, simple):
        with pytest.raises(WorkflowError, match="duplicate link"):
            simple.add_link("src:output", "P1:x")

    def test_coordination_constraint_validation(self, simple):
        simple.add_coordination_constraint("P1", "out")
        with pytest.raises(WorkflowError):
            simple.add_coordination_constraint("ghost", "P1")
        with pytest.raises(WorkflowError, match="reflexive"):
            simple.add_coordination_constraint("P1", "P1")

    def test_replace_processor_keeps_name(self, simple, engine):
        service = LocalService(engine, "svc", ("x",), ("y",))
        simple.replace_processor("P1", simple.processor("P1").with_service(service))
        assert simple.processor("P1").service is service
        with pytest.raises(WorkflowError, match="keep the name"):
            simple.replace_processor("P1", Processor(name="other"))


class TestWorkflowInspection:
    def test_sources_sinks_services(self, simple):
        assert [p.name for p in simple.sources()] == ["src"]
        assert [p.name for p in simple.sinks()] == ["out"]
        assert [p.name for p in simple.services()] == ["P1"]

    def test_links_into_and_out_of(self, simple):
        assert len(simple.links_into("P1")) == 1
        assert len(simple.links_into("P1", port="x")) == 1
        assert len(simple.links_into("P1", port="zzz")) == 0
        assert len(simple.links_out_of("P1", port="y")) == 1

    def test_predecessors_successors(self, simple):
        assert simple.predecessors("P1") == ["src"]
        assert simple.successors("P1") == ["out"]
        assert simple.predecessors("src") == []

    def test_predecessors_deduplicated(self, engine):
        wf = Workflow()
        wf.add_source("s")
        wf.add_processor(Processor(name="P", input_ports=("a", "b"), output_ports=("y",)))
        wf.add_link("s:output", "P:a")
        wf.add_link("s:output", "P:b")
        assert wf.predecessors("P") == ["s"]

    def test_is_dag(self, simple):
        assert simple.is_dag()

    def test_cycle_detected(self):
        wf = Workflow()
        wf.add_processor(Processor(name="A", input_ports=("x",), output_ports=("y",)))
        wf.add_processor(Processor(name="B", input_ports=("x",), output_ports=("y",)))
        wf.add_link("A:y", "B:x")
        wf.add_link("B:y", "A:x")
        assert not wf.is_dag()

    def test_to_networkx(self, simple):
        graph = simple.to_networkx()
        assert set(graph.nodes) == {"src", "P1", "out"}
        assert graph.number_of_edges() == 2

    def test_copy_is_independent(self, simple):
        clone = simple.copy()
        clone.add_sink("extra")
        assert "extra" not in simple.processors
        assert len(clone.links) == len(simple.links)

    def test_unknown_processor_lookup(self, simple):
        with pytest.raises(WorkflowError):
            simple.processor("ghost")
