"""Tests for the Scufl-dialect workflow documents."""

import pytest

from repro.services.base import LocalService
from repro.services.registry import ServiceRegistry
from repro.workflow.graph import ProcessorKind, WorkflowError
from repro.workflow.patterns import chain_workflow, figure2_workflow
from repro.workflow.scufl import (
    ScuflError,
    bind_services,
    workflow_from_scufl,
    workflow_to_scufl,
)

DOCUMENT = """
<scufl name="demo">
  <processor name="images" kind="source"><outport name="output"/></processor>
  <processor name="P1" kind="service" service="svc1" iteration="dot">
    <inport name="x"/><outport name="y"/>
  </processor>
  <processor name="P2" kind="service" service="svc2" iteration="cross"
             synchronization="true" groupable="false">
    <inport name="a"/><inport name="b"/><outport name="y"/>
  </processor>
  <processor name="out" kind="sink"><inport name="input"/></processor>
  <link source="images:output" sink="P1:x"/>
  <link source="P1:y" sink="P2:a"/>
  <link source="images:output" sink="P2:b"/>
  <link source="P2:y" sink="out:input"/>
  <coordination from="P1" to="P2"/>
</scufl>
"""


class TestParsing:
    def test_processors_parsed(self):
        wf = workflow_from_scufl(DOCUMENT)
        assert wf.name == "demo"
        assert wf.processor("images").kind is ProcessorKind.SOURCE
        assert wf.processor("P1").service_ref == "svc1"
        assert wf.processor("P2").iteration_strategy == "cross"
        assert wf.processor("P2").synchronization
        assert not wf.processor("P2").groupable

    def test_links_parsed(self):
        wf = workflow_from_scufl(DOCUMENT)
        assert len(wf.links) == 4

    def test_coordination_parsed(self):
        wf = workflow_from_scufl(DOCUMENT)
        assert wf.coordination_constraints == [("P1", "P2")]

    def test_malformed_rejected(self):
        with pytest.raises(ScuflError, match="well-formed"):
            workflow_from_scufl("<scufl><oops>")

    def test_wrong_root_rejected(self):
        with pytest.raises(ScuflError, match="root"):
            workflow_from_scufl("<workflow/>")

    def test_processor_without_name_rejected(self):
        with pytest.raises(ScuflError):
            workflow_from_scufl("<scufl><processor kind='source'/></scufl>")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScuflError, match="kind"):
            workflow_from_scufl("<scufl><processor name='p' kind='magic'/></scufl>")

    def test_bad_boolean_rejected(self):
        doc = "<scufl><processor name='p' synchronization='maybe'/></scufl>"
        with pytest.raises(ScuflError, match="boolean"):
            workflow_from_scufl(doc)

    def test_link_missing_attrs_rejected(self):
        with pytest.raises(ScuflError, match="link"):
            workflow_from_scufl("<scufl><link source='a:b'/></scufl>")


class TestRoundTrip:
    def test_document_round_trips(self):
        wf = workflow_from_scufl(DOCUMENT)
        text = workflow_to_scufl(wf)
        again = workflow_from_scufl(text)
        assert again.processors.keys() == wf.processors.keys()
        assert again.links == wf.links
        assert again.coordination_constraints == wf.coordination_constraints
        for name in wf.processors:
            a, b = wf.processor(name), again.processor(name)
            assert (a.kind, a.iteration_strategy, a.synchronization, a.groupable) == (
                b.kind, b.iteration_strategy, b.synchronization, b.groupable
            )

    def test_bound_workflow_serializes_service_names(self, engine, local_factory):
        wf = chain_workflow(local_factory, 2)
        text = workflow_to_scufl(wf)
        again = workflow_from_scufl(text)
        assert again.processor("P1").service_ref == "P1"

    def test_loop_workflow_round_trips(self, local_factory):
        wf = figure2_workflow(local_factory)
        again = workflow_from_scufl(workflow_to_scufl(wf))
        assert not again.is_dag()


class TestBinding:
    def test_bind_resolves_refs(self, engine):
        wf = workflow_from_scufl(DOCUMENT)
        registry = ServiceRegistry()
        registry.register(LocalService(engine, "svc1", ("x",), ("y",)))
        registry.register(LocalService(engine, "svc2", ("a", "b"), ("y",)))
        bound = bind_services(wf, registry)
        assert bound.processor("P1").service.name == "svc1"
        assert bound.processor("P2").service.name == "svc2"
        # original untouched
        assert wf.processor("P1").service is None

    def test_bind_checks_port_signature(self, engine):
        wf = workflow_from_scufl(DOCUMENT)
        registry = ServiceRegistry()
        registry.register(LocalService(engine, "svc1", ("wrong",), ("y",)))
        registry.register(LocalService(engine, "svc2", ("a", "b"), ("y",)))
        with pytest.raises(WorkflowError, match="do not match"):
            bind_services(wf, registry)

    def test_bind_unknown_service_raises(self, engine):
        wf = workflow_from_scufl(DOCUMENT)
        with pytest.raises(KeyError):
            bind_services(wf, ServiceRegistry())
