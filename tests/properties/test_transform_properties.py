"""Property-based tests for rigid-transform algebra."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.transforms import RigidTransform, mean_transform

angles = st.lists(st.floats(-180.0, 180.0, allow_nan=False), min_size=3, max_size=3)
vectors = st.lists(st.floats(-100.0, 100.0, allow_nan=False), min_size=3, max_size=3)
transforms = st.builds(RigidTransform.from_euler_deg, angles, vectors)


class TestGroupProperties:
    @given(transforms)
    def test_inverse_involution(self, t):
        assert t.inverse().inverse().is_close(t, 1e-6, 1e-6)

    @given(transforms)
    def test_inverse_cancels(self, t):
        identity = RigidTransform.identity()
        assert t.compose(t.inverse()).is_close(identity, 1e-6, 1e-6)

    @given(transforms, transforms, transforms)
    def test_associativity(self, a, b, c):
        left = a.compose(b).compose(c)
        right = a.compose(b.compose(c))
        assert left.is_close(right, 1e-5, 1e-4)

    @given(transforms, transforms)
    def test_compose_matches_pointwise_application(self, a, b):
        point = np.array([1.0, -2.0, 3.0])
        assert np.allclose(a.compose(b).apply(point), a.apply(b.apply(point)), atol=1e-6)

    @given(transforms)
    def test_rigid_preserves_distances(self, t):
        p = np.array([1.0, 2.0, 3.0])
        q = np.array([-4.0, 0.0, 2.0])
        before = np.linalg.norm(p - q)
        after = np.linalg.norm(t.apply(p) - t.apply(q))
        assert abs(before - after) < 1e-8 * max(1.0, before)


class TestMetricsProperties:
    @given(transforms, transforms)
    def test_rotation_distance_bounds(self, a, b):
        d = a.rotation_distance_deg(b)
        assert 0.0 <= d <= 180.0 + 1e-9

    @given(transforms)
    def test_self_distance_zero(self, t):
        assert t.rotation_distance_deg(t) < 1e-6
        assert t.translation_distance(t) == 0.0


class TestMeanProperties:
    @given(transforms, st.integers(1, 6))
    def test_mean_of_copies_is_the_transform(self, t, n):
        assert mean_transform([t] * n).is_close(t, 1e-6, 1e-6)

    @given(transforms)
    def test_mean_invariant_to_quaternion_sign(self, t):
        flipped = RigidTransform(quaternion=-t.quaternion, translation=t.translation)
        mean = mean_transform([t, flipped, t])
        assert mean.rotation_distance_deg(t) < 1e-6
