"""Property-based tests of the observed-critical-path reconstruction.

The tiling invariant — the gating chain's phase-attributed durations
sum exactly to the run span's makespan — must hold for *any* workflow
shape and policy, not just the Bronze Standard: this is what makes the
chain an attribution (nothing lost, nothing double-counted) rather
than a heuristic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MoteurEnactor, OptimizationConfig
from repro.observability import InstrumentationBus, observed_critical_path
from repro.observability.critical_path import PHASE_KEYS
from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.workflow.patterns import chain_workflow

matrices = st.lists(
    st.lists(st.floats(0.0, 20.0, allow_nan=False), min_size=1, max_size=5),
    min_size=1,
    max_size=4,
).filter(lambda rows: len({len(r) for r in rows}) == 1)

POLICIES = [
    ("NOP", OptimizationConfig.nop()),
    ("DP", OptimizationConfig.dp()),
    ("SP", OptimizationConfig.sp()),
    ("SP+DP", OptimizationConfig.sp_dp()),
]


def instrumented_enact(times, config):
    engine = Engine()

    def factory(name, inputs, outputs):
        index = int(name[1:]) - 1

        def duration(inputs_dict):
            return float(times[index][inputs_dict["x"].value])

        return LocalService(
            engine, name, inputs, outputs,
            function=lambda x: {"y": x}, duration=duration,
        )

    workflow = chain_workflow(factory, len(times))
    bus = InstrumentationBus()
    collector = bus.collector()
    result = MoteurEnactor(
        engine, workflow, config, instrumentation=bus
    ).run({"input": list(range(len(times[0])))})
    return result, collector.spans


@settings(max_examples=25, deadline=None)
@given(matrices)
def test_phase_totals_sum_to_makespan_all_policies(times):
    for label, config in POLICIES:
        result, spans = instrumented_enact(times, config)
        observed = observed_critical_path(spans)
        assert observed.policy == label
        assert abs(observed.makespan - result.makespan) < 1e-6, (label, times)
        # tiling: step durations telescope to the makespan...
        assert abs(observed.total - observed.makespan) < 1e-6, (label, times)
        # ...and per-step phase buckets re-tile each step exactly
        phase_sum = sum(observed.phase_totals().values())
        assert abs(phase_sum - observed.makespan) < 1e-6, (label, times)
        for step in observed.steps:
            assert abs(sum(step.phases.values()) - step.duration) < 1e-9
            assert set(step.phases) <= set(PHASE_KEYS)


@settings(max_examples=25, deadline=None)
@given(matrices)
def test_chain_is_contiguous_and_inside_the_run(times):
    for _label, config in POLICIES:
        _result, spans = instrumented_enact(times, config)
        observed = observed_critical_path(spans)
        cursor = observed.run_start
        for step in observed.steps:
            # each step starts exactly where the previous one ended
            assert abs(step.start - cursor) <= 1e-9, (step, times)
            assert step.end >= step.start
            cursor = step.end
        # the walk stops within _EPS (1e-9) of the run start, so a run
        # whose whole makespan is <= 1e-9 legitimately has no steps
        assert abs(cursor - observed.run_end) <= 1e-9
