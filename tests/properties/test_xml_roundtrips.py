"""Property-based round-trip tests for the XML dialects."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.services.descriptor import (
    AccessMethod,
    ExecutableDescriptor,
    InputSpec,
    OutputSpec,
    SandboxSpec,
    descriptor_from_xml,
    descriptor_to_xml,
)
from repro.workflow.datasets import DataItem, InputDataSet, dataset_from_xml, dataset_to_xml

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_-"),
    min_size=1,
    max_size=12,
)
options = st.one_of(st.none(), names.map(lambda n: f"-{n}"))
accesses = st.one_of(
    st.none(),
    st.builds(
        AccessMethod,
        type=st.sampled_from(["URL", "GFN", "local"]),
        path=st.one_of(st.none(), names.map(lambda n: f"http://{n}")),
    ),
)


@st.composite
def descriptors(draw):
    input_names = draw(st.lists(names, min_size=0, max_size=4, unique=True))
    output_names = draw(
        st.lists(names, min_size=1, max_size=3, unique=True).filter(
            lambda outs: not set(outs) & set(input_names)
        )
    )
    inputs = tuple(
        InputSpec(name=n, option=draw(options), access=draw(accesses)) for n in input_names
    )
    outputs = tuple(
        OutputSpec(
            name=n,
            option=draw(options),
            access=draw(accesses) or AccessMethod("GFN"),
        )
        for n in output_names
    )
    sandboxes = tuple(
        SandboxSpec(
            name=draw(names),
            access=AccessMethod("URL", "http://host"),
            value=draw(names),
        )
        for _ in range(draw(st.integers(0, 2)))
    )
    return ExecutableDescriptor(
        name=draw(names),
        access=AccessMethod("URL", "http://server"),
        value=draw(names),
        inputs=inputs,
        outputs=outputs,
        sandboxes=sandboxes,
    )


@settings(max_examples=60, deadline=None)
@given(descriptors())
def test_descriptor_round_trip(descriptor):
    text = descriptor_to_xml(descriptor)
    again = descriptor_from_xml(text)
    assert again == descriptor


@settings(max_examples=60, deadline=None)
@given(
    st.dictionaries(
        names,
        st.lists(
            st.one_of(
                st.builds(
                    DataItem,
                    value=st.text(min_size=1, max_size=8, alphabet="abc123"),
                ),
                st.builds(
                    DataItem,
                    gfn=names.map(lambda n: f"gfn://{n}"),
                    size=st.floats(0, 1e9, allow_nan=False),
                ),
            ),
            min_size=0,
            max_size=5,
        ),
        min_size=0,
        max_size=4,
    )
)
def test_dataset_round_trip(contents):
    dataset = InputDataSet("prop")
    for input_name, items in contents.items():
        for item in items:
            dataset.add(input_name, item)
    again = dataset_from_xml(dataset_to_xml(dataset))
    for input_name in dataset.input_names():
        original = dataset.items(input_name)
        parsed = again.items(input_name)
        assert [i.gfn for i in original] == [i.gfn for i in parsed]
        assert [
            str(i.value) if i.value is not None else None for i in original
        ] == [i.value for i in parsed]
        assert [i.size for i in original] == [i.size for i in parsed]
