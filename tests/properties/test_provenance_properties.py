"""Property-based tests for history trees and iteration strategies."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.iteration import IterationEngine
from repro.core.provenance import HistoryTree, compatible
from repro.core.tokens import DataToken
from repro.services.base import GridData


def token(source, index):
    return DataToken(GridData(value=index), HistoryTree.leaf(source, index))


def derived(producer, base):
    return DataToken(GridData(value=base.value), HistoryTree.derive(producer, (base.history,)))


class TestCompatibilityProperties:
    @given(st.integers(0, 50), st.integers(0, 50))
    def test_reflexive_and_symmetric(self, i, j):
        a = HistoryTree.leaf("S", i)
        b = HistoryTree.leaf("S", j)
        assert compatible(a, a)
        assert compatible(a, b) == compatible(b, a)
        assert compatible(a, b) == (i == j)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=6, unique=True))
    def test_derivation_preserves_compatibility(self, indices):
        # Processing never changes what a datum is derived from.
        leaves = [HistoryTree.leaf("S", i) for i in indices]
        processed = [HistoryTree.derive("P", (leaf,)) for leaf in leaves]
        for leaf, proc in zip(leaves, processed):
            assert compatible(leaf, proc)
        for a, pa in zip(leaves, processed):
            for b, pb in zip(leaves, processed):
                assert compatible(pa, pb) == compatible(a, b)

    @given(st.integers(0, 30), st.integers(2, 8))
    def test_deep_chains_keep_identity(self, index, depth):
        node = HistoryTree.leaf("S", index)
        for level in range(depth):
            node = HistoryTree.derive(f"P{level}", (node,))
        assert node.lineage == {"S": frozenset({index})}
        assert node.label() == f"D{index}"


class TestDotProductProperties:
    @given(
        st.integers(1, 10),
        st.integers(1, 10),
        st.randoms(use_true_random=False),
    )
    def test_min_cardinality_under_any_arrival_order(self, n, m, rnd):
        """min(n, m) bindings fire no matter how arrivals interleave."""
        eng = IterationEngine(("a", "b"), "dot")
        offers = [("a", derived("P1", token("S", i))) for i in range(n)]
        offers += [("b", derived("P2", token("S", j))) for j in range(m)]
        rnd.shuffle(offers)
        fired = []
        for port, tok in offers:
            fired.extend(eng.offer(port, tok))
        assert len(fired) == min(n, m)
        # and every binding is causally consistent: same source index
        for binding in fired:
            ia = next(iter(binding["a"].history.lineage["S"]))
            ib = next(iter(binding["b"].history.lineage["S"]))
            assert ia == ib

    @given(st.integers(0, 8), st.integers(0, 8))
    def test_independent_sources_min_cardinality(self, n, m):
        eng = IterationEngine(("a", "b"), "dot")
        fired = 0
        for i in range(n):
            fired += len(eng.offer("a", token("A", i)))
        for j in range(m):
            fired += len(eng.offer("b", token("B", j)))
        assert fired == min(n, m)


class TestCrossProductProperties:
    @given(st.integers(0, 6), st.integers(0, 6), st.randoms(use_true_random=False))
    def test_cartesian_cardinality_under_any_order(self, n, m, rnd):
        eng = IterationEngine(("a", "b"), "cross")
        offers = [("a", token("A", i)) for i in range(n)]
        offers += [("b", token("B", j)) for j in range(m)]
        rnd.shuffle(offers)
        combos = set()
        for port, tok in offers:
            for binding in eng.offer(port, tok):
                combos.add((binding["a"].value, binding["b"].value))
        assert len(combos) == n * m

    @given(st.integers(1, 5), st.integers(1, 5))
    def test_result_lineage_is_union(self, i, j):
        a = token("A", i)
        b = token("B", j)
        node = HistoryTree.derive("X", (a.history, b.history))
        assert node.lineage == {"A": frozenset({i}), "B": frozenset({j})}
