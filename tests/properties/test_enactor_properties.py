"""Property-based tests: the enactor equals the analytical model.

For any random T_ij matrix (services x items) on the ideal substrate,
the enacted makespan of each policy must be exactly the corresponding
closed form — this is the strongest validation of the execution
semantics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MoteurEnactor, OptimizationConfig
from repro.model.makespan import makespans
from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.workflow.patterns import chain_workflow

matrices = st.lists(
    st.lists(st.floats(0.0, 20.0, allow_nan=False), min_size=1, max_size=5),
    min_size=1,
    max_size=4,
).filter(lambda rows: len({len(r) for r in rows}) == 1)


def enact(times, label, config):
    engine = Engine()

    def factory(name, inputs, outputs):
        index = int(name[1:]) - 1

        def duration(inputs_dict):
            return float(times[index][inputs_dict["x"].value])

        return LocalService(
            engine, name, inputs, outputs,
            function=lambda x: {"y": x}, duration=duration,
        )

    workflow = chain_workflow(factory, len(times))
    result = MoteurEnactor(engine, workflow, config).run(
        {"input": list(range(len(times[0])))}
    )
    return result.makespan


POLICIES = [
    ("NOP", OptimizationConfig.nop()),
    ("DP", OptimizationConfig.dp()),
    ("SP", OptimizationConfig.sp()),
    ("SP+DP", OptimizationConfig.sp_dp()),
]


@settings(max_examples=30, deadline=None)
@given(matrices)
def test_simulator_equals_model_all_policies(times):
    expected = makespans(times)
    for label, config in POLICIES:
        measured = enact(times, label, config)
        assert abs(measured - expected[label]) < 1e-6, (label, times)


@settings(max_examples=20, deadline=None)
@given(matrices)
def test_policy_dominance_in_simulation(times):
    nop = enact(times, "NOP", OptimizationConfig.nop())
    dp = enact(times, "DP", OptimizationConfig.dp())
    sp = enact(times, "SP", OptimizationConfig.sp())
    dsp = enact(times, "SP+DP", OptimizationConfig.sp_dp())
    assert dsp <= dp + 1e-9 <= nop + 1e-9
    assert dsp <= sp + 1e-9 <= nop + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.floats(0.1, 20.0, allow_nan=False), min_size=1, max_size=8),
)
def test_values_preserved_regardless_of_policy(durations):
    """Optimizations must never change computed results, only timing."""
    outputs = []
    for _, config in POLICIES:
        engine = Engine()

        def factory(name, inputs, outputs_):
            return LocalService(
                engine, name, inputs, outputs_,
                function=lambda x: {"y": x * 2 + 1},
                duration=lambda d: durations[d["x"].value % len(durations)],
            )

        workflow = chain_workflow(factory, 2)
        result = MoteurEnactor(engine, workflow, config).run(
            {"input": list(range(len(durations)))}
        )
        outputs.append(sorted(result.output_values("result")))
    assert all(o == outputs[0] for o in outputs)
