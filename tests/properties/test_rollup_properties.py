"""Property-based tests for the control-plane rollup invariants.

Two contracts the ops layer stakes its numbers on, checked against
randomly generated multi-tenant schedules:

* **sums-to-global** — per-tenant rollups sum exactly to the
  independently accumulated global rollup (all generated quantities
  are integer-valued, so float summation is exact);
* **replay == live** — folding the span stream and the audit trail
  interleaved (as the live service does) produces the same snapshot as
  replaying the two streams separately after the fact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.ops.audit import AuditEvent
from repro.observability.ops.rollup import ControlPlaneTelemetry
from repro.observability.spans import Span

TENANTS = ("alice", "bob", "carol")

#: per-run lifecycle shapes the scheduler can actually produce
LIFECYCLES = (
    ("submit",),
    ("submit", "finish-queued"),           # cancelled while queued
    ("submit", "admit"),
    ("submit", "quota-block", "admit"),
    ("submit", "admit", "finish-done"),
    ("submit", "admit", "finish-failed"),
    ("submit", "admit", "finish-cancelled"),
    ("submit", "recover", "admit", "finish-done"),
)

run_strategy = st.fixed_dictionaries(
    {
        "tenant": st.sampled_from(TENANTS),
        "lifecycle": st.sampled_from(LIFECYCLES),
        "wait": st.integers(0, 500),
        "makespan": st.integers(1, 900),
        "jobs": st.integers(0, 4),
        "job_fails": st.integers(0, 2),
        "invocations": st.integers(0, 5),
        "cpu": st.integers(0, 300),
    }
)


def build_streams(runs):
    """Expand run descriptions into (time, audit-or-span) event lists."""
    events = []
    spans = []
    clock = 0
    for index, run in enumerate(runs):
        run_id = f"svc-{index:04d}"
        tenant = run["tenant"]

        def audit(kind, **attributes):
            nonlocal clock
            clock += 1
            events.append(
                AuditEvent(
                    kind=kind,
                    time=float(clock),
                    run_id=run_id,
                    tenant=tenant,
                    sequence=len(events) + 1,
                    attributes=attributes,
                )
            )

        for step in run["lifecycle"]:
            if step == "submit":
                audit("submit", n_items=1, weight=1.0)
            elif step == "quota-block":
                audit("quota-block")
            elif step == "recover":
                # the scheduler re-queues an orphan: it was running in a
                # previous life, so this life never saw its submit
                events.pop()  # replace the submit from this lifecycle
                audit("recover", resume=True)
            elif step == "admit":
                audit("admit", wait=float(run["wait"]), usage={tenant: 1.0})
            elif step.startswith("finish"):
                origin = "queued" if step == "finish-queued" else "running"
                state = (
                    "cancelled"
                    if step.endswith("queued")
                    else step.split("-", 1)[1]
                )
                audit(
                    "finish",
                    state=state,
                    makespan=float(run["makespan"]),
                    usage=float(run["makespan"]),
                    **{"from": origin},
                )
        if "admit" in run["lifecycle"]:
            start = float(clock)
            for job in range(run["jobs"]):
                status = "error" if job < run["job_fails"] else "ok"
                spans.append(
                    make_span(
                        "grid.job", start, start + 10.0, status,
                        tenant=tenant, run=run_id,
                    )
                )
                spans.append(
                    make_span(
                        "job.queue", start, start + float(run["wait"]),
                        "ok", tenant=tenant, run=run_id,
                    )
                )
                spans.append(
                    make_span(
                        "job.run", start, start + float(run["cpu"]),
                        "ok", tenant=tenant, run=run_id,
                    )
                )
            for _ in range(run["invocations"]):
                spans.append(
                    make_span(
                        "invocation", start, start + 5.0, "ok",
                        category="enactor", kind="invocation",
                        tenant=tenant, run=run_id,
                    )
                )
    return events, spans


_SPAN_IDS = iter(range(10_000_000))


def make_span(name, start, end, status, category="grid", **attributes):
    span = Span(
        name=name,
        category=category,
        span_id=f"p{next(_SPAN_IDS)}",
        trace_id="prop",
        start=start,
        attributes=attributes,
    )
    span.close(end, status=status)
    return span


ADDITIVE_INT_FIELDS = (
    "submitted", "done", "failed", "cancelled", "recovered", "quota_blocks",
    "invocations", "jobs_started", "jobs_completed", "jobs_failed",
    "queued", "running",
)


class TestRollupInvariants:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(run_strategy, min_size=0, max_size=12))
    def test_per_tenant_sums_equal_global_exactly(self, runs):
        telemetry = ControlPlaneTelemetry()
        events, spans = build_streams(runs)
        telemetry.replay(spans)
        telemetry.replay_audit(events)

        totals = telemetry.totals()
        rollups = telemetry.rollups()
        for attribute in ADDITIVE_INT_FIELDS:
            assert sum(getattr(r, attribute) for r in rollups) == getattr(
                totals, attribute
            ), attribute
        # integer-valued floats sum exactly regardless of order
        assert sum(r.cpu_seconds for r in rollups) == totals.cpu_seconds
        assert sorted(
            w for r in rollups for w in r.admission_waits
        ) == sorted(totals.admission_waits)
        assert sorted(
            m for r in rollups for m in r.makespans
        ) == sorted(totals.makespans)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(run_strategy, min_size=0, max_size=12),
        st.randoms(use_true_random=False),
    )
    def test_replay_equals_live_under_any_interleaving(self, runs, rng):
        events, spans = build_streams(runs)

        # live: the audit trail arrives in (time, sequence) order — as
        # the store emits it — with spans interleaved at random points
        slots = [rng.randint(0, len(events)) for _ in spans]
        live = ControlPlaneTelemetry()
        recorded = []  # the span stream in the order the live fold saw it

        def feed_spans(position):
            for span, slot in zip(spans, slots):
                if slot == position:
                    live.on_start(span)
                    live.on_end(span)
                    recorded.append(span)

        for position, event in enumerate(events):
            feed_spans(position)
            live.on_audit(event)
        feed_spans(len(events))

        # replay: the recorded streams fed separately after the fact
        replayed = ControlPlaneTelemetry()
        replayed.replay(recorded)
        replayed.replay_audit(events)
        assert replayed.snapshot() == live.snapshot()
