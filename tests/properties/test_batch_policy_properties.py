"""Property-based tests for batch-queue policies and batching services."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.batch import FairSharePolicy, FifoPolicy
from repro.grid.job import JobDescription, JobRecord
from repro.grid.resources import QueueEntry
from repro.sim.engine import Engine


def entries(engine, specs):
    """specs: list of (name, owner)."""
    return [
        QueueEntry(
            record=JobRecord(JobDescription(name=name, owner=owner)),
            completion=engine.event(),
        )
        for name, owner in specs
    ]


owners = st.sampled_from(["alice", "bob", "carol"])
job_lists = st.lists(owners, min_size=1, max_size=30).map(
    lambda sequence: [(f"j{i}-{owner}", owner) for i, owner in enumerate(sequence)]
)


class TestFifoProperties:
    @given(job_lists)
    def test_exact_arrival_order(self, specs):
        engine = Engine()
        policy = FifoPolicy(engine)
        for entry in entries(engine, specs):
            policy.put(entry)
        drained = [policy.get().value.record.name for _ in specs]
        assert drained == [name for name, _ in specs]


class TestFairShareProperties:
    @given(job_lists)
    def test_serves_everything_exactly_once(self, specs):
        engine = Engine()
        policy = FairSharePolicy(engine)
        for entry in entries(engine, specs):
            policy.put(entry)
        drained = [policy.get().value.record.name for _ in specs]
        assert sorted(drained) == sorted(name for name, _ in specs)

    @given(job_lists)
    def test_fifo_within_each_owner(self, specs):
        engine = Engine()
        policy = FairSharePolicy(engine)
        for entry in entries(engine, specs):
            policy.put(entry)
        drained = [policy.get().value.record for _ in specs]
        per_owner_positions = {}
        for record in drained:
            per_owner_positions.setdefault(record.description.owner, []).append(
                record.name
            )
        for owner, served in per_owner_positions.items():
            submitted = [name for name, o in specs if o == owner]
            assert served == submitted

    @given(job_lists)
    def test_no_owner_waits_more_than_one_rotation(self, specs):
        """Among the first k picks (k = number of distinct owners with
        queued work), every owner appears — the starvation-freedom bound."""
        engine = Engine()
        policy = FairSharePolicy(engine)
        for entry in entries(engine, specs):
            policy.put(entry)
        distinct = {owner for _, owner in specs}
        first_picks = [
            policy.get().value.record.description.owner
            for _ in range(len(distinct))
        ]
        assert set(first_picks) == distinct


class TestBatchingProperties:
    @given(
        st.integers(1, 16),
        st.integers(1, 24),
    )
    @settings(max_examples=25, deadline=None)
    def test_job_count_is_ceiling_division(self, batch_size, items):
        from repro.grid.middleware import Grid
        from repro.grid.overhead import OverheadModel
        from repro.grid.resources import ComputingElement, Site
        from repro.grid.storage import StorageElement
        from repro.grid.transfer import NetworkModel
        from repro.services.base import GridData
        from repro.services.batching import BatchingService
        from repro.services.descriptor import (
            AccessMethod, ExecutableDescriptor, InputSpec, OutputSpec,
        )
        from repro.services.wrapper import GenericWrapperService
        from repro.util.rng import RandomStreams

        engine = Engine()
        ce = ComputingElement(engine, "ce", "s0", infinite=True)
        grid = Grid(
            engine,
            RandomStreams(seed=0),
            sites=[Site("s0", [ce], StorageElement("se", "s0"))],
            overhead=OverheadModel.zero(),
            network=NetworkModel.instantaneous(),
        )
        descriptor = ExecutableDescriptor(
            name="t", access=AccessMethod("URL", "http://h"), value="t",
            inputs=(InputSpec("x", "-i", AccessMethod("GFN")),),
            outputs=(OutputSpec("y", "-o"),),
        )
        inner = GenericWrapperService(
            engine, grid, descriptor, program=lambda x: {"y": x}, compute_time=1.0
        )
        service = BatchingService(engine, inner, batch_size=batch_size)
        events = [service.invoke({"x": GridData(i)}) for i in range(items)]
        service.flush()
        results = engine.run(until=engine.all_of(events))
        assert len(grid.records) == -(-items // batch_size)  # ceil
        assert [r["y"].value for r in results] == list(range(items))
