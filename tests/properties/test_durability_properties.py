"""S4: the partition property extends to data loss under outages.

For any random set of destroyed input replicas and any random *finite*
outage schedule, under every optimization policy (NOP/DP/SP/SP+DP) a
grid-backed best-effort enactment:

* never raises,
* loses exactly the items whose replicas were destroyed — outages only
  *delay* stage-in (every window ends), they never kill a lineage,
* partitions the inputs exactly into survived and lost.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MoteurEnactor, OptimizationConfig
from repro.grid.faults import FaultModel, OutageSchedule
from repro.grid.middleware import Grid
from repro.grid.overhead import OverheadModel
from repro.grid.resources import ComputingElement, Site, WorkerNode
from repro.grid.storage import LogicalFile, StorageElement
from repro.grid.transfer import LinkParameters, NetworkModel
from repro.services.descriptor import (
    AccessMethod,
    ExecutableDescriptor,
    InputSpec,
    OutputSpec,
)
from repro.services.wrapper import GenericWrapperService
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams
from repro.util.units import MEBIBYTE
from repro.workflow.datasets import InputDataSet
from repro.workflow.patterns import chain_workflow

POLICIES = [
    OptimizationConfig.nop(),
    OptimizationConfig.dp(),
    OptimizationConfig.sp(),
    OptimizationConfig.sp_dp(),
]

SUBJECTS = ("se0", "se1", "s1")

# windows are finite (end <= 2000), so outages always heal
windows = st.tuples(
    st.floats(0.0, 1500.0), st.floats(1.0, 500.0)
).map(lambda w: (w[0], w[0] + w[1]))

# (number of inputs, doomed item indices, outage windows per subject)
scenarios = st.integers(1, 4).flatmap(
    lambda n_items: st.tuples(
        st.just(n_items),
        st.sets(st.integers(0, n_items - 1), max_size=n_items),
        st.fixed_dictionaries(
            {}, optional={s: st.lists(windows, max_size=2) for s in SUBJECTS}
        ),
    )
)


def stage_descriptor(name):
    return ExecutableDescriptor(
        name=name,
        access=AccessMethod("URL", f"http://host/{name}"),
        value=name,
        inputs=(InputSpec("x", "-i", AccessMethod("GFN")),),
        outputs=(OutputSpec("y", "-o"),),
    )


def build_grid(engine, streams, schedule):
    sites = [
        Site(
            name=f"s{i}",
            computing_elements=[
                ComputingElement(
                    engine, f"ce{i}", f"s{i}", workers=[WorkerNode(f"w{i}", slots=4)]
                )
            ],
            storage_element=StorageElement(f"se{i}", site=f"s{i}"),
        )
        for i in range(2)
    ]
    return Grid(
        engine,
        streams,
        sites=sites,
        overhead=OverheadModel.zero(),
        network=NetworkModel(
            lan=LinkParameters(latency=0.5, bandwidth=10 * MEBIBYTE),
            wan=LinkParameters(latency=2.0, bandwidth=10 * MEBIBYTE),
        ),
        faults=FaultModel.none(),
        outages=schedule,
    )


def enact_with_data_loss(n_items, doomed, window_map, config):
    engine = Engine()
    streams = RandomStreams(seed=11)
    schedule = (
        OutageSchedule.from_windows(window_map)
        if any(window_map.values())
        else OutageSchedule.none()
    )
    grid = build_grid(engine, streams, schedule)

    dataset = InputDataSet()
    for i in range(n_items):
        gfn = f"gfn://item-{i}"
        file = LogicalFile(gfn, size=1 * MEBIBYTE)
        grid.add_input_file(file, site_name=f"s{i % 2}")
        dataset.add_file("input", gfn, 1 * MEBIBYTE, value=i)
    for i in doomed:
        for se in grid.catalog.replicas(f"gfn://item-{i}"):
            se.mark_lost(f"gfn://item-{i}")

    def factory(name, inputs, outputs):
        return GenericWrapperService(
            engine,
            grid,
            stage_descriptor(name),
            program=lambda x: {"y": x},
            compute_time=1.0,
        )

    workflow = chain_workflow(factory, 1)
    enactor = MoteurEnactor(
        engine, workflow, config.with_best_effort(), grid=grid
    )
    return enactor.run(dataset)


@settings(max_examples=12, deadline=None)
@given(scenarios)
def test_only_destroyed_replicas_lose_items_under_any_outage(scenario):
    n_items, doomed, window_map = scenario
    window_map = {k: v for k, v in window_map.items() if v}
    for config in POLICIES:
        result = enact_with_data_loss(n_items, doomed, window_map, config)

        survived = set(result.output_values("result"))
        lost = set(result.failures.poisoned_lineage().get("input", frozenset()))

        label = (config.label, n_items, sorted(doomed), sorted(window_map))
        assert survived & lost == set(), label
        assert survived | lost == set(range(n_items)), label
        # outages only delay; destroyed replicas are the only data loss
        assert lost == set(doomed), label
        assert len(result.failures.dead_letters) == len(doomed), label


@settings(max_examples=6, deadline=None)
@given(
    st.integers(1, 3),
    st.fixed_dictionaries(
        {}, optional={s: st.lists(windows, min_size=1, max_size=2) for s in SUBJECTS}
    ),
)
def test_pure_outages_never_lose_anything(n_items, window_map):
    window_map = {k: v for k, v in window_map.items() if v}
    for config in POLICIES:
        result = enact_with_data_loss(n_items, frozenset(), window_map, config)
        assert result.failures.empty, (config.label, sorted(window_map))
        assert set(result.output_values("result")) == set(range(n_items))
