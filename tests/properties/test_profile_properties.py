"""Property: scope self times always sum to the root cumulative time.

Whatever shape the scope tree takes — however enter/exit interleave,
however deep the nesting, however often names repeat — every quantum
the clock hands out while a scope is open must be accounted to exactly
one scope's self time.  The flamegraph exports and the per-component
``perf.profile.*`` counters both lean on this invariant.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.profiling import ManualClock, Profiler, TickClock

NAMES = ("engine.step", "enactor.invoke", "grid.submit", "broker.rank")

# (name_index, advance_micros) per step; the replay below balances the
# enters/exits itself, so any list of steps is a valid program.
programs = st.lists(
    st.tuples(st.integers(0, len(NAMES) - 1), st.integers(0, 50)),
    max_size=40,
)


def replay(profiler, clock, program, max_depth=6):
    """Turn a step list into a balanced enter/advance/exit sequence."""
    for name_index, micros in program:
        if profiler.depth >= max_depth or (profiler.depth > 0 and micros % 3 == 0):
            profiler.exit()
        else:
            profiler.enter(NAMES[name_index])
        if clock is not None:
            clock.advance(micros * 1e-6)
    while profiler.depth:
        profiler.exit()


def total_self_time(profile):
    return sum(node.self_time for _path, node in profile.walk())


class TestSelfTimesSumToRootCum:
    @given(program=programs)
    @settings(max_examples=200, deadline=None)
    def test_manual_clock(self, program):
        clock = ManualClock()
        profiler = Profiler(clock=clock)
        replay(profiler, clock, program)
        profile = profiler.snapshot()
        assert total_self_time(profile) == pytest.approx(
            profile.total_time, abs=1e-12
        )

    @given(program=programs)
    @settings(max_examples=200, deadline=None)
    def test_tick_clock(self, program):
        # The deterministic clock advances on every reading, including
        # the profiler's own enter/exit bookkeeping reads — the
        # invariant must absorb that too.
        profiler = Profiler(clock=TickClock())
        replay(profiler, None, program)
        profile = profiler.snapshot()
        assert total_self_time(profile) == pytest.approx(
            profile.total_time, abs=1e-12
        )

    @given(program=programs)
    @settings(max_examples=100, deadline=None)
    def test_component_self_times_partition_the_total(self, program):
        clock = ManualClock()
        profiler = Profiler(clock=clock)
        replay(profiler, clock, program)
        profile = profiler.snapshot()
        by_component = sum(
            row["self"] for row in profile.by_component().values()
        )
        assert by_component == pytest.approx(profile.total_time, abs=1e-12)
