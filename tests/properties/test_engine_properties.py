"""Property-based tests for the DES kernel."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.resources import Resource, Store


class TestClockProperties:
    @given(st.lists(st.floats(0.0, 1000.0, allow_nan=False), min_size=1, max_size=30))
    def test_time_never_goes_backwards(self, delays):
        engine = Engine()
        observed = []

        def watcher(eng, delay):
            yield eng.timeout(delay)
            observed.append(eng.now)

        for delay in delays:
            engine.process(watcher(engine, delay))
        engine.run()
        assert observed == sorted(observed)
        assert engine.now == max(delays)

    @given(st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1, max_size=20))
    def test_determinism(self, delays):
        def run_once():
            engine = Engine()
            log = []

            def proc(eng, i, delay):
                yield eng.timeout(delay)
                log.append((i, eng.now))

            for i, delay in enumerate(delays):
                engine.process(proc(engine, i, delay))
            engine.run()
            return log

        assert run_once() == run_once()


class TestResourceProperties:
    @given(
        st.integers(1, 5),
        st.lists(st.floats(0.1, 10.0, allow_nan=False), min_size=1, max_size=20),
    )
    def test_concurrency_never_exceeds_capacity(self, capacity, durations):
        engine = Engine()
        resource = Resource(engine, capacity)
        active = [0]
        peak = [0]

        def worker(eng, duration):
            request = resource.request()
            yield request
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            try:
                yield eng.timeout(duration)
            finally:
                active[0] -= 1
                resource.release(request)

        for duration in durations:
            engine.process(worker(engine, duration))
        engine.run()
        assert peak[0] <= capacity
        assert active[0] == 0
        assert resource.in_use == 0

    @given(
        st.integers(1, 4),
        st.lists(st.floats(0.5, 5.0, allow_nan=False), min_size=1, max_size=15),
    )
    def test_total_work_conserved(self, capacity, durations):
        """Makespan >= total work / capacity (no work invented or lost)."""
        engine = Engine()
        resource = Resource(engine, capacity)

        def worker(eng, duration):
            request = resource.request()
            yield request
            try:
                yield eng.timeout(duration)
            finally:
                resource.release(request)

        for duration in durations:
            engine.process(worker(engine, duration))
        engine.run()
        assert engine.now >= sum(durations) / capacity - 1e-9
        assert engine.now >= max(durations) - 1e-9


class TestStoreProperties:
    @given(st.lists(st.integers(), min_size=0, max_size=30))
    def test_fifo_preserves_sequence(self, items):
        engine = Engine()
        store = Store(engine)
        received = []

        def consumer(eng):
            for _ in range(len(items)):
                value = yield store.get()
                received.append(value)

        def producer(eng):
            for item in items:
                yield eng.timeout(1.0)
                store.put(item)

        engine.process(consumer(engine))
        engine.process(producer(engine))
        engine.run()
        assert received == items
