"""Property-based tests for best-effort failure containment.

For any random chain workflow and any random set of injected stage
failures, under every optimization policy:

* a best-effort enactment never raises,
* the inputs partition exactly into *lost* (the union of the failed
  lineages) and *survived* (those whose value reaches the sink) — no
  item is both, none goes missing,
* a failure-free workload produces the same outputs best-effort as
  strict, with an empty report.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MoteurEnactor, OptimizationConfig
from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.workflow.patterns import chain_workflow

POLICIES = [
    OptimizationConfig.nop(),
    OptimizationConfig.dp(),
    OptimizationConfig.sp(),
    OptimizationConfig.sp_dp(),
]

# (chain length, number of inputs, set of (stage, input index) fault sites)
scenarios = st.integers(1, 4).flatmap(
    lambda length: st.integers(1, 5).flatmap(
        lambda n_items: st.tuples(
            st.just(length),
            st.just(n_items),
            st.sets(
                st.tuples(
                    st.integers(1, length), st.integers(0, n_items - 1)
                ),
                max_size=6,
            ),
        )
    )
)


def enact_best_effort(length, n_items, faults, config):
    """Run a +0 chain that dies at the given (stage, item) sites."""
    engine = Engine()

    def factory(name, inputs, outputs):
        stage = int(name[1:])

        def fn(x):
            if (stage, x) in faults:
                raise RuntimeError(f"injected at {name} item {x}")
            return {"y": x}  # identity: the value IS the input index

        return LocalService(engine, name, inputs, outputs, function=fn, duration=1.0)

    workflow = chain_workflow(factory, length)
    enactor = MoteurEnactor(engine, workflow, config.with_best_effort())
    return enactor.run({"input": list(range(n_items))})


@settings(max_examples=40, deadline=None)
@given(scenarios)
def test_lost_and_survived_partition_the_inputs(scenario):
    length, n_items, faults = scenario
    poisoned_items = {item for _stage, item in faults}
    for config in POLICIES:
        result = enact_best_effort(length, n_items, faults, config)

        survived = set(result.output_values("result"))
        lost = set(result.failures.poisoned_lineage().get("input", frozenset()))

        label = (config.label, length, n_items, sorted(faults))
        # exact partition: no overlap, no missing item
        assert survived & lost == set(), label
        assert survived | lost == set(range(n_items)), label
        # the first fault on an item kills it; later sites on the same
        # (already poisoned) lineage are skipped, not re-failed
        assert lost == poisoned_items, label
        # every lost item is accounted for as a sink dead letter
        assert len(result.failures.dead_letters) == len(lost), label


@settings(max_examples=15, deadline=None)
@given(scenarios)
def test_failure_count_matches_first_faults(scenario):
    length, n_items, faults = scenario
    # the root failure for item i happens at its EARLIEST faulty stage
    first_fault = {}
    for stage, item in sorted(faults):
        first_fault.setdefault(item, stage)
    for config in POLICIES:
        result = enact_best_effort(length, n_items, faults, config)
        report = result.failures
        assert len(report.failures) == len(first_fault), config.label
        observed = {
            (failure.processor, failure.lineage["input"][0])
            for failure in report.failures
        }
        expected = {(f"P{stage}", item) for item, stage in first_fault.items()}
        assert observed == expected, config.label


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 4), st.integers(1, 5))
def test_clean_runs_match_strict_and_report_nothing(length, n_items):
    for config in POLICIES:
        best_effort = enact_best_effort(length, n_items, frozenset(), config)
        assert best_effort.failures.empty, config.label

        engine = Engine()
        workflow = chain_workflow(
            lambda name, i, o: LocalService(
                engine, name, i, o, function=lambda x: {"y": x}, duration=1.0
            ),
            length,
        )
        strict = MoteurEnactor(engine, workflow, config).run(
            {"input": list(range(n_items))}
        )
        assert sorted(best_effort.output_values("result")) == sorted(
            strict.output_values("result")
        ), config.label
