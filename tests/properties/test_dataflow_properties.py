"""Property-based tests for data-plane byte accounting.

The accounting invariant the whole layer rests on: byte counts are
interned integers, so every aggregation (per-link, per-service,
per-purpose) sums *exactly* to the global total — no float drift, ever.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.grid.storage import LogicalFile
from repro.grid.transfer import NetworkModel
from repro.observability.dataflow import TRANSFER_PURPOSES, DataFlowCollector, TransferRecord

sites = st.sampled_from(["site00", "site01", "site02", "site03"])

records = st.builds(
    TransferRecord,
    time=st.floats(0.0, 1e6, allow_nan=False),
    src=sites,
    dst=sites,
    gfn=st.text(min_size=1, max_size=8),
    bytes=st.integers(0, 2**53),
    seconds=st.floats(0.0, 1e4, allow_nan=False),
    purpose=st.sampled_from(TRANSFER_PURPOSES),
    service=st.one_of(st.none(), st.sampled_from(["svcA", "svcB", "svcC"])),
)


def collector_of(items):
    collector = DataFlowCollector()
    collector.records.extend(items)
    return collector


class TestExactAggregation:
    @given(st.lists(records, max_size=50))
    def test_link_sums_equal_global_total(self, items):
        collector = collector_of(items)
        assert sum(collector.link_bytes().values()) == collector.total_bytes
        assert collector.total_bytes == sum(r.bytes for r in items)

    @given(st.lists(records, max_size=50))
    def test_service_and_purpose_sums_equal_global_total(self, items):
        collector = collector_of(items)
        assert sum(collector.service_bytes().values()) == collector.total_bytes
        assert sum(collector.purpose_bytes().values()) == collector.total_bytes

    @given(st.lists(records, max_size=50))
    def test_service_breakdown_tiles_each_link(self, items):
        collector = collector_of(items)
        link_bytes = collector.link_bytes()
        for link, services in collector.link_service_bytes().items():
            assert sum(services.values()) == link_bytes[link]

    @given(st.lists(records, max_size=50))
    def test_transfer_counts_tile_the_record_list(self, items):
        collector = collector_of(items)
        assert sum(collector.link_transfer_counts().values()) == len(items)


class TestIntInterning:
    @given(st.integers(0, 2**53))
    def test_integer_sizes_survive_logical_file(self, size):
        assert LogicalFile("gfn://x", size=size).size == size

    @given(st.floats(0.0, 2**40, allow_nan=False))
    def test_float_sizes_intern_to_nearest_int(self, size):
        interned = LogicalFile("gfn://x", size=size).size
        assert isinstance(interned, int)
        assert abs(interned - size) <= 0.5

    @given(st.lists(st.tuples(sites, sites, st.integers(0, 2**40)), max_size=30))
    def test_observed_network_bytes_sum_exactly(self, transfers):
        model = NetworkModel.instantaneous()
        collector = DataFlowCollector().watch_network(model)
        for src, dst, size in transfers:
            model.transfer_time(src, dst, size)
        assert collector.total_bytes == sum(size for _, _, size in transfers)
        assert sum(collector.link_bytes().values()) == collector.total_bytes
