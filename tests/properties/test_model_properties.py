"""Property-based tests for the analytical makespan model."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.model.makespan import (
    makespan_dp,
    makespan_dsp,
    makespan_sequential,
    makespan_sp,
    sp_start_matrix,
)

time_matrices = arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 8)),
    elements=st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
)


class TestOrderings:
    @given(time_matrices)
    def test_dsp_fastest_nop_slowest(self, T):
        nop = makespan_sequential(T)
        dp = makespan_dp(T)
        sp = makespan_sp(T)
        dsp = makespan_dsp(T)
        tol = 1e-9 + 1e-9 * max(1.0, nop)  # fp summation-order slack
        assert dsp <= dp + tol <= nop + 2 * tol
        assert dsp <= sp + tol <= nop + 2 * tol

    @given(time_matrices)
    def test_all_bounded_below_by_heaviest_item(self, T):
        floor = float(np.asarray(T).sum(axis=0).max())
        for value in (makespan_sequential(T), makespan_dp(T), makespan_sp(T)):
            assert value >= floor - 1e-9

    @given(time_matrices)
    def test_dsp_equals_heaviest_item(self, T):
        assert makespan_dsp(T) == float(np.asarray(T).sum(axis=0).max())


class TestSpRecursion:
    @given(time_matrices)
    def test_sp_start_times_monotone(self, T):
        m = sp_start_matrix(np.asarray(T))
        # a service starts item j+1 no earlier than item j
        assert (np.diff(m, axis=1) >= -1e-9).all()
        # item j starts at service i+1 no earlier than at service i
        assert (np.diff(m, axis=0) >= -1e-9).all()

    @given(time_matrices)
    def test_sp_between_dsp_and_nop(self, T):
        assert makespan_dsp(T) - 1e-9 <= makespan_sp(T) <= makespan_sequential(T) + 1e-9

    @given(
        st.integers(1, 6), st.integers(1, 8),
        st.floats(0.1, 50.0, allow_nan=False),
    )
    def test_constant_time_closed_form(self, n_w, n_d, T):
        matrix = np.full((n_w, n_d), T)
        assert abs(makespan_sp(matrix) - (n_d + n_w - 1) * T) < 1e-6 * max(1.0, T)

    @given(time_matrices)
    def test_sp_simulated_by_explicit_pipeline(self, T):
        """Cross-check equation (3) against a direct pipeline simulation."""
        arr = np.asarray(T)
        n_w, n_d = arr.shape
        finish = np.zeros((n_w, n_d))
        for i in range(n_w):
            for j in range(n_d):
                ready = finish[i - 1, j] if i > 0 else 0.0
                free = finish[i, j - 1] if j > 0 else 0.0
                finish[i, j] = max(ready, free) + arr[i, j]
        assert abs(makespan_sp(arr) - finish[-1, -1]) < 1e-9


class TestScaling:
    @given(time_matrices, st.floats(0.1, 10.0, allow_nan=False))
    def test_linear_in_time_scale(self, T, scale):
        arr = np.asarray(T)
        for fn in (makespan_sequential, makespan_dp, makespan_sp, makespan_dsp):
            assert abs(fn(arr * scale) - scale * fn(arr)) < 1e-6 * max(1.0, fn(arr) * scale)

    @given(time_matrices)
    def test_adding_a_service_never_speeds_up(self, T):
        arr = np.asarray(T)
        extended = np.vstack([arr, np.full((1, arr.shape[1]), 1.0)])
        for fn in (makespan_sequential, makespan_dp, makespan_sp, makespan_dsp):
            assert fn(extended) >= fn(arr) - 1e-9
