"""Property-based tests for composite (grouped) services."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.middleware import Grid
from repro.grid.overhead import OverheadModel
from repro.grid.resources import ComputingElement, Site
from repro.grid.storage import StorageElement
from repro.grid.transfer import NetworkModel
from repro.services.base import GridData
from repro.services.composite import CompositeService
from repro.services.descriptor import (
    AccessMethod,
    ExecutableDescriptor,
    InputSpec,
    OutputSpec,
)
from repro.services.wrapper import GenericWrapperService
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams


def build_chain(engine, grid, computes):
    stages = []
    for index, compute in enumerate(computes):
        descriptor = ExecutableDescriptor(
            name=f"S{index}",
            access=AccessMethod("URL", "http://host"),
            value=f"S{index}",
            inputs=(InputSpec("x", "-i", AccessMethod("GFN")),),
            outputs=(OutputSpec("y", "-o"),),
        )
        stages.append(
            GenericWrapperService(
                engine, grid, descriptor,
                program=lambda x: {"y": (x or 0) + 1}, compute_time=compute,
            )
        )
    links = {(i, "x"): (i - 1, "y") for i in range(1, len(stages))}
    return CompositeService(engine, stages, internal_links=links)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=1, max_size=6),
    st.floats(0.0, 200.0, allow_nan=False),
)
def test_grouped_chain_costs_one_overhead_plus_summed_compute(computes, overhead):
    engine = Engine()
    ce = ComputingElement(engine, "ce", "s0", infinite=True)
    grid = Grid(
        engine,
        RandomStreams(seed=0),
        sites=[Site("s0", [ce], StorageElement("se", "s0"))],
        overhead=OverheadModel.from_values(submission=overhead),
        network=NetworkModel.instantaneous(),
    )
    composite = build_chain(engine, grid, computes)
    outputs = engine.run(until=composite.invoke({"x": GridData(0)}))
    # single job
    assert len(grid.records) == 1
    # exactly one overhead + the summed stage computes
    assert abs(engine.now - (overhead + sum(computes))) < 1e-6
    # the data product is the full chain's computation
    assert outputs["y"].value == len(computes)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 6))
def test_composite_exposes_exactly_head_inputs_and_tail_outputs(length):
    engine = Engine()
    ce = ComputingElement(engine, "ce", "s0", infinite=True)
    grid = Grid(
        engine,
        RandomStreams(seed=0),
        sites=[Site("s0", [ce], StorageElement("se", "s0"))],
        overhead=OverheadModel.zero(),
        network=NetworkModel.instantaneous(),
    )
    composite = build_chain(engine, grid, [1.0] * length)
    assert composite.input_ports == ("x",)
    assert composite.output_ports == ("y",)
    assert composite.name == "+".join(f"S{i}" for i in range(length))
