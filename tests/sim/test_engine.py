"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    Engine,
    Event,
    Interrupt,
    SimulationError,
)


class TestClock:
    def test_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_timeout_advances_clock(self, engine):
        engine.timeout(5.0)
        engine.run()
        assert engine.now == 5.0

    def test_run_until_time_stops_exactly(self, engine):
        engine.timeout(10.0)
        engine.run(until=4.0)
        assert engine.now == 4.0

    def test_run_until_past_time_raises(self, engine):
        engine.timeout(1.0)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run(until=0.5)

    def test_peek_reports_next_event_time(self, engine):
        engine.timeout(3.0)
        engine.timeout(1.0)
        assert engine.peek() == 1.0

    def test_peek_empty_is_inf(self, engine):
        assert engine.peek() == float("inf")

    def test_step_on_empty_schedule_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.step()


class TestEvent:
    def test_succeed_carries_value(self, engine):
        evt = engine.event()
        evt.succeed(42)
        engine.run()
        assert evt.triggered and evt.ok and evt.value == 42

    def test_double_succeed_raises(self, engine):
        evt = engine.event()
        evt.succeed()
        with pytest.raises(SimulationError):
            evt.succeed()

    def test_fail_then_succeed_raises(self, engine):
        evt = engine.event()
        evt.fail(RuntimeError("boom"))
        evt.defused = True
        with pytest.raises(SimulationError):
            evt.succeed()

    def test_fail_requires_exception(self, engine):
        evt = engine.event()
        with pytest.raises(TypeError):
            evt.fail("not an exception")

    def test_value_before_trigger_raises(self, engine):
        evt = engine.event()
        with pytest.raises(SimulationError):
            _ = evt.value

    def test_ok_before_trigger_raises(self, engine):
        evt = engine.event()
        with pytest.raises(SimulationError):
            _ = evt.ok

    def test_unhandled_failure_propagates_at_step(self, engine):
        evt = engine.event()
        evt.fail(ValueError("nobody caught me"))
        with pytest.raises(ValueError, match="nobody caught me"):
            engine.run()

    def test_defused_failure_does_not_propagate(self, engine):
        evt = engine.event()
        evt.fail(ValueError("defused"))
        evt.defused = True
        engine.run()  # no raise

    def test_negative_timeout_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.timeout(-1.0)

    def test_negative_schedule_delay_rejected(self, engine):
        evt = Event(engine)
        with pytest.raises(SimulationError):
            engine.schedule(evt, delay=-0.1)


class TestProcess:
    def test_return_value_becomes_event_value(self, engine):
        def proc(eng):
            yield eng.timeout(1.0)
            return "done"

        p = engine.process(proc(engine))
        assert engine.run(until=p) == "done"

    def test_process_is_alive_until_finished(self, engine):
        def proc(eng):
            yield eng.timeout(2.0)

        p = engine.process(proc(engine))
        assert p.is_alive
        engine.run()
        assert not p.is_alive

    def test_exception_fails_process(self, engine):
        def proc(eng):
            yield eng.timeout(1.0)
            raise RuntimeError("inner")

        p = engine.process(proc(engine))
        with pytest.raises(RuntimeError, match="inner"):
            engine.run(until=p)

    def test_failed_event_raises_inside_process(self, engine):
        evt = engine.event()

        def proc(eng):
            try:
                yield evt
            except ValueError:
                return "caught"

        p = engine.process(proc(engine))
        evt.fail(ValueError("from event"))
        assert engine.run(until=p) == "caught"

    def test_yielding_non_event_fails_process(self, engine):
        def proc(eng):
            yield 42

        p = engine.process(proc(engine))
        with pytest.raises(SimulationError):
            engine.run(until=p)

    def test_process_requires_generator(self, engine):
        with pytest.raises(TypeError):
            engine.process(lambda: None)

    def test_waiting_on_already_processed_event(self, engine):
        evt = engine.event()
        evt.succeed("early")
        engine.run()  # evt fully processed, callbacks gone

        def proc(eng):
            value = yield evt
            return value

        p = engine.process(proc(engine))
        assert engine.run(until=p) == "early"

    def test_processes_wait_for_each_other(self, engine):
        def child(eng):
            yield eng.timeout(3.0)
            return 7

        def parent(eng):
            value = yield eng.process(child(eng))
            return value * 2

        p = engine.process(parent(engine))
        assert engine.run(until=p) == 14
        assert engine.now == 3.0

    def test_interrupt_wakes_waiting_process(self, engine):
        def sleeper(eng):
            try:
                yield eng.timeout(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, eng.now)

        p = engine.process(sleeper(engine))

        def interrupter(eng):
            yield eng.timeout(2.0)
            p.interrupt(cause="wake up")

        engine.process(interrupter(engine))
        assert engine.run(until=p) == ("interrupted", "wake up", 2.0)

    def test_interrupt_finished_process_raises(self, engine):
        def quick(eng):
            yield eng.timeout(0.0)

        p = engine.process(quick(engine))
        engine.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestDeterminism:
    def test_same_time_events_fire_in_schedule_order(self, engine):
        order = []
        for i in range(10):
            evt = engine.event()
            evt.callbacks.append(lambda e, i=i: order.append(i))
            evt.succeed()
        engine.run()
        assert order == list(range(10))

    def test_two_runs_identical(self):
        def build_and_run():
            eng = Engine()
            log = []

            def worker(eng, wid, delay):
                yield eng.timeout(delay)
                log.append((wid, eng.now))

            for i in range(20):
                eng.process(worker(eng, i, (i * 7) % 5))
            eng.run()
            return log

        assert build_and_run() == build_and_run()


class TestComposites:
    def test_all_of_collects_values_in_given_order(self, engine):
        def make(delay, value):
            def proc(eng):
                yield eng.timeout(delay)
                return value

            return engine.process(proc(engine))

        procs = [make(3, "a"), make(1, "b"), make(2, "c")]
        result = engine.run(until=engine.all_of(procs))
        assert result == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_all_of_empty_succeeds_immediately(self, engine):
        evt = engine.all_of([])
        engine.run()
        assert evt.triggered and evt.ok

    def test_all_of_fails_on_first_failure(self, engine):
        good = engine.timeout(5.0)
        bad = engine.event()
        combo = engine.all_of([good, bad])
        bad.fail(RuntimeError("bad"))
        with pytest.raises(RuntimeError, match="bad"):
            engine.run(until=combo)

    def test_any_of_returns_winner(self, engine):
        slow = engine.timeout(5.0, value="slow")
        fast = engine.timeout(1.0, value="fast")
        winner, value = engine.run(until=engine.any_of([slow, fast]))
        assert value == "fast" and winner is fast
        assert engine.now == 1.0

    def test_any_of_empty_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.any_of([])

    def test_any_of_with_already_triggered_event(self, engine):
        done = engine.event()
        done.succeed("now")
        engine.run()
        winner, value = engine.run(until=engine.any_of([done, engine.timeout(9)]))
        assert value == "now"

    def test_all_of_with_pre_triggered_events(self, engine):
        e1 = engine.event()
        e1.succeed(1)
        engine.run()
        e2 = engine.timeout(2.0, value=2)
        combo = engine.all_of([e1, e2])
        assert engine.run(until=combo) == [1, 2]


class TestRunUntilEvent:
    def test_deadlock_detected(self, engine):
        never = engine.event()
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run(until=never)

    def test_failed_until_event_raises(self, engine):
        evt = engine.event()

        def proc(eng):
            yield eng.timeout(1.0)
            evt.fail(RuntimeError("target failed"))

        engine.process(proc(engine))
        with pytest.raises(RuntimeError, match="target failed"):
            engine.run(until=evt)
