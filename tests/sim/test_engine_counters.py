"""Tests for the engine's lifetime counters (satellite of the profiler PR)."""

from repro.sim.engine import Engine


def drain(engine):
    while engine.events_scheduled > engine.events_processed:
        engine.step()


class TestLifetimeCounters:
    def test_scheduled_and_processed_track_every_event(self):
        engine = Engine()
        for i in range(5):
            engine.timeout(float(i))
        assert engine.events_scheduled == 5
        drain(engine)
        assert engine.events_processed == 5

    def test_peak_heap_size_is_the_high_water_mark(self):
        engine = Engine()
        for i in range(7):
            engine.timeout(float(i))
        drain(engine)
        assert engine.peak_heap_size == 7
        engine.timeout(0.0)  # heap refills to 1; the peak must hold
        drain(engine)
        assert engine.peak_heap_size == 7

    def test_defused_failure_counts_as_cancelled(self):
        engine = Engine()
        event = engine.event("doomed")
        event.fail(RuntimeError("absorbed"))
        event.defused = True
        drain(engine)
        assert engine.events_cancelled == 1

    def test_counters_dict_uses_registry_names(self):
        engine = Engine()
        engine.timeout(1.0)
        drain(engine)
        counters = engine.counters()
        assert counters == {
            "engine.events_scheduled": 1.0,
            "engine.events_processed": 1.0,
            "engine.peak_heap_size": 1.0,
            "engine.events_cancelled": 0.0,
        }
        assert all(isinstance(value, float) for value in counters.values())
