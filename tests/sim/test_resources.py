"""Unit tests for Resource and Store."""

import pytest

from repro.sim.engine import SimulationError
from repro.sim.resources import Resource, Store


def run_workers(engine, resource, count, duration):
    finished = []

    def worker(eng, wid):
        req = resource.request()
        yield req
        try:
            yield eng.timeout(duration)
            finished.append((wid, eng.now))
        finally:
            resource.release(req)

    for i in range(count):
        engine.process(worker(engine, i))
    engine.run()
    return finished


class TestResource:
    def test_capacity_one_serializes(self, engine):
        res = Resource(engine, 1)
        finished = run_workers(engine, res, 3, 10.0)
        assert [t for _, t in finished] == [10.0, 20.0, 30.0]

    def test_capacity_two_pairs_up(self, engine):
        res = Resource(engine, 2)
        finished = run_workers(engine, res, 4, 10.0)
        assert [t for _, t in finished] == [10.0, 10.0, 20.0, 20.0]

    def test_infinite_capacity_all_parallel(self, engine):
        res = Resource(engine, float("inf"))
        finished = run_workers(engine, res, 50, 10.0)
        assert all(t == 10.0 for _, t in finished)

    def test_fifo_grant_order(self, engine):
        res = Resource(engine, 1)
        finished = run_workers(engine, res, 5, 1.0)
        assert [wid for wid, _ in finished] == [0, 1, 2, 3, 4]

    def test_in_use_and_queue_length(self, engine):
        res = Resource(engine, 1)
        first = res.request()
        second = res.request()
        assert res.in_use == 1
        assert res.queue_length == 1
        assert first.triggered and not second.triggered

    def test_release_wakes_next(self, engine):
        res = Resource(engine, 1)
        first = res.request()
        second = res.request()
        res.release(first)
        assert second.triggered
        assert res.in_use == 1

    def test_release_ungranted_raises(self, engine):
        res = Resource(engine, 1)
        stranger = engine.event()
        with pytest.raises(SimulationError):
            res.release(stranger)

    def test_double_release_raises(self, engine):
        res = Resource(engine, 1)
        req = res.request()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_cancel_queued_request(self, engine):
        res = Resource(engine, 1)
        res.request()
        queued = res.request()
        res.release(queued)  # cancels the queued request
        assert res.queue_length == 0

    def test_invalid_capacity_rejected(self, engine):
        with pytest.raises(ValueError):
            Resource(engine, 0)
        with pytest.raises(ValueError):
            Resource(engine, 1.5)


class TestStore:
    def test_put_then_get(self, engine):
        store = Store(engine)
        store.put("x")
        got = store.get()
        assert got.triggered and got.value == "x"

    def test_get_blocks_until_put(self, engine):
        store = Store(engine)
        got = store.get()
        assert not got.triggered
        store.put(1)
        assert got.triggered and got.value == 1

    def test_fifo_item_order(self, engine):
        store = Store(engine)
        for i in range(5):
            store.put(i)
        values = [store.get().value for _ in range(5)]
        assert values == [0, 1, 2, 3, 4]

    def test_fifo_getter_order(self, engine):
        store = Store(engine)
        getters = [store.get() for _ in range(3)]
        store.put("a")
        store.put("b")
        assert getters[0].value == "a"
        assert getters[1].value == "b"
        assert not getters[2].triggered

    def test_len_and_pending(self, engine):
        store = Store(engine)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2
        store.get()
        assert len(store) == 1
        store.get()
        store.get()
        assert store.pending_gets == 1

    def test_peek_items_snapshot(self, engine):
        store = Store(engine)
        store.put("a")
        store.put("b")
        assert store.peek_items() == ("a", "b")

    def test_producer_consumer_timing(self, engine):
        store = Store(engine)
        seen = []

        def consumer(eng):
            for _ in range(3):
                item = yield store.get()
                seen.append((item, eng.now))

        def producer(eng):
            for i in range(3):
                yield eng.timeout(2.0)
                store.put(i)

        engine.process(consumer(engine))
        engine.process(producer(engine))
        engine.run()
        assert seen == [(0, 2.0), (1, 4.0), (2, 6.0)]
