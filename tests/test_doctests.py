"""Run the documented examples embedded in docstrings.

Modules whose docstrings carry runnable examples are exercised here so
the documentation cannot rot.
"""

import doctest

import pytest

import repro.taskbased.jdl
import repro.util.rng
import repro.util.stats
import repro.util.units

MODULES = [
    repro.util.units,
    repro.util.rng,
    repro.taskbased.jdl,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests collected from {module.__name__}"
