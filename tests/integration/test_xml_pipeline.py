"""Full XML pipeline: the paper's re-execution story.

Section 4.1: the input-data-set language exists "to save and store the
input data set in order to be able to re-execute workflows on the same
data set".  This test saves both the workflow (Scufl) and the data set
(XML), reloads them, re-binds, re-enacts — and gets identical results.
"""


from repro.core import MoteurEnactor, OptimizationConfig
from repro.services.base import LocalService
from repro.services.registry import ServiceRegistry
from repro.sim.engine import Engine
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.datasets import InputDataSet, dataset_from_xml, dataset_to_xml
from repro.workflow.scufl import bind_services, workflow_from_scufl, workflow_to_scufl


def build_registry(engine):
    registry = ServiceRegistry()
    registry.register(
        LocalService(engine, "scale", ("x",), ("y",),
                     function=lambda x: {"y": float(x) * 2}, duration=3.0)
    )
    registry.register(
        LocalService(engine, "shift", ("x",), ("y",),
                     function=lambda x: {"y": x + 1}, duration=2.0)
    )
    return registry


def build_workflow(engine):
    registry = build_registry(engine)
    symbolic = (
        WorkflowBuilder("persisted")
        .abstract_service("scale", ("x",), ("y",))
        .abstract_service("shift", ("x",), ("y",))
        .source("numbers")
        .sink("out")
        .connect("numbers:output", "scale:x")
        .connect("scale:y", "shift:x")
        .connect("shift:y", "out:input")
        .build()
    )
    return symbolic, registry


class TestReExecution:
    def test_save_reload_re_enact(self, tmp_path):
        # First execution.
        engine = Engine()
        workflow, registry = build_workflow(engine)
        dataset = InputDataSet.from_values("run1", numbers=[1, 2, 3])
        result1 = MoteurEnactor(
            engine, bind_services(workflow, registry), OptimizationConfig.sp_dp()
        ).run(dataset)

        # Persist both artifacts.
        workflow_file = tmp_path / "workflow.scufl.xml"
        dataset_file = tmp_path / "dataset.xml"
        workflow_file.write_text(workflow_to_scufl(workflow))
        dataset_file.write_text(dataset_to_xml(dataset))

        # Re-execution from disk on a fresh engine.
        engine2 = Engine()
        registry2 = build_registry(engine2)
        reloaded_wf = workflow_from_scufl(workflow_file.read_text())
        reloaded_ds = dataset_from_xml(dataset_file.read_text())
        # the XML dialect stores values as strings; the first service
        # coerces with float() so the round-trip stays value-exact
        result2 = MoteurEnactor(
            engine2, bind_services(reloaded_wf, registry2), OptimizationConfig.sp_dp()
        ).run(reloaded_ds)

        assert result1.output_values("out") == result2.output_values("out") == [3.0, 5.0, 7.0]
        assert result1.makespan == result2.makespan

    def test_reloaded_dataset_restricted_resweep(self, tmp_path):
        """The harness pattern: one master data set, swept by size."""
        engine = Engine()
        workflow, registry = build_workflow(engine)
        master = InputDataSet.from_values("master", numbers=list(range(10)))
        text = dataset_to_xml(master)
        reloaded = dataset_from_xml(text)
        sizes = []
        for count in (2, 5, 10):
            subset = reloaded.restricted_to(count)
            eng = Engine()
            reg = build_registry(eng)
            result = MoteurEnactor(
                eng, bind_services(workflow, reg), OptimizationConfig.sp_dp()
            ).run(subset)
            sizes.append(len(result.output_values("out")))
        assert sizes == [2, 5, 10]
