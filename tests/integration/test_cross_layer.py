"""Cross-layer integration: transports inside workflows, grid failures
surfacing through enactments, trace/job-record linkage, batch fairness
under load."""

import pytest

from repro.core import MoteurEnactor, OptimizationConfig
from repro.core.enactor import EnactmentError
from repro.grid.faults import FaultModel
from repro.grid.job import JobState
from repro.grid.middleware import Grid
from repro.grid.overhead import OverheadModel
from repro.grid.resources import ComputingElement, Site, WorkerNode
from repro.grid.storage import StorageElement
from repro.grid.transfer import NetworkModel
from repro.services.base import GridData
from repro.services.descriptor import (
    AccessMethod,
    ExecutableDescriptor,
    InputSpec,
    OutputSpec,
)
from repro.services.gridrpc import GridRpcClient
from repro.services.soap import SoapBinding
from repro.services.wrapper import GenericWrapperService
from repro.util.rng import RandomStreams
from repro.workflow.builder import WorkflowBuilder


def wrapped(engine, grid, name, compute=10.0, program=None):
    descriptor = ExecutableDescriptor(
        name=name,
        access=AccessMethod("URL", "http://host"),
        value=name,
        inputs=(InputSpec("x", "-i", AccessMethod("GFN")),),
        outputs=(OutputSpec("y", "-o"),),
    )
    return GenericWrapperService(
        engine, grid, descriptor,
        program=program or (lambda x: {"y": (x or 0) + 1}),
        compute_time=compute,
    )


class TestTransportsInsideWorkflows:
    def test_soap_bound_wrapper_in_workflow(self, engine, ideal_grid):
        inner = wrapped(engine, ideal_grid, "tool")
        soap = SoapBinding(engine, inner, round_trip_latency=1.0)
        workflow = (
            WorkflowBuilder()
            .source("in")
            .service("tool", soap)
            .sink("out")
            .connect("in:output", "tool:x")
            .connect("tool:y", "out:input")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"in": [1, 2]}
        )
        assert sorted(result.output_values("out")) == [2, 3]
        assert result.makespan > 10.0  # compute + SOAP costs
        assert soap.envelopes_sent == 2

    def test_soap_bound_services_are_not_groupable(self, engine, ideal_grid):
        # Only generic wrappers expose descriptors; a SOAP facade is a
        # black box and must break the grouping chain.
        a = SoapBinding(engine, wrapped(engine, ideal_grid, "A"))
        b = SoapBinding(engine, wrapped(engine, ideal_grid, "B"))
        workflow = (
            WorkflowBuilder()
            .source("in")
            .service("A", a)
            .service("B", b)
            .sink("out")
            .connect("in:output", "A:x")
            .connect("A:y", "B:x")
            .connect("B:y", "out:input")
            .build()
        )
        enactor = MoteurEnactor(
            engine, workflow,
            OptimizationConfig(job_grouping=True, service_parallelism=True,
                               data_parallelism=True),
        )
        assert enactor.groups == []
        result = enactor.run({"in": [0]})
        assert result.output_values("out") == [2]
        assert len(ideal_grid.records) == 2  # still two separate jobs

    def test_gridrpc_client_drives_wrapped_service(self, engine, ideal_grid):
        service = wrapped(engine, ideal_grid, "tool", compute=5.0)
        client = GridRpcClient(engine)
        handles = [client.call_async(service, {"x": GridData(i)}) for i in range(3)]
        results = engine.run(until=client.wait_all(handles))
        assert engine.now == 5.0  # async calls overlapped on the grid
        assert [r["y"].value for r in results] == [1, 2, 3]


class TestGridFailuresThroughEnactment:
    def _grid(self, engine, probability, max_attempts=2):
        ce = ComputingElement(engine, "ce", "s0", workers=[WorkerNode("w", slots=8)])
        return Grid(
            engine,
            RandomStreams(seed=4),
            sites=[Site("s0", [ce], StorageElement("se", "s0"))],
            overhead=OverheadModel.zero(),
            network=NetworkModel.instantaneous(),
            faults=FaultModel.from_values(
                probability=probability, detection_delay=5.0, max_attempts=max_attempts
            ),
        )

    def test_permanent_job_failure_fails_enactment(self, engine):
        grid = self._grid(engine, probability=1.0)
        service = wrapped(engine, grid, "doomed")
        workflow = (
            WorkflowBuilder()
            .source("in").service("doomed", service).sink("out")
            .connect("in:output", "doomed:x").connect("doomed:y", "out:input")
            .build()
        )
        enactor = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp())
        with pytest.raises(EnactmentError, match="failed"):
            enactor.run({"in": [1]})

    def test_transient_failures_recovered_transparently(self, engine):
        grid = self._grid(engine, probability=0.3, max_attempts=10)
        service = wrapped(engine, grid, "flaky", compute=1.0)
        workflow = (
            WorkflowBuilder()
            .source("in").service("flaky", service).sink("out")
            .connect("in:output", "flaky:x").connect("flaky:y", "out:input")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"in": list(range(20))}
        )
        assert sorted(result.output_values("out")) == list(range(1, 21))
        assert any(r.attempts > 1 for r in grid.records)

    def test_resubmission_visible_in_makespan(self, engine):
        grid = self._grid(engine, probability=1.0, max_attempts=3)
        handle = grid.submit(
            __import__("repro.grid.job", fromlist=["JobDescription"]).JobDescription(
                name="j", compute_time=1.0
            )
        )
        from repro.grid.job import JobFailedError

        with pytest.raises(JobFailedError):
            engine.run(until=handle.completion)
        # three attempts x 5s detection delay
        assert engine.now == pytest.approx(15.0)


class TestTraceJobLinkage:
    def test_trace_events_reference_real_jobs(self, engine, ideal_grid):
        service = wrapped(engine, ideal_grid, "tool")
        workflow = (
            WorkflowBuilder()
            .source("in").service("tool", service).sink("out")
            .connect("in:output", "tool:x").connect("tool:y", "out:input")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"in": [0, 1, 2]}
        )
        job_ids = {r.job_id for r in ideal_grid.records}
        for event in result.trace.events:
            assert len(event.job_ids) == 1
            assert event.job_ids[0] in job_ids

    def test_trace_times_bracket_job_lifecycle(self, engine, ideal_grid):
        service = wrapped(engine, ideal_grid, "tool", compute=10.0)
        workflow = (
            WorkflowBuilder()
            .source("in").service("tool", service).sink("out")
            .connect("in:output", "tool:x").connect("tool:y", "out:input")
            .build()
        )
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run({"in": [0]})
        event = result.trace.events[0]
        record = ideal_grid.records[0]
        assert event.start <= record.first(JobState.SUBMITTED)
        assert event.end >= record.last(JobState.DONE)


class TestFairShareUnderLoad:
    def test_application_progresses_despite_background_flood(self, engine):
        from repro.grid.batch import FairSharePolicy
        from repro.grid.load import BackgroundLoad

        streams = RandomStreams(seed=8)
        ce = ComputingElement(
            engine, "ce", "s0",
            workers=[WorkerNode("w", slots=2)],
            policy=FairSharePolicy(engine),
        )
        grid = Grid(
            engine, streams,
            sites=[Site("s0", [ce], StorageElement("se", "s0"))],
            overhead=OverheadModel.zero(),
            network=NetworkModel.instantaneous(),
        )
        BackgroundLoad(engine, [ce], rng=streams.get("bg"),
                       interarrival=1.0, duration=30.0)
        engine.run(until=100.0)  # let the flood build up a deep queue
        service = wrapped(engine, grid, "app", compute=5.0)
        event = service.invoke({"x": GridData(0)})
        start = engine.now
        engine.run(until=event)
        waited = engine.now - start
        # fair share: our single job is served within ~one rotation, not
        # behind the entire background queue (which holds > 60 jobs).
        assert waited < 120.0
