"""End-to-end: best-effort Bronze on a faulty grid; crash + resume.

These are the issue's two acceptance scenarios:

* on a grid with an aggressive blackhole CE and a tight attempt cap, a
  strict run dies but a best-effort run completes with a populated
  failure report accounting for every lost item;
* a run crashed after N invocations and resumed from its journal
  produces byte-identical outputs to an uninterrupted run, without
  resubmitting any journaled work to the grid.
"""

import pytest

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core import OptimizationConfig
from repro.core.enactor import EnactmentError
from repro.core.journal import EnactmentJournal, SimulatedCrash
from repro.grid.testbeds import cluster_testbed, faulty_testbed
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams

SP_DP = next(
    c for c in OptimizationConfig.paper_configurations() if c.label == "SP+DP"
)


def harsh_grid(engine, streams):
    """A faulty testbed harsh enough that some jobs exhaust their attempts."""
    return faulty_testbed(
        engine,
        streams,
        blackhole_probability=0.98,
        max_attempts=2,
    )


def bronze_outputs(result):
    """Sink name -> sorted repr of every output value (byte-comparable)."""
    return {
        sink: sorted(repr(v) for v in result.output_values(sink))
        for sink in ("assessment", "results")
    }


class TestBestEffortAcceptance:
    SEED = 20060619  # HPDC'06

    def test_strict_run_dies_on_the_harsh_grid(self):
        engine = Engine()
        streams = RandomStreams(seed=self.SEED)
        app = BronzeStandardApplication(engine, harsh_grid(engine, streams), streams)
        with pytest.raises(EnactmentError):
            app.enact(SP_DP, n_pairs=4)

    def test_best_effort_run_completes_with_a_report(self):
        engine = Engine()
        streams = RandomStreams(seed=self.SEED)
        app = BronzeStandardApplication(engine, harsh_grid(engine, streams), streams)
        result = app.enact(SP_DP.with_best_effort(), n_pairs=4)

        report = result.failures
        assert report is not None and not report.empty
        assert len(report.failures) > 0
        assert report.by_service()  # per-service counts populated
        assert report.by_computing_element()  # per-CE counts populated
        # every root failure keeps its middleware attempt history
        for failure in report.failures:
            assert failure.attempts, failure
            assert failure.job_ids, failure
        # lost lineage is expressed in terms of the Bronze input sources
        lost = report.poisoned_lineage()
        assert set(lost) <= {"floatingImage", "referenceImage", "scale"}
        assert lost["floatingImage"] <= frozenset(range(4))
        # the trace tells the same story
        kinds = result.trace.count_by_kind()
        assert kinds.get("failed", 0) == len(report.failures)
        assert kinds.get("poisoned", 0) == report.skipped


class TestCrashResume:
    SEED = 7
    N_PAIRS = 3
    CRASH_AFTER = 7

    def _app(self):
        engine = Engine()
        streams = RandomStreams(seed=self.SEED)
        grid = cluster_testbed(engine, streams)
        return BronzeStandardApplication(engine, grid, streams), grid

    def test_interrupted_run_resumes_byte_identical(self, tmp_path):
        wal = tmp_path / "wal.jsonl"

        # reference: one uninterrupted run
        app, grid_ref = self._app()
        reference = app.enact(SP_DP, n_pairs=self.N_PAIRS)
        total_invocations = reference.invocation_count
        total_grid_jobs = len(grid_ref.records)

        # run 1: journaled, crashes after CRASH_AFTER completed invocations
        app, _ = self._app()
        with EnactmentJournal(wal) as journal:
            with pytest.raises(SimulatedCrash) as info:
                app.enact(
                    SP_DP,
                    n_pairs=self.N_PAIRS,
                    journal=journal,
                    crash_after=self.CRASH_AFTER,
                )
        assert info.value.completed == self.CRASH_AFTER
        journaled = EnactmentJournal(wal).load()
        # WAL ordering: the crashing invocation was journaled first
        assert len(journaled) == self.CRASH_AFTER

        # run 2: resume from the journal on a FRESH engine and grid
        app, grid2 = self._app()
        with EnactmentJournal(wal) as journal:
            resumed = app.enact(
                SP_DP, n_pairs=self.N_PAIRS, journal=journal, resume=True
            )

        # byte-identical outputs
        assert bronze_outputs(resumed) == bronze_outputs(reference)
        # every journaled invocation replayed, none resubmitted
        assert resumed.replayed_count == self.CRASH_AFTER
        assert resumed.trace.count_by_kind().get("replayed") == self.CRASH_AFTER
        assert resumed.invocation_count == total_invocations
        # the grid only saw the jobs of the invocations that still had to
        # run (the local MTT service never submits grid jobs)
        assert len(grid2.records) == total_grid_jobs - len(
            [e for e in journaled.values() if e.job_ids]
        )

    def test_resume_on_untouched_journal_replays_everything(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        app, _ = self._app()
        with EnactmentJournal(wal) as journal:
            reference = app.enact(SP_DP, n_pairs=self.N_PAIRS, journal=journal)

        app, grid2 = self._app()
        with EnactmentJournal(wal) as journal:
            resumed = app.enact(
                SP_DP, n_pairs=self.N_PAIRS, journal=journal, resume=True
            )
        assert bronze_outputs(resumed) == bronze_outputs(reference)
        assert resumed.replayed_count == reference.invocation_count
        assert len(grid2.records) == 0  # nothing re-ran
        # and the journal now holds two run markers
        assert len(EnactmentJournal(wal).runs()) == 2

    def test_crash_exactly_at_the_end_still_resumes(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        app, _ = self._app()
        reference = app.enact(SP_DP, n_pairs=self.N_PAIRS)
        total = reference.invocation_count

        app, _ = self._app()
        with EnactmentJournal(wal) as journal:
            with pytest.raises(SimulatedCrash):
                app.enact(
                    SP_DP, n_pairs=self.N_PAIRS, journal=journal, crash_after=total
                )

        app, grid2 = self._app()
        with EnactmentJournal(wal) as journal:
            resumed = app.enact(
                SP_DP, n_pairs=self.N_PAIRS, journal=journal, resume=True
            )
        assert bronze_outputs(resumed) == bronze_outputs(reference)
        assert len(grid2.records) == 0
