"""End-to-end integration: Scufl document -> registry binding -> grid
enactment; Bronze Standard on the EGEE-like testbed; task-based vs
service-based on the same workload."""

import pytest

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core import MoteurEnactor, OptimizationConfig
from repro.grid.testbeds import egee_like_testbed, ideal_testbed
from repro.services.base import LocalService
from repro.services.registry import ServiceRegistry
from repro.sim.engine import Engine
from repro.taskbased.dag import expand_workflow
from repro.taskbased.dagman import DagmanExecutor
from repro.util.rng import RandomStreams
from repro.workflow.scufl import bind_services, workflow_from_scufl, workflow_to_scufl


class TestScuflToExecution:
    DOCUMENT = """
    <scufl name="pipeline">
      <processor name="data" kind="source"><outport name="output"/></processor>
      <processor name="normalize" kind="service" service="normalize">
        <inport name="x"/><outport name="y"/>
      </processor>
      <processor name="analyze" kind="service" service="analyze">
        <inport name="x"/><outport name="y"/>
      </processor>
      <processor name="report" kind="sink"><inport name="input"/></processor>
      <link source="data:output" sink="normalize:x"/>
      <link source="normalize:y" sink="analyze:x"/>
      <link source="analyze:y" sink="report:input"/>
    </scufl>
    """

    def test_parse_bind_enact(self, engine):
        workflow = workflow_from_scufl(self.DOCUMENT)
        registry = ServiceRegistry()
        registry.register(
            LocalService(engine, "normalize", ("x",), ("y",),
                         function=lambda x: {"y": x / 10}, duration=1.0)
        )
        registry.register(
            LocalService(engine, "analyze", ("x",), ("y",),
                         function=lambda x: {"y": x + 100}, duration=1.0)
        )
        bound = bind_services(workflow, registry)
        result = MoteurEnactor(engine, bound, OptimizationConfig.sp_dp()).run(
            {"data": [10, 20, 30]}
        )
        assert sorted(result.output_values("report")) == [101, 102, 103]

    def test_serialized_and_reparsed_still_enacts(self, engine):
        workflow = workflow_from_scufl(self.DOCUMENT)
        text = workflow_to_scufl(workflow)
        workflow2 = workflow_from_scufl(text)
        registry = ServiceRegistry()
        registry.register(LocalService(engine, "normalize", ("x",), ("y",),
                                       function=lambda x: {"y": x}))
        registry.register(LocalService(engine, "analyze", ("x",), ("y",),
                                       function=lambda x: {"y": x}))
        bound = bind_services(workflow2, registry)
        result = MoteurEnactor(engine, bound).run({"data": [1]})
        assert result.output_values("report") == [1]


class TestBronzeStandardOnEgee:
    def test_full_stack_with_failures_and_overheads(self):
        engine = Engine()
        streams = RandomStreams(seed=99)
        grid = egee_like_testbed(
            engine, streams, n_sites=4, workers_per_ce=20,
            with_background_load=False, failure_probability=0.05,
        )
        app = BronzeStandardApplication(engine, grid, streams)
        result = app.enact(OptimizationConfig.sp_dp_jg(), n_pairs=6)
        assert result.output_values("accuracy_rotation")[0] > 0
        # 6 pairs x 4 grouped jobs
        assert len(grid.completed_records()) == 24
        # overheads actually hit the makespan
        assert result.makespan > 600

    def test_optimizations_pay_on_egee(self):
        def run(config):
            engine = Engine()
            streams = RandomStreams(seed=3)
            grid = egee_like_testbed(
                engine, streams, n_sites=4, workers_per_ce=20,
                with_background_load=False, failure_probability=0.0,
            )
            app = BronzeStandardApplication(engine, grid, streams)
            return app.enact(config, n_pairs=5).makespan

        nop = run(OptimizationConfig.nop())
        best = run(OptimizationConfig.sp_dp_jg())
        assert best < nop / 3  # the paper reports ~9x at full size


class TestTaskVsService:
    def test_same_parallelism_reachable(self, local_factory, engine, ideal_grid):
        """On the same grid, DAGMan with full static expansion matches
        the service enactor's SP+DP makespan (the task-based approach's
        parallelism is all explicit in the expanded graph)."""
        from repro.workflow.patterns import chain_workflow

        durations = {"P1": 10.0, "P2": 20.0}

        def factory(name, inputs, outputs):
            return LocalService(engine, name, inputs, outputs,
                                duration=durations[name])

        workflow = chain_workflow(factory, 2)
        service_result = MoteurEnactor(
            engine, workflow, OptimizationConfig.sp_dp()
        ).run({"input": [0, 1, 2]})

        engine2 = Engine()
        grid2 = ideal_testbed(engine2)
        workflow2 = chain_workflow(
            lambda n, i, o: LocalService(engine2, n, i, o, duration=durations[n]), 2
        )
        dag = expand_workflow(workflow2, {"input": [0, 1, 2]})
        dag_result = DagmanExecutor(engine2, grid2, durations=durations).run(dag)

        assert service_result.makespan == pytest.approx(dag_result.makespan)

    def test_loop_workflow_only_expressible_as_services(self, engine, local_factory):
        from repro.core import NO_DATA
        from repro.workflow.graph import WorkflowError
        from repro.workflow.patterns import figure2_workflow

        def factory(name, inputs, outputs):
            if name == "P3":
                def decide(x):
                    if x >= 2:
                        return {"loop": NO_DATA, "done": x}
                    return {"loop": x, "done": NO_DATA}

                return LocalService(engine, name, inputs, outputs, function=decide)
            return LocalService(engine, name, inputs, outputs,
                                function=lambda x: {"y": (x or 0) + 1})

        workflow = figure2_workflow(factory)
        # service-based: runs fine
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp()).run(
            {"source": [0]}
        )
        assert result.output_values("sink") == [2]
        # task-based: structurally impossible
        with pytest.raises(WorkflowError, match="loop"):
            expand_workflow(workflow, {"source": [0]})


class TestDeterminism:
    def test_full_bronze_run_bitwise_reproducible(self):
        def run():
            engine = Engine()
            streams = RandomStreams(seed=1234)
            grid = egee_like_testbed(
                engine, streams, n_sites=3, workers_per_ce=10,
                with_background_load=False,
            )
            app = BronzeStandardApplication(engine, grid, streams)
            result = app.enact(OptimizationConfig.sp_dp(), n_pairs=4)
            return (
                result.makespan,
                result.output_values("accuracy_rotation")[0],
                tuple(r.makespan for r in grid.completed_records()),
            )

        assert run() == run()
