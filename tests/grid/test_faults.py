"""Tests for failure injection and resubmission."""

import numpy as np
import pytest

from repro.grid.faults import FaultModel


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestFaultModel:
    def test_none_never_fails(self, rng):
        model = FaultModel.none()
        assert not any(model.attempt_fails(rng) for _ in range(1000))
        assert model.expected_attempts() == 1.0

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultModel(probability=1.5)
        with pytest.raises(ValueError):
            FaultModel(probability=-0.1)

    def test_max_attempts_bounds(self):
        with pytest.raises(ValueError):
            FaultModel(probability=0.1, max_attempts=0)

    def test_failure_rate_matches_probability(self, rng):
        model = FaultModel.from_values(probability=0.3)
        failures = sum(model.attempt_fails(rng) for _ in range(20000))
        assert failures / 20000 == pytest.approx(0.3, abs=0.02)

    def test_detection_delay_sampled(self, rng):
        model = FaultModel.from_values(probability=0.5, detection_delay=42.0)
        assert model.sample_detection_delay(rng) == 42.0

    def test_expected_attempts_truncated_geometric(self):
        model = FaultModel.from_values(probability=0.5, max_attempts=3)
        # 1 + 0.5 + 0.25
        assert model.expected_attempts() == pytest.approx(1.75)

    def test_expected_attempts_monotone_in_probability(self):
        low = FaultModel.from_values(probability=0.05, max_attempts=3)
        high = FaultModel.from_values(probability=0.5, max_attempts=3)
        assert high.expected_attempts() > low.expected_attempts()
