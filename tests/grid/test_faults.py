"""Tests for failure injection and resubmission."""

import numpy as np
import pytest

from repro.grid.faults import FaultModel


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestFaultModel:
    def test_none_never_fails(self, rng):
        model = FaultModel.none()
        assert not any(model.attempt_fails(rng) for _ in range(1000))
        assert model.expected_attempts() == 1.0

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultModel(probability=1.5)
        with pytest.raises(ValueError):
            FaultModel(probability=-0.1)

    def test_max_attempts_bounds(self):
        with pytest.raises(ValueError):
            FaultModel(probability=0.1, max_attempts=0)

    def test_failure_rate_matches_probability(self, rng):
        model = FaultModel.from_values(probability=0.3)
        failures = sum(model.attempt_fails(rng) for _ in range(20000))
        assert failures / 20000 == pytest.approx(0.3, abs=0.02)

    def test_detection_delay_sampled(self, rng):
        model = FaultModel.from_values(probability=0.5, detection_delay=42.0)
        assert model.sample_detection_delay(rng) == 42.0

    def test_expected_attempts_truncated_geometric(self):
        model = FaultModel.from_values(probability=0.5, max_attempts=3)
        # 1 + 0.5 + 0.25
        assert model.expected_attempts() == pytest.approx(1.75)

    def test_expected_attempts_monotone_in_probability(self):
        low = FaultModel.from_values(probability=0.05, max_attempts=3)
        high = FaultModel.from_values(probability=0.5, max_attempts=3)
        assert high.expected_attempts() > low.expected_attempts()


class TestPerCEOverrides:
    def test_probability_for(self):
        model = FaultModel.from_values(
            probability=0.02, ce_probability={"hole-ce": 0.9}
        )
        assert model.probability_for("hole-ce") == 0.9
        assert model.probability_for("ok-ce") == 0.02
        assert model.probability_for(None) == 0.02

    def test_ce_probability_validated(self):
        with pytest.raises(ValueError, match="hole"):
            FaultModel.from_values(probability=0.0, ce_probability={"hole": 1.5})

    def test_blackhole_ce_fails_much_more_often(self, rng):
        model = FaultModel.from_values(
            probability=0.02, ce_probability={"hole": 0.9}
        )
        hole = sum(model.attempt_fails(rng, ce="hole") for _ in range(2000))
        ok = sum(model.attempt_fails(rng, ce="ok") for _ in range(2000))
        assert hole / 2000 == pytest.approx(0.9, abs=0.03)
        assert ok / 2000 == pytest.approx(0.02, abs=0.02)

    def test_ce_choice_never_shifts_the_stream(self):
        # one draw per attempt regardless of which CE was picked: seeded
        # runs stay comparable across feedback on/off ablations that
        # route jobs differently
        model = FaultModel.from_values(probability=0.1, ce_probability={"hole": 0.9})
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        for i in range(200):
            model.attempt_fails(rng_a, ce="hole" if i % 2 else "ok")
            model.attempt_fails(rng_b, ce="ok")
        assert rng_a.random() == rng_b.random()

    def test_zero_probability_everywhere_consumes_nothing(self):
        model = FaultModel.none()
        rng_a = np.random.default_rng(4)
        rng_b = np.random.default_rng(4)
        for _ in range(50):
            model.attempt_fails(rng_a, ce="any")
        assert rng_a.random() == rng_b.random()

    def test_per_ce_detection_delay(self, rng):
        model = FaultModel.from_values(
            probability=0.5,
            detection_delay=120.0,
            ce_detection_delay={"hole": 5.0},
        )
        assert model.sample_detection_delay(rng, ce="hole") == 5.0
        assert model.sample_detection_delay(rng, ce="ok") == 120.0
