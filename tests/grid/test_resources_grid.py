"""Tests for worker nodes and computing elements."""

import pytest

from repro.grid.job import JobDescription, JobRecord, JobState
from repro.grid.resources import ComputingElement, Site, WorkerNode
from repro.grid.storage import StorageElement


def submit_and_run(engine, ce, names, compute=10.0, queue_extra=0.0):
    completions = [
        ce.submit(JobRecord(JobDescription(name=n, compute_time=compute)), queue_extra)
        for n in names
    ]
    records = engine.run(until=engine.all_of(completions))
    return records


class TestWorkerNode:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerNode(name="w", slots=0)
        with pytest.raises(ValueError):
            WorkerNode(name="w", speed=0.0)

    def test_defaults(self):
        node = WorkerNode(name="w")
        assert node.slots == 1 and node.speed == 1.0


class TestComputingElement:
    def test_requires_workers_or_infinite(self, engine):
        with pytest.raises(ValueError):
            ComputingElement(engine, "ce", "site")

    def test_single_slot_serializes(self, engine):
        ce = ComputingElement(
            engine, "ce", "site", workers=[WorkerNode("w0", slots=1)]
        )
        records = submit_and_run(engine, ce, ["a", "b", "c"], compute=10.0)
        assert engine.now == 30.0
        assert all(r.execution_time == 10.0 for r in records)

    def test_parallel_slots(self, engine):
        ce = ComputingElement(
            engine, "ce", "site", workers=[WorkerNode("w0", slots=2), WorkerNode("w1", slots=2)]
        )
        submit_and_run(engine, ce, [f"j{i}" for i in range(4)], compute=10.0)
        assert engine.now == 10.0

    def test_infinite_ce_runs_everything_at_once(self, engine):
        ce = ComputingElement(engine, "ce", "site", infinite=True)
        submit_and_run(engine, ce, [f"j{i}" for i in range(100)], compute=5.0)
        assert engine.now == 5.0

    def test_worker_speed_scales_duration(self, engine):
        ce = ComputingElement(
            engine, "ce", "site", workers=[WorkerNode("fast", speed=2.0)]
        )
        records = submit_and_run(engine, ce, ["j"], compute=10.0)
        assert records[0].execution_time == 5.0
        assert engine.now == 5.0

    def test_queue_extra_delays_dispatch_without_holding_slot(self, engine):
        ce = ComputingElement(engine, "ce", "site", workers=[WorkerNode("w0")])
        delayed = ce.submit(
            JobRecord(JobDescription(name="delayed", compute_time=1.0)), queue_extra=50.0
        )
        prompt = ce.submit(
            JobRecord(JobDescription(name="prompt", compute_time=1.0)), queue_extra=0.0
        )
        record = engine.run(until=prompt)
        assert engine.now == 1.0  # the prompt job did not wait behind the delayed one
        engine.run(until=delayed)
        assert engine.now == 51.0

    def test_records_worker_and_ce(self, engine):
        ce = ComputingElement(engine, "ce-x", "site-y", workers=[WorkerNode("wn-7")])
        records = submit_and_run(engine, ce, ["j"])
        assert records[0].computing_element == "ce-x"
        assert records[0].worker_node == "wn-7"
        assert records[0].state is JobState.RUNNING or records[0].timestamps[JobState.RUNNING]

    def test_load_estimate(self, engine):
        ce = ComputingElement(engine, "ce", "site", workers=[WorkerNode("w0")])
        assert ce.load_estimate() == 0.0
        ce.submit(JobRecord(JobDescription(name="a", compute_time=100.0)))
        ce.submit(JobRecord(JobDescription(name="b", compute_time=100.0)))
        engine.run(until=1.0)
        assert ce.load_estimate() == pytest.approx(2.0)  # 1 running + 1 queued over 1 slot

    def test_infinite_ce_load_estimate_zero(self, engine):
        ce = ComputingElement(engine, "ce", "site", infinite=True)
        ce.submit(JobRecord(JobDescription(name="a", compute_time=100.0)))
        engine.run(until=1.0)
        assert ce.load_estimate() == 0.0

    def test_completed_counter(self, engine):
        ce = ComputingElement(engine, "ce", "site", workers=[WorkerNode("w0")])
        submit_and_run(engine, ce, ["a", "b"])
        assert ce.completed == 2

    def test_payload_runs_on_completion(self, engine):
        ce = ComputingElement(engine, "ce", "site", infinite=True)
        completion = ce.submit(
            JobRecord(JobDescription(name="p", compute_time=1.0, payload=lambda: {"v": 9}))
        )
        record = engine.run(until=completion)
        assert record.result == {"v": 9}


class TestCancelQueued:
    def test_queued_jobs_are_withdrawn_with_cancelled_error(self, engine):
        from repro.grid.job import JobCancelledError

        ce = ComputingElement(engine, "ce", "site", workers=[WorkerNode("w0")])
        blocker = ce.submit(JobRecord(JobDescription(name="run", compute_time=100.0)))
        waiting = [
            ce.submit(JobRecord(JobDescription(name=f"q{i}", compute_time=1.0)))
            for i in range(3)
        ]
        engine.run(until=1.0)  # "run" holds the only slot, the rest queue
        cancelled = ce.cancel_queued(reason="site flagged")
        # q0 is already in dispatch limbo (picked by the dispatch loop,
        # waiting on a slot) so only the entries still held by the queue
        # policy are withdrawn
        assert [r.name for r in cancelled] == ["q1", "q2"]
        assert all(r.state is JobState.CANCELLED for r in cancelled)
        assert not waiting[0].triggered
        for completion in waiting[1:]:
            assert completion.triggered and not completion.ok
            assert isinstance(completion.value, JobCancelledError)
            assert "site flagged" in str(completion.value)
        assert not blocker.triggered  # the dispatched job is untouched

    def test_dispatched_job_still_completes(self, engine):
        ce = ComputingElement(engine, "ce", "site", workers=[WorkerNode("w0")])
        running = ce.submit(JobRecord(JobDescription(name="run", compute_time=10.0)))
        engine.run(until=1.0)
        assert ce.cancel_queued() == []
        record = engine.run(until=running)
        assert record.name == "run"
        assert engine.now == 10.0

    def test_cancel_on_empty_queue_is_a_noop(self, engine):
        ce = ComputingElement(engine, "ce", "site", workers=[WorkerNode("w0")])
        assert ce.cancel_queued() == []


class TestSite:
    def test_requires_a_ce(self):
        with pytest.raises(ValueError):
            Site(name="s", computing_elements=[], storage_element=StorageElement("se", "s"))
