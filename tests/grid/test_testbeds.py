"""Tests for the canned testbeds."""

import pytest

from repro.grid.job import JobDescription
from repro.grid.testbeds import (
    cluster_testbed,
    egee_like_testbed,
    faulty_testbed,
    ideal_testbed,
)
from repro.util.rng import RandomStreams


class TestIdeal:
    def test_unlimited_parallelism(self, engine):
        grid = ideal_testbed(engine)
        handles = [grid.submit(JobDescription(name=f"j{i}", compute_time=50.0))
                   for i in range(500)]
        engine.run(until=engine.all_of([h.completion for h in handles]))
        assert engine.now == 50.0  # hypothesis H2: all 500 at once

    def test_zero_everything(self, engine):
        grid = ideal_testbed(engine)
        handle = grid.submit(JobDescription(name="j", compute_time=0.0))
        record = engine.run(until=handle.completion)
        assert record.makespan == 0.0


class TestCluster:
    def test_low_constant_overhead(self, engine, streams):
        grid = cluster_testbed(engine, streams, workers=4, slots_per_worker=1)
        handle = grid.submit(JobDescription(name="j", compute_time=10.0))
        record = engine.run(until=handle.completion)
        assert record.overhead == pytest.approx(1.5)  # 1.0 submit + 0.5 broker

    def test_finite_capacity_queues(self, engine, streams):
        grid = cluster_testbed(engine, streams, workers=2, slots_per_worker=1)
        handles = [grid.submit(JobDescription(name=f"j{i}", compute_time=10.0))
                   for i in range(4)]
        engine.run(until=engine.all_of([h.completion for h in handles]))
        # 4 jobs on 2 slots: two waves (+ tiny constant overheads)
        assert 20.0 <= engine.now < 25.0


class TestEgeeLike:
    def test_worker_heterogeneity(self, engine):
        grid = egee_like_testbed(
            engine, RandomStreams(1), n_sites=2, workers_per_ce=5,
            with_background_load=False,
        )
        speeds = {
            worker.speed
            for ce in grid.computing_elements
            for worker in ce.workers
        }
        assert len(speeds) > 1
        assert all(0.7 <= s <= 1.3 for s in speeds)

    def test_homogeneous_option(self, engine):
        grid = egee_like_testbed(
            engine, RandomStreams(1), n_sites=1, workers_per_ce=5,
            heterogeneous_workers=False, with_background_load=False,
        )
        speeds = {w.speed for ce in grid.computing_elements for w in ce.workers}
        assert speeds == {1.0}

    def test_site_count(self, engine):
        grid = egee_like_testbed(
            engine, RandomStreams(1), n_sites=7, workers_per_ce=2,
            with_background_load=False,
        )
        assert len(grid.sites) == 7
        assert len(grid.computing_elements) == 7

    def test_every_site_has_storage(self, engine):
        grid = egee_like_testbed(
            engine, RandomStreams(1), n_sites=3, workers_per_ce=2,
            with_background_load=False,
        )
        for site in grid.sites:
            assert grid.storage_at(site.name) is not None

    def test_overhead_calibration_respected(self, engine):
        grid = egee_like_testbed(
            engine, RandomStreams(1), n_sites=2, workers_per_ce=4,
            overhead_mean=600.0, overhead_sigma=300.0,
            with_background_load=False,
        )
        assert grid.overhead.total_mean() == pytest.approx(600.0, rel=0.15)

    def test_invalid_site_count_rejected(self, engine):
        with pytest.raises(ValueError):
            egee_like_testbed(engine, RandomStreams(1), n_sites=0)


class TestFaulty:
    def test_needs_three_sites(self, engine):
        with pytest.raises(ValueError, match=">= 3 sites"):
            faulty_testbed(engine, RandomStreams(1), n_sites=2)

    def test_pathological_sites_must_differ(self, engine):
        with pytest.raises(ValueError, match="must be different"):
            faulty_testbed(engine, RandomStreams(1), blackhole_site=1, straggler_site=1)

    def test_pathological_site_indices_bounded(self, engine):
        with pytest.raises(ValueError, match="blackhole_site"):
            faulty_testbed(engine, RandomStreams(1), n_sites=3, blackhole_site=3)
        with pytest.raises(ValueError, match="straggler_site"):
            faulty_testbed(engine, RandomStreams(1), n_sites=3, straggler_site=-1)

    def test_blackhole_ce_fails_fast_and_often(self, engine):
        grid = faulty_testbed(engine, RandomStreams(1))
        assert grid.faults.probability_for("site01-ce") == 0.9
        assert grid.faults.probability_for("site00-ce") == 0.02
        rng = RandomStreams(1).get("check")
        assert grid.faults.sample_detection_delay(rng, ce="site01-ce") == 30.0
        # healthy sites detect failures on the slow middleware timescale
        assert grid.faults.sample_detection_delay(rng, ce="site00-ce") >= 30.0

    def test_straggler_site_is_uniformly_slow(self, engine):
        grid = faulty_testbed(engine, RandomStreams(1), straggler_speed=0.3)
        by_name = {ce.name: ce for ce in grid.computing_elements}
        assert {w.speed for w in by_name["site02-ce"].workers} == {0.3}
        healthy_speeds = [w.speed for w in by_name["site00-ce"].workers]
        assert all(0.95 <= s <= 1.05 for s in healthy_speeds)
