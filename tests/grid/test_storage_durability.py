"""Durability plumbing: checksums, replica loss/quarantine, failover."""

import pytest

from repro.grid.storage import (
    LogicalFile,
    ReplicaCatalog,
    ReplicaUnavailableError,
    StorageElement,
    UnknownFileError,
)


class TestChecksums:
    def test_checksum_is_deterministic(self):
        a = LogicalFile("gfn://x", size=100)
        b = LogicalFile("gfn://x", size=100)
        assert a.checksum == b.checksum
        assert len(a.checksum) == 16

    def test_checksum_depends_on_identity(self):
        base = LogicalFile("gfn://x", size=100)
        assert base.checksum != LogicalFile("gfn://y", size=100).checksum
        assert base.checksum != LogicalFile("gfn://x", size=101).checksum


class TestReplicaHealth:
    def test_lost_replica_is_unhealthy_but_held(self):
        se = StorageElement("se0", site="s0")
        se.add("gfn://a")
        se.mark_lost("gfn://a")
        assert se.holds("gfn://a")
        assert not se.healthy("gfn://a")
        assert se.lost_count == 1

    def test_quarantine(self):
        se = StorageElement("se0", site="s0")
        se.add("gfn://a")
        se.quarantine("gfn://a")
        assert not se.healthy("gfn://a")
        assert se.quarantined_count == 1

    def test_readd_clears_bad_state(self):
        se = StorageElement("se0", site="s0")
        se.add("gfn://a")
        se.mark_lost("gfn://a")
        se.add("gfn://a")
        assert se.healthy("gfn://a")
        assert se.lost_count == 0


class TestFailover:
    def make_catalog(self):
        catalog = ReplicaCatalog()
        ses = {
            name: StorageElement(name, site=site)
            for name, site in (
                ("se-local", "here"),
                ("se-b", "there"),
                ("se-a", "elsewhere"),
            )
        }
        file = LogicalFile("gfn://x", size=100)
        for name in ("se-local", "se-b", "se-a"):
            catalog.register(file, ses[name])
        return catalog, ses

    def test_failover_order_prefers_local_then_name(self):
        catalog, ses = self.make_catalog()
        order = catalog.failover_order("gfn://x", "here")
        assert order[0] is ses["se-local"]
        # remotes sorted by SE name for determinism
        assert [se.name for se in order[1:]] == ["se-a", "se-b"]

    def test_failover_skips_unhealthy(self):
        catalog, ses = self.make_catalog()
        ses["se-local"].mark_lost("gfn://x")
        order = catalog.failover_order("gfn://x", "here")
        assert [se.name for se in order] == ["se-a", "se-b"]

    def test_exclude(self):
        catalog, ses = self.make_catalog()
        order = catalog.failover_order("gfn://x", "here", exclude=("se-a",))
        assert "se-a" not in [se.name for se in order]

    def test_healthy_replica_count(self):
        catalog, ses = self.make_catalog()
        assert catalog.healthy_replica_count("gfn://x") == 3
        ses["se-b"].quarantine("gfn://x")
        assert catalog.healthy_replica_count("gfn://x") == 2


class TestReplicaUnavailableError:
    def test_all_replicas_dead_raises_with_context(self):
        catalog = ReplicaCatalog()
        se = StorageElement("se0", site="s0")
        catalog.register(LogicalFile("gfn://x", size=10), se)
        se.mark_lost("gfn://x")
        with pytest.raises(ReplicaUnavailableError) as excinfo:
            catalog.closest_replica("gfn://x", "s0")
        assert excinfo.value.gfn == "gfn://x"
        assert excinfo.value.sites_tried == ("s0",)
        assert "no live replica" in str(excinfo.value)

    def test_unknown_file_is_a_different_error(self):
        catalog = ReplicaCatalog()
        with pytest.raises(UnknownFileError):
            catalog.closest_replica("gfn://never-registered", "s0")
        assert not issubclass(ReplicaUnavailableError, UnknownFileError)
