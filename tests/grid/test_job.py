"""Tests for job descriptions and lifecycle records."""

import pytest

from repro.grid.job import JobDescription, JobRecord, JobState
from repro.util.distributions import Constant, Uniform


class TestJobDescription:
    def test_compute_distribution_from_number(self):
        desc = JobDescription(name="j", compute_time=120.0)
        assert isinstance(desc.compute_distribution(), Constant)
        assert desc.compute_distribution().mean() == 120.0

    def test_compute_distribution_passthrough(self):
        dist = Uniform(1.0, 2.0)
        desc = JobDescription(name="j", compute_time=dist)
        assert desc.compute_distribution() is dist

    def test_with_name_copies_everything_else(self):
        desc = JobDescription(
            name="a", command_line="cmd", compute_time=5.0, owner="me", tags={"k": 1}
        )
        renamed = desc.with_name("b")
        assert renamed.name == "b"
        assert renamed.command_line == "cmd"
        assert renamed.owner == "me"
        assert renamed.tags == {"k": 1}


class TestJobRecord:
    def test_ids_are_unique(self):
        records = [JobRecord(JobDescription(name=f"j{i}")) for i in range(5)]
        assert len({r.job_id for r in records}) == 5

    def test_state_transitions_recorded(self):
        record = JobRecord(JobDescription(name="j"))
        record.enter(JobState.SUBMITTED, 10.0)
        record.enter(JobState.MATCHED, 12.0)
        record.enter(JobState.QUEUED, 15.0)
        record.enter(JobState.RUNNING, 100.0)
        record.enter(JobState.DONE, 220.0)
        assert record.state is JobState.DONE
        assert record.first(JobState.SUBMITTED) == 10.0
        assert record.queue_wait == 85.0
        assert record.makespan == 210.0

    def test_resubmission_keeps_both_timestamps(self):
        record = JobRecord(JobDescription(name="j"))
        record.enter(JobState.SUBMITTED, 0.0)
        record.enter(JobState.FAILED, 50.0)
        record.enter(JobState.SUBMITTED, 60.0)
        assert record.timestamps[JobState.SUBMITTED] == [0.0, 60.0]
        assert record.first(JobState.SUBMITTED) == 0.0
        assert record.last(JobState.SUBMITTED) == 60.0

    def test_makespan_none_until_done(self):
        record = JobRecord(JobDescription(name="j"))
        record.enter(JobState.SUBMITTED, 0.0)
        assert record.makespan is None
        assert record.overhead is None

    def test_overhead_excludes_work(self):
        record = JobRecord(JobDescription(name="j"))
        record.enter(JobState.SUBMITTED, 0.0)
        record.enter(JobState.DONE, 1000.0)
        record.execution_time = 300.0
        record.stage_in_time = 50.0
        record.stage_out_time = 25.0
        assert record.overhead == pytest.approx(625.0)

    def test_queue_wait_none_until_running(self):
        record = JobRecord(JobDescription(name="j"))
        record.enter(JobState.QUEUED, 5.0)
        assert record.queue_wait is None

    def test_queue_wait_none_without_queued(self):
        record = JobRecord(JobDescription(name="j"))
        record.enter(JobState.RUNNING, 5.0)
        assert record.queue_wait is None

    def test_makespan_none_without_submitted(self):
        # DONE recorded but SUBMITTED never was: no makespan, no overhead.
        record = JobRecord(JobDescription(name="j"))
        record.enter(JobState.DONE, 100.0)
        assert record.makespan is None
        assert record.overhead is None

    def test_retried_job_uses_last_attempt_for_queue_wait(self):
        # A resubmitted job queues twice; queue_wait must describe the
        # successful attempt, not span from first QUEUED to last RUNNING
        # of different attempts mixed together.
        record = JobRecord(JobDescription(name="j"))
        record.enter(JobState.SUBMITTED, 0.0)
        record.enter(JobState.MATCHED, 2.0)
        record.enter(JobState.QUEUED, 5.0)
        record.enter(JobState.FAILED, 30.0)
        record.enter(JobState.SUBMITTED, 30.0)
        record.enter(JobState.MATCHED, 33.0)
        record.enter(JobState.QUEUED, 36.0)
        record.enter(JobState.RUNNING, 50.0)
        record.enter(JobState.DONE, 90.0)
        assert record.queue_wait == pytest.approx(14.0)  # 36 -> 50
        assert record.makespan == pytest.approx(90.0)  # first SUBMITTED -> last DONE

    def test_retried_job_overhead_includes_failed_attempt(self):
        record = JobRecord(JobDescription(name="j"))
        record.enter(JobState.SUBMITTED, 0.0)
        record.enter(JobState.FAILED, 40.0)
        record.enter(JobState.SUBMITTED, 40.0)
        record.enter(JobState.DONE, 100.0)
        record.execution_time = 25.0
        record.stage_in_time = 5.0
        record.stage_out_time = 10.0
        assert record.overhead == pytest.approx(60.0)  # 100 - 25 - 5 - 10

    def test_zero_duration_job(self):
        # Degenerate but legal: every state at the same instant.
        record = JobRecord(JobDescription(name="j"))
        for state in (JobState.SUBMITTED, JobState.MATCHED, JobState.QUEUED,
                      JobState.RUNNING, JobState.DONE):
            record.enter(state, 7.0)
        assert record.makespan == 0.0
        assert record.queue_wait == 0.0
        assert record.overhead == 0.0
