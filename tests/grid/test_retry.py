"""Retry policies, retry budgets, and their enforcement by the middleware."""

import numpy as np
import pytest

from repro.grid.faults import FaultModel
from repro.grid.job import JobDescription, JobFailedError, JobState
from repro.grid.middleware import Grid
from repro.grid.overhead import OverheadModel
from repro.grid.resources import ComputingElement, Site, WorkerNode
from repro.grid.retry import RetryBudget, RetryPolicy
from repro.grid.storage import StorageElement
from repro.observability import InstrumentationBus
from repro.util.rng import RandomStreams


def make_grid(engine, streams, faults=None, policy=None, budget=None, bus=None, slots=4):
    ce = ComputingElement(
        engine, "ce0", "s0", workers=[WorkerNode("w0", slots=slots)]
    )
    return Grid(
        engine,
        streams,
        sites=[Site(name="s0", computing_elements=[ce], storage_element=StorageElement("se0", site="s0"))],
        overhead=OverheadModel.zero(),
        faults=faults or FaultModel.none(),
        retry_policy=policy,
        retry_budget=budget,
        instrumentation=bus,
    )


def run_to_failure(engine, handle):
    with pytest.raises(JobFailedError) as info:
        engine.run(until=handle.completion)
    return info.value


class TestRetryPolicy:
    def test_default_is_the_legacy_loop(self):
        policy = RetryPolicy.default()
        assert policy.kind == "fixed"
        assert policy.base_delay == 0.0
        assert policy.max_attempts is None
        assert policy.attempt_timeout is None
        assert policy.job_deadline is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "polynomial"},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"max_attempts": 0},
            {"attempt_timeout": 0.0},
            {"job_deadline": -5.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_fixed_backoff_is_constant(self):
        policy = RetryPolicy.fixed(30.0)
        rng = np.random.default_rng(0)
        assert [policy.backoff(n, rng) for n in (1, 2, 5)] == [30.0, 30.0, 30.0]

    def test_exponential_backoff_grows_and_caps(self):
        policy = RetryPolicy.exponential(base_delay=10.0, multiplier=2.0, max_delay=35.0)
        rng = np.random.default_rng(0)
        assert policy.backoff(1, rng) == 10.0
        assert policy.backoff(2, rng) == 20.0
        assert policy.backoff(3, rng) == 35.0  # 40 capped
        assert policy.backoff(7, rng) == 35.0

    def test_backoff_rejects_nonpositive_failures(self):
        with pytest.raises(ValueError):
            RetryPolicy.fixed(1.0).backoff(0, np.random.default_rng(0))

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy.exponential(base_delay=100.0, jitter=0.25)
        a = [policy.backoff(1, np.random.default_rng(7)) for _ in range(3)]
        b = [policy.backoff(1, np.random.default_rng(7)) for _ in range(3)]
        assert a == b  # same stream, same pauses
        rng = np.random.default_rng(123)
        for _ in range(50):
            delay = policy.backoff(1, rng)
            assert 75.0 <= delay <= 125.0

    def test_describe_mentions_every_knob(self):
        text = RetryPolicy.exponential(
            base_delay=15.0, multiplier=2.0, max_delay=240.0, jitter=0.2,
            max_attempts=5, attempt_timeout=600.0, job_deadline=3600.0,
        ).describe()
        for fragment in ("exponential", "base=15s", "x2", "cap=240s",
                         "jitter=20%", "attempts<=5", "attempt_timeout=600s",
                         "deadline=3600s"):
            assert fragment in text


class TestRetryBudget:
    def test_unlimited_never_denies(self):
        budget = RetryBudget.unlimited()
        assert budget.remaining() is None
        assert all(budget.try_spend("svc") for _ in range(100))
        assert budget.denied == 0

    def test_total_cap(self):
        budget = RetryBudget(total=2)
        assert budget.try_spend("a")
        assert budget.try_spend("b")
        assert not budget.try_spend("a")
        assert budget.denied == 1
        assert budget.remaining() == 0

    def test_per_service_cap_is_independent(self):
        budget = RetryBudget(per_service=1)
        assert budget.try_spend("a")
        assert not budget.try_spend("a")
        assert budget.try_spend("b")  # other services unaffected
        assert budget.remaining("a") == 0
        assert budget.remaining("b") == 0
        assert budget.spent_by_service == {"a": 1, "b": 1}

    def test_tightest_bound_wins(self):
        budget = RetryBudget(total=10, per_service=1)
        budget.try_spend("a")
        assert budget.remaining("a") == 0
        assert budget.remaining() == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(total=-1)
        with pytest.raises(ValueError):
            RetryBudget(per_service=-1)


class TestMiddlewareEnforcement:
    def test_backoff_delays_resubmission(self, engine, streams):
        # probability 1: every attempt faults, so a 3-attempt job with a
        # 50s fixed pause fails exactly 100s later than the naive loop
        faults = FaultModel.from_values(probability=1.0, max_attempts=3)
        grid = make_grid(engine, streams, faults=faults, policy=RetryPolicy.fixed(50.0))
        handle = grid.submit(JobDescription(name="j", compute_time=10.0))
        error = run_to_failure(engine, handle)
        assert engine.now == pytest.approx(100.0)  # two pauses, no other delay
        assert error.record.attempts == 3
        assert "(all 3 attempts)" in str(error)
        assert [a.kind for a in error.record.failure_history] == ["fault"] * 3

    def test_policy_max_attempts_overrides_fault_model(self, engine, streams):
        faults = FaultModel.from_values(probability=1.0, max_attempts=10)
        grid = make_grid(
            engine, streams, faults=faults, policy=RetryPolicy(max_attempts=1)
        )
        handle = grid.submit(JobDescription(name="j"))
        error = run_to_failure(engine, handle)
        assert error.record.attempts == 1

    def test_budget_exhaustion_stops_the_job(self, engine, streams):
        faults = FaultModel.from_values(probability=1.0, max_attempts=10)
        budget = RetryBudget(per_service=1)
        bus = InstrumentationBus()
        grid = make_grid(engine, streams, faults=faults, budget=budget, bus=bus)
        handle = grid.submit(JobDescription(name="j", tags={"service": "svc"}))
        error = run_to_failure(engine, handle)
        # first attempt + one budgeted retry, then the denial breaks the loop
        assert error.record.attempts == 2
        assert "retry budget exhausted" in str(error)
        assert error.record.failure_history[-1].kind == "budget"
        assert budget.denied == 1
        assert budget.spent_by_service == {"svc": 1}
        assert bus.metrics.counter("grid.jobs.budget_denied").value == 1

    def test_job_deadline_stops_new_attempts(self, engine, streams):
        faults = FaultModel.from_values(
            probability=1.0, detection_delay=10.0, max_attempts=100
        )
        policy = RetryPolicy(job_deadline=25.0)
        grid = make_grid(engine, streams, faults=faults, policy=policy)
        handle = grid.submit(JobDescription(name="j"))
        error = run_to_failure(engine, handle)
        # attempts at t=0, 10, 20; by t=30 the deadline blocks attempt 4
        assert error.record.attempts == 3
        assert error.record.failure_history[-1].kind == "deadline"
        assert "deadline" in str(error)

    def test_attempt_timeout_abandons_running_job(self, engine, streams):
        faults = FaultModel.from_values(probability=0.0, max_attempts=2)
        policy = RetryPolicy(attempt_timeout=50.0)
        bus = InstrumentationBus()
        grid = make_grid(engine, streams, faults=faults, policy=policy, bus=bus)
        handle = grid.submit(JobDescription(name="slow", compute_time=200.0))
        error = run_to_failure(engine, handle)
        assert error.record.attempts == 2
        assert all(a.kind == "timeout" for a in error.record.failure_history)
        assert "timed out" in str(error)
        assert engine.now == pytest.approx(100.0)  # two 50s timeouts back-to-back
        assert bus.metrics.counter("grid.jobs.timeouts").value == 2

    def test_attempt_timeout_leaves_fast_jobs_alone(self, engine, streams):
        policy = RetryPolicy(attempt_timeout=50.0)
        grid = make_grid(engine, streams, policy=policy)
        handle = grid.submit(JobDescription(name="fast", compute_time=10.0))
        record = engine.run(until=handle.completion)
        assert record.state is JobState.DONE
        assert record.attempts == 1
        assert record.failure_history == []

    def test_backoff_pause_is_instrumented(self, engine, streams):
        faults = FaultModel.from_values(probability=1.0, max_attempts=2)
        bus = InstrumentationBus()
        collector = bus.collector()
        grid = make_grid(
            engine, streams, faults=faults, policy=RetryPolicy.fixed(30.0), bus=bus
        )
        run_to_failure(engine, grid.submit(JobDescription(name="j")))
        pauses = [s for s in collector.spans if s.name == "job.backoff"]
        assert len(pauses) == 1
        assert pauses[0].duration == pytest.approx(30.0)
        histogram = bus.metrics.histogram("grid.retry.backoff_seconds")
        assert histogram.count == 1

    def test_seeded_runs_are_reproducible_with_jitter(self):
        def failure_time(seed):
            from repro.sim.engine import Engine

            engine = Engine()
            streams = RandomStreams(seed=seed)
            faults = FaultModel.from_values(probability=1.0, max_attempts=4)
            policy = RetryPolicy.exponential(base_delay=20.0, jitter=0.5)
            grid = make_grid(engine, streams, faults=faults, policy=policy)
            run_to_failure(engine, grid.submit(JobDescription(name="j")))
            return engine.now

        assert failure_time(99) == failure_time(99)


class TestFailureHistorySatellite:
    """Satellite: JobRecord keeps the full per-attempt failure history."""

    def test_history_survives_eventual_success(self, engine, streams):
        # p=0.5: among 20 seeded jobs some succeed only after retries;
        # their records must keep the failed attempts on file while the
        # final failure_reason is cleared.
        faults = FaultModel.from_values(probability=0.5, max_attempts=10)
        grid = make_grid(engine, streams, faults=faults, slots=64)
        handles = [
            grid.submit(JobDescription(name=f"j{i}", compute_time=1.0))
            for i in range(20)
        ]
        for handle in handles:
            engine.run(until=handle.completion)
        bumpy = [r for r in grid.records if r.state is JobState.DONE and r.attempts > 1]
        assert bumpy, "seeded run produced no retried-but-successful job"
        for record in bumpy:
            assert record.failure_reason is None  # success cleared the verdict...
            assert len(record.failure_history) == record.attempts - 1  # ...not the log
            for n, attempt in enumerate(record.failure_history, start=1):
                assert attempt.attempt == n
                assert attempt.kind == "fault"
                assert attempt.computing_element == "ce0"

    def test_history_records_mixed_failure_kinds(self, engine, streams):
        faults = FaultModel.from_values(probability=1.0, max_attempts=3)
        budget = RetryBudget(total=1)
        grid = make_grid(engine, streams, faults=faults, budget=budget)
        error = run_to_failure(engine, grid.submit(JobDescription(name="j")))
        kinds = [a.kind for a in error.record.failure_history]
        assert kinds == ["fault", "fault", "budget"]
