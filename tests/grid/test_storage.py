"""Tests for logical files, storage elements and the replica catalog."""

import pytest

from repro.grid.storage import LogicalFile, ReplicaCatalog, StorageElement, UnknownFileError


class TestLogicalFile:
    def test_requires_gfn(self):
        with pytest.raises(ValueError):
            LogicalFile(gfn="")

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LogicalFile(gfn="gfn://x", size=-1)

    def test_fresh_mints_unique_names(self):
        a = LogicalFile.fresh("out", 10)
        b = LogicalFile.fresh("out", 10)
        assert a.gfn != b.gfn
        assert a.gfn.startswith("gfn://out/")


class TestStorageElement:
    def test_holds_after_add(self):
        se = StorageElement("se0", site="s0")
        assert not se.holds("gfn://a")
        se.add("gfn://a")
        assert se.holds("gfn://a")
        assert se.file_count == 1

    def test_requires_name(self):
        with pytest.raises(ValueError):
            StorageElement("", site="s0")


class TestReplicaCatalog:
    def test_register_and_lookup(self):
        catalog = ReplicaCatalog()
        se = StorageElement("se0", site="s0")
        file = LogicalFile("gfn://a", size=100)
        catalog.register(file, se)
        assert catalog.lookup("gfn://a") == file
        assert catalog.knows("gfn://a")
        assert se.holds("gfn://a")

    def test_unknown_lookup_raises(self):
        with pytest.raises(UnknownFileError):
            ReplicaCatalog().lookup("gfn://missing")

    def test_unknown_replicas_raises(self):
        with pytest.raises(UnknownFileError):
            ReplicaCatalog().replicas("gfn://missing")

    def test_size_conflict_rejected(self):
        catalog = ReplicaCatalog()
        se = StorageElement("se0", site="s0")
        catalog.register(LogicalFile("gfn://a", size=100), se)
        with pytest.raises(ValueError):
            catalog.register(LogicalFile("gfn://a", size=200), se)

    def test_multiple_replicas(self):
        catalog = ReplicaCatalog()
        se0 = StorageElement("se0", site="s0")
        se1 = StorageElement("se1", site="s1")
        file = LogicalFile("gfn://a")
        catalog.register(file, se0)
        catalog.register(file, se1)
        assert {se.name for se in catalog.replicas("gfn://a")} == {"se0", "se1"}

    def test_duplicate_replica_not_doubled(self):
        catalog = ReplicaCatalog()
        se = StorageElement("se0", site="s0")
        file = LogicalFile("gfn://a")
        catalog.register(file, se)
        catalog.register(file, se)
        assert len(catalog.replicas("gfn://a")) == 1

    def test_closest_replica_prefers_same_site(self):
        catalog = ReplicaCatalog()
        remote = StorageElement("se-remote", site="far")
        local = StorageElement("se-local", site="here")
        file = LogicalFile("gfn://a")
        catalog.register(file, remote)
        catalog.register(file, local)
        assert catalog.closest_replica("gfn://a", "here") is local

    def test_closest_replica_deterministic_when_all_remote(self):
        catalog = ReplicaCatalog()
        se_b = StorageElement("se-b", site="s1")
        se_a = StorageElement("se-a", site="s2")
        file = LogicalFile("gfn://a")
        catalog.register(file, se_b)
        catalog.register(file, se_a)
        assert catalog.closest_replica("gfn://a", "elsewhere").name == "se-a"

    def test_gfns_sorted(self):
        catalog = ReplicaCatalog()
        se = StorageElement("se0", site="s0")
        catalog.register(LogicalFile("gfn://b"), se)
        catalog.register(LogicalFile("gfn://a"), se)
        assert list(catalog.gfns()) == ["gfn://a", "gfn://b"]
        assert len(catalog) == 2


class TestSizeInterning:
    def test_float_size_interned_to_int(self):
        file = LogicalFile("gfn://x", size=7864320.0)
        assert isinstance(file.size, int)
        assert file.size == 7864320

    def test_fractional_size_rounds(self):
        assert LogicalFile("gfn://x", size=10.6).size == 11

    def test_int_size_untouched(self):
        assert LogicalFile("gfn://x", size=42).size == 42


class TestReplicaSelection:
    def test_closest_replica_unknown_file(self):
        with pytest.raises(UnknownFileError):
            ReplicaCatalog().closest_replica("gfn://missing", "anywhere")

    def test_unknown_file_error_is_a_key_error(self):
        # callers using dict-style handling keep working
        with pytest.raises(KeyError):
            ReplicaCatalog().lookup("gfn://missing")

    def test_same_site_beats_lexicographically_smaller_remote(self):
        catalog = ReplicaCatalog()
        remote = StorageElement("se-aaa", site="far")
        local = StorageElement("se-zzz", site="here")
        file = LogicalFile("gfn://a")
        catalog.register(file, remote)
        catalog.register(file, local)
        assert catalog.closest_replica("gfn://a", "here") is local


class TestCatalogObservers:
    def test_observers_fire_on_register(self):
        catalog = ReplicaCatalog()
        se = StorageElement("se0", site="s0")
        seen = []
        catalog.add_observer(lambda file, element: seen.append((file.gfn, element.name)))
        catalog.register(LogicalFile("gfn://a"), se)
        assert seen == [("gfn://a", "se0")]

    def test_on_register_compat_single_slot(self):
        catalog = ReplicaCatalog()
        se = StorageElement("se0", site="s0")
        assert catalog.on_register is None
        first, second = [], []
        catalog.on_register = lambda f, e: first.append(f.gfn)
        catalog.register(LogicalFile("gfn://a"), se)
        catalog.on_register = lambda f, e: second.append(f.gfn)
        catalog.register(LogicalFile("gfn://b"), se)
        assert first == ["gfn://a"] and second == ["gfn://b"]
        catalog.on_register = None
        assert catalog.observers == []
