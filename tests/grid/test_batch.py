"""Tests for batch-queue scheduling policies."""

import pytest

from repro.grid.batch import FairSharePolicy, FifoPolicy, ShortestJobFirstPolicy
from repro.grid.job import JobDescription, JobRecord
from repro.grid.resources import QueueEntry


def entry(engine, name, owner="user", compute=1.0):
    record = JobRecord(JobDescription(name=name, owner=owner, compute_time=compute))
    return QueueEntry(record=record, completion=engine.event())


def drain(policy, count):
    out = []
    for _ in range(count):
        got = policy.get()
        assert got.triggered, "expected an entry to be available"
        out.append(got.value.record.name)
    return out


class TestFifo:
    def test_arrival_order(self, engine):
        policy = FifoPolicy(engine)
        for i in range(4):
            policy.put(entry(engine, f"j{i}"))
        assert drain(policy, 4) == ["j0", "j1", "j2", "j3"]

    def test_blocking_get_wakes_on_put(self, engine):
        policy = FifoPolicy(engine)
        got = policy.get()
        assert not got.triggered
        policy.put(entry(engine, "late"))
        assert got.triggered and got.value.record.name == "late"

    def test_double_pending_get_rejected(self, engine):
        policy = FifoPolicy(engine)
        policy.get()
        with pytest.raises(RuntimeError):
            policy.get()

    def test_len(self, engine):
        policy = FifoPolicy(engine)
        policy.put(entry(engine, "a"))
        policy.put(entry(engine, "b"))
        assert len(policy) == 2


class TestFairShare:
    def test_round_robin_over_owners(self, engine):
        policy = FairSharePolicy(engine)
        for i in range(3):
            policy.put(entry(engine, f"alice{i}", owner="alice"))
        for i in range(3):
            policy.put(entry(engine, f"bob{i}", owner="bob"))
        order = drain(policy, 6)
        assert order == ["alice0", "bob0", "alice1", "bob1", "alice2", "bob2"]

    def test_fifo_within_owner(self, engine):
        policy = FairSharePolicy(engine)
        for i in range(3):
            policy.put(entry(engine, f"j{i}", owner="solo"))
        assert drain(policy, 3) == ["j0", "j1", "j2"]

    def test_heavy_user_cannot_starve_light_user(self, engine):
        policy = FairSharePolicy(engine)
        for i in range(10):
            policy.put(entry(engine, f"heavy{i}", owner="background"))
        policy.put(entry(engine, "light", owner="app"))
        order = drain(policy, 3)
        assert "light" in order  # served within the first rotation

    def test_owner_exhaustion_removes_from_rotation(self, engine):
        policy = FairSharePolicy(engine)
        policy.put(entry(engine, "a0", owner="a"))
        policy.put(entry(engine, "b0", owner="b"))
        policy.put(entry(engine, "b1", owner="b"))
        assert drain(policy, 3) == ["a0", "b0", "b1"]


class TestShortestJobFirst:
    def test_picks_smallest_expected_time(self, engine):
        policy = ShortestJobFirstPolicy(engine)
        policy.put(entry(engine, "long", compute=100.0))
        policy.put(entry(engine, "short", compute=1.0))
        policy.put(entry(engine, "medium", compute=10.0))
        assert drain(policy, 3) == ["short", "medium", "long"]

    def test_arrival_breaks_ties(self, engine):
        policy = ShortestJobFirstPolicy(engine)
        policy.put(entry(engine, "first", compute=5.0))
        policy.put(entry(engine, "second", compute=5.0))
        assert drain(policy, 2) == ["first", "second"]


@pytest.mark.parametrize(
    "policy_cls", [FifoPolicy, FairSharePolicy, ShortestJobFirstPolicy]
)
class TestWithdrawal:
    """remove()/entries() back job cancellation across every policy."""

    def test_entries_snapshot_covers_everything_queued(self, engine, policy_cls):
        policy = policy_cls(engine)
        queued = [entry(engine, f"j{i}", owner=f"u{i % 2}") for i in range(4)]
        for item in queued:
            policy.put(item)
        assert sorted(e.record.name for e in policy.entries()) == [
            "j0", "j1", "j2", "j3",
        ]

    def test_remove_withdraws_and_updates_len(self, engine, policy_cls):
        policy = policy_cls(engine)
        keep = entry(engine, "keep")
        gone = entry(engine, "gone", owner="other")
        policy.put(keep)
        policy.put(gone)
        assert policy.remove(gone)
        assert len(policy) == 1
        assert [e.record.name for e in policy.entries()] == ["keep"]
        assert drain(policy, 1) == ["keep"]

    def test_remove_is_idempotent_on_absent_entries(self, engine, policy_cls):
        policy = policy_cls(engine)
        present = entry(engine, "present")
        never_queued = entry(engine, "never")
        policy.put(present)
        assert not policy.remove(never_queued)
        assert policy.remove(present)
        assert not policy.remove(present)  # already dispatched/removed
        assert len(policy) == 0

    def test_removing_everything_leaves_a_clean_queue(self, engine, policy_cls):
        policy = policy_cls(engine)
        queued = [entry(engine, f"j{i}", owner=f"u{i}") for i in range(3)]
        for item in queued:
            policy.put(item)
        for item in queued:
            assert policy.remove(item)
        assert len(policy) == 0 and policy.entries() == []
        # the queue still works after a full withdrawal
        policy.put(entry(engine, "fresh"))
        assert drain(policy, 1) == ["fresh"]
