"""Tests for the stochastic overhead model."""

import numpy as np
import pytest

from repro.grid.overhead import OverheadModel, OverheadSample
from repro.util.distributions import TruncatedNormal


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestOverheadModel:
    def test_zero_model_samples_zero(self, rng):
        sample = OverheadModel.zero().sample(rng)
        assert sample.total == 0.0

    def test_from_values_coerces_numbers(self, rng):
        model = OverheadModel.from_values(submission=10.0, brokering=20.0)
        sample = model.sample(rng)
        assert sample.submission == 10.0
        assert sample.brokering == 20.0
        assert sample.total == 30.0

    def test_total_mean_adds_phases(self):
        model = OverheadModel.from_values(
            submission=60.0, brokering=150.0, queue_extra=360.0, completion_notification=30.0
        )
        assert model.total_mean() == pytest.approx(600.0)

    def test_stochastic_phases_vary(self, rng):
        model = OverheadModel(queue_extra=TruncatedNormal(mu=100, sigma=50, floor=0))
        totals = {model.sample(rng).total for _ in range(10)}
        assert len(totals) > 1


class TestOverheadSampleUnderLoad:
    def test_scales_only_load_sensitive_phases(self):
        sample = OverheadSample(
            submission=10.0, brokering=100.0, queue_extra=200.0, completion_notification=5.0
        )
        scaled = sample.under_load(0.5)
        assert scaled.submission == 10.0
        assert scaled.brokering == 50.0
        assert scaled.queue_extra == 100.0
        assert scaled.completion_notification == 5.0

    def test_scale_one_is_identity(self):
        sample = OverheadSample(1.0, 2.0, 3.0, 4.0)
        assert sample.under_load(1.0) == sample

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            OverheadSample(1.0, 2.0, 3.0, 4.0).under_load(-0.1)
