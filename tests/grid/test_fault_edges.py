"""FaultModel validation edges: the boundary values are all meaningful.

probability 0 (ideal testbeds) and 1 (every attempt fails) are legal
extremes, max_attempts=1 means "no resubmission at all" — each drives a
distinct branch in the middleware and must be accepted, while anything
outside must be rejected at construction time.
"""

import numpy as np
import pytest

from repro.grid.faults import FaultModel


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestProbabilityEdges:
    def test_zero_is_legal_and_never_fails(self, rng):
        model = FaultModel(probability=0.0)
        assert not any(model.attempt_fails(rng) for _ in range(200))
        assert model.expected_attempts() == 1.0

    def test_one_is_legal_and_always_fails(self, rng):
        model = FaultModel(probability=1.0, max_attempts=3)
        assert all(model.attempt_fails(rng) for _ in range(200))
        # every attempt fails -> the middleware burns all allowed attempts
        assert model.expected_attempts() == pytest.approx(3.0)

    @pytest.mark.parametrize("probability", [-1e-9, -0.5, 1.0 + 1e-9, 2.0])
    def test_outside_unit_interval_rejected(self, probability):
        with pytest.raises(ValueError, match="probability"):
            FaultModel(probability=probability)


class TestMaxAttemptsEdges:
    def test_one_attempt_means_no_resubmission(self, rng):
        model = FaultModel(probability=0.9, max_attempts=1)
        # expected attempts is exactly 1 regardless of failure rate
        assert model.expected_attempts() == 1.0

    @pytest.mark.parametrize("attempts", [0, -1])
    def test_below_one_rejected(self, attempts):
        with pytest.raises(ValueError, match="max_attempts"):
            FaultModel(max_attempts=attempts)

    def test_none_constructor_uses_both_edges(self):
        model = FaultModel.none()
        assert model.probability == 0.0
        assert model.max_attempts == 1
        assert model.expected_attempts() == 1.0


class TestCombinedEdges:
    def test_certain_failure_single_attempt(self, rng):
        """p=1 with one attempt: the job fails exactly once, definitively."""
        model = FaultModel(probability=1.0, max_attempts=1)
        assert model.attempt_fails(rng)
        assert model.expected_attempts() == 1.0

    def test_expected_attempts_interpolates_between_edges(self):
        low = FaultModel(probability=0.0, max_attempts=5).expected_attempts()
        mid = FaultModel(probability=0.5, max_attempts=5).expected_attempts()
        high = FaultModel(probability=1.0, max_attempts=5).expected_attempts()
        assert low == 1.0
        assert high == 5.0
        assert low < mid < high
