"""Tests for the resource broker."""

import pytest

from repro.grid.broker import ResourceBroker
from repro.grid.job import JobDescription, JobRecord
from repro.grid.resources import ComputingElement, WorkerNode
from repro.util.rng import RandomStreams


def make_ces(engine, count, slots=1):
    return [
        ComputingElement(
            engine, f"ce{i}", f"site{i}", workers=[WorkerNode(f"w{i}", slots=slots)]
        )
        for i in range(count)
    ]


def match_one(engine, broker, delay=0.0):
    record = JobRecord(JobDescription(name="j"))
    proc = engine.process(broker.match(record, delay))
    return engine.run(until=proc)


class TestRanking:
    def test_least_loaded_prefers_idle_ce(self, engine, streams):
        ces = make_ces(engine, 3)
        # load up ce0 and ce1
        ces[0].submit(JobRecord(JobDescription(name="busy0", compute_time=1000.0)))
        ces[1].submit(JobRecord(JobDescription(name="busy1", compute_time=1000.0)))
        engine.run(until=0.1)
        broker = ResourceBroker(engine, ces, rng=streams.get("b"), strategy="least-loaded")
        assert match_one(engine, broker).name == "ce2"

    def test_least_loaded_ties_break_by_name(self, engine, streams):
        ces = make_ces(engine, 3)
        broker = ResourceBroker(engine, ces, rng=streams.get("b"), strategy="least-loaded")
        assert match_one(engine, broker).name == "ce0"

    def test_round_robin_cycles(self, engine, streams):
        ces = make_ces(engine, 3)
        broker = ResourceBroker(engine, ces, rng=streams.get("b"), strategy="round-robin")
        chosen = [match_one(engine, broker).name for _ in range(6)]
        assert chosen == ["ce0", "ce1", "ce2", "ce0", "ce1", "ce2"]

    def test_round_robin_state_is_per_broker(self, engine, streams):
        # regression: the rotation used to be shared module state, so a
        # second broker over the same fleet resumed mid-cycle instead of
        # starting at ce0 — two identical testbeds diverged
        ces = make_ces(engine, 3)
        first = ResourceBroker(
            engine, ces, rng=streams.get("b1"), strategy="round-robin"
        )
        assert [match_one(engine, first).name for _ in range(2)] == ["ce0", "ce1"]
        second = ResourceBroker(
            engine, ces, rng=streams.get("b2"), strategy="round-robin"
        )
        assert [match_one(engine, second).name for _ in range(3)] == [
            "ce0", "ce1", "ce2",
        ]
        # and the first broker's own rotation was not disturbed
        assert match_one(engine, first).name == "ce2"

    def test_random_is_reproducible(self, engine):
        ces = make_ces(engine, 4)
        s1 = RandomStreams(seed=5)
        broker1 = ResourceBroker(engine, ces, rng=s1.get("b"), strategy="random")
        picks1 = [match_one(engine, broker1).name for _ in range(10)]
        s2 = RandomStreams(seed=5)
        broker2 = ResourceBroker(engine, ces, rng=s2.get("b"), strategy="random")
        picks2 = [match_one(engine, broker2).name for _ in range(10)]
        assert picks1 == picks2
        assert len(set(picks1)) > 1

    def test_unknown_strategy_rejected(self, engine, streams):
        ces = make_ces(engine, 1)
        with pytest.raises(ValueError, match="ranking strategy"):
            ResourceBroker(engine, ces, rng=streams.get("b"), strategy="magic")

    def test_needs_at_least_one_ce(self, engine, streams):
        with pytest.raises(ValueError):
            ResourceBroker(engine, [], rng=streams.get("b"))


class TestBrokerConcurrency:
    def test_matchmaking_delay_applies(self, engine, streams):
        ces = make_ces(engine, 1)
        broker = ResourceBroker(engine, ces, rng=streams.get("b"))
        match_one(engine, broker, delay=30.0)
        assert engine.now == 30.0

    def test_finite_concurrency_serializes_matchmaking(self, engine, streams):
        ces = make_ces(engine, 1)
        broker = ResourceBroker(engine, ces, rng=streams.get("b"), concurrency=1)
        procs = [
            engine.process(broker.match(JobRecord(JobDescription(name=f"j{i}")), 10.0))
            for i in range(3)
        ]
        engine.run(until=engine.all_of(procs))
        assert engine.now == 30.0  # 3 x 10s strictly serialized

    def test_infinite_concurrency_overlaps(self, engine, streams):
        ces = make_ces(engine, 1)
        broker = ResourceBroker(engine, ces, rng=streams.get("b"))
        procs = [
            engine.process(broker.match(JobRecord(JobDescription(name=f"j{i}")), 10.0))
            for i in range(3)
        ]
        engine.run(until=engine.all_of(procs))
        assert engine.now == 10.0

    def test_matchmaking_counter(self, engine, streams):
        ces = make_ces(engine, 2)
        broker = ResourceBroker(engine, ces, rng=streams.get("b"))
        for _ in range(4):
            match_one(engine, broker)
        assert broker.matchmaking_count == 4


class FakeHealth:
    """Scripted HealthProvider stand-in."""

    def __init__(self, blacklist=(), penalties=None):
        self.blacklist = set(blacklist)
        self.penalties = dict(penalties or {})

    def blacklisted(self, ce):
        return ce in self.blacklist

    def penalty(self, ce):
        return self.penalties.get(ce, 0.0)


class TestHealthFeedback:
    def test_blacklisted_ce_avoided(self, engine, streams):
        ces = make_ces(engine, 3)
        broker = ResourceBroker(
            engine, ces, rng=streams.get("b"), strategy="least-loaded",
            health=FakeHealth(blacklist={"ce0"}),
        )
        assert match_one(engine, broker).name == "ce1"
        assert broker.demotions == 1

    def test_all_blacklisted_still_places_the_job(self, engine, streams):
        # a blacklist is a strong preference, never a deadlock
        ces = make_ces(engine, 2)
        broker = ResourceBroker(
            engine, ces, rng=streams.get("b"),
            health=FakeHealth(blacklist={"ce0", "ce1"}),
        )
        assert match_one(engine, broker).name == "ce0"

    def test_penalty_demotes_without_blacklisting(self, engine, streams):
        ces = make_ces(engine, 2)
        broker = ResourceBroker(
            engine, ces, rng=streams.get("b"), strategy="least-loaded",
            health=FakeHealth(penalties={"ce0": 5.0}),
        )
        assert match_one(engine, broker).name == "ce1"
        assert broker.demotions == 0  # demotion counts blacklist exclusions only

    def test_healthy_provider_changes_nothing(self, engine, streams):
        ces = make_ces(engine, 3)
        plain = ResourceBroker(engine, ces, rng=streams.get("a"))
        wired = ResourceBroker(
            engine, ces, rng=streams.get("b"), health=FakeHealth()
        )
        assert match_one(engine, plain).name == match_one(engine, wired).name
