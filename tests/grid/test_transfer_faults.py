"""Transfer-level fault injection: link failures and degraded windows."""

import pytest

from repro.grid.transfer import DegradedWindow, NetworkModel


def make_network(**kwargs):
    return NetworkModel(**kwargs)


class TestFailureProbability:
    def test_default_network_has_no_faults(self):
        network = make_network()
        assert not network.has_faults
        assert network.failure_probability_for("a", "b") == 0.0

    def test_global_probability(self):
        network = make_network(failure_probability=0.25)
        assert network.has_faults
        assert network.failure_probability_for("a", "b") == 0.25

    def test_per_link_override_wins(self):
        network = make_network(
            failure_probability=0.1,
            link_failure_probability={("a", "b"): 0.9},
        )
        assert network.failure_probability_for("a", "b") == 0.9
        assert network.failure_probability_for("b", "a") == 0.1

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            make_network(failure_probability=1.5)
        with pytest.raises(ValueError):
            make_network(link_failure_probability={("a", "b"): -0.1})


class TestDegradedWindows:
    def test_window_matches_time_and_sites(self):
        window = DegradedWindow(start=100.0, end=200.0, factor=3.0)
        assert window.matches("a", "b", 150.0)
        assert not window.matches("a", "b", 250.0)
        scoped = DegradedWindow(
            start=0.0, end=1e9, factor=2.0, src="site-a", dst=None
        )
        assert scoped.matches("site-a", "anywhere", 5.0)
        assert not scoped.matches("site-b", "anywhere", 5.0)

    def test_factor_must_slow_down(self):
        with pytest.raises(ValueError):
            DegradedWindow(start=0.0, end=10.0, factor=0.5)

    def test_degradation_multiplies(self):
        network = make_network(
            degraded_windows=(
                DegradedWindow(start=0.0, end=100.0, factor=2.0),
                DegradedWindow(start=50.0, end=100.0, factor=3.0),
            )
        )
        assert network.degradation_factor("a", "b", 75.0) == 6.0
        assert network.degradation_factor("a", "b", 25.0) == 2.0
        assert network.degradation_factor("a", "b", 150.0) == 1.0

    def test_degraded_transfer_takes_longer(self):
        network = make_network(
            degraded_windows=(DegradedWindow(start=0.0, end=100.0, factor=2.0),)
        )
        clean = network.raw_transfer_time("a", "b", 1e6, now=500.0)
        degraded = network.raw_transfer_time("a", "b", 1e6, now=50.0)
        assert degraded == pytest.approx(2.0 * clean)


class TestRawVsObserved:
    def test_raw_transfer_time_fires_no_observers(self):
        network = make_network()
        seen = []
        network.add_observer(lambda *args: seen.append(args))
        network.raw_transfer_time("a", "b", 1e6)
        assert seen == []

    def test_transfer_time_fires_observers(self):
        network = make_network()
        seen = []
        network.add_observer(lambda *args: seen.append(args))
        seconds = network.transfer_time("a", "b", 1e6)
        assert len(seen) == 1
        src, dst, size, observed_seconds = seen[0]
        assert (src, dst, size) == ("a", "b", 1e6)
        assert observed_seconds == pytest.approx(seconds)

    def test_raw_equals_observed_seconds(self):
        network = make_network(
            degraded_windows=(DegradedWindow(start=0.0, end=100.0, factor=2.0),)
        )
        assert network.raw_transfer_time("a", "b", 5e6, now=50.0) == pytest.approx(
            network.transfer_time("a", "b", 5e6, now=50.0)
        )
