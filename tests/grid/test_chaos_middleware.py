"""Chaos middleware: retry/failover determinism, outage waits, repair."""

import io
import itertools

import pytest

import repro.grid.job
import repro.grid.storage
from repro.grid.faults import DurabilityFaultModel, FaultModel, OutageSchedule
from repro.grid.job import JobDescription
from repro.grid.middleware import Grid
from repro.grid.overhead import OverheadModel
from repro.grid.resources import ComputingElement, Site, WorkerNode
from repro.grid.storage import LogicalFile, ReplicaUnavailableError, StorageElement
from repro.grid.transfer import LinkParameters, NetworkModel
from repro.util.units import MEBIBYTE


def two_site_grid(engine, streams, **grid_kwargs):
    # least-loaded ranking tie-breaks by CE name, so a single submitted
    # job always lands on ce0 at s0 and remote staging is deterministic
    sites = [
        Site(
            name=f"s{i}",
            computing_elements=[
                ComputingElement(
                    engine, f"ce{i}", f"s{i}", workers=[WorkerNode(f"w{i}", slots=4)]
                )
            ],
            storage_element=StorageElement(f"se{i}", site=f"s{i}"),
        )
        for i in range(2)
    ]
    return Grid(
        engine,
        streams,
        sites=sites,
        overhead=OverheadModel.zero(),
        network=NetworkModel(
            lan=LinkParameters(latency=1.0, bandwidth=10 * MEBIBYTE),
            wan=LinkParameters(latency=5.0, bandwidth=10 * MEBIBYTE),
        ),
        faults=FaultModel.none(),
        **grid_kwargs,
    )


def reset_global_counters():
    """Process-global id counters: reset so traces compare byte-identically."""
    repro.grid.job._job_ids = itertools.count(1)
    repro.grid.storage._file_counter = itertools.count(1)


class TestOutageWaits:
    def test_stage_in_waits_out_an_se_outage(self, engine, streams):
        grid = two_site_grid(
            engine,
            streams,
            outages=OutageSchedule.from_windows({"se1": [(0.0, 500.0)]}),
        )
        assert grid.chaos_enabled
        file = LogicalFile("gfn://input", size=1 * MEBIBYTE)
        grid.add_input_file(file, site_name="s1")
        handle = grid.submit(
            JobDescription(
                name="j", compute_time=1.0, input_files=(file.gfn,)
            )
        )
        record = engine.run(until=handle.completion)
        # the only replica sat behind a dark SE until t=500
        assert record.makespan > 500.0
        assert record.state.name == "DONE"

    def test_flapping_se_heals_mid_run(self, engine, streams):
        outages = OutageSchedule.none().with_flapping(
            "se1", start=0.0, down=100.0, up=50.0, cycles=3
        )
        grid = two_site_grid(engine, streams, outages=outages)
        file = LogicalFile("gfn://flappy", size=1 * MEBIBYTE)
        grid.add_input_file(file, site_name="s1")
        handle = grid.submit(
            JobDescription(
                name="j", compute_time=1.0, input_files=(file.gfn,)
            )
        )
        record = engine.run(until=handle.completion)
        # stage-in started inside the first down window and resumed in
        # the first up gap [100, 150)
        assert 100.0 < record.makespan < 150.0

    def test_ce_outage_delays_but_never_fails(self, engine, streams):
        grid = two_site_grid(
            engine,
            streams,
            outages=OutageSchedule.from_windows({"ce0": [(0.0, 200.0)]}),
        )
        handle = grid.submit(
            JobDescription(name="j", compute_time=1.0)
        )
        record = engine.run(until=handle.completion)
        assert record.state.name == "DONE"
        assert record.makespan > 200.0


class TestReplicaFailover:
    def test_all_replicas_lost_fails_the_job(self, engine, streams):
        grid = two_site_grid(
            engine,
            streams,
            # durability active => chaos staging paths are exercised
            durability=DurabilityFaultModel(loss_probability=0.0),
            outages=OutageSchedule.from_windows({"unused": [(1.0, 2.0)]}),
        )
        file = LogicalFile("gfn://doomed", size=1 * MEBIBYTE)
        grid.add_input_file(file, site_name="s1")
        for se in grid.catalog.replicas(file.gfn):
            se.mark_lost(file.gfn)
        handle = grid.submit(
            JobDescription(name="j", compute_time=1.0, input_files=(file.gfn,))
        )
        with pytest.raises(ReplicaUnavailableError) as excinfo:
            engine.run(until=handle.completion)
        assert excinfo.value.gfn == "gfn://doomed"
        assert excinfo.value.sites_tried == ("s1",)

    def test_failover_to_surviving_replica(self, engine, streams):
        grid = two_site_grid(
            engine,
            streams,
            outages=OutageSchedule.from_windows({"unused": [(1.0, 2.0)]}),
        )
        file = LogicalFile("gfn://pair", size=1 * MEBIBYTE)
        grid.add_input_file(file, site_name="s0")
        grid.add_input_file(file, site_name="s1")
        # kill the local copy: stage-in must fail over to the remote
        grid.storage_at("s0").mark_lost(file.gfn)
        handle = grid.submit(
            JobDescription(
                name="j", compute_time=1.0, input_files=(file.gfn,)
            )
        )
        record = engine.run(until=handle.completion)
        assert record.state.name == "DONE"
        # WAN latency charged, not LAN: the remote copy was used
        assert record.stage_in_time > 5.0


class TestRepair:
    def test_repair_replicates_to_target(self, engine, streams):
        grid = two_site_grid(
            engine, streams, repair_target=2, repair_interval=50.0
        )
        assert grid.chaos_enabled
        file = LogicalFile("gfn://precious", size=1 * MEBIBYTE)
        grid.add_input_file(file, site_name="s0")
        assert grid.catalog.healthy_replica_count(file.gfn) == 1
        engine.run(until=200.0)
        assert grid.catalog.healthy_replica_count(file.gfn) == 2
        assert grid.instrumentation is None  # no bus: counters are optional

    def test_repair_emits_repair_purpose_transfers(self, engine, streams):
        from repro.observability.dataflow import DataFlowCollector

        grid = two_site_grid(
            engine, streams, repair_target=2, repair_interval=50.0
        )
        collector = DataFlowCollector().attach(grid)
        file = LogicalFile("gfn://precious", size=1 * MEBIBYTE)
        grid.add_input_file(file, site_name="s0")
        engine.run(until=200.0)
        purposes = {record.purpose for record in collector.records}
        assert purposes == {"repair"}
        assert sum(r.bytes for r in collector.records) == 1 * MEBIBYTE


class TestChaosDeterminism:
    """S3: same seed => byte-identical trace and identical failover order."""

    @staticmethod
    def run_chaotic_bronze(seed):
        from repro.apps.bronze_standard import BronzeStandardApplication
        from repro.core import OptimizationConfig
        from repro.grid.testbeds import chaotic_testbed
        from repro.observability import InstrumentationBus, JsonlExporter
        from repro.observability.dataflow import DataFlowCollector
        from repro.sim.engine import Engine
        from repro.util.rng import RandomStreams

        reset_global_counters()
        engine = Engine()
        streams = RandomStreams(seed=seed)
        grid = chaotic_testbed(engine, streams)
        collector = DataFlowCollector().attach(grid)
        bus = InstrumentationBus()
        buffer = io.StringIO()
        bus.subscribe(JsonlExporter(buffer))
        app = BronzeStandardApplication(engine, grid, streams)
        config = next(
            c
            for c in OptimizationConfig.paper_configurations()
            if c.label == "SP+DP"
        ).with_best_effort()
        result = app.enact(config, n_pairs=3, instrumentation=bus)
        lost = set()
        for items in result.failures.poisoned_lineage().values():
            lost |= set(items)
        failovers = [
            (r.gfn, r.src, r.dst) for r in collector.records if r.purpose == "stage-in"
        ]
        return buffer.getvalue(), frozenset(lost), failovers, result.makespan

    def test_same_seed_is_byte_identical(self):
        trace_a, lost_a, failovers_a, makespan_a = self.run_chaotic_bronze(42)
        trace_b, lost_b, failovers_b, makespan_b = self.run_chaotic_bronze(42)
        assert makespan_a == makespan_b
        assert lost_a == lost_b
        assert failovers_a == failovers_b
        assert trace_a == trace_b

    def test_different_seed_diverges(self):
        _, _, _, makespan_a = self.run_chaotic_bronze(42)
        _, _, _, makespan_b = self.run_chaotic_bronze(7)
        assert makespan_a != makespan_b
