"""Tests for the Grid façade: submission lifecycle, staging, failures."""

import numpy as np
import pytest

from repro.grid.faults import FaultModel
from repro.grid.job import JobDescription, JobFailedError, JobState
from repro.grid.middleware import Grid
from repro.grid.overhead import OverheadModel
from repro.grid.resources import ComputingElement, Site, WorkerNode
from repro.grid.storage import LogicalFile, StorageElement
from repro.grid.testbeds import egee_like_testbed, ideal_testbed
from repro.grid.transfer import LinkParameters, NetworkModel
from repro.util.rng import RandomStreams
from repro.util.units import MEBIBYTE


def simple_grid(engine, streams, overhead=None, faults=None, coupling=0.0, slots=4):
    site_name = "s0"
    ce = ComputingElement(
        engine, "ce0", site_name, workers=[WorkerNode("w0", slots=slots)]
    )
    se = StorageElement("se0", site=site_name)
    return Grid(
        engine,
        streams,
        sites=[Site(name=site_name, computing_elements=[ce], storage_element=se)],
        overhead=overhead or OverheadModel.zero(),
        network=NetworkModel(
            lan=LinkParameters(latency=1.0, bandwidth=10 * MEBIBYTE),
            wan=LinkParameters(latency=5.0, bandwidth=1 * MEBIBYTE),
        ),
        faults=faults or FaultModel.none(),
        overhead_load_coupling=coupling,
    )


class TestSubmission:
    def test_job_reaches_done_with_exact_timing(self, engine, streams):
        grid = simple_grid(engine, streams, overhead=OverheadModel.from_values(
            submission=10.0, brokering=20.0, queue_extra=30.0, completion_notification=5.0
        ))
        handle = grid.submit(JobDescription(name="j", compute_time=100.0))
        record = engine.run(until=handle.completion)
        assert record.state is JobState.DONE
        assert record.makespan == pytest.approx(165.0)
        assert record.overhead == pytest.approx(65.0)

    def test_unregistered_input_rejected_at_submit(self, engine, streams):
        grid = simple_grid(engine, streams)
        with pytest.raises(ValueError, match="unregistered input"):
            grid.submit(JobDescription(name="j", input_files=("gfn://nope",)))

    def test_records_listed_in_submission_order(self, engine, streams):
        grid = simple_grid(engine, streams)
        for i in range(3):
            grid.submit(JobDescription(name=f"j{i}"))
        assert [r.name for r in grid.records] == ["j0", "j1", "j2"]

    def test_completed_records_filters(self, engine, streams):
        grid = simple_grid(engine, streams)
        handle = grid.submit(JobDescription(name="done", compute_time=1.0))
        grid.submit(JobDescription(name="pending", compute_time=10**6))
        engine.run(until=handle.completion)
        assert [r.name for r in grid.completed_records()] == ["done"]


class TestStaging:
    def test_stage_in_time_charged(self, engine, streams):
        grid = simple_grid(engine, streams)
        file = LogicalFile("gfn://input", size=10 * MEBIBYTE)
        grid.add_input_file(file)
        handle = grid.submit(
            JobDescription(name="j", compute_time=0.0, input_files=(file.gfn,))
        )
        record = engine.run(until=handle.completion)
        # LAN: 1s latency + 10MiB / 10MiB/s = 2s
        assert record.stage_in_time == pytest.approx(2.0)
        assert record.makespan == pytest.approx(2.0)

    def test_outputs_registered_after_run(self, engine, streams):
        grid = simple_grid(engine, streams)
        out = LogicalFile("gfn://out/x", size=1 * MEBIBYTE)
        handle = grid.submit(JobDescription(name="j", output_files=(out,)))
        record = engine.run(until=handle.completion)
        assert grid.catalog.knows("gfn://out/x")
        assert record.stage_out_time > 0

    def test_add_input_file_requires_storage(self, engine, streams):
        grid = simple_grid(engine, streams)
        with pytest.raises(ValueError, match="no storage element"):
            grid.add_input_file(LogicalFile("gfn://x"), site_name="unknown-site")


class TestFailures:
    def test_resubmission_succeeds_eventually(self, engine):
        streams = RandomStreams(seed=2)
        grid = simple_grid(
            engine,
            streams,
            faults=FaultModel.from_values(probability=0.4, detection_delay=100.0, max_attempts=10),
        )
        handles = [grid.submit(JobDescription(name=f"j{i}", compute_time=10.0)) for i in range(20)]
        records = engine.run(until=engine.all_of([h.completion for h in handles]))
        assert all(r.state is JobState.DONE for r in records)
        assert any(r.attempts > 1 for r in records)
        retried = next(r for r in records if r.attempts > 1)
        assert len(retried.timestamps[JobState.SUBMITTED]) == retried.attempts

    def test_exhausted_attempts_fail_the_handle(self, engine, streams):
        grid = simple_grid(
            engine,
            streams,
            faults=FaultModel.from_values(probability=1.0, detection_delay=1.0, max_attempts=2),
        )
        handle = grid.submit(JobDescription(name="doomed", compute_time=1.0))
        with pytest.raises(JobFailedError) as exc_info:
            engine.run(until=handle.completion)
        assert exc_info.value.record.attempts == 2
        assert engine.now == pytest.approx(2.0)  # two detection delays


class TestLoadCoupling:
    def test_idle_grid_pays_floor_overhead(self, engine, streams):
        overhead = OverheadModel.from_values(queue_extra=100.0)
        grid = simple_grid(engine, streams, overhead=overhead, coupling=0.8)
        handle = grid.submit(JobDescription(name="lonely", compute_time=0.0))
        record = engine.run(until=handle.completion)
        # one job on 4 slots: load 0.25 -> scale 0.2 + 0.8*0.25 = 0.4
        assert record.overhead == pytest.approx(40.0)

    def test_loaded_grid_pays_full_overhead(self, engine, streams):
        overhead = OverheadModel.from_values(queue_extra=100.0)
        grid = simple_grid(engine, streams, overhead=overhead, coupling=0.8, slots=4)
        handles = [grid.submit(JobDescription(name=f"j{i}", compute_time=1.0)) for i in range(8)]
        records = engine.run(until=engine.all_of([h.completion for h in handles]))
        # 8 jobs in flight over 4 slots: load capped at 1 -> the later
        # submissions pay the full queue_extra (plus real slot contention).
        assert max(r.overhead for r in records) >= 100.0

    def test_zero_coupling_ignores_load(self, engine, streams):
        overhead = OverheadModel.from_values(queue_extra=100.0)
        grid = simple_grid(engine, streams, overhead=overhead, coupling=0.0)
        handle = grid.submit(JobDescription(name="j", compute_time=0.0))
        record = engine.run(until=handle.completion)
        assert record.overhead == pytest.approx(100.0)

    def test_invalid_coupling_rejected(self, engine, streams):
        with pytest.raises(ValueError):
            simple_grid(engine, streams, coupling=1.5)

    def test_infinite_grid_reports_zero_load(self, engine):
        grid = ideal_testbed(engine)
        assert grid.load_factor() == 0.0


class TestAlertReactor:
    def _feedback_grid(self, engine, streams):
        from repro.observability.bus import InstrumentationBus
        from repro.observability.monitor import RunMonitor

        sites = []
        for i in range(2):
            name = f"s{i}"
            ce = ComputingElement(
                engine, f"ce{i}", name, workers=[WorkerNode(f"w{i}", slots=1)]
            )
            sites.append(
                Site(
                    name=name,
                    computing_elements=[ce],
                    storage_element=StorageElement(f"se{i}", site=name),
                )
            )
        bus = InstrumentationBus()
        grid = Grid(
            engine,
            streams,
            sites=sites,
            overhead=OverheadModel.zero(),
            network=NetworkModel(
                lan=LinkParameters(latency=1.0, bandwidth=10 * MEBIBYTE),
                wan=LinkParameters(latency=5.0, bandwidth=1 * MEBIBYTE),
            ),
            faults=FaultModel.none(),
            instrumentation=bus,
        )
        monitor = RunMonitor.attach(bus)
        grid.set_health_provider(monitor)
        monitor.add_sink(grid.alert_reactor())
        return grid, bus, monitor

    def test_ce_alert_pulls_queued_jobs_to_a_healthy_ce(self, engine, streams):
        grid, bus, monitor = self._feedback_grid(engine, streams)
        # least-loaded alternates plugs ce0/ce1/ce0/ce1; each CE ends up
        # with one running job and one in dispatch limbo.  The victim
        # then ties back to ce0 as the *third* entry — the first one
        # cancel_queued can actually withdraw (limbo entries are already
        # off the policy queue).
        for i in range(4):
            grid.submit(JobDescription(name=f"plug{i}", compute_time=300.0))
            engine.run(until=float(i + 1))
        victim = grid.submit(JobDescription(name="victim", compute_time=5.0))
        engine.run(until=5.0)
        assert victim.record.computing_element == "ce0"

        # four fast faults brand ce0 a blackhole; the reactor must pull
        # the victim off its queue and the blacklist must steer the
        # resubmission to ce1
        for i in range(4):
            bus.record(
                "job.fault", "grid", 5.0, 10.0, ce="ce0", job_id=900 + i,
                job_name=f"bg#{i}",
            )
        assert monitor.flagged_ces() == ["ce0"]
        record = engine.run(until=victim.completion)
        assert record.state is JobState.DONE
        assert record.computing_element == "ce1"
        assert record.timestamps[JobState.CANCELLED]
        assert bus.metrics.counter("grid.jobs.proactive_resubmissions").value == 1
        assert bus.metrics.counter("grid.jobs.cancellations").value == 1

    def test_non_ce_alerts_are_ignored(self, engine, streams):
        from repro.observability.alerts import Alert

        grid, bus, _ = self._feedback_grid(engine, streams)
        grid.submit(JobDescription(name="plug", compute_time=100.0))
        engine.run(until=1.0)
        queued = grid.submit(JobDescription(name="waits", compute_time=1.0))
        engine.run(until=2.0)
        react = grid.alert_reactor()
        react(Alert(kind="straggler", time=2.0, subject="job:1", scope="job"))
        react(Alert(kind="eta-blowout", time=2.0, subject="run", scope="run"))
        react(Alert(kind="blackhole", time=2.0, subject="no-such-ce", scope="ce"))
        record = engine.run(until=queued.completion)
        assert record.state is JobState.DONE
        assert bus.metrics.counter("grid.jobs.cancellations").value == 0


class TestTestbeds:
    def test_ideal_job_costs_exactly_compute(self, engine):
        grid = ideal_testbed(engine)
        handle = grid.submit(JobDescription(name="j", compute_time=77.0))
        record = engine.run(until=handle.completion)
        assert record.makespan == 77.0
        assert record.overhead == 0.0

    def test_egee_overhead_regime(self, engine):
        streams = RandomStreams(seed=9)
        grid = egee_like_testbed(
            engine, streams, n_sites=4, workers_per_ce=10, with_background_load=False
        )
        handles = [grid.submit(JobDescription(name=f"j{i}", compute_time=60.0)) for i in range(40)]
        records = engine.run(until=engine.all_of([h.completion for h in handles]))
        overheads = np.array([r.overhead for r in records])
        # loaded regime: large mean, substantial variability
        assert 300 < overheads.mean() < 1200
        assert overheads.std() > 100

    def test_egee_background_load_injects_jobs(self, engine):
        streams = RandomStreams(seed=9)
        grid = egee_like_testbed(
            engine, streams, n_sites=2, workers_per_ce=4,
            with_background_load=True, background_interarrival=10.0,
        )
        handle = grid.submit(JobDescription(name="app", compute_time=600.0))
        engine.run(until=handle.completion)
        background = [r for ce in grid.computing_elements for r in [ce.completed]]
        assert sum(background) > 1  # app job plus several background jobs completed
