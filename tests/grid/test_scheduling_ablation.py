"""Scheduling-policy ablation: SJF vs FIFO on heterogeneous job mixes."""

import pytest

from repro.grid.batch import FifoPolicy, ShortestJobFirstPolicy
from repro.grid.job import JobDescription, JobRecord
from repro.grid.resources import ComputingElement, WorkerNode
from repro.sim.engine import Engine


def run_mix(policy_cls, durations):
    engine = Engine()
    ce = ComputingElement(
        engine, "ce", "s0",
        workers=[WorkerNode("w", slots=1)],
        policy=policy_cls(engine),
    )
    records = [JobRecord(JobDescription(name=f"j{i}", compute_time=d))
               for i, d in enumerate(durations)]
    finish_times = {}

    def watch(eng, record, completion):
        yield completion
        finish_times[record.name] = eng.now

    completions = []
    for record in records:
        completion = ce.submit(record)
        completions.append(engine.process(watch(engine, record, completion)))
    engine.run(until=engine.all_of(completions))
    mean_completion = sum(finish_times.values()) / len(finish_times)
    return engine.now, mean_completion


class TestSjfVsFifo:
    DURATIONS = [100.0, 1.0, 1.0, 1.0, 1.0]

    def test_same_makespan(self):
        # total work is conserved: the makespan cannot differ on one slot
        fifo_span, _ = run_mix(FifoPolicy, self.DURATIONS)
        sjf_span, _ = run_mix(ShortestJobFirstPolicy, self.DURATIONS)
        assert fifo_span == sjf_span == pytest.approx(sum(self.DURATIONS))

    def test_sjf_improves_mean_completion_time(self):
        # the classic result: shortest-first minimizes mean completion
        _, fifo_mean = run_mix(FifoPolicy, self.DURATIONS)
        _, sjf_mean = run_mix(ShortestJobFirstPolicy, self.DURATIONS)
        assert sjf_mean < fifo_mean

    def test_identical_jobs_tie(self):
        durations = [10.0] * 4
        _, fifo_mean = run_mix(FifoPolicy, durations)
        _, sjf_mean = run_mix(ShortestJobFirstPolicy, durations)
        assert fifo_mean == sjf_mean
