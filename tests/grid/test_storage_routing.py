"""Edge cases in storage routing: compute-only sites, replica spread."""

import pytest

from repro.grid.job import JobDescription
from repro.grid.middleware import Grid
from repro.grid.overhead import OverheadModel
from repro.grid.resources import ComputingElement, Site, WorkerNode
from repro.grid.storage import LogicalFile, StorageElement
from repro.grid.transfer import LinkParameters, NetworkModel
from repro.util.rng import RandomStreams
from repro.util.units import MEBIBYTE


@pytest.fixture
def two_site_grid(engine):
    """site0 has storage; site1 is compute-only."""
    ce0 = ComputingElement(engine, "ce0", "site0", workers=[WorkerNode("w0")])
    ce1 = ComputingElement(engine, "ce1", "site1", workers=[WorkerNode("w1", slots=8)])
    se0 = StorageElement("se0", "site0")
    grid = Grid(
        engine,
        RandomStreams(seed=0),
        sites=[
            Site("site0", [ce0], se0),
            Site("site1", [ce1], storage_element=None),
        ],
        overhead=OverheadModel.zero(),
        network=NetworkModel(
            lan=LinkParameters(latency=0.0, bandwidth=100 * MEBIBYTE),
            wan=LinkParameters(latency=10.0, bandwidth=1 * MEBIBYTE),
        ),
        broker_strategy="least-loaded",
    )
    return grid


class TestComputeOnlySite:
    def test_outputs_route_to_default_storage(self, engine, two_site_grid):
        # Fill site0 so the broker sends the job to storage-less site1.
        blocker = two_site_grid.submit(JobDescription(name="blocker", compute_time=10**6))
        engine.run(until=1.0)
        out = LogicalFile("gfn://out/result", size=1 * MEBIBYTE)
        handle = two_site_grid.submit(
            JobDescription(name="produce", compute_time=1.0, output_files=(out,))
        )
        record = engine.run(until=handle.completion)
        assert record.computing_element == "ce1"
        # output had to cross the WAN to the default site's SE
        assert record.stage_out_time > 10.0
        replicas = two_site_grid.catalog.replicas(out.gfn)
        assert [se.site for se in replicas] == ["site0"]

    def test_stage_in_from_remote_replica(self, engine, two_site_grid):
        file = LogicalFile("gfn://in/data", size=2 * MEBIBYTE)
        two_site_grid.add_input_file(file)  # lands on site0
        blocker = two_site_grid.submit(JobDescription(name="blocker", compute_time=10**6))
        engine.run(until=1.0)
        handle = two_site_grid.submit(
            JobDescription(name="consume", compute_time=1.0, input_files=(file.gfn,))
        )
        record = engine.run(until=handle.completion)
        assert record.computing_element == "ce1"
        assert record.stage_in_time == pytest.approx(10.0 + 2.0)  # WAN latency + size/bw

    def test_local_replica_cheaper(self, engine, two_site_grid):
        file = LogicalFile("gfn://in/data2", size=2 * MEBIBYTE)
        two_site_grid.add_input_file(file)
        handle = two_site_grid.submit(
            JobDescription(name="local", compute_time=1.0, input_files=(file.gfn,))
        )
        record = engine.run(until=handle.completion)
        assert record.computing_element == "ce0"  # least-loaded picks the free one
        assert record.stage_in_time == pytest.approx(2.0 / 100.0)  # LAN
