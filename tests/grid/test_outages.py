"""OutageSchedule: deterministic down/up windows for grid entities."""

import pytest

from repro.grid.faults import DurabilityFaultModel, OutageSchedule


class TestOutageSchedule:
    def test_none_is_empty(self):
        schedule = OutageSchedule.none()
        assert schedule.empty
        assert schedule.subjects() == ()
        assert not schedule.is_down("anything", 0.0)

    def test_windows_are_half_open(self):
        schedule = OutageSchedule.from_windows({"se-a": [(100.0, 200.0)]})
        assert not schedule.is_down("se-a", 99.9)
        assert schedule.is_down("se-a", 100.0)
        assert schedule.is_down("se-a", 199.9)
        assert not schedule.is_down("se-a", 200.0)

    def test_next_up(self):
        schedule = OutageSchedule.from_windows({"se-a": [(100.0, 200.0)]})
        assert schedule.next_up("se-a", 150.0) == 200.0
        # already up: next_up is "now"
        assert schedule.next_up("se-a", 50.0) == 50.0
        assert schedule.next_up("se-a", 250.0) == 250.0
        assert schedule.next_up("unknown", 150.0) == 150.0

    def test_overlapping_windows_merge(self):
        schedule = OutageSchedule.from_windows(
            {"ce": [(100.0, 200.0), (150.0, 300.0), (300.0, 350.0)]}
        )
        assert schedule.down_windows("ce") == ((100.0, 350.0),)
        assert schedule.next_up("ce", 120.0) == 350.0

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            OutageSchedule.from_windows({"x": [(200.0, 100.0)]})
        with pytest.raises(ValueError):
            OutageSchedule.from_windows({"x": [(-5.0, 100.0)]})

    def test_flapping_builder(self):
        schedule = OutageSchedule.none().with_flapping(
            "se-flap", start=100.0, down=50.0, up=100.0, cycles=3
        )
        assert schedule.down_windows("se-flap") == (
            (100.0, 150.0),
            (250.0, 300.0),
            (400.0, 450.0),
        )
        assert schedule.is_down("se-flap", 120.0)
        assert not schedule.is_down("se-flap", 200.0)
        assert schedule.is_down("se-flap", 430.0)

    def test_generate_is_deterministic(self):
        subjects = ("se-a", "se-b", "ce-a")
        a = OutageSchedule.generate(seed=7, subjects=subjects, horizon=10_000.0)
        b = OutageSchedule.generate(seed=7, subjects=subjects, horizon=10_000.0)
        assert a.windows == b.windows
        c = OutageSchedule.generate(seed=8, subjects=subjects, horizon=10_000.0)
        assert a.windows != c.windows

    def test_generate_respects_horizon(self):
        schedule = OutageSchedule.generate(
            seed=3, subjects=("x", "y"), horizon=1_000.0, outage_rate=5.0
        )
        for subject in schedule.subjects():
            for start, end in schedule.down_windows(subject):
                assert 0.0 <= start < end <= 1_000.0


class TestDurabilityFaultModel:
    def test_none_is_inactive(self):
        model = DurabilityFaultModel.none()
        assert not model.active

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            DurabilityFaultModel(loss_probability=0.8, corruption_probability=0.5)
        with pytest.raises(ValueError):
            DurabilityFaultModel(loss_probability=-0.1)

    def test_access_outcome_draws_exactly_one_number(self):
        model = DurabilityFaultModel(
            loss_probability=0.3, corruption_probability=0.3
        )

        class CountingRng:
            def __init__(self, value):
                self.value = value
                self.draws = 0

            def random(self):
                self.draws += 1
                return self.value

        lost = CountingRng(0.1)
        assert model.access_outcome(lost) == "lost"
        assert lost.draws == 1
        corrupt = CountingRng(0.5)
        assert model.access_outcome(corrupt) == "corrupt"
        assert corrupt.draws == 1
        ok = CountingRng(0.9)
        assert model.access_outcome(ok) == "ok"
        assert ok.draws == 1
