"""Tests for the network transfer-time model."""

import pytest

from repro.grid.transfer import LinkParameters, NetworkModel
from repro.util.units import MEBIBYTE


class TestLinkParameters:
    def test_affine_law(self):
        link = LinkParameters(latency=2.0, bandwidth=10.0)
        assert link.transfer_time(100.0) == pytest.approx(12.0)

    def test_zero_size_costs_latency(self):
        link = LinkParameters(latency=3.0, bandwidth=1.0)
        assert link.transfer_time(0) == 3.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LinkParameters(1.0, 1.0).transfer_time(-5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinkParameters(latency=-1.0, bandwidth=1.0)
        with pytest.raises(ValueError):
            LinkParameters(latency=0.0, bandwidth=0.0)


class TestNetworkModel:
    def test_lan_for_same_site(self):
        model = NetworkModel()
        lan = model.transfer_time("s0", "s0", 10 * MEBIBYTE)
        wan = model.transfer_time("s0", "s1", 10 * MEBIBYTE)
        assert lan < wan

    def test_paper_image_wan_transfer_dominates_lan(self):
        model = NetworkModel()
        size = 7.8 * MEBIBYTE  # one brain MRI
        assert model.transfer_time("a", "b", size) > 1.0
        assert model.transfer_time("a", "a", size) < 1.0

    def test_override_applies_to_direction(self):
        model = NetworkModel()
        model.set_link("a", "b", LinkParameters(latency=100.0, bandwidth=1.0))
        assert model.transfer_time("a", "b", 0) == 100.0
        assert model.transfer_time("b", "a", 0) == model.wan.latency

    def test_instantaneous(self):
        model = NetworkModel.instantaneous()
        assert model.transfer_time("a", "b", 10 * MEBIBYTE) == 0.0

    def test_link_selection(self):
        model = NetworkModel()
        assert model.link("x", "x") is model.lan
        assert model.link("x", "y") is model.wan


class TestTransferObservers:
    def test_observers_fire_in_registration_order(self):
        model = NetworkModel.instantaneous()
        calls = []
        model.add_observer(lambda *args: calls.append(("first", args)))
        model.add_observer(lambda *args: calls.append(("second", args)))
        seconds = model.transfer_time("a", "b", 100)
        assert [name for name, _ in calls] == ["first", "second"]
        assert calls[0][1] == ("a", "b", 100, seconds)
        assert calls[0][1] == calls[1][1]

    def test_add_observer_returns_the_observer(self):
        model = NetworkModel()
        def observer(*args):
            pass
        assert model.add_observer(observer) is observer

    def test_remove_observer(self):
        model = NetworkModel.instantaneous()
        calls = []
        observer = model.add_observer(lambda *args: calls.append(args))
        model.remove_observer(observer)
        model.transfer_time("a", "b", 1)
        assert calls == []
        model.remove_observer(observer)  # removing twice is a no-op

    def test_on_transfer_compat_single_slot(self):
        """The historical single-callable hook still works as before."""
        model = NetworkModel.instantaneous()
        assert model.on_transfer is None
        first, second = [], []
        model.on_transfer = lambda *args: first.append(args)
        model.transfer_time("a", "b", 1)
        # assigning replaces (old semantics), never accumulates
        model.on_transfer = lambda *args: second.append(args)
        model.transfer_time("a", "b", 1)
        assert len(first) == 1 and len(second) == 1
        assert model.on_transfer is not None
        model.on_transfer = None
        assert model.observers == []

    def test_on_transfer_getter_reads_first_observer(self):
        model = NetworkModel()
        observer = model.add_observer(lambda *args: None)
        model.add_observer(lambda *args: None)
        assert model.on_transfer is observer
