"""Tests for the network transfer-time model."""

import pytest

from repro.grid.transfer import LinkParameters, NetworkModel
from repro.util.units import MEBIBYTE


class TestLinkParameters:
    def test_affine_law(self):
        link = LinkParameters(latency=2.0, bandwidth=10.0)
        assert link.transfer_time(100.0) == pytest.approx(12.0)

    def test_zero_size_costs_latency(self):
        link = LinkParameters(latency=3.0, bandwidth=1.0)
        assert link.transfer_time(0) == 3.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LinkParameters(1.0, 1.0).transfer_time(-5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinkParameters(latency=-1.0, bandwidth=1.0)
        with pytest.raises(ValueError):
            LinkParameters(latency=0.0, bandwidth=0.0)


class TestNetworkModel:
    def test_lan_for_same_site(self):
        model = NetworkModel()
        lan = model.transfer_time("s0", "s0", 10 * MEBIBYTE)
        wan = model.transfer_time("s0", "s1", 10 * MEBIBYTE)
        assert lan < wan

    def test_paper_image_wan_transfer_dominates_lan(self):
        model = NetworkModel()
        size = 7.8 * MEBIBYTE  # one brain MRI
        assert model.transfer_time("a", "b", size) > 1.0
        assert model.transfer_time("a", "a", size) < 1.0

    def test_override_applies_to_direction(self):
        model = NetworkModel()
        model.set_link("a", "b", LinkParameters(latency=100.0, bandwidth=1.0))
        assert model.transfer_time("a", "b", 0) == 100.0
        assert model.transfer_time("b", "a", 0) == model.wan.latency

    def test_instantaneous(self):
        model = NetworkModel.instantaneous()
        assert model.transfer_time("a", "b", 10 * MEBIBYTE) == 0.0

    def test_link_selection(self):
        model = NetworkModel()
        assert model.link("x", "x") is model.lan
        assert model.link("x", "y") is model.wan
