"""Tests for the background multi-user load generator."""

import pytest

from repro.grid.load import BackgroundLoad
from repro.grid.job import JobDescription, JobRecord
from repro.grid.resources import ComputingElement, WorkerNode


def make_ce(engine, slots=2):
    return ComputingElement(engine, "ce0", "s0", workers=[WorkerNode("w0", slots=slots)])


class TestBackgroundLoad:
    def test_injects_at_expected_rate(self, engine, streams):
        ce = make_ce(engine)
        load = BackgroundLoad(
            engine, [ce], rng=streams.get("bg"), interarrival=10.0, duration=1.0
        )
        engine.run(until=1000.0)
        assert load.injected == pytest.approx(100, abs=2)

    def test_horizon_stops_injection(self, engine, streams):
        ce = make_ce(engine)
        load = BackgroundLoad(
            engine, [ce], rng=streams.get("bg"),
            interarrival=10.0, duration=1.0, horizon=100.0,
        )
        engine.run(until=1000.0)
        assert load.injected <= 11

    def test_background_jobs_occupy_slots(self, engine, streams):
        ce = make_ce(engine, slots=1)
        BackgroundLoad(
            engine, [ce], rng=streams.get("bg"), interarrival=1.0, duration=500.0
        )
        # Submit an application job after the background has filled the slot.
        def app(eng):
            yield eng.timeout(5.0)
            completion = ce.submit(JobRecord(JobDescription(name="app", compute_time=1.0)))
            record = yield completion
            return eng.now

        proc = engine.process(app(engine))
        finished_at = engine.run(until=proc)
        assert finished_at > 10.0  # had to wait behind background work

    def test_requires_a_ce(self, engine, streams):
        with pytest.raises(ValueError):
            BackgroundLoad(engine, [], rng=streams.get("bg"), interarrival=1.0, duration=1.0)

    def test_background_owner_tag(self, engine, streams):
        ce = make_ce(engine)
        BackgroundLoad(engine, [ce], rng=streams.get("bg"), interarrival=5.0, duration=1.0)
        engine.run(until=50.0)
        assert ce.completed > 0
