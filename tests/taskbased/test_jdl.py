"""Tests for static task descriptions and JDL rendering."""

import pytest

from repro.taskbased.jdl import TaskDescription, render_jdl


class TestTaskDescription:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskDescription(name="", executable="x")
        with pytest.raises(ValueError):
            TaskDescription(name="t", executable="")


class TestRenderJdl:
    def test_full_render(self):
        task = TaskDescription(
            name="crestLines-D0",
            executable="CrestLines.pl",
            arguments="-im1 f0.mhd -im2 r0.mhd -s 8",
            input_files=("f0.mhd", "r0.mhd"),
            output_files=("c0.crest",),
            requirements={"Rank": "-other.GlueCEStateEstimatedResponseTime"},
        )
        text = render_jdl(task)
        assert 'JobName = "crestLines-D0";' in text
        assert 'Executable = "CrestLines.pl";' in text
        assert 'InputSandbox = {"f0.mhd", "r0.mhd"};' in text
        assert 'OutputSandbox = {"c0.crest"};' in text
        assert "Rank = -other.GlueCEStateEstimatedResponseTime;" in text
        assert text.startswith("[") and text.endswith("]")

    def test_minimal_render(self):
        text = render_jdl(TaskDescription(name="t", executable="/bin/true"))
        assert "Arguments" not in text
        assert "InputSandbox" not in text
