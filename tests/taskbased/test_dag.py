"""Tests for static DAG expansion (the task-based baseline)."""

import pytest

from repro.services.base import LocalService
from repro.taskbased.dag import expand_workflow
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.datasets import InputDataSet
from repro.workflow.graph import WorkflowError
from repro.workflow.patterns import chain_workflow, figure1_workflow, figure2_workflow


class TestExpansion:
    def test_chain_replicates_per_item(self, local_factory):
        # Section 2.2: "the replication of the execution graph for every
        # input data".
        workflow = chain_workflow(local_factory, 3)
        dag = expand_workflow(workflow, {"input": list(range(4))})
        assert dag.task_count == 12  # 3 services x 4 items
        for name in ("P1", "P2", "P3"):
            assert len(dag.by_processor[name]) == 4

    def test_dependencies_follow_items(self, local_factory):
        workflow = chain_workflow(local_factory, 2)
        dag = expand_workflow(workflow, {"input": [0, 1]})
        p2_tasks = dag.by_processor["P2"]
        for task in p2_tasks:
            parents = dag.parents[task.task_id]
            assert len(parents) == 1
            parent = next(t for t in dag.tasks if t.task_id == parents[0])
            assert parent.processor == "P1"
            assert parent.combination == task.combination

    def test_roots_are_first_stage(self, local_factory):
        workflow = chain_workflow(local_factory, 2)
        dag = expand_workflow(workflow, {"input": [0, 1, 2]})
        assert {t.processor for t in dag.roots()} == {"P1"}

    def test_branching_workflow(self, local_factory):
        workflow = figure1_workflow(local_factory)
        dag = expand_workflow(workflow, {"source": [0, 1]})
        assert dag.task_count == 6  # P1, P2, P3 x 2 items

    def test_loops_rejected(self, local_factory):
        # "there cannot be a loop in the graph of a task based workflow"
        workflow = figure2_workflow(local_factory)
        with pytest.raises(WorkflowError, match="loop"):
            expand_workflow(workflow, {"source": [0]})

    def test_task_labels(self, local_factory):
        workflow = chain_workflow(local_factory, 1)
        dag = expand_workflow(workflow, {"input": [0, 1]})
        assert [t.label for t in dag.tasks] == ["P1-D0", "P1-D1"]

    def test_edges_listing(self, local_factory):
        workflow = chain_workflow(local_factory, 2)
        dag = expand_workflow(workflow, {"input": [0]})
        assert len(dag.edges()) == 1


class TestCrossProductExplosion:
    """The Section 2.2 combinatorial-explosion argument, quantified."""

    def cross_chain(self, engine, depth, source_names):
        builder = WorkflowBuilder("cross-chain")
        for name in source_names:
            builder.source(name)
        previous = f"{source_names[0]}:output"
        for level in range(depth):
            service = LocalService(engine, f"X{level}", ("a", "b"), ("y",))
            builder.service(f"X{level}", service, iteration_strategy="cross")
            builder.connect(previous, f"X{level}:a")
            builder.connect(f"{source_names[level + 1]}:output", f"X{level}:b")
            previous = f"X{level}:y"
        builder.sink("out")
        builder.connect(previous, "out:input")
        return builder.build()

    def test_single_cross_product(self, engine):
        workflow = self.cross_chain(engine, 1, ["s0", "s1"])
        dag = expand_workflow(workflow, {"s0": list(range(5)), "s1": list(range(4))})
        assert dag.task_count == 20  # n x m

    def test_chained_cross_products_multiply(self, engine):
        workflow = self.cross_chain(engine, 3, ["s0", "s1", "s2", "s3"])
        n = 5
        dataset = {f"s{i}": list(range(n)) for i in range(4)}
        dag = expand_workflow(workflow, dataset)
        # level 0: n^2, level 1: n^3, level 2: n^4
        assert dag.task_count == n**2 + n**3 + n**4
        # "intractable even for a limited number (tens) of input data":
        # the service workflow stays at 3 processors.
        assert len(workflow.services()) == 3


class TestSynchronizationExpansion:
    def test_sync_becomes_single_task(self, engine):
        mean = LocalService(engine, "mean", ("v",), ("mu",))
        square = LocalService(engine, "square", ("x",), ("y",))
        workflow = (
            WorkflowBuilder()
            .source("s")
            .service("square", square)
            .service("mean", mean, synchronization=True)
            .sink("out")
            .connect("s:output", "square:x")
            .connect("square:y", "mean:v")
            .connect("mean:mu", "out:input")
            .build()
        )
        dag = expand_workflow(workflow, {"s": list(range(5))})
        assert len(dag.by_processor["mean"]) == 1
        sync_task = dag.by_processor["mean"][0]
        assert len(dag.parents[sync_task.task_id]) == 5

    def test_dataset_object_accepted(self, local_factory):
        workflow = chain_workflow(local_factory, 1)
        dataset = InputDataSet.from_values("d", input=[1, 2])
        assert expand_workflow(workflow, dataset).task_count == 2
