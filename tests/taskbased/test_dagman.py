"""Tests for the DAGMan-like executor."""

import pytest

from repro.taskbased.dag import expand_workflow
from repro.taskbased.dagman import DagmanExecutor
from repro.workflow.patterns import chain_workflow, figure1_workflow


class TestDagman:
    def test_runs_whole_dag(self, engine, ideal_grid, local_factory):
        workflow = chain_workflow(local_factory, 2)
        dag = expand_workflow(workflow, {"input": [0, 1, 2]})
        executor = DagmanExecutor(
            engine, ideal_grid, durations={"P1": 10.0, "P2": 20.0}
        )
        result = executor.run(dag)
        assert result.task_count == 6
        assert len(result.job_ids) == 6
        assert len(ideal_grid.completed_records()) == 6

    def test_dependencies_respected(self, engine, ideal_grid, local_factory):
        workflow = chain_workflow(local_factory, 2)
        dag = expand_workflow(workflow, {"input": [0]})
        executor = DagmanExecutor(engine, ideal_grid, durations={"P1": 10.0, "P2": 20.0})
        result = executor.run(dag)
        # serial chain on an ideal grid: 10 + 20
        assert result.makespan == pytest.approx(30.0)

    def test_parallelism_is_explicit_in_the_graph(self, engine, ideal_grid, local_factory):
        # In the task-based approach DP and SP are "included in the
        # workflow parallelism": all three items of stage 1 run at once.
        workflow = chain_workflow(local_factory, 2)
        dag = expand_workflow(workflow, {"input": [0, 1, 2]})
        executor = DagmanExecutor(engine, ideal_grid, durations={"P1": 10.0, "P2": 20.0})
        result = executor.run(dag)
        assert result.makespan == pytest.approx(30.0)  # same as a single item

    def test_branches_overlap(self, engine, ideal_grid, local_factory):
        workflow = figure1_workflow(local_factory)
        dag = expand_workflow(workflow, {"source": [0]})
        executor = DagmanExecutor(
            engine, ideal_grid, durations={"P1": 5.0, "P2": 10.0, "P3": 10.0}
        )
        result = executor.run(dag)
        assert result.makespan == pytest.approx(15.0)

    def test_throttle_limits_concurrency(self, engine, ideal_grid, local_factory):
        workflow = chain_workflow(local_factory, 1)
        dag = expand_workflow(workflow, {"input": list(range(4))})
        executor = DagmanExecutor(
            engine, ideal_grid, durations={"P1": 10.0}, max_concurrent=2
        )
        result = executor.run(dag)
        assert result.makespan == pytest.approx(20.0)  # 4 jobs, 2 at a time

    def test_missing_duration_profile_raises(self, engine, ideal_grid, local_factory):
        workflow = chain_workflow(local_factory, 1)
        dag = expand_workflow(workflow, {"input": [0]})
        executor = DagmanExecutor(engine, ideal_grid, durations={})
        with pytest.raises(KeyError, match="no duration profile"):
            executor.run(dag)

    def test_invalid_throttle_rejected(self, engine, ideal_grid):
        with pytest.raises(ValueError):
            DagmanExecutor(engine, ideal_grid, durations={}, max_concurrent=0)

    def test_empty_dag_completes(self, engine, ideal_grid, local_factory):
        workflow = chain_workflow(local_factory, 1)
        dag = expand_workflow(workflow, {"input": []})
        executor = DagmanExecutor(engine, ideal_grid, durations={"P1": 1.0})
        result = executor.run(dag)
        assert result.task_count == 0
        assert result.makespan == 0.0
