"""Tests for the paper's speed-up / y-intercept / slope metrics."""

import pytest

from repro.model.metrics import (
    fit_configuration,
    ratios_table,
    slope_ratio,
    speedup,
    y_intercept_ratio,
)
from repro.experiments.calibration import PAPER_SIZES, PAPER_TABLE1


def paper_fit(label):
    sizes = list(PAPER_SIZES)
    times = [PAPER_TABLE1[label][s] for s in sizes]
    return fit_configuration(label, sizes, times)


class TestSpeedup:
    def test_basic(self):
        assert speedup(100.0, 50.0) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(100.0, 0.0)
        with pytest.raises(ValueError):
            speedup(-1.0, 10.0)

    def test_paper_dp_speedups(self):
        # Section 5.2: "speed-ups of 1.86, 2.89 and 3.92"
        expected = [1.86, 2.89, 3.92]
        for size, value in zip(PAPER_SIZES, expected):
            measured = speedup(PAPER_TABLE1["NOP"][size], PAPER_TABLE1["DP"][size])
            assert measured == pytest.approx(value, abs=0.01)

    def test_paper_sp_on_dp_speedups(self):
        # Section 5.2: "2.26, 2.17 and 1.90"
        expected = [2.26, 2.17, 1.90]
        for size, value in zip(PAPER_SIZES, expected):
            measured = speedup(PAPER_TABLE1["DP"][size], PAPER_TABLE1["SP+DP"][size])
            assert measured == pytest.approx(value, abs=0.01)

    def test_paper_headline_speedup_of_nine(self):
        # Abstract: "an execution time speed up of approximately 9"
        measured = speedup(PAPER_TABLE1["NOP"][126], PAPER_TABLE1["SP+DP+JG"][126])
        assert measured == pytest.approx(9.2, abs=0.1)


class TestRegressionMetrics:
    def test_fits_recover_paper_table2(self):
        from repro.experiments.calibration import PAPER_TABLE2

        for label, (intercept, slope) in PAPER_TABLE2.items():
            fit = paper_fit(label)
            # Table 2 values are the regressions of Table 1's rows.
            assert fit.y_intercept == pytest.approx(intercept, rel=0.05), label
            assert fit.slope == pytest.approx(slope, rel=0.05), label

    def test_paper_dp_slope_ratio(self):
        # Section 5.2: DP vs NOP "slope ratio of 6.18"
        ratio = slope_ratio(paper_fit("NOP").fit, paper_fit("DP").fit)
        assert ratio == pytest.approx(6.18, abs=0.15)

    def test_paper_jg_y_intercept_ratio(self):
        # Section 5.3: JG vs NOP "y-intercept ratio of 1.87"
        ratio = y_intercept_ratio(paper_fit("NOP").fit, paper_fit("JG").fit)
        assert ratio == pytest.approx(1.87, abs=0.05)

    def test_paper_jg_slope_ratio_near_one(self):
        # Section 5.3: "slope ratio of 0.98" — grouping does not touch
        # the data scalability.
        ratio = slope_ratio(paper_fit("NOP").fit, paper_fit("JG").fit)
        assert ratio == pytest.approx(0.98, abs=0.03)

    def test_zero_denominators_give_inf(self):
        from repro.util.stats import LinearFit

        flat = LinearFit(intercept=0.0, slope=0.0, r_squared=1.0)
        ref = LinearFit(intercept=10.0, slope=5.0, r_squared=1.0)
        assert y_intercept_ratio(ref, flat) == float("inf")
        assert slope_ratio(ref, flat) == float("inf")


class TestRatiosTable:
    def test_section_52_style_rows(self):
        fits = {label: paper_fit(label) for label in PAPER_TABLE1}
        rows = ratios_table(fits, [("DP", "NOP"), ("SP+DP", "DP")])
        assert rows[0]["analyzed"] == "DP"
        assert rows[0]["slope_ratio"] == pytest.approx(6.18, abs=0.15)
        assert rows[1]["speedups"][0] == pytest.approx(2.26, abs=0.01)
