"""Tests for the closed-form makespan equations (1)-(4)."""

import numpy as np
import pytest

from repro.model.makespan import (
    makespan_dp,
    makespan_dsp,
    makespan_sequential,
    makespan_sp,
    makespans,
    sp_start_matrix,
)


class TestSequential:
    def test_sums_everything(self):
        T = [[1.0, 2.0], [3.0, 4.0]]
        assert makespan_sequential(T) == 10.0


class TestDataParallel:
    def test_sum_of_row_maxima(self):
        T = [[1.0, 5.0], [3.0, 2.0]]
        assert makespan_dp(T) == 8.0  # 5 + 3


class TestServiceParallel:
    def test_constant_times_closed_form(self):
        # (n_D + n_W - 1) * T
        n_w, n_d, T = 4, 6, 2.0
        matrix = np.full((n_w, n_d), T)
        assert makespan_sp(matrix) == pytest.approx((n_d + n_w - 1) * T)

    def test_single_service_is_sum(self):
        T = [[2.0, 3.0, 4.0]]
        assert makespan_sp(T) == 9.0

    def test_single_item_is_sum(self):
        T = [[2.0], [3.0], [4.0]]
        assert makespan_sp(T) == 9.0

    def test_start_matrix_borders(self):
        T = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        m = sp_start_matrix(T)
        assert m[0, 0] == 0.0
        assert m[0, 1] == 1.0  # after T[0,0]
        assert m[0, 2] == 3.0  # after T[0,0]+T[0,1]
        assert m[1, 0] == 1.0  # after T[0,0]

    def test_recursion_interior(self):
        T = np.array([[2.0, 1.0], [1.0, 3.0]])
        m = sp_start_matrix(T)
        # m[1,1] = max(T[0,1] + m[0,1], T[1,0] + m[1,0])
        assert m[1, 1] == max(1.0 + 2.0, 1.0 + 2.0)

    def test_figure6_example(self):
        # P1: D0 twice as long; P2: D1 three times as long.
        T = np.array([[2.0, 1.0, 1.0], [1.0, 3.0, 1.0]])
        # SP-only pipeline: P1 0-2 (D0), 2-3 (D1), 3-4 (D2);
        # P2: D0 at 2-3, D1 at 3-6, D2 at 6-7.
        assert makespan_sp(T) == 7.0


class TestDataServiceParallel:
    def test_max_of_column_sums(self):
        T = [[1.0, 5.0], [3.0, 2.0]]
        assert makespan_dsp(T) == 7.0  # item 1: 5+2


class TestMakespans:
    def test_keys_match_paper_labels(self):
        result = makespans([[1.0]])
        assert set(result) == {"NOP", "DP", "SP", "SP+DP"}

    def test_degenerate_single_cell(self):
        result = makespans([[7.0]])
        assert all(v == 7.0 for v in result.values())

    def test_massively_data_parallel_case(self):
        # Section 3.5.4: n_W = 1 -> DP = DSP = max, NOP = SP = sum.
        T = [[3.0, 1.0, 4.0, 1.0, 5.0]]
        result = makespans(T)
        assert result["DP"] == result["SP+DP"] == 5.0
        assert result["NOP"] == result["SP"] == 14.0

    def test_non_data_intensive_case(self):
        # Section 3.5.4: n_D = 1 -> all equal.
        T = [[3.0], [1.0], [4.0]]
        result = makespans(T)
        assert len(set(result.values())) == 1


class TestValidation:
    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            makespan_sequential([1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            makespan_dp(np.zeros((0, 3)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            makespan_sp([[1.0, -1.0]])
