"""Tests for the asymptotic speed-ups of Section 3.5.4."""

import pytest

from repro.model.makespan import makespans
from repro.model.speedup import (
    constant_time_makespans,
    speedup_dp_given_sp,
    speedup_dp_no_sp,
    speedup_sp_given_dp,
    speedup_sp_no_dp,
)


class TestClosedForms:
    def test_s_dp_equals_n_d(self):
        assert speedup_dp_no_sp(5, 12) == 12.0
        assert speedup_dp_no_sp(5, 126) == 126.0

    def test_s_sp(self):
        # n_D n_W / (n_D + n_W - 1)
        assert speedup_sp_no_dp(5, 12) == pytest.approx(60 / 16)

    def test_s_dsp(self):
        assert speedup_dp_given_sp(5, 12) == pytest.approx(16 / 5)

    def test_s_sdp_is_one(self):
        assert speedup_sp_given_dp(5, 12) == 1.0

    def test_paper_nw5_values(self):
        # For the Bronze Standard (n_W = 5), theoretical S_DP at the
        # paper's sizes.
        for n_d in (12, 66, 126):
            assert speedup_dp_no_sp(5, n_d) == n_d

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup_dp_no_sp(0, 1)
        with pytest.raises(ValueError):
            speedup_sp_no_dp(1, 0)


class TestConsistencyWithMatrixModel:
    @pytest.mark.parametrize("n_w,n_d", [(1, 1), (2, 3), (5, 12), (3, 7)])
    def test_constant_makespans_agree(self, n_w, n_d):
        T = 2.5
        closed = constant_time_makespans(n_w, n_d, T)
        matrix = [[T] * n_d for _ in range(n_w)]
        computed = makespans(matrix)
        for key in closed:
            assert closed[key] == pytest.approx(computed[key]), key

    def test_speedups_derive_from_makespans(self):
        n_w, n_d = 5, 12
        span = constant_time_makespans(n_w, n_d)
        assert span["NOP"] / span["DP"] == pytest.approx(speedup_dp_no_sp(n_w, n_d))
        assert span["NOP"] / span["SP"] == pytest.approx(speedup_sp_no_dp(n_w, n_d))
        assert span["SP"] / span["SP+DP"] == pytest.approx(speedup_dp_given_sp(n_w, n_d))
        assert span["DP"] / span["SP+DP"] == pytest.approx(speedup_sp_given_dp(n_w, n_d))

    def test_negative_t_rejected(self):
        with pytest.raises(ValueError):
            constant_time_makespans(1, 1, -1.0)
