"""Tests for the probabilistic makespan extension (Section 5.4)."""

import numpy as np
import pytest

from repro.model.probabilistic import (
    GranularityModel,
    expected_pipelined_makespan,
    expected_sdp_gain,
    expected_stage_barrier_makespan,
)
from repro.util.distributions import Constant, LogNormal, TruncatedNormal


@pytest.fixture
def rng():
    return np.random.default_rng(13)


class TestExpectedMakespans:
    def test_constant_times_match_deterministic(self, rng):
        job = Constant(10.0)
        assert expected_stage_barrier_makespan(job, 3, 5, rng, rounds=10) == 30.0
        assert expected_pipelined_makespan(job, 3, 5, rng, rounds=10) == 30.0

    def test_dp_exceeds_dsp_under_variance(self, rng):
        job = LogNormal(mean_value=100.0, sigma_log=0.8)
        dp = expected_stage_barrier_makespan(job, 5, 50, rng, rounds=100)
        dsp = expected_pipelined_makespan(job, 5, 50, rng, rounds=100)
        assert dp > dsp

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            expected_stage_barrier_makespan(Constant(1.0), 0, 5, rng)


class TestSdpGain:
    def test_one_for_constant_times(self, rng):
        assert expected_sdp_gain(Constant(7.0), 5, 12, rng, rounds=10) == 1.0

    def test_grows_with_variability(self, rng):
        gains = []
        for sigma in (0.1, 0.5, 1.0):
            job = LogNormal(mean_value=100.0, sigma_log=sigma)
            gains.append(expected_sdp_gain(job, 5, 30, rng, rounds=150))
        assert gains[0] < gains[1] < gains[2]
        assert gains[0] > 1.0

    def test_paper_regime_gain_in_measured_range(self, rng):
        # Overhead 600 +/- 300 s on top of ~200 s compute: the paper
        # measured SP-on-DP speed-ups around 1.9-2.3; the statistical
        # model should land in the same region (order of magnitude).
        job = TruncatedNormal(mu=800.0, sigma=300.0, floor=60.0)
        gain = expected_sdp_gain(job, 5, 66, rng, rounds=200)
        assert 1.2 < gain < 3.5


class TestGranularity:
    def test_k_one_maximizes_parallelism_when_overhead_free(self, rng):
        model = GranularityModel(overhead=Constant(0.0), compute=Constant(10.0), n_d=16)
        best_k, _ = model.best_group_size(rng, candidates=[1, 2, 4, 8, 16], rounds=5)
        assert best_k == 1

    def test_full_grouping_wins_when_overhead_dominates(self, rng):
        model = GranularityModel(
            overhead=Constant(1000.0), compute=Constant(0.1), n_d=16
        )
        one = model.expected_makespan(1, rng, rounds=5)
        sixteen = model.expected_makespan(16, rng, rounds=5)
        # With parallel jobs each paying the same constant overhead the
        # makespans tie on expectation; variance-free case: equal.
        assert sixteen <= one + 2.0

    def test_intermediate_optimum_with_variable_overhead(self, rng):
        # Variable overhead: many parallel jobs means taking a max over
        # many draws (bad), one giant job serializes compute (bad):
        # somewhere in between wins.
        model = GranularityModel(
            overhead=LogNormal(mean_value=600.0, sigma_log=0.8),
            compute=Constant(60.0),
            n_d=32,
        )
        times = {k: model.expected_makespan(k, rng, rounds=150) for k in (1, 4, 32)}
        assert times[4] < times[1]  # grouping a bit beats max over 32 overheads

    def test_expected_makespan_validation(self, rng):
        model = GranularityModel(overhead=Constant(1.0), compute=Constant(1.0), n_d=4)
        with pytest.raises(ValueError):
            model.expected_makespan(0, rng)

    def test_partial_last_group(self, rng):
        model = GranularityModel(overhead=Constant(10.0), compute=Constant(1.0), n_d=5)
        # k=2 -> groups of 2,2,1; makespan = 10 + 2 = 12
        assert model.expected_makespan(2, rng, rounds=3) == pytest.approx(12.0)
