"""Tests for the Service contract, GridData and LocalService."""

import pytest

from repro.grid.storage import LogicalFile
from repro.services.base import GridData, LocalService, ServiceError


class TestGridData:
    def test_of_wraps_plain_value(self):
        datum = GridData.of(42)
        assert datum.value == 42 and datum.file is None

    def test_of_wraps_logical_file(self):
        file = LogicalFile("gfn://x")
        datum = GridData.of(file)
        assert datum.file is file and datum.value is None

    def test_of_identity_for_grid_data(self):
        datum = GridData(value=1)
        assert GridData.of(datum) is datum

    def test_gfn_shortcut(self):
        assert GridData(file=LogicalFile("gfn://y")).gfn == "gfn://y"
        assert GridData(value=1).gfn is None

    def test_command_line_token(self):
        assert GridData(file=LogicalFile("gfn://z")).command_line_token() == "gfn://z"
        assert GridData(value=8).command_line_token() == "8"


class TestServiceContract:
    def test_requires_name(self, engine):
        with pytest.raises(ValueError):
            LocalService(engine, "", ("x",), ("y",))

    def test_duplicate_ports_rejected(self, engine):
        with pytest.raises(ValueError):
            LocalService(engine, "s", ("x", "x"), ("y",))
        with pytest.raises(ValueError):
            LocalService(engine, "s", ("x",), ("y", "y"))

    def test_missing_input_port_rejected(self, engine):
        service = LocalService(engine, "s", ("a", "b"), ("y",))
        with pytest.raises(ServiceError, match="missing"):
            service.invoke({"a": 1})

    def test_unexpected_input_port_rejected(self, engine):
        service = LocalService(engine, "s", ("a",), ("y",))
        with pytest.raises(ServiceError, match="unexpected"):
            service.invoke({"a": 1, "zzz": 2})

    def test_wrong_output_ports_fail_invocation(self, engine):
        service = LocalService(
            engine, "s", ("x",), ("y",), function=lambda x: {"wrong": 1}
        )
        event = service.invoke({"x": 1})
        with pytest.raises(ServiceError, match="produced ports"):
            engine.run(until=event)

    def test_invocation_log(self, engine):
        service = LocalService(engine, "s", ("x",), ("y",), duration=2.0)
        event = service.invoke({"x": 5})
        engine.run(until=event)
        assert len(service.invocations) == 1
        record = service.invocations[0]
        assert record.service == "s"
        assert record.duration == 2.0
        assert record.outputs is not None

    def test_invocation_ids_unique_across_services(self, engine):
        s1 = LocalService(engine, "a", ("x",), ("y",))
        s2 = LocalService(engine, "b", ("x",), ("y",))
        engine.run(until=s1.invoke({"x": 1}))
        engine.run(until=s2.invoke({"x": 1}))
        assert s1.invocations[0].invocation_id != s2.invocations[0].invocation_id

    def test_invoke_recorded_pairs_event_with_record(self, engine):
        service = LocalService(engine, "s", ("x",), ("y",))
        event, record = service.invoke_recorded({"x": 1})
        engine.run(until=event)
        assert record is service.invocations[-1]


class TestLocalService:
    def test_function_receives_unwrapped_values(self, engine):
        service = LocalService(
            engine, "double", ("x",), ("y",), function=lambda x: {"y": 2 * x}
        )
        outputs = engine.run(until=service.invoke({"x": 21}))
        assert outputs["y"].value == 42

    def test_duration_delays_result(self, engine):
        service = LocalService(engine, "slow", ("x",), ("y",), duration=7.5)
        engine.run(until=service.invoke({"x": 1}))
        assert engine.now == 7.5

    def test_callable_duration(self, engine):
        service = LocalService(
            engine, "s", ("x",), ("y",), duration=lambda inputs: inputs["x"].value * 2.0
        )
        engine.run(until=service.invoke({"x": 3}))
        assert engine.now == 6.0

    def test_negative_duration_fails(self, engine):
        service = LocalService(engine, "s", ("x",), ("y",), duration=-1.0)
        with pytest.raises(ServiceError):
            engine.run(until=service.invoke({"x": 1}))

    def test_passthrough_without_function(self, engine):
        service = LocalService(engine, "echo", ("a",), ("a", "b"))
        outputs = engine.run(until=service.invoke({"a": 9}))
        assert outputs["a"].value == 9
        assert outputs["b"].value is None

    def test_function_error_fails_event(self, engine):
        def boom(x):
            raise RuntimeError("kaput")

        service = LocalService(engine, "s", ("x",), ("y",), function=boom)
        with pytest.raises(ServiceError, match="kaput"):
            engine.run(until=service.invoke({"x": 1}))

    def test_non_mapping_return_rejected(self, engine):
        service = LocalService(engine, "s", ("x",), ("y",), function=lambda x: 42)
        with pytest.raises(ServiceError, match="mapping"):
            engine.run(until=service.invoke({"x": 1}))

    def test_concurrent_invocations_independent(self, engine):
        service = LocalService(
            engine, "s", ("x",), ("y",), function=lambda x: {"y": x}, duration=5.0
        )
        e1 = service.invoke({"x": 1})
        e2 = service.invoke({"x": 2})
        results = engine.run(until=engine.all_of([e1, e2]))
        assert [r["y"].value for r in results] == [1, 2]
        assert engine.now == 5.0  # a bare service has no concurrency limit
