"""Tests for asynchronous vs synchronous invocation semantics."""

import pytest

from repro.services.base import LocalService, ServiceError
from repro.services.invocation import AsyncInvoker, SyncInvoker, gather


@pytest.fixture
def slow_service(engine):
    return LocalService(engine, "slow", ("x",), ("y",), function=lambda x: {"y": x}, duration=10.0)


class TestAsyncInvoker:
    def test_calls_overlap(self, engine, slow_service):
        invoker = AsyncInvoker(engine)
        events = [invoker.call(slow_service, {"x": i}) for i in range(5)]
        results = engine.run(until=gather(engine, events))
        assert engine.now == 10.0  # all five in parallel
        assert [r["y"].value for r in results] == [0, 1, 2, 3, 4]
        assert invoker.calls_started == 5

    def test_returns_immediately(self, engine, slow_service):
        invoker = AsyncInvoker(engine)
        event = invoker.call(slow_service, {"x": 1})
        assert not event.triggered  # non-blocking: nothing ran yet


class TestSyncInvoker:
    def test_calls_serialize(self, engine, slow_service):
        invoker = SyncInvoker(engine)
        events = [invoker.call(slow_service, {"x": i}) for i in range(3)]
        results = engine.run(until=gather(engine, events))
        assert engine.now == 30.0  # strictly one at a time
        assert [r["y"].value for r in results] == [0, 1, 2]

    def test_sync_slower_than_async_kills_parallelism(self, engine):
        # The Section 3.1 point: without async calls there is no
        # parallelism to exploit, period.
        s1 = LocalService(engine, "a", ("x",), ("y",), duration=5.0)
        s2 = LocalService(engine, "b", ("x",), ("y",), duration=5.0)
        sync = SyncInvoker(engine)
        events = [sync.call(s1, {"x": 1}), sync.call(s2, {"x": 1})]
        engine.run(until=gather(engine, events))
        assert engine.now == 10.0  # even *different* services serialize

    def test_failure_propagates_and_releases_lock(self, engine):
        def boom(x):
            raise RuntimeError("bad")

        bad = LocalService(engine, "bad", ("x",), ("y",), function=boom)
        good = LocalService(engine, "good", ("x",), ("y",), duration=1.0)
        invoker = SyncInvoker(engine)
        bad_event = invoker.call(bad, {"x": 1})
        good_event = invoker.call(good, {"x": 1})
        with pytest.raises(ServiceError):
            engine.run(until=bad_event)
        engine.run(until=good_event)  # lock was released despite the failure
        assert good_event.ok
