"""Tests for the service registry."""

import pytest

from repro.services.base import LocalService
from repro.services.registry import ServiceRegistry


@pytest.fixture
def registry(engine):
    reg = ServiceRegistry()
    reg.register(
        LocalService(engine, "crestLines", ("img",), ("crest",)),
        description="crest line extraction",
        tags={"domain": "imaging"},
    )
    reg.register(
        LocalService(engine, "crestMatch", ("crest",), ("transform",)),
        tags={"domain": "imaging", "kind": "registration"},
    )
    reg.register(LocalService(engine, "stats", ("values",), ("mean",)))
    return reg


class TestRegistry:
    def test_resolve(self, registry):
        assert registry.resolve("crestLines").name == "crestLines"

    def test_resolve_unknown_raises(self, registry):
        with pytest.raises(KeyError, match="no service"):
            registry.resolve("nope")

    def test_duplicate_registration_rejected(self, registry, engine):
        with pytest.raises(ValueError, match="already"):
            registry.register(LocalService(engine, "stats", ("x",), ("y",)))

    def test_unregister(self, registry):
        registry.unregister("stats")
        assert "stats" not in registry
        assert len(registry) == 2

    def test_find_by_ports(self, registry):
        found = registry.find_by_ports(input_ports=["crest"])
        assert [s.name for s in found] == ["crestMatch"]

    def test_find_by_output_ports(self, registry):
        found = registry.find_by_ports(output_ports=["transform"])
        assert [s.name for s in found] == ["crestMatch"]

    def test_find_by_ports_empty_query_returns_all(self, registry):
        assert len(registry.find_by_ports()) == 3

    def test_find_by_tag(self, registry):
        assert len(registry.find_by_tag("domain")) == 2
        assert [s.name for s in registry.find_by_tag("kind", "registration")] == ["crestMatch"]

    def test_names_sorted(self, registry):
        assert registry.names() == ["crestLines", "crestMatch", "stats"]

    def test_contains(self, registry):
        assert "crestLines" in registry
        assert "zzz" not in registry
