"""Tests for virtual grouped services (Figure 7)."""

import pytest

from repro.grid.storage import LogicalFile
from repro.services.base import GridData, LocalService, ServiceError
from repro.services.composite import CompositeService
from repro.services.descriptor import (
    AccessMethod,
    ExecutableDescriptor,
    InputSpec,
    OutputSpec,
)
from repro.services.wrapper import GenericWrapperService


def wrapper(engine, grid, name, compute=10.0, extra_input=None):
    inputs = [InputSpec("x", "-i", AccessMethod("GFN"))]
    if extra_input:
        inputs.append(InputSpec(extra_input, "-e", AccessMethod("GFN")))
    descriptor = ExecutableDescriptor(
        name=name,
        access=AccessMethod("URL", "http://host"),
        value=name,
        inputs=tuple(inputs),
        outputs=(OutputSpec("y", "-o"),),
    )

    if extra_input:
        def program(x, **kw):
            return {"y": (x or 0) + 1}
    else:
        def program(x):
            return {"y": (x or 0) + 1}

    return GenericWrapperService(
        engine, grid, descriptor, program=program, compute_time=compute
    )


@pytest.fixture
def staged_file(ideal_grid):
    file = LogicalFile("gfn://in/item")
    ideal_grid.add_input_file(file)
    return file


class TestConstruction:
    def test_ports_derived_from_links(self, engine, ideal_grid):
        a = wrapper(engine, ideal_grid, "A")
        b = wrapper(engine, ideal_grid, "B")
        composite = CompositeService(
            engine, [a, b], internal_links={(1, "x"): (0, "y")}
        )
        assert composite.input_ports == ("x",)
        assert composite.output_ports == ("y",)
        assert composite.name == "A+B"

    def test_colliding_external_ports_qualified(self, engine, ideal_grid):
        a = wrapper(engine, ideal_grid, "A")
        b = wrapper(engine, ideal_grid, "B", extra_input="side")
        composite = CompositeService(
            engine, [a, b], internal_links={(1, "x"): (0, "y")}
        )
        # A.x exposed as "x"; B.side exposed bare since unique
        assert set(composite.input_ports) == {"x", "side"}

    def test_reverse_lookups(self, engine, ideal_grid):
        a = wrapper(engine, ideal_grid, "A")
        b = wrapper(engine, ideal_grid, "B")
        composite = CompositeService(engine, [a, b], internal_links={(1, "x"): (0, "y")})
        assert composite.public_input_name(0, "x") == "x"
        assert composite.public_output_name(1, "y") == "y"
        with pytest.raises(KeyError):
            composite.public_input_name(1, "x")  # internal, not exposed

    def test_rejects_non_wrapper_stages(self, engine):
        local = LocalService(engine, "local", ("x",), ("y",))
        with pytest.raises(ServiceError, match="generic-wrapper"):
            CompositeService(engine, [local])

    def test_rejects_backward_links(self, engine, ideal_grid):
        a = wrapper(engine, ideal_grid, "A")
        b = wrapper(engine, ideal_grid, "B")
        with pytest.raises(ServiceError, match="earlier"):
            CompositeService(engine, [a, b], internal_links={(0, "x"): (1, "y")})

    def test_rejects_unknown_ports(self, engine, ideal_grid):
        a = wrapper(engine, ideal_grid, "A")
        b = wrapper(engine, ideal_grid, "B")
        with pytest.raises(ServiceError, match="no input port"):
            CompositeService(engine, [a, b], internal_links={(1, "zzz"): (0, "y")})

    def test_rejects_empty(self, engine):
        with pytest.raises(ServiceError):
            CompositeService(engine, [])


class TestExecution:
    def test_single_job_pays_one_overhead(self, engine, streams, staged_file):
        # Build on a grid with constant overhead to observe the saving.
        from repro.grid.overhead import OverheadModel
        from repro.grid.middleware import Grid
        from repro.grid.resources import ComputingElement, Site
        from repro.grid.storage import StorageElement
        from repro.grid.transfer import NetworkModel

        ce = ComputingElement(engine, "ce", "s0", infinite=True)
        grid = Grid(
            engine,
            streams,
            sites=[Site("s0", [ce], StorageElement("se", "s0"))],
            overhead=OverheadModel.from_values(submission=100.0),
            network=NetworkModel.instantaneous(),
        )
        file = LogicalFile("gfn://in/f")
        grid.add_input_file(file)
        a = wrapper(engine, grid, "A", compute=10.0)
        b = wrapper(engine, grid, "B", compute=20.0)
        composite = CompositeService(engine, [a, b], internal_links={(1, "x"): (0, "y")})
        outputs = engine.run(until=composite.invoke({"x": GridData(0, file)}))
        # one overhead (100) + summed compute (30), not two overheads
        assert engine.now == pytest.approx(130.0)
        assert outputs["y"].value == 2
        assert len(grid.records) == 1

    def test_command_lines_joined_with_shell_sequencing(
        self, engine, ideal_grid, staged_file
    ):
        a = wrapper(engine, ideal_grid, "A")
        b = wrapper(engine, ideal_grid, "B")
        composite = CompositeService(engine, [a, b], internal_links={(1, "x"): (0, "y")})
        engine.run(until=composite.invoke({"x": GridData(0, staged_file)}))
        line = ideal_grid.records[-1].description.command_line
        assert " && " in line
        assert line.startswith("A -i gfn://in/item -o ./A.y.tmp && B -i ./A.y.tmp -o gfn://")

    def test_intermediate_file_not_registered(self, engine, ideal_grid, staged_file):
        a = wrapper(engine, ideal_grid, "A")
        b = wrapper(engine, ideal_grid, "B")
        composite = CompositeService(engine, [a, b], internal_links={(1, "x"): (0, "y")})
        before = len(ideal_grid.catalog)
        engine.run(until=composite.invoke({"x": GridData(0, staged_file)}))
        # only the final output was registered (+1), not A's intermediate
        assert len(ideal_grid.catalog) == before + 1

    def test_values_thread_through_stages(self, engine, ideal_grid, staged_file):
        stages = [wrapper(engine, ideal_grid, f"S{i}") for i in range(4)]
        links = {(i, "x"): (i - 1, "y") for i in range(1, 4)}
        composite = CompositeService(engine, stages, internal_links=links)
        outputs = engine.run(until=composite.invoke({"x": GridData(0, staged_file)}))
        assert outputs["y"].value == 4  # +1 per stage

    def test_grouped_job_tagged(self, engine, ideal_grid, staged_file):
        a = wrapper(engine, ideal_grid, "A")
        b = wrapper(engine, ideal_grid, "B")
        composite = CompositeService(engine, [a, b], internal_links={(1, "x"): (0, "y")})
        engine.run(until=composite.invoke({"x": GridData(0, staged_file)}))
        tags = ideal_grid.records[-1].description.tags
        assert tags["grouped"] is True and tags["stages"] == 2

    def test_compute_time_is_sum_of_stages(self, engine, ideal_grid, staged_file):
        a = wrapper(engine, ideal_grid, "A", compute=15.0)
        b = wrapper(engine, ideal_grid, "B", compute=25.0)
        composite = CompositeService(engine, [a, b], internal_links={(1, "x"): (0, "y")})
        engine.run(until=composite.invoke({"x": GridData(0, staged_file)}))
        assert engine.now == pytest.approx(40.0)

    def test_missing_stage_input_rejected(self, engine, ideal_grid):
        a = wrapper(engine, ideal_grid, "A")
        b = wrapper(engine, ideal_grid, "B", extra_input="side")
        composite = CompositeService(engine, [a, b], internal_links={(1, "x"): (0, "y")})
        with pytest.raises(ServiceError, match="missing"):
            engine.run(until=composite.invoke({"x": GridData(0)}))
