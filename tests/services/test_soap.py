"""Tests for the simulated SOAP transport."""

import pytest

from repro.grid.storage import LogicalFile
from repro.services.base import GridData, LocalService
from repro.services.soap import SoapBinding, build_envelope, parse_envelope


class TestEnvelope:
    def test_round_trip(self):
        envelope = build_envelope("register", {"image": "gfn://a", "scale": 8})
        args = parse_envelope(envelope)
        assert args == {"image": "gfn://a", "scale": "8"}

    def test_grid_data_serialized_by_gfn(self):
        envelope = build_envelope(
            "op", {"f": GridData(file=LogicalFile("gfn://f0")), "v": GridData(value=3)}
        )
        args = parse_envelope(envelope)
        assert args == {"f": "gfn://f0", "v": "3"}

    def test_none_becomes_empty(self):
        args = parse_envelope(build_envelope("op", {"x": None}))
        assert args == {"x": ""}

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            parse_envelope(
                '<e xmlns:s="http://schemas.xmlsoap.org/soap/envelope/"/>'
            )

    def test_looks_like_soap(self):
        envelope = build_envelope("op", {"x": 1})
        assert "Envelope" in envelope and "Body" in envelope


class TestSoapBinding:
    def test_adds_transport_latency(self, engine):
        inner = LocalService(engine, "svc", ("x",), ("y",), duration=10.0)
        bound = SoapBinding(engine, inner, round_trip_latency=2.0)
        engine.run(until=bound.invoke({"x": 1}))
        assert engine.now > 12.0  # work + latency + marshalling

    def test_preserves_outputs(self, engine):
        inner = LocalService(
            engine, "svc", ("x",), ("y",), function=lambda x: {"y": x * 3}
        )
        bound = SoapBinding(engine, inner)
        outputs = engine.run(until=bound.invoke({"x": 4}))
        assert outputs["y"].value == 12

    def test_counts_envelopes(self, engine):
        inner = LocalService(engine, "svc", ("x",), ("y",))
        bound = SoapBinding(engine, inner)
        engine.run(until=bound.invoke({"x": 1}))
        engine.run(until=bound.invoke({"x": 2}))
        assert bound.envelopes_sent == 2

    def test_parameter_validation(self, engine):
        inner = LocalService(engine, "svc", ("x",), ("y",))
        with pytest.raises(ValueError):
            SoapBinding(engine, inner, round_trip_latency=-1.0)
        with pytest.raises(ValueError):
            SoapBinding(engine, inner, marshalling_rate=0.0)

    def test_same_ports_as_inner(self, engine):
        inner = LocalService(engine, "svc", ("a", "b"), ("c",))
        bound = SoapBinding(engine, inner)
        assert bound.input_ports == inner.input_ports
        assert bound.output_ports == inner.output_ports
