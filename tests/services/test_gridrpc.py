"""Tests for the GridRPC-style client facade."""

import pytest

from repro.services.base import LocalService, ServiceError
from repro.services.gridrpc import GridRpcClient, SessionState


@pytest.fixture
def service(engine):
    return LocalService(
        engine, "svc", ("x",), ("y",), function=lambda x: {"y": x + 1}, duration=5.0
    )


class TestGridRpcClient:
    def test_call_async_returns_running_handle(self, engine, service):
        client = GridRpcClient(engine)
        handle = client.call_async(service, {"x": 1})
        assert client.probe(handle) is SessionState.RUNNING
        assert client.open_sessions == 1

    def test_wait_yields_outputs(self, engine, service):
        client = GridRpcClient(engine)
        handle = client.call_async(service, {"x": 1})
        outputs = engine.run(until=client.wait(handle))
        assert outputs["y"].value == 2
        assert client.probe(handle) is SessionState.DONE

    def test_wait_any_returns_first(self, engine, service):
        fast = LocalService(engine, "fast", ("x",), ("y",), duration=1.0)
        client = GridRpcClient(engine)
        handles = [client.call_async(service, {"x": 1}), client.call_async(fast, {"x": 2})]
        engine.run(until=client.wait_any(handles))
        assert engine.now == 1.0

    def test_wait_all(self, engine, service):
        client = GridRpcClient(engine)
        handles = [client.call_async(service, {"x": i}) for i in range(3)]
        engine.run(until=client.wait_all(handles))
        assert engine.now == 5.0
        assert client.open_sessions == 0

    def test_error_state(self, engine):
        def boom(x):
            raise RuntimeError("bad")

        bad = LocalService(engine, "bad", ("x",), ("y",), function=boom)
        client = GridRpcClient(engine)
        handle = client.call_async(bad, {"x": 1})
        with pytest.raises(ServiceError):
            engine.run(until=client.wait(handle))
        assert client.probe(handle) is SessionState.ERROR

    def test_session_lookup(self, engine, service):
        client = GridRpcClient(engine)
        handle = client.call_async(service, {"x": 1})
        assert client.session(handle.session_id) is handle
        assert client.session(10**9) is None

    def test_wait_any_empty_rejected(self, engine):
        with pytest.raises(ServiceError):
            GridRpcClient(engine).wait_any([])

    def test_wait_all_empty_rejected(self, engine):
        with pytest.raises(ServiceError):
            GridRpcClient(engine).wait_all([])
