"""Tests for the generic wrapper service (Section 3.6)."""

import pytest

from repro.grid.storage import LogicalFile
from repro.services.base import GridData, ServiceError
from repro.services.descriptor import (
    AccessMethod,
    ExecutableDescriptor,
    InputSpec,
    OutputSpec,
    SandboxSpec,
)
from repro.services.wrapper import GenericWrapperService
from repro.util.units import MEBIBYTE


def simple_descriptor(name="tool", with_sandbox=False):
    sandboxes = ()
    if with_sandbox:
        sandboxes = (
            SandboxSpec("lib", AccessMethod("URL", "http://host"), "libtool.so"),
        )
    return ExecutableDescriptor(
        name=name,
        access=AccessMethod("URL", "http://host"),
        value=name,
        inputs=(
            InputSpec("data", "-i", AccessMethod("GFN")),
            InputSpec("level", "-l"),
        ),
        outputs=(OutputSpec("result", "-o"),),
        sandboxes=sandboxes,
    )


@pytest.fixture
def input_file(ideal_grid):
    file = LogicalFile("gfn://in/data0", size=2 * MEBIBYTE)
    ideal_grid.add_input_file(file)
    return file


class TestWrapperExecution:
    def test_runs_as_one_grid_job(self, engine, ideal_grid, input_file):
        service = GenericWrapperService(
            engine, ideal_grid, simple_descriptor(),
            program=lambda data, level: {"result": f"{data}@{level}"},
            compute_time=50.0,
        )
        outputs = engine.run(
            until=service.invoke({"data": GridData("payload", input_file), "level": 3})
        )
        assert outputs["result"].value == "payload@3"
        assert engine.now == 50.0
        assert len(ideal_grid.records) == 1

    def test_ports_mirror_descriptor(self, engine, ideal_grid):
        service = GenericWrapperService(engine, ideal_grid, simple_descriptor())
        assert service.input_ports == ("data", "level")
        assert service.output_ports == ("result",)

    def test_command_line_composed_dynamically(self, engine, ideal_grid, input_file):
        service = GenericWrapperService(engine, ideal_grid, simple_descriptor())
        engine.run(until=service.invoke({"data": GridData("x", input_file), "level": 9}))
        line = ideal_grid.records[-1].description.command_line
        assert line.startswith("tool -i gfn://in/data0 -l 9 -o gfn://")

    def test_output_files_minted_and_registered(self, engine, ideal_grid, input_file):
        service = GenericWrapperService(
            engine, ideal_grid, simple_descriptor(),
            output_sizes={"result": 3 * MEBIBYTE},
        )
        outputs = engine.run(
            until=service.invoke({"data": GridData("x", input_file), "level": 1})
        )
        produced = outputs["result"].file
        assert produced is not None
        assert ideal_grid.catalog.knows(produced.gfn)
        assert ideal_grid.catalog.lookup(produced.gfn).size == 3 * MEBIBYTE

    def test_sandboxes_published_once_and_staged(self, engine, ideal_grid, input_file):
        service = GenericWrapperService(
            engine, ideal_grid, simple_descriptor(with_sandbox=True)
        )
        assert len(service.sandbox_gfns) == 1
        assert ideal_grid.catalog.knows(service.sandbox_gfns[0])
        engine.run(until=service.invoke({"data": GridData("x", input_file), "level": 1}))
        staged = ideal_grid.records[-1].description.input_files
        assert service.sandbox_gfns[0] in staged
        assert input_file.gfn in staged

    def test_none_parameter_is_allowed(self, engine, ideal_grid):
        service = GenericWrapperService(engine, ideal_grid, simple_descriptor())
        outputs = engine.run(
            until=service.invoke({"data": GridData("x"), "level": None})
        )
        assert "result" in outputs

    def test_missing_input_port_rejected(self, engine, ideal_grid):
        service = GenericWrapperService(engine, ideal_grid, simple_descriptor())
        with pytest.raises(ServiceError, match="missing"):
            service.invoke({"data": GridData("x")})

    def test_value_only_input_needs_no_transfer(self, engine, ideal_grid):
        service = GenericWrapperService(
            engine, ideal_grid, simple_descriptor(),
            program=lambda data, level: {"result": data},
        )
        outputs = engine.run(
            until=service.invoke({"data": GridData("inline"), "level": 0})
        )
        assert outputs["result"].value == "inline"
        assert ideal_grid.records[-1].description.input_files == ()

    def test_program_return_must_be_mapping(self, engine, ideal_grid, input_file):
        service = GenericWrapperService(
            engine, ideal_grid, simple_descriptor(), program=lambda data, level: 42
        )
        with pytest.raises(ServiceError, match="mapping"):
            engine.run(until=service.invoke({"data": GridData("x", input_file), "level": 1}))

    def test_no_program_yields_none_values(self, engine, ideal_grid, input_file):
        service = GenericWrapperService(engine, ideal_grid, simple_descriptor())
        outputs = engine.run(
            until=service.invoke({"data": GridData("x", input_file), "level": 1})
        )
        assert outputs["result"].value is None
        assert outputs["result"].file is not None

    def test_job_names_distinct_per_invocation(self, engine, ideal_grid, input_file):
        service = GenericWrapperService(engine, ideal_grid, simple_descriptor())
        e1 = service.invoke({"data": GridData("a", input_file), "level": 1})
        e2 = service.invoke({"data": GridData("b", input_file), "level": 2})
        engine.run(until=engine.all_of([e1, e2]))
        names = {r.description.name for r in ideal_grid.records}
        assert len(names) == 2

    def test_job_ids_recorded_on_invocation(self, engine, ideal_grid, input_file):
        service = GenericWrapperService(engine, ideal_grid, simple_descriptor())
        event, record = service.invoke_recorded(
            {"data": GridData("x", input_file), "level": 1}
        )
        engine.run(until=event)
        assert record.job_ids == (ideal_grid.records[-1].job_id,)

    def test_stage_in_cost_on_slow_network(self, engine, cluster_grid):
        file = LogicalFile("gfn://in/big", size=100 * MEBIBYTE)
        cluster_grid.add_input_file(file)
        service = GenericWrapperService(
            engine, cluster_grid, simple_descriptor(), compute_time=1.0
        )
        engine.run(until=service.invoke({"data": GridData("x", file), "level": 1}))
        record = cluster_grid.records[-1]
        assert record.stage_in_time > 0
