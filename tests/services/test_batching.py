"""Tests for intra-service job batching (the Section 5.4 future work)."""

import pytest

from repro.grid.middleware import Grid
from repro.grid.overhead import OverheadModel
from repro.grid.resources import ComputingElement, Site
from repro.grid.storage import LogicalFile, StorageElement
from repro.grid.transfer import NetworkModel
from repro.services.base import GridData, LocalService, ServiceError
from repro.services.batching import BatchingService
from repro.services.descriptor import (
    AccessMethod,
    ExecutableDescriptor,
    InputSpec,
    OutputSpec,
)
from repro.services.wrapper import GenericWrapperService
from repro.util.rng import RandomStreams


def overhead_grid(engine, streams, overhead=100.0, slots_infinite=True):
    ce = ComputingElement(engine, "ce", "s0", infinite=True)
    return Grid(
        engine,
        streams,
        sites=[Site("s0", [ce], StorageElement("se", "s0"))],
        overhead=OverheadModel.from_values(submission=overhead),
        network=NetworkModel.instantaneous(),
    )


def wrapped(engine, grid, compute=10.0):
    descriptor = ExecutableDescriptor(
        name="tool",
        access=AccessMethod("URL", "http://host"),
        value="tool",
        inputs=(InputSpec("x", "-i", AccessMethod("GFN")),),
        outputs=(OutputSpec("y", "-o"),),
    )
    return GenericWrapperService(
        engine, grid, descriptor,
        program=lambda x: {"y": (x or 0) * 10}, compute_time=compute,
    )


class TestConstruction:
    def test_name_and_ports(self, engine, ideal_grid):
        batching = BatchingService(engine, wrapped(engine, ideal_grid), batch_size=3)
        assert batching.name == "tool[x3]"
        assert batching.input_ports == ("x",)
        assert batching.output_ports == ("y",)

    def test_only_wrappers_batchable(self, engine):
        local = LocalService(engine, "local", ("x",), ("y",))
        with pytest.raises(ServiceError, match="generic-wrapper"):
            BatchingService(engine, local, batch_size=2)

    def test_validation(self, engine, ideal_grid):
        inner = wrapped(engine, ideal_grid)
        with pytest.raises(ValueError):
            BatchingService(engine, inner, batch_size=0)
        with pytest.raises(ValueError):
            BatchingService(engine, inner, batch_size=2, max_wait=-1.0)


class TestBatchExecution:
    def test_full_batch_is_one_job_one_overhead(self, engine, streams):
        grid = overhead_grid(engine, streams, overhead=100.0)
        batching = BatchingService(engine, wrapped(engine, grid, compute=10.0), batch_size=3)
        events = [batching.invoke({"x": GridData(i)}) for i in range(3)]
        results = engine.run(until=engine.all_of(events))
        assert [r["y"].value for r in results] == [0, 10, 20]
        assert len(grid.records) == 1  # one job for three invocations
        # one overhead (100) + summed compute (30)
        assert engine.now == pytest.approx(130.0)
        assert grid.records[0].description.tags["members"] == 3

    def test_command_lines_chained(self, engine, streams):
        grid = overhead_grid(engine, streams, overhead=0.0)
        batching = BatchingService(engine, wrapped(engine, grid), batch_size=2)
        events = [batching.invoke({"x": GridData(i)}) for i in range(2)]
        engine.run(until=engine.all_of(events))
        line = grid.records[0].description.command_line
        assert line.count("tool -i") == 2 and " && " in line

    def test_each_member_gets_its_own_outputs(self, engine, streams):
        grid = overhead_grid(engine, streams, overhead=0.0)
        batching = BatchingService(engine, wrapped(engine, grid), batch_size=4)
        events = [batching.invoke({"x": GridData(i)}) for i in range(4)]
        results = engine.run(until=engine.all_of(events))
        values = [r["y"].value for r in results]
        assert values == [0, 10, 20, 30]
        files = {r["y"].file.gfn for r in results}
        assert len(files) == 4  # distinct minted outputs per member

    def test_overflow_starts_new_batch(self, engine, streams):
        grid = overhead_grid(engine, streams, overhead=50.0)
        batching = BatchingService(engine, wrapped(engine, grid, compute=10.0), batch_size=2)
        events = [batching.invoke({"x": GridData(i)}) for i in range(5)]
        # fifth member sits in a forming batch; flush it explicitly
        batching.flush()
        results = engine.run(until=engine.all_of(events))
        assert len(grid.records) == 3  # 2 + 2 + 1
        assert [r["y"].value for r in results] == [0, 10, 20, 30, 40]
        assert batching.batches_submitted == 3

    def test_max_wait_flushes_partial_batch(self, engine, streams):
        grid = overhead_grid(engine, streams, overhead=0.0)
        batching = BatchingService(
            engine, wrapped(engine, grid, compute=10.0), batch_size=10, max_wait=5.0
        )
        event = batching.invoke({"x": GridData(7)})
        result = engine.run(until=event)
        assert result["y"].value == 70
        assert engine.now == pytest.approx(15.0)  # 5 wait + 10 compute
        assert len(grid.records) == 1

    def test_batch_size_one_degenerates_to_plain_wrapper(self, engine, streams):
        grid = overhead_grid(engine, streams, overhead=20.0)
        batching = BatchingService(engine, wrapped(engine, grid, compute=5.0), batch_size=1)
        events = [batching.invoke({"x": GridData(i)}) for i in range(3)]
        engine.run(until=engine.all_of(events))
        assert len(grid.records) == 3
        assert engine.now == pytest.approx(25.0)  # fully parallel jobs

    def test_job_ids_shared_across_batch_members(self, engine, streams):
        grid = overhead_grid(engine, streams, overhead=0.0)
        batching = BatchingService(engine, wrapped(engine, grid), batch_size=2)
        ev1, rec1 = batching.invoke_recorded({"x": GridData(1)})
        ev2, rec2 = batching.invoke_recorded({"x": GridData(2)})
        engine.run(until=engine.all_of([ev1, ev2]))
        assert rec1.job_ids == rec2.job_ids
        assert rec1.job_ids == (grid.records[0].job_id,)

    def test_input_files_deduplicated_across_members(self, engine, streams):
        grid = overhead_grid(engine, streams, overhead=0.0)
        shared = LogicalFile("gfn://shared/input")
        grid.add_input_file(shared)
        batching = BatchingService(engine, wrapped(engine, grid), batch_size=2)
        events = [
            batching.invoke({"x": GridData(i, shared)}) for i in range(2)
        ]
        engine.run(until=engine.all_of(events))
        staged = grid.records[0].description.input_files
        assert staged.count(shared.gfn) == 1


class TestGranularityTradeoffEndToEnd:
    def test_batching_beats_no_batching_under_variable_overhead(self, engine):
        """The E12 trade-off, realized in the actual execution stack."""
        from repro.util.distributions import LogNormal

        def run(batch_size, seed=5):
            from repro.sim.engine import Engine

            eng = Engine()
            streams = RandomStreams(seed=seed)
            ce = ComputingElement(eng, "ce", "s0", infinite=True)
            grid = Grid(
                eng,
                streams,
                sites=[Site("s0", [ce], StorageElement("se", "s0"))],
                overhead=OverheadModel(
                    queue_extra=LogNormal(mean_value=600.0, sigma_log=0.9)
                ),
                network=NetworkModel.instantaneous(),
            )
            service = BatchingService(
                eng, wrapped(eng, grid, compute=60.0), batch_size=batch_size
            )
            events = [service.invoke({"x": GridData(i)}) for i in range(16)]
            service.flush()
            eng.run(until=eng.all_of(events))
            return eng.now

        unbatched = run(1)
        batched = run(4)
        fully_serial = run(16)
        # moderate batching avoids the max over 16 heavy-tailed draws...
        assert batched < unbatched
        # ...without collapsing into one fully serialized job
        assert batched < fully_serial
