"""Tests for executable descriptors, including the verbatim Figure 8."""

import pytest

from repro.services.descriptor import (
    AccessMethod,
    DescriptorError,
    ExecutableDescriptor,
    InputSpec,
    OutputSpec,
    descriptor_from_xml,
    descriptor_to_xml,
)

#: the example published in the paper (Figure 8), verbatim structure
FIGURE8_XML = """
<description>
<executable name="CrestLines.pl">
<access type="URL">
<path value="http://colors.unice.fr"/>
</access>
<value value="CrestLines.pl"/>
<input name="floating_image" option="-im1">
<access type="GFN"/>
</input>
<input name="reference_image" option="-im2">
<access type="GFN"/>
</input>
<input name="scale" option="-s"/>
<output name="crest_reference" option="-c1">
<access type="GFN"/>
</output>
<output name="crest_floating" option="-c2">
<access type="GFN"/>
</output>
<sandbox name="convert8bits">
<access type="URL">
<path value="http://colors.unice.fr"/>
</access>
<value value="Convert8bits.pl"/>
</sandbox>
<sandbox name="copy">
<access type="URL">
<path value="http://colors.unice.fr"/>
</access>
<value value="copy"/>
</sandbox>
<sandbox name="cmatch">
<access type="URL">
<path value="http://colors.unice.fr"/>
</access>
<value value="cmatch"/>
</sandbox>
</executable>
</description>
"""


@pytest.fixture
def figure8():
    return descriptor_from_xml(FIGURE8_XML)


class TestFigure8:
    def test_executable_identity(self, figure8):
        assert figure8.name == "CrestLines.pl"
        assert figure8.access == AccessMethod("URL", "http://colors.unice.fr")
        assert figure8.value == "CrestLines.pl"

    def test_three_inputs(self, figure8):
        assert figure8.input_ports == ("floating_image", "reference_image", "scale")

    def test_two_file_inputs_one_parameter(self, figure8):
        # "2 files ... that are already registered on the grid as GFNs
        #  ... and 1 parameter (option -s)"
        assert [s.name for s in figure8.file_inputs] == ["floating_image", "reference_image"]
        assert [s.name for s in figure8.parameters] == ["scale"]
        assert figure8.parameters[0].option == "-s"

    def test_two_outputs_registered_on_grid(self, figure8):
        assert figure8.output_ports == ("crest_reference", "crest_floating")
        assert all(s.access.type == "GFN" for s in figure8.outputs)

    def test_three_sandboxed_files(self, figure8):
        assert [s.value for s in figure8.sandboxes] == ["Convert8bits.pl", "copy", "cmatch"]
        assert all(s.access.type == "URL" for s in figure8.sandboxes)

    def test_round_trip(self, figure8):
        assert descriptor_from_xml(descriptor_to_xml(figure8)) == figure8


class TestCommandLine:
    def test_dynamic_composition(self, figure8):
        bindings = {
            "floating_image": "gfn://img/f0",
            "reference_image": "gfn://img/r0",
            "scale": "8",
            "crest_reference": "gfn://out/c1",
            "crest_floating": "gfn://out/c2",
        }
        line = figure8.command_line(bindings)
        assert line == (
            "CrestLines.pl -im1 gfn://img/f0 -im2 gfn://img/r0 -s 8 "
            "-c1 gfn://out/c1 -c2 gfn://out/c2"
        )

    def test_missing_binding_rejected(self, figure8):
        with pytest.raises(DescriptorError, match="unbound"):
            figure8.command_line({"floating_image": "x"})

    def test_optionless_input_is_positional(self):
        desc = ExecutableDescriptor(
            name="tool",
            access=AccessMethod("local"),
            value="tool",
            inputs=(InputSpec("arg"),),
        )
        assert desc.command_line({"arg": "hello"}) == "tool hello"


class TestValidation:
    def test_unknown_access_type_rejected(self):
        with pytest.raises(DescriptorError):
            AccessMethod("FTP")

    def test_duplicate_port_names_rejected(self):
        with pytest.raises(DescriptorError, match="duplicate"):
            ExecutableDescriptor(
                name="t",
                access=AccessMethod("local"),
                value="t",
                inputs=(InputSpec("x"),),
                outputs=(OutputSpec("x"),),
            )

    def test_parameter_is_not_file(self):
        assert not InputSpec("scale", "-s").is_file
        assert InputSpec("img", "-i", AccessMethod("GFN")).is_file


class TestXmlErrors:
    def test_malformed_xml(self):
        with pytest.raises(DescriptorError, match="well-formed"):
            descriptor_from_xml("<description><unclosed>")

    def test_wrong_root(self):
        with pytest.raises(DescriptorError, match="root"):
            descriptor_from_xml("<other/>")

    def test_missing_executable(self):
        with pytest.raises(DescriptorError, match="executable"):
            descriptor_from_xml("<description/>")

    def test_missing_executable_name(self):
        with pytest.raises(DescriptorError, match="name"):
            descriptor_from_xml("<description><executable><access type='local'/></executable></description>")

    def test_missing_executable_access(self):
        with pytest.raises(DescriptorError, match="access"):
            descriptor_from_xml("<description><executable name='t'/></description>")

    def test_input_without_name(self):
        xml = (
            "<description><executable name='t'><access type='local'/>"
            "<input option='-i'/></executable></description>"
        )
        with pytest.raises(DescriptorError, match="input"):
            descriptor_from_xml(xml)

    def test_sandbox_without_value(self):
        xml = (
            "<description><executable name='t'><access type='local'/>"
            "<sandbox name='s'><access type='URL'><path value='http://h'/></access>"
            "</sandbox></executable></description>"
        )
        with pytest.raises(DescriptorError, match="value"):
            descriptor_from_xml(xml)
