"""Tests for rigid-transform algebra."""

import numpy as np
import pytest

from repro.apps.transforms import RigidTransform, mean_transform, rotation_angle_deg


@pytest.fixture
def rng():
    return np.random.default_rng(21)


class TestConstruction:
    def test_identity(self):
        identity = RigidTransform.identity()
        point = np.array([1.0, 2.0, 3.0])
        assert np.allclose(identity.apply(point), point)

    def test_quaternion_normalized(self):
        transform = RigidTransform(quaternion=np.array([0.0, 0.0, 0.0, 2.0]))
        assert np.linalg.norm(transform.quaternion) == pytest.approx(1.0)

    def test_canonical_sign(self):
        a = RigidTransform(quaternion=np.array([0.1, 0.2, 0.3, 0.9]))
        b = RigidTransform(quaternion=-np.array([0.1, 0.2, 0.3, 0.9]))
        assert np.allclose(a.quaternion, b.quaternion)

    def test_zero_quaternion_rejected(self):
        with pytest.raises(ValueError):
            RigidTransform(quaternion=np.zeros(4))

    def test_bad_translation_shape_rejected(self):
        with pytest.raises(ValueError):
            RigidTransform(translation=np.zeros(2))

    def test_from_euler(self):
        transform = RigidTransform.from_euler_deg([90, 0, 0], [0, 0, 0])
        rotated = transform.apply(np.array([0.0, 1.0, 0.0]))
        assert np.allclose(rotated, [0.0, 0.0, 1.0], atol=1e-12)

    def test_random_respects_bounds(self, rng):
        for _ in range(20):
            transform = RigidTransform.random(rng, max_angle_deg=5.0, max_translation=2.0)
            assert rotation_angle_deg(transform) <= 5.0 * np.sqrt(3) + 1e-9
            assert np.abs(transform.translation).max() <= 2.0


class TestAlgebra:
    def test_compose_with_identity(self, rng):
        transform = RigidTransform.random(rng)
        identity = RigidTransform.identity()
        assert transform.compose(identity).is_close(transform)
        assert identity.compose(transform).is_close(transform)

    def test_inverse_cancels(self, rng):
        transform = RigidTransform.random(rng)
        assert transform.compose(transform.inverse()).is_close(RigidTransform.identity())
        assert transform.inverse().compose(transform).is_close(RigidTransform.identity())

    def test_compose_applies_right_first(self, rng):
        a = RigidTransform.random(rng)
        b = RigidTransform.random(rng)
        point = rng.normal(size=3)
        assert np.allclose(a.compose(b).apply(point), a.apply(b.apply(point)))

    def test_apply_batch(self, rng):
        transform = RigidTransform.random(rng)
        points = rng.normal(size=(10, 3))
        moved = transform.apply(points)
        assert moved.shape == (10, 3)
        # rigid: distances preserved
        original = np.linalg.norm(points[0] - points[1])
        assert np.linalg.norm(moved[0] - moved[1]) == pytest.approx(original)


class TestMetrics:
    def test_rotation_distance_symmetric(self, rng):
        a = RigidTransform.random(rng)
        b = RigidTransform.random(rng)
        assert a.rotation_distance_deg(b) == pytest.approx(b.rotation_distance_deg(a))

    def test_known_rotation_distance(self):
        a = RigidTransform.from_euler_deg([30, 0, 0], [0, 0, 0])
        b = RigidTransform.from_euler_deg([50, 0, 0], [0, 0, 0])
        assert a.rotation_distance_deg(b) == pytest.approx(20.0)

    def test_translation_distance(self):
        a = RigidTransform(translation=np.array([1.0, 0.0, 0.0]))
        b = RigidTransform(translation=np.array([4.0, 4.0, 0.0]))
        assert a.translation_distance(b) == pytest.approx(5.0)


class TestPerturb:
    def test_zero_noise_is_identity(self, rng):
        transform = RigidTransform.random(rng)
        assert transform.perturb(rng, 0.0, 0.0).is_close(transform)

    def test_noise_scale(self, rng):
        truth = RigidTransform.random(rng)
        errors = [
            truth.perturb(rng, 0.5, 2.0).rotation_distance_deg(truth) for _ in range(300)
        ]
        # rotation error should be on the order of the sigma (in degrees)
        assert 0.3 < np.mean(errors) < 2.0

    def test_negative_sigma_rejected(self, rng):
        with pytest.raises(ValueError):
            RigidTransform.identity().perturb(rng, -1.0, 0.0)


class TestMeanTransform:
    def test_mean_of_identical(self, rng):
        transform = RigidTransform.random(rng)
        mean = mean_transform([transform] * 5)
        assert mean.is_close(transform, angle_tol_deg=1e-9, trans_tol=1e-9)

    def test_mean_reduces_noise(self, rng):
        # The whole point of the bronze standard: the mean over noisy
        # estimates is closer to truth than the individual estimates.
        truth = RigidTransform.random(rng)
        estimates = [truth.perturb(rng, 0.5, 2.0) for _ in range(30)]
        mean = mean_transform(estimates)
        mean_error = mean.rotation_distance_deg(truth)
        individual = np.mean([e.rotation_distance_deg(truth) for e in estimates])
        assert mean_error < individual

    def test_mean_translation_is_arithmetic(self):
        transforms = [
            RigidTransform(translation=np.array([0.0, 0.0, 0.0])),
            RigidTransform(translation=np.array([2.0, 4.0, 6.0])),
        ]
        assert np.allclose(mean_transform(transforms).translation, [1.0, 2.0, 3.0])

    def test_mean_handles_quaternion_sign_flips(self, rng):
        truth = RigidTransform.random(rng)
        flipped = RigidTransform(quaternion=-truth.quaternion, translation=truth.translation)
        mean = mean_transform([truth, flipped])
        assert mean.rotation_distance_deg(truth) == pytest.approx(0.0, abs=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_transform([])
