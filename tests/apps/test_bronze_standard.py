"""Tests for the assembled Bronze Standard application (Figure 9)."""

import pytest

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core import OptimizationConfig
from repro.util.rng import RandomStreams
from repro.workflow.analysis import sequential_chains, services_on_critical_path
from repro.workflow.validation import validate_workflow

CONSTANT_TIMINGS = {
    "crestLines": 10.0,
    "crestMatch": 10.0,
    "Baladin": 10.0,
    "Yasmina": 10.0,
    "PFMatchICP": 10.0,
    "PFRegister": 10.0,
}


@pytest.fixture
def app(engine, ideal_grid, streams):
    return BronzeStandardApplication(
        engine, ideal_grid, streams, timings=CONSTANT_TIMINGS, mtt_time=5.0
    )


class TestWorkflowShape:
    def test_nw_is_five(self, app):
        # Section 5.1: "For our application, n_W is 5"
        assert services_on_critical_path(app.workflow) == 5

    def test_paper_groups_form(self, app):
        assert sequential_chains(app.workflow) == [
            ["crestLines", "crestMatch"],
            ["PFMatchICP", "PFRegister"],
        ]

    def test_mtt_is_synchronization_barrier(self, app):
        assert app.workflow.processor("MultiTransfoTest").synchronization

    def test_two_outputs(self, app):
        assert [s.name for s in app.workflow.sinks()] == [
            "accuracy_rotation", "accuracy_translation"
        ]

    def test_validates_cleanly(self, app):
        issues = validate_workflow(app.workflow)
        assert [i for i in issues if i.severity == "error"] == []

    def test_four_sources(self, app):
        assert [s.name for s in app.workflow.sources()] == [
            "referenceImage", "floatingImage", "scale", "methodToTest"
        ]


class TestDataset:
    def test_paper_image_sizes(self, app):
        dataset = app.build_dataset(3)
        item = dataset.items("floatingImage")[0]
        assert item.size == 256 * 256 * 60 * 2

    def test_scale_replicated_per_pair(self, app):
        dataset = app.build_dataset(5)
        assert dataset.size("scale") == 5
        assert all(i.value == 8 for i in dataset.items("scale"))

    def test_one_method_item(self, app):
        dataset = app.build_dataset(3, method_to_test="Baladin")
        items = dataset.items("methodToTest")
        assert len(items) == 1 and items[0].value == "Baladin"

    def test_pair_count_enforced(self, app):
        with pytest.raises(ValueError):
            app.build_dataset(10, pairs=app.database.generate_pairs(2))


class TestEnactment:
    def test_six_jobs_per_pair(self, app, ideal_grid):
        app.enact(OptimizationConfig.sp_dp(), n_pairs=4)
        assert len(ideal_grid.records) == 4 * BronzeStandardApplication.jobs_per_pair()

    def test_grouping_drops_to_four_jobs_per_pair(self, app, ideal_grid):
        result = app.enact(OptimizationConfig.sp_dp_jg(), n_pairs=4)
        assert [g.name for g in result.groups] == [
            "crestLines+crestMatch", "PFMatchICP+PFRegister"
        ]
        assert len(ideal_grid.records) == 4 * 4

    def test_accuracy_outputs_produced(self, app):
        result = app.enact(OptimizationConfig.sp_dp(), n_pairs=6)
        rotation = result.output_values("accuracy_rotation")
        translation = result.output_values("accuracy_translation")
        assert len(rotation) == 1 and rotation[0] > 0
        assert len(translation) == 1 and translation[0] > 0

    def test_constant_time_makespan_matches_model(self, app):
        # ideal grid + constant 10s services: SP+DP pipeline floor is
        # the critical path (5 services minus the local MTT).
        result = app.enact(OptimizationConfig.sp_dp(), n_pairs=3)
        # crestLines(10) + crestMatch(10) + PFMatchICP(10) + PFRegister(10) + MTT(5)
        assert result.makespan == pytest.approx(45.0)

    def test_accuracy_independent_of_optimization(self, engine, streams):
        # Optimizations change *when* jobs run, never *what* they compute.
        from repro.grid.testbeds import ideal_testbed
        from repro.sim.engine import Engine

        values = []
        for config in (OptimizationConfig.nop(), OptimizationConfig.sp_dp_jg()):
            eng = Engine()
            grid = ideal_testbed(eng)
            app = BronzeStandardApplication(
                eng, grid, RandomStreams(77), timings=CONSTANT_TIMINGS, mtt_time=5.0
            )
            result = app.enact(config, n_pairs=5)
            values.append(
                (
                    result.output_values("accuracy_rotation")[0],
                    result.output_values("accuracy_translation")[0],
                )
            )
        assert values[0] == pytest.approx(values[1])

    def test_method_to_test_selects_method(self, app):
        result = app.enact(OptimizationConfig.sp_dp(), n_pairs=4, method_to_test="Baladin")
        assert result.output_values("accuracy_rotation")[0] > 0

    def test_invocation_count(self, app):
        result = app.enact(OptimizationConfig.sp_dp(), n_pairs=3)
        # 6 services x 3 pairs + 1 MTT
        assert result.invocation_count == 19
