"""Tests for the synthetic image database."""

import pytest

from repro.apps.imaging import ImageDatabase, MedicalImage
from repro.util.rng import RandomStreams
from repro.util.units import MEBIBYTE


class TestMedicalImage:
    def test_paper_geometry_size(self):
        image = MedicalImage(patient=0, time_point=0)
        # 256 x 256 x 60 x 2 bytes = 7.5 MiB ~= the paper's "7.8 MB"
        assert image.size_bytes == 256 * 256 * 60 * 2
        assert 7.0 * MEBIBYTE < image.size_bytes < 8.0 * MEBIBYTE

    def test_compressed_size_near_paper(self):
        image = MedicalImage(patient=0, time_point=0)
        # "approximately 2.3 MB when compressed"
        assert 2.0 * MEBIBYTE < image.compressed_bytes < 2.6 * MEBIBYTE

    def test_gfn_unique_per_acquisition(self):
        a = MedicalImage(patient=1, time_point=0)
        b = MedicalImage(patient=1, time_point=1)
        assert a.gfn != b.gfn
        assert "patient001" in a.gfn


class TestImageDatabase:
    def test_generates_requested_pairs(self):
        pairs = ImageDatabase(RandomStreams(1)).generate_pairs(12)
        assert len(pairs) == 12
        assert [p.pair_id for p in pairs] == list(range(12))

    def test_paper_patient_scaling(self):
        # 12/66/126 pairs from 1/7/25 patients at ~5 pairs per patient
        db = ImageDatabase(RandomStreams(1))
        for n_pairs, min_patients in ((12, 2), (66, 13), (126, 25)):
            pairs = db.generate_pairs(n_pairs, pairs_per_patient=5)
            assert ImageDatabase.patients_of(pairs) >= min_patients

    def test_pairs_within_patient(self):
        pairs = ImageDatabase(RandomStreams(1)).generate_pairs(10)
        for pair in pairs:
            assert pair.floating.patient == pair.reference.patient
            assert pair.reference.time_point == pair.floating.time_point + 1

    def test_ground_truth_deterministic(self):
        a = ImageDatabase(RandomStreams(5)).generate_pairs(3)
        b = ImageDatabase(RandomStreams(5)).generate_pairs(3)
        for pa, pb in zip(a, b):
            assert pa.true_transform.is_close(pb.true_transform, 1e-12, 1e-12)

    def test_ground_truth_varies_across_pairs(self):
        pairs = ImageDatabase(RandomStreams(5)).generate_pairs(2)
        assert not pairs[0].true_transform.is_close(pairs[1].true_transform)

    def test_zero_pairs(self):
        assert ImageDatabase(RandomStreams(1)).generate_pairs(0) == []

    def test_validation(self):
        db = ImageDatabase(RandomStreams(1))
        with pytest.raises(ValueError):
            db.generate_pairs(-1)
        with pytest.raises(ValueError):
            db.generate_pairs(5, pairs_per_patient=0)
