"""Tests for the simulated registration algorithm services."""

import pytest

from repro.apps.imaging import ImageDatabase
from repro.apps.registration import (
    DEFAULT_PROFILES,
    CrestData,
    MatchedPointSet,
    RegistrationResult,
    build_registration_services,
)
from repro.services.base import GridData
from repro.util.rng import RandomStreams


@pytest.fixture
def services(engine, ideal_grid, streams):
    return build_registration_services(engine, ideal_grid, streams)


@pytest.fixture
def pair(streams):
    return ImageDatabase(streams).generate_pairs(1)[0]


def registered_image_data(grid, pair):
    from repro.grid.storage import LogicalFile

    floating = LogicalFile(pair.floating.gfn, pair.floating.size_bytes)
    reference = LogicalFile(pair.reference.gfn, pair.reference.size_bytes)
    grid.add_input_file(floating)
    grid.add_input_file(reference)
    return GridData(pair, floating), GridData(pair, reference)


class TestServiceConstruction:
    def test_six_services(self, services):
        assert set(services) == {
            "crestLines", "crestMatch", "Baladin", "Yasmina", "PFMatchICP", "PFRegister"
        }

    def test_ports_match_figure9(self, services):
        assert services["crestLines"].input_ports == (
            "floating_image", "reference_image", "scale"
        )
        assert services["crestLines"].output_ports == ("crest_reference", "crest_floating")
        assert services["crestMatch"].output_ports == ("transform",)
        assert services["PFMatchICP"].output_ports == ("matched_points",)
        assert services["PFRegister"].input_ports == ("matched_points",)

    def test_crestlines_has_figure8_sandboxes(self, services):
        names = [s.value for s in services["crestLines"].descriptor.sandboxes]
        assert names == ["Convert8bits.pl", "copy", "cmatch"]

    def test_timings_override(self, engine, ideal_grid, streams):
        services = build_registration_services(
            engine, ideal_grid, streams, timings={"crestLines": 42.0}
        )
        assert services["crestLines"].compute_model.mean() == 42.0
        # others keep their defaults
        assert services["Baladin"].compute_model.mean() == pytest.approx(
            DEFAULT_PROFILES["Baladin"].compute_time.mean()
        )


class TestExecution:
    def test_crestlines_produces_crest_data(self, engine, ideal_grid, services, pair):
        floating, reference = registered_image_data(ideal_grid, pair)
        outputs = engine.run(
            until=services["crestLines"].invoke(
                {"floating_image": floating, "reference_image": reference, "scale": 8}
            )
        )
        crest = outputs["crest_reference"].value
        assert isinstance(crest, CrestData)
        assert crest.pair is pair
        assert crest.role == "reference"
        assert crest.n_points > 0

    def test_crestmatch_estimates_near_truth(self, engine, ideal_grid, services, pair):
        crest_ref = GridData(CrestData(pair, "reference", 2000))
        crest_flo = GridData(CrestData(pair, "floating", 2000))
        outputs = engine.run(
            until=services["crestMatch"].invoke(
                {"crest_reference": crest_ref, "crest_floating": crest_flo}
            )
        )
        result = outputs["transform"].value
        assert isinstance(result, RegistrationResult)
        assert result.method == "crestMatch"
        assert result.pair_id == pair.pair_id
        assert result.transform.rotation_distance_deg(pair.true_transform) < 3.0
        assert result.transform.translation_distance(pair.true_transform) < 10.0

    def test_intensity_methods_use_init(self, engine, ideal_grid, services, pair):
        floating, reference = registered_image_data(ideal_grid, pair)
        init = GridData(RegistrationResult("crestMatch", pair.pair_id, pair.true_transform))
        for method in ("Baladin", "Yasmina"):
            outputs = engine.run(
                until=services[method].invoke(
                    {
                        "floating_image": floating,
                        "reference_image": reference,
                        "init_transform": init,
                    }
                )
            )
            result = outputs["transform"].value
            assert result.method == method
            assert result.transform.rotation_distance_deg(pair.true_transform) < 2.0

    def test_pf_pipeline(self, engine, ideal_grid, services, pair):
        floating, reference = registered_image_data(ideal_grid, pair)
        init = GridData(RegistrationResult("crestMatch", pair.pair_id, pair.true_transform))
        match_out = engine.run(
            until=services["PFMatchICP"].invoke(
                {
                    "floating_image": floating,
                    "reference_image": reference,
                    "init_transform": init,
                }
            )
        )
        matches = match_out["matched_points"].value
        assert isinstance(matches, MatchedPointSet)
        register_out = engine.run(
            until=services["PFRegister"].invoke({"matched_points": match_out["matched_points"]})
        )
        result = register_out["transform"].value
        assert result.method == "PFRegister"
        assert result.pair_id == pair.pair_id

    def test_estimates_are_stochastic_but_seeded(self, engine, ideal_grid, pair):
        def estimate(seed):
            from repro.sim.engine import Engine
            from repro.grid.testbeds import ideal_testbed

            eng = Engine()
            grid = ideal_testbed(eng)
            services = build_registration_services(eng, grid, RandomStreams(seed))
            crest = GridData(CrestData(pair, "reference", 100))
            crest2 = GridData(CrestData(pair, "floating", 100))
            out = eng.run(
                until=services["crestMatch"].invoke(
                    {"crest_reference": crest, "crest_floating": crest2}
                )
            )
            return out["transform"].value.transform

        a = estimate(1)
        b = estimate(1)
        c = estimate(2)
        assert a.is_close(b, 1e-12, 1e-12)
        assert not a.is_close(c, 1e-9, 1e-9)

    def test_bad_image_value_rejected(self, engine, ideal_grid, services):
        from repro.services.base import ServiceError

        with pytest.raises(ServiceError, match="ImagePair"):
            engine.run(
                until=services["crestLines"].invoke(
                    {"floating_image": GridData("not an image"),
                     "reference_image": GridData("nope"), "scale": 8}
                )
            )

    def test_compact_reprs(self, pair):
        result = RegistrationResult("Baladin", 3, pair.true_transform)
        assert repr(result) == "Baladin#3"
        assert "crest(" in repr(CrestData(pair, "reference", 10))
        assert "matches(" in repr(MatchedPointSet(pair, 5))
