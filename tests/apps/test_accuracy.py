"""Tests for the bronze-standard accuracy statistics."""

import numpy as np
import pytest

from repro.apps.accuracy import bronze_standard_assessment, multi_transfo_test
from repro.apps.registration import RegistrationResult
from repro.apps.transforms import RigidTransform


@pytest.fixture
def rng():
    return np.random.default_rng(31)


def make_results(rng, n_pairs, methods_sigmas):
    """Per-method results: truth (per pair) + method-specific noise."""
    truths = [RigidTransform.random(rng) for _ in range(n_pairs)]
    by_method = {}
    for method, (rot_sigma, trans_sigma) in methods_sigmas.items():
        by_method[method] = [
            RegistrationResult(method, i, truths[i].perturb(rng, rot_sigma, trans_sigma))
            for i in range(n_pairs)
        ]
    return by_method


class TestBronzeStandardAssessment:
    def test_reports_per_method(self, rng):
        results = make_results(
            rng, 20,
            {"crestMatch": (0.3, 1.0), "Baladin": (0.2, 0.5),
             "Yasmina": (0.2, 0.5), "PFRegister": (0.3, 1.0)},
        )
        report = bronze_standard_assessment(results, "crestMatch")
        assert report.method == "crestMatch"
        assert report.n_pairs == 20
        assert report.rotation_accuracy_deg > 0
        assert report.translation_accuracy_mm > 0

    def test_noisier_method_scores_worse(self, rng):
        results = make_results(
            rng, 60,
            {"sloppy": (1.0, 4.0), "tight": (0.05, 0.2),
             "m3": (0.2, 0.5), "m4": (0.2, 0.5)},
        )
        sloppy = bronze_standard_assessment(results, "sloppy")
        tight = bronze_standard_assessment(results, "tight")
        assert sloppy.rotation_accuracy_deg > tight.rotation_accuracy_deg
        assert sloppy.translation_accuracy_mm > tight.translation_accuracy_mm

    def test_perfect_method_near_zero_bias(self, rng):
        truths = [RigidTransform.random(rng) for _ in range(10)]
        results = {
            "perfect": [RegistrationResult("perfect", i, truths[i]) for i in range(10)],
            "other1": [
                RegistrationResult("other1", i, truths[i].perturb(rng, 0.01, 0.05))
                for i in range(10)
            ],
            "other2": [
                RegistrationResult("other2", i, truths[i].perturb(rng, 0.01, 0.05))
                for i in range(10)
            ],
        }
        report = bronze_standard_assessment(results, "perfect")
        assert report.rotation_bias_deg < 0.05
        assert report.translation_bias_mm < 0.2

    def test_unknown_method_rejected(self, rng):
        results = make_results(rng, 3, {"a": (0.1, 0.1), "b": (0.1, 0.1)})
        with pytest.raises(KeyError):
            bronze_standard_assessment(results, "zzz")

    def test_single_method_rejected(self, rng):
        results = make_results(rng, 3, {"only": (0.1, 0.1)})
        with pytest.raises(ValueError, match="at least one other"):
            bronze_standard_assessment(results, "only")

    def test_no_overlapping_pairs_rejected(self, rng):
        results = {
            "a": [RegistrationResult("a", 0, RigidTransform.identity())],
            "b": [RegistrationResult("b", 99, RigidTransform.identity())],
        }
        with pytest.raises(ValueError, match="overlapping"):
            bronze_standard_assessment(results, "a")

    def test_pairs_missing_from_others_skipped(self, rng):
        results = make_results(rng, 5, {"a": (0.1, 0.1), "b": (0.1, 0.1)})
        results["a"].append(RegistrationResult("a", 999, RigidTransform.identity()))
        report = bronze_standard_assessment(results, "a")
        assert report.n_pairs == 5


class TestMultiTransfoTest:
    def test_service_program_signature(self, rng):
        results = make_results(
            rng, 12,
            {"crestMatch": (0.3, 1.2), "Baladin": (0.18, 0.6),
             "Yasmina": (0.15, 0.5), "PFRegister": (0.25, 0.9)},
        )
        outputs = multi_transfo_test(
            crest_transforms=results["crestMatch"],
            baladin_transforms=results["Baladin"],
            yasmina_transforms=results["Yasmina"],
            pf_transforms=results["PFRegister"],
            method=["crestMatch"],
        )
        assert set(outputs) == {"accuracy_rotation", "accuracy_translation"}
        assert outputs["accuracy_rotation"] > 0
        assert outputs["accuracy_translation"] > 0

    def test_empty_method_rejected(self, rng):
        results = make_results(rng, 2, {"crestMatch": (0.1, 0.1), "Baladin": (0.1, 0.1),
                                        "Yasmina": (0.1, 0.1), "PFRegister": (0.1, 0.1)})
        with pytest.raises(ValueError, match="MethodToTest"):
            multi_transfo_test(
                results["crestMatch"], results["Baladin"],
                results["Yasmina"], results["PFRegister"], method=[],
            )
