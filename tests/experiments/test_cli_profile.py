"""CLI tests for the profile family, bronze --profile, and attribution."""

import json

import pytest

from repro.experiments.__main__ import main
from repro.observability.profiling import (
    Profile,
    parse_collapsed,
    parse_speedscope,
)

RUN = ["--pairs", "2", "--config", "SP+DP", "--seed", "42"]


def record_profile(tmp_path, name="profile.json", extra=()):
    path = tmp_path / name
    assert main(["profile", "record", *RUN, "--out", str(path), *extra]) == 0
    return path


class TestProfileRecord:
    def test_writes_a_loadable_profile(self, capsys, tmp_path):
        path = record_profile(tmp_path)
        out = capsys.readouterr().out
        assert str(path) in out
        profile = Profile.load(path)
        assert profile.clock == "deterministic"
        assert "engine" in profile.by_component()

    def test_same_seed_is_byte_identical(self, tmp_path):
        first = record_profile(tmp_path, "a.json")
        second = record_profile(tmp_path, "b.json")
        assert first.read_bytes() == second.read_bytes()

    def test_wall_clock_opt_in(self, tmp_path):
        path = record_profile(tmp_path, extra=("--clock", "wall"))
        assert Profile.load(path).clock == "wall"


class TestProfileReport:
    def test_renders_component_table(self, capsys, tmp_path):
        path = record_profile(tmp_path)
        capsys.readouterr()
        assert main(["profile", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "component" in out
        assert "engine" in out and "enactor" in out

    def test_missing_profile_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["profile", "report", str(tmp_path / "absent.json")])


class TestProfileFlame:
    def test_collapsed_output_parses_strictly(self, capsys, tmp_path):
        path = record_profile(tmp_path)
        capsys.readouterr()
        assert main(["profile", "flame", str(path)]) == 0
        weights = parse_collapsed(capsys.readouterr().out)
        assert any(stack[0].startswith("engine.") for stack in weights)

    def test_speedscope_output_parses_strictly(self, capsys, tmp_path):
        path = record_profile(tmp_path)
        flame = tmp_path / "flame.speedscope.json"
        assert main([
            "profile", "flame", str(path),
            "--format", "speedscope", "--out", str(flame),
        ]) == 0
        assert parse_speedscope(flame.read_text())


class TestProfileDiff:
    def test_names_the_regressed_component(self, capsys, tmp_path):
        base = record_profile(tmp_path, "base.json")
        slow = tmp_path / "slow.json"
        document = json.loads(base.read_text())
        # triple the enactor's self time: the diff must name it
        for child in document["root"]["children"]:
            if child["name"].startswith("enactor."):
                child["self"] *= 3
                child["cum"] *= 3
        slow.write_text(json.dumps(document), encoding="utf-8")
        capsys.readouterr()
        assert main(["profile", "diff", str(base), str(slow)]) == 0
        out = capsys.readouterr().out
        assert "top regressed component" in out
        assert "enactor" in out


class TestBronzeProfileFlag:
    def test_bronze_profile_writes_file(self, capsys, tmp_path):
        path = tmp_path / "bronze.json"
        assert main([
            "bronze", "--pairs", "2", "--config", "SP+DP",
            "--profile", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out  # standard report unchanged
        assert str(path) in out
        assert Profile.load(path).total_time > 0


class TestCompareRunsAttribution:
    def record_row(self, tmp_path, name):
        store = tmp_path / "store"
        out = tmp_path / name
        assert main([
            "record-run", *RUN, "--store", str(store), "--out", str(out),
        ]) == 0
        return out

    def test_rows_carry_profile_counters(self, capsys, tmp_path):
        row = self.record_row(tmp_path, "row.json")
        counters = json.loads(row.read_text())["counters"]
        assert counters["perf.profile.engine"] > 0
        assert counters["perf.profile.engine.calls"] > 0

    def test_identical_rows_pass_and_print_delta_table(self, capsys, tmp_path):
        row = self.record_row(tmp_path, "row.json")
        capsys.readouterr()
        assert main([
            "compare-runs", str(row), str(row), "--budget-throughput", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "candidate" in out and "budget" in out
        assert "makespan" in out

    def test_tampered_candidate_is_attributed(self, capsys, tmp_path):
        # perf.events_per_sec is recorded by the long-running service,
        # not the one-shot CLI row: inject it on both sides, then halve
        # it and triple the enactor's profile share on the candidate.
        row = self.record_row(tmp_path, "row.json")
        document = json.loads(row.read_text())
        base = tmp_path / "base.json"
        document["counters"]["perf.events_per_sec"] = 1000.0
        base.write_text(json.dumps(document), encoding="utf-8")
        slow = tmp_path / "slow.json"
        document["counters"]["perf.events_per_sec"] = 500.0
        document["counters"]["perf.profile.enactor"] *= 3
        slow.write_text(json.dumps(document), encoding="utf-8")
        capsys.readouterr()
        assert main([
            "compare-runs", str(base), str(slow), "--budget-throughput", "0.2",
        ]) == 1
        out = capsys.readouterr().out
        assert "top regressed components" in out
        assert "enactor" in out
