"""Tests for the command-line entry point."""

import pytest

from repro.experiments.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.sizes == [12, 66, 126]
        assert args.seed == 42

    def test_bronze_options(self):
        args = build_parser().parse_args(
            ["bronze", "--pairs", "4", "--config", "DP", "--seed", "7"]
        )
        assert args.pairs == 4 and args.config == "DP" and args.seed == 7


class TestCommands:
    def test_diagrams(self, capsys):
        assert main(["diagrams"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Figure 5" in out and "Figure 6" in out
        assert "D0 D1 D2" in out

    def test_bronze_small(self, capsys):
        assert main(["bronze", "--pairs", "3", "--config", "SP+DP"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "accuracy" in out
        assert "jobs: 18" in out

    def test_bronze_with_grouping_reports_groups(self, capsys):
        assert main(["bronze", "--pairs", "2", "--config", "SP+DP+JG"]) == 0
        out = capsys.readouterr().out
        assert "crestLines+crestMatch" in out

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit, match="unknown configuration"):
            main(["bronze", "--pairs", "2", "--config", "TURBO"])

    def test_table1_tiny_sweep(self, capsys):
        assert main(["table1", "--sizes", "2", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "ordering preserved" in out


class TestTraceExport:
    def test_bronze_writes_trace_files(self, capsys, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        chrome = tmp_path / "run.trace.json"
        assert main([
            "bronze", "--pairs", "2", "--config", "SP+DP",
            "--trace", str(jsonl), "--chrome-trace", str(chrome),
        ]) == 0
        out = capsys.readouterr().out
        assert "jobs: 12" in out  # standard report is unchanged
        assert str(jsonl) in out
        assert str(chrome) in out

        from repro.observability.spans import spans_from_jsonl

        spans = spans_from_jsonl(jsonl.read_text())
        assert any(s.name == "run" for s in spans)
        assert any(s.name == "grid.job" for s in spans)

        import json

        document = json.loads(chrome.read_text())
        assert document["traceEvents"]

    def test_report_trace_renders_breakdown_and_drift(self, capsys, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        assert main([
            "bronze", "--pairs", "2", "--config", "SP+DP",
            "--trace", str(jsonl),
        ]) == 0
        capsys.readouterr()
        assert main(["report-trace", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "job.queue" in out  # phase breakdown table
        assert "SP+DP" in out and "<- this run" in out  # policy auto-derived
        assert "drift" in out

    def test_report_trace_policy_override(self, capsys, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        main(["bronze", "--pairs", "2", "--config", "NOP", "--trace", str(jsonl)])
        capsys.readouterr()
        assert main(["report-trace", str(jsonl), "--policy", "NOP"]) == 0
        assert "NOP" in capsys.readouterr().out

    def test_report_trace_missing_file_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report-trace", str(tmp_path / "nope.jsonl")])
