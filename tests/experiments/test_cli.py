"""Tests for the command-line entry point."""

import pytest

from repro.experiments.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.sizes == [12, 66, 126]
        assert args.seed == 42

    def test_bronze_options(self):
        args = build_parser().parse_args(
            ["bronze", "--pairs", "4", "--config", "DP", "--seed", "7"]
        )
        assert args.pairs == 4 and args.config == "DP" and args.seed == 7


class TestCommands:
    def test_diagrams(self, capsys):
        assert main(["diagrams"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Figure 5" in out and "Figure 6" in out
        assert "D0 D1 D2" in out

    def test_bronze_small(self, capsys):
        assert main(["bronze", "--pairs", "3", "--config", "SP+DP"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "accuracy" in out
        assert "jobs: 18" in out

    def test_bronze_with_grouping_reports_groups(self, capsys):
        assert main(["bronze", "--pairs", "2", "--config", "SP+DP+JG"]) == 0
        out = capsys.readouterr().out
        assert "crestLines+crestMatch" in out

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit, match="unknown configuration"):
            main(["bronze", "--pairs", "2", "--config", "TURBO"])

    def test_table1_tiny_sweep(self, capsys):
        assert main(["table1", "--sizes", "2", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "ordering preserved" in out
