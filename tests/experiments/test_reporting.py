"""Tests for report formatting and shape checks."""

import pytest

from repro.experiments.harness import ExperimentRow, SweepResult
from repro.experiments.reporting import (
    SECTION52_PAIRS,
    check_ordering,
    format_ratios,
    format_table1,
    format_table2,
    paper_comparison,
)


def synthetic_sweep():
    """A sweep with hand-made, paper-shaped numbers."""
    labels = ("NOP", "JG", "SP", "DP", "SP+DP", "SP+DP+JG")
    sizes = (12, 66, 126)
    base = {
        "NOP": (20000, 910), "JG": (11000, 890), "SP": (6400, 900),
        "DP": (15000, 140), "SP+DP": (6600, 90), "SP+DP+JG": (4300, 80),
    }
    sweep = SweepResult(sizes=sizes, config_labels=labels)
    for label in labels:
        intercept, slope = base[label]
        for size in sizes:
            sweep.rows.append(
                ExperimentRow(
                    config_label=label, n_pairs=size,
                    makespan=intercept + slope * size,
                    jobs_submitted=size * 6, jobs_completed=size * 6,
                    invocations=size * 6 + 1, mean_overhead=600.0,
                    accuracy_rotation=0.2, accuracy_translation=0.4,
                )
            )
    return sweep


@pytest.fixture(scope="module")
def sweep():
    return synthetic_sweep()


class TestFormatting:
    def test_table1_contains_all_cells(self, sweep):
        text = format_table1(sweep)
        assert "NOP" in text and "SP+DP+JG" in text
        assert "12 pairs" in text and "126 pairs" in text

    def test_table1_hours_mode(self, sweep):
        assert "h)" in format_table1(sweep, with_hours=True)

    def test_table2_lists_fits(self, sweep):
        text = format_table2(sweep.table2())
        assert "y-intercept" in text and "slope" in text

    def test_ratios_table(self, sweep):
        text = format_ratios(sweep.table2(), SECTION52_PAIRS)
        assert "DP vs NOP" in text
        assert "SP+DP+JG vs SP+DP" in text

    def test_paper_comparison_includes_both(self, sweep):
        text = paper_comparison(sweep)
        assert "paper (s)" in text and "measured (s)" in text
        assert "32855" in text  # the paper's NOP@12 cell


class TestShapeChecks:
    def test_ordering_detected(self, sweep):
        verdict = check_ordering(sweep)
        assert verdict == {12: True, 66: True, 126: True}

    def test_ordering_violation_detected(self):
        sweep = synthetic_sweep()
        # corrupt one cell: make SP slower than NOP at 12
        for row in sweep.rows:
            if row.config_label == "NOP" and row.n_pairs == 12:
                sweep.rows.remove(row)
                sweep.rows.append(
                    ExperimentRow("NOP", 12, 1.0, 0, 0, 0, 0.0, 0.0, 0.0)
                )
                break
        verdict = check_ordering(sweep)
        assert verdict[12] is False
        assert verdict[66] is True

    def test_synthetic_fits_recover_parameters(self, sweep):
        fits = sweep.table2()
        assert fits["DP"].y_intercept == pytest.approx(15000, rel=1e-6)
        assert fits["DP"].slope == pytest.approx(140, rel=1e-6)
