"""Tests for post-hoc job-record analysis."""

import pytest

from repro.experiments.analysis import (
    job_statistics,
    overhead_breakdown,
    per_service_statistics,
)
from repro.grid.job import JobDescription, JobRecord, JobState


def completed_record(
    name="j", service=None, submit=0.0, match=10.0, queue=20.0, run=100.0,
    done=200.0, execution=80.0, stage_in=5.0, stage_out=5.0, attempts=1,
):
    tags = {"service": service} if service else {}
    record = JobRecord(JobDescription(name=name, tags=tags))
    record.enter(JobState.SUBMITTED, submit)
    record.enter(JobState.MATCHED, match)
    record.enter(JobState.QUEUED, queue)
    record.enter(JobState.RUNNING, run)
    record.enter(JobState.DONE, done)
    record.execution_time = execution
    record.stage_in_time = stage_in
    record.stage_out_time = stage_out
    record.attempts = attempts
    return record


class TestJobStatistics:
    def test_single_record(self):
        stats = job_statistics([completed_record()])
        assert stats.jobs == 1
        assert stats.total_grid_time == 200.0
        assert stats.total_execution_time == 80.0
        assert stats.total_transfer_time == 10.0
        assert stats.total_overhead == pytest.approx(110.0)
        assert stats.overhead_fraction == pytest.approx(110.0 / 200.0)

    def test_pending_jobs_ignored(self):
        pending = JobRecord(JobDescription(name="pending"))
        pending.enter(JobState.SUBMITTED, 0.0)
        stats = job_statistics([completed_record(), pending])
        assert stats.jobs == 1

    def test_empty(self):
        stats = job_statistics([])
        assert stats.jobs == 0
        assert stats.overhead_fraction == 0.0
        assert stats.retry_fraction == 0.0

    def test_retry_fraction(self):
        records = [completed_record(attempts=1), completed_record(attempts=3)]
        stats = job_statistics(records)
        assert stats.retry_fraction == pytest.approx(1.0)  # 2 extra over 2 jobs

    def test_overhead_spread(self):
        fast = completed_record(done=150.0, execution=80.0)  # overhead 60
        slow = completed_record(done=250.0, execution=80.0)  # overhead 160
        stats = job_statistics([fast, slow])
        assert stats.mean_overhead == pytest.approx(110.0)
        assert stats.max_overhead == pytest.approx(160.0)
        assert stats.std_overhead > 0


class TestOverheadBreakdown:
    def test_phase_means(self):
        breakdown = overhead_breakdown([completed_record()])
        assert breakdown.submission_to_matched == 10.0
        assert breakdown.matched_to_queued == 10.0
        assert breakdown.queued_to_running == 80.0
        assert breakdown.running_to_done == 100.0
        assert breakdown.total == 200.0

    def test_uses_final_attempt(self):
        record = completed_record()
        # a failed first attempt left earlier timestamps behind
        record.timestamps[JobState.SUBMITTED].insert(0, -500.0)
        breakdown = overhead_breakdown([record])
        assert breakdown.submission_to_matched == 10.0

    def test_none_for_no_completed_jobs(self):
        assert overhead_breakdown([]) is None


class TestPerService:
    def test_grouped_by_tag(self):
        records = [
            completed_record(service="crestLines"),
            completed_record(service="crestLines"),
            completed_record(service="Baladin"),
            completed_record(),  # untagged
        ]
        grouped = per_service_statistics(records)
        assert set(grouped) == {"crestLines", "Baladin", "<untagged>"}
        assert grouped["crestLines"].jobs == 2
        assert grouped["Baladin"].jobs == 1

    def test_integration_with_real_run(self, engine, ideal_grid, streams):
        from repro.apps.bronze_standard import BronzeStandardApplication
        from repro.core import OptimizationConfig

        app = BronzeStandardApplication(engine, ideal_grid, streams)
        app.enact(OptimizationConfig.sp_dp(), n_pairs=3)
        grouped = per_service_statistics(ideal_grid.records)
        assert set(grouped) == {
            "crestLines", "crestMatch", "Baladin", "Yasmina", "PFMatchICP", "PFRegister"
        }
        assert all(stats.jobs == 3 for stats in grouped.values())
        # ideal grid: zero overhead everywhere
        assert all(stats.mean_overhead == pytest.approx(0.0, abs=1e-9)
                   for stats in grouped.values())
