"""Tests for ``report-dataflow`` and the ``compare-runs`` byte gate."""

import json

import pytest

from repro.experiments.__main__ import main
from repro.observability.dataflow import parse_dot


class TestReportDataflow:
    def test_report_renders_tables(self, capsys):
        assert main(["report-dataflow", "--pairs", "2", "--config", "SP+DP+JG"]) == 0
        out = capsys.readouterr().out
        assert "=== data flow: SP+DP+JG" in out
        assert "top links by bytes" in out
        assert "top services by bytes" in out
        assert "bytes by purpose:" in out
        assert "enactor-moved" in out

    def test_dot_export_is_strictly_parseable(self, capsys, tmp_path):
        dot_path = tmp_path / "dataflow.dot"
        assert main([
            "report-dataflow", "--pairs", "2", "--config", "SP+DP",
            "--dot", str(dot_path),
        ]) == 0
        parsed = parse_dot(dot_path.read_text(encoding="utf-8"))
        assert parsed["nodes"]
        assert parsed["edges"]

    def test_dot_export_deterministic(self, capsys, tmp_path):
        paths = [tmp_path / "first.dot", tmp_path / "second.dot"]
        for path in paths:
            assert main([
                "report-dataflow", "--pairs", "2", "--config", "SP+DP+JG",
                "--seed", "11", "--dot", str(path),
            ]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestBudgetBytes:
    @pytest.fixture()
    def recorded_run(self, capsys, tmp_path):
        store = tmp_path / "runstore"
        baseline = tmp_path / "baseline.json"
        assert main([
            "record-run", "--pairs", "2", "--config", "SP+DP+JG",
            "--store", str(store), "--out", str(baseline),
        ]) == 0
        capsys.readouterr()
        return store, baseline

    def test_byte_counters_land_in_the_row(self, recorded_run):
        _store, baseline = recorded_run
        counters = json.loads(baseline.read_text())["counters"]
        for key in (
            "bytes.total",
            "bytes.peer_moved",
            "bytes.enactor_moved",
            "bytes.intermediate_saved_by_grouping",
        ):
            assert key in counters
        assert counters["bytes.enactor_moved"] > 0
        assert counters["bytes.intermediate_saved_by_grouping"] > 0

    def test_identical_runs_pass_a_zero_byte_budget(self, capsys, recorded_run):
        store, baseline = recorded_run
        assert main([
            "compare-runs", "--store", str(store),
            str(baseline), "latest", "--budget-bytes", "0.0",
        ]) == 0

    def test_tampered_byte_total_trips_the_gate(self, capsys, recorded_run):
        store, baseline = recorded_run
        payload = json.loads(baseline.read_text())
        payload["counters"]["bytes.total"] *= 1.5
        tampered = baseline.parent / "tampered.json"
        tampered.write_text(json.dumps(payload))
        assert main([
            "compare-runs", "--store", str(store),
            str(baseline), str(tampered), "--budget-bytes", "0.0",
        ]) == 1
        out = capsys.readouterr().out
        assert "counter.bytes.total" in out

    def test_enactor_bytes_regression_trips_the_gate(self, capsys, recorded_run):
        store, baseline = recorded_run
        payload = json.loads(baseline.read_text())
        payload["counters"]["bytes.enactor_moved"] *= 2.0
        tampered = baseline.parent / "tampered.json"
        tampered.write_text(json.dumps(payload))
        assert main([
            "compare-runs", "--store", str(store),
            str(baseline), str(tampered), "--budget-bytes", "0.1",
        ]) == 1
        out = capsys.readouterr().out
        assert "counter.bytes.enactor_moved" in out

    def test_gate_off_by_default(self, capsys, recorded_run):
        store, baseline = recorded_run
        payload = json.loads(baseline.read_text())
        payload["counters"]["bytes.total"] *= 1.5
        tampered = baseline.parent / "tampered.json"
        tampered.write_text(json.dumps(payload))
        assert main([
            "compare-runs", "--store", str(store),
            str(baseline), str(tampered),
        ]) == 0
