"""Tests for the experiment harness (scaled-down sweeps)."""

import pytest

from repro.core import OptimizationConfig
from repro.experiments.calibration import PAPER_SIZES, PAPER_TABLE1, PAPER_TABLE2
from repro.experiments.harness import run_configuration, run_sweep
from repro.grid.testbeds import ideal_testbed


def ideal_factory(engine, streams):
    return ideal_testbed(engine, streams)


@pytest.fixture(scope="module")
def small_sweep():
    """A fast sweep: two configs, two sizes, real EGEE-like grid."""
    return run_sweep(
        configs=[OptimizationConfig.nop(), OptimizationConfig.sp_dp()],
        sizes=(4, 8),
        seed=7,
    )


class TestRunConfiguration:
    def test_row_contents(self):
        row = run_configuration(OptimizationConfig.sp_dp(), 3, seed=1,
                                grid_factory=ideal_factory)
        assert row.config_label == "SP+DP"
        assert row.n_pairs == 3
        assert row.jobs_submitted == 18
        assert row.jobs_completed == 18
        assert row.makespan > 0
        assert row.mean_overhead == pytest.approx(0.0, abs=1e-9)  # ideal grid
        assert row.accuracy_rotation > 0
        assert row.hours == pytest.approx(row.makespan / 3600.0)

    def test_same_seed_reproducible(self):
        a = run_configuration(OptimizationConfig.dp(), 3, seed=5, grid_factory=ideal_factory)
        b = run_configuration(OptimizationConfig.dp(), 3, seed=5, grid_factory=ideal_factory)
        assert a.makespan == b.makespan
        assert a.accuracy_rotation == b.accuracy_rotation

    def test_different_seed_differs(self):
        a = run_configuration(OptimizationConfig.dp(), 4, seed=5)
        b = run_configuration(OptimizationConfig.dp(), 4, seed=6)
        assert a.makespan != b.makespan


class TestSweep:
    def test_cell_lookup(self, small_sweep):
        row = small_sweep.cell("NOP", 4)
        assert row.config_label == "NOP" and row.n_pairs == 4
        with pytest.raises(KeyError):
            small_sweep.cell("NOP", 999)

    def test_table1_layout(self, small_sweep):
        table = small_sweep.table1()
        assert set(table) == {"NOP", "SP+DP"}
        assert set(table["NOP"]) == {4, 8}

    def test_table2_fits(self, small_sweep):
        fits = small_sweep.table2()
        assert set(fits) == {"NOP", "SP+DP"}
        assert fits["NOP"].slope > fits["SP+DP"].slope

    def test_optimized_faster_than_nop(self, small_sweep):
        for size in (4, 8):
            assert small_sweep.cell("SP+DP", size).makespan < small_sweep.cell("NOP", size).makespan

    def test_times_grow_with_size(self, small_sweep):
        # Only NOP is guaranteed monotone at tiny sizes: its makespan
        # accumulates every job serially.  Parallel configurations are
        # dominated by a max over stochastic overheads, which can
        # shrink between 4 and 8 pairs on a lucky draw.
        times = small_sweep.times("NOP")
        assert times[0] < times[1]


class TestPaperData:
    def test_table1_complete(self):
        assert set(PAPER_TABLE1) == {"NOP", "JG", "SP", "DP", "SP+DP", "SP+DP+JG"}
        for row in PAPER_TABLE1.values():
            assert set(row) == set(PAPER_SIZES)

    def test_table2_complete(self):
        assert set(PAPER_TABLE2) == set(PAPER_TABLE1)

    def test_paper_ordering_at_every_size(self):
        order = ["NOP", "JG", "SP", "DP", "SP+DP", "SP+DP+JG"]
        for size in PAPER_SIZES:
            times = [PAPER_TABLE1[label][size] for label in order]
            assert all(a > b for a, b in zip(times, times[1:]))
