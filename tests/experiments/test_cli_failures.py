"""CLI: best-effort flags, crash/resume exit codes, the dead-letter report."""

import pytest

from repro.experiments.__main__ import build_parser, main


class TestParser:
    def test_bronze_failure_flags(self):
        args = build_parser().parse_args(
            [
                "bronze", "--pairs", "2", "--best-effort", "--strict",
                "--journal", "run.wal", "--resume", "--crash-after", "5",
            ]
        )
        assert args.best_effort and args.strict and args.resume
        assert args.journal == "run.wal"
        assert args.crash_after == 5

    def test_report_failures_defaults(self):
        args = build_parser().parse_args(["report-failures"])
        assert args.testbed == "faulty"
        assert args.trace is None
        assert not args.strict

    def test_resume_requires_journal(self):
        with pytest.raises(SystemExit, match="--resume requires --journal"):
            main(["bronze", "--pairs", "2", "--resume"])


class TestBestEffortRuns:
    def test_clean_run_reports_no_failures(self, capsys):
        assert main(["bronze", "--pairs", "2", "--best-effort"]) == 0
        out = capsys.readouterr().out
        assert "contained failures: none" in out

    def test_strict_mode_exits_3_on_losses(self, capsys):
        # a harsh blackhole with a tight attempt cap guarantees losses
        code = main(
            [
                "bronze", "--pairs", "3", "--config", "SP+DP", "--testbed",
                "faulty", "--max-attempts", "2", "--best-effort", "--strict",
                "--seed", "20060619",
            ]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "dead letters" in out or "failed invocations" in out

    def test_failure_table_is_printed(self, capsys):
        code = main(
            [
                "bronze", "--pairs", "3", "--config", "SP+DP", "--testbed",
                "faulty", "--max-attempts", "2", "--best-effort",
                "--seed", "20060619",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0  # without --strict, losses are reported, not fatal
        assert "=== contained failures ===" in out
        assert "site01-ce" in out  # the blackhole shows up in the CE ranking


class TestCrashResume:
    def test_crash_exits_4_then_resume_succeeds(self, tmp_path, capsys):
        wal = str(tmp_path / "run.wal")
        base = ["bronze", "--pairs", "2", "--config", "SP+DP", "--seed", "7",
                "--journal", wal]

        code = main(base + ["--crash-after", "5"])
        out = capsys.readouterr().out
        assert code == 4
        assert "simulated crash" in out
        assert "resume with --resume" in out

        code = main(base + ["--resume"])
        out = capsys.readouterr().out
        assert code == 0
        assert "replayed from journal: 5 invocations" in out

    def test_journal_without_crash_is_harmless(self, tmp_path, capsys):
        wal = str(tmp_path / "run.wal")
        assert main(["bronze", "--pairs", "2", "--journal", wal]) == 0
        capsys.readouterr()


class TestReportFailures:
    def test_live_report_on_faulty_testbed(self, capsys):
        code = main(
            [
                "report-failures", "--pairs", "3", "--config", "SP+DP",
                "--max-attempts", "2", "--seed", "20060619",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "failures by service" in out
        assert "failures by computing element" in out

    def test_strict_report_exits_3(self, capsys):
        code = main(
            [
                "report-failures", "--pairs", "3", "--config", "SP+DP",
                "--max-attempts", "2", "--seed", "20060619", "--strict",
            ]
        )
        capsys.readouterr()
        assert code == 3

    def test_report_from_exported_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        main(
            [
                "bronze", "--pairs", "3", "--config", "SP+DP", "--testbed",
                "faulty", "--max-attempts", "2", "--best-effort",
                "--seed", "20060619", "--trace", trace,
            ]
        )
        capsys.readouterr()
        code = main(["report-failures", "--trace", trace])
        out = capsys.readouterr().out
        assert code == 0
        assert "failures by service" in out
