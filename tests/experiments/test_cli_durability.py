"""CLI: the chaotic testbed and the report-durability subcommand."""

from repro.experiments.__main__ import build_parser, main
from repro.observability.durability import parse_durability_report


class TestParser:
    def test_bronze_accepts_chaotic_testbed(self):
        args = build_parser().parse_args(
            ["bronze", "--testbed", "chaotic", "--best-effort", "--no-repair"]
        )
        assert args.testbed == "chaotic"
        assert args.no_repair

    def test_report_durability_defaults(self):
        args = build_parser().parse_args(["report-durability"])
        assert args.testbed == "chaotic"
        assert not args.no_repair
        assert not args.strict


class TestChaoticBronze:
    def test_best_effort_chaotic_run_exits_zero(self, capsys):
        code = main(
            [
                "bronze", "--pairs", "3", "--config", "SP+DP",
                "--testbed", "chaotic", "--best-effort", "--seed", "42",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "makespan" in out


class TestReportDurability:
    def test_report_prints_and_parses_strictly(self, capsys):
        code = main(["report-durability", "--pairs", "3", "--seed", "42"])
        out = capsys.readouterr().out
        assert code == 0
        start = out.index("Durability report")
        block = out[start:].split("repair traffic")[0]
        report = parse_durability_report(block)
        assert report.expected_items == 3
        assert report.repair_bytes > 0

    def test_no_repair_reports_zero_repair_bytes(self, capsys):
        code = main(
            ["report-durability", "--pairs", "3", "--seed", "42", "--no-repair"]
        )
        out = capsys.readouterr().out
        assert code == 0
        start = out.index("Durability report")
        report = parse_durability_report(out[start:].split("alerts:")[0])
        assert report.repair_bytes == 0
        assert report.repair_transfers == 0

    def test_strict_exits_3_on_loss(self, capsys):
        # seed 42 at 6 pairs is known to lose items even with repair
        code = main(
            ["report-durability", "--pairs", "6", "--seed", "42", "--strict"]
        )
        assert code == 3
