"""Tests for the live-monitoring CLI: --monitor/--alerts/--feedback,
report-health, and the alert budget gate in compare-runs."""

import json

import pytest

from repro.experiments.__main__ import main
from repro.observability.alerts import alerts_from_jsonl


FAULTY = ["--testbed", "faulty", "--pairs", "4", "--config", "SP+DP", "--seed", "42"]


class TestBronzeMonitoring:
    def test_monitor_prints_progress_and_alert_summary(self, capsys):
        assert main(["bronze", *FAULTY, "--monitor"]) == 0
        out = capsys.readouterr().out
        assert "progress " in out and "eta" in out
        assert "alerts:" in out
        assert "flagged CEs: site01-ce" in out

    def test_alerts_written_as_readable_jsonl(self, capsys, tmp_path):
        path = tmp_path / "alerts.jsonl"
        assert main(["bronze", *FAULTY, "--alerts", str(path)]) == 0
        out = capsys.readouterr().out
        alerts = alerts_from_jsonl(path.read_text())
        assert alerts, "the faulty testbed must raise alerts"
        assert "fault-burst" in {a.kind for a in alerts}
        assert f"alerts written: {path}" in out

    def test_feedback_reports_reactions(self, capsys):
        assert main(["bronze", *FAULTY, "--feedback"]) == 0
        out = capsys.readouterr().out
        assert "broker demotions:" in out

    def test_healthy_run_raises_no_alerts(self, capsys):
        assert main([
            "bronze", "--pairs", "2", "--config", "SP+DP", "--monitor",
        ]) == 0
        out = capsys.readouterr().out
        assert "flagged CEs:" not in out


class TestReportHealth:
    def test_live_run_flags_injected_pathologies(self, capsys):
        # pairs=8 gives the straggler site enough completions to cross
        # the detection thresholds (see the ablation benchmark)
        assert main([
            "report-health", "--testbed", "faulty", "--pairs", "8",
            "--config", "SP+DP", "--seed", "42",
        ]) == 0
        out = capsys.readouterr().out
        assert "site01-ce" in out and "BLACKHOLE" in out
        assert "site02-ce" in out and "STRAGGLER" in out
        assert "fault-burst" in out

    def test_trace_replay_matches_live(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(["bronze", *FAULTY, "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report-health", *FAULTY]) == 0
        live = capsys.readouterr().out
        assert main([
            "report-health", "--trace", str(trace),
            "--pairs", "4", "--config", "SP+DP",
        ]) == 0
        replayed = capsys.readouterr().out
        # offline replay of the trace reconstructs the same tables
        assert replayed == live


class TestAlertBudget:
    def _record(self, tmp_path, out_name):
        path = tmp_path / out_name
        assert main([
            "record-run", "--store", str(tmp_path / "store"), "--pairs", "2",
            "--config", "SP+DP", "--out", str(path),
        ]) == 0
        return path

    def test_new_alerts_fail_the_gate(self, capsys, tmp_path):
        baseline = self._record(tmp_path, "baseline.json")
        candidate = json.loads(baseline.read_text())
        candidate["counters"]["monitor.alerts.total"] = 2.0
        candidate["counters"]["monitor.alerts.blackhole"] = 2.0
        tampered = tmp_path / "alerting.json"
        tampered.write_text(json.dumps(candidate))
        capsys.readouterr()
        assert main([
            "compare-runs", str(baseline), str(tampered),
            "--store", str(tmp_path / "store"),
        ]) == 1
        out = capsys.readouterr().out
        assert "monitor.alerts.total" in out
        assert "regression(s) over budget" in out

    def test_budget_allows_expected_alerts(self, capsys, tmp_path):
        baseline = self._record(tmp_path, "baseline.json")
        candidate = json.loads(baseline.read_text())
        candidate["counters"]["monitor.alerts.total"] = 2.0
        tampered = tmp_path / "alerting.json"
        tampered.write_text(json.dumps(candidate))
        capsys.readouterr()
        assert main([
            "compare-runs", str(baseline), str(tampered),
            "--store", str(tmp_path / "store"), "--budget-alerts", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out
