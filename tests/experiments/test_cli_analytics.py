"""Tests for the analytics subcommands: critical path, Gantt, run store."""

import json

import pytest

from repro.experiments.__main__ import main


@pytest.mark.parametrize("config", ["NOP", "DP", "SP", "SP+DP"])
def test_report_critical_path_every_policy(capsys, config):
    assert main([
        "report-critical-path", "--pairs", "2", "--config", config,
    ]) == 0
    out = capsys.readouterr().out
    assert "gating steps" in out
    assert "phase totals:" in out
    assert "= run makespan" in out
    assert "static prediction:" in out
    # the tiling identity is printed as "chain total: Xs = run makespan Xs"
    total_line = next(
        line for line in out.splitlines() if line.startswith("chain total:")
    )
    chain, makespan = total_line.split("=")
    assert chain.split(":")[1].strip() == makespan.replace(
        "run makespan", ""
    ).strip()


def test_report_critical_path_from_trace_file(capsys, tmp_path):
    trace = tmp_path / "run.jsonl"
    assert main([
        "bronze", "--pairs", "2", "--config", "SP+DP", "--trace", str(trace),
    ]) == 0
    capsys.readouterr()
    assert main(["report-critical-path", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "gating steps" in out
    assert "= run makespan" in out


def test_gantt_renders_every_ce(capsys):
    assert main(["gantt", "--pairs", "2", "--config", "SP+DP"]) == 0
    out = capsys.readouterr().out
    assert "window:" in out
    assert "running jobs per CE" in out
    assert "CE utilization" in out
    # every CE in the utilization table has a lane in the chart
    chart, _, table = out.partition("=== CE utilization ===")
    for line in table.splitlines():
        cells = line.split("|")
        if len(cells) > 1 and cells[0].strip().endswith("-ce"):
            assert cells[0].strip() in chart


def test_record_and_compare_runs_ok_path(capsys, tmp_path):
    store = str(tmp_path / "store")
    for _ in range(2):
        assert main([
            "record-run", "--store", store, "--pairs", "2",
            "--config", "SP+DP",
        ]) == 0
    out = capsys.readouterr().out
    assert "recorded run-0001" in out and "recorded run-0002" in out
    assert main([
        "compare-runs", "run-0001", "run-0002", "--store", store,
    ]) == 0
    out = capsys.readouterr().out
    assert "verdict: OK" in out


def test_compare_runs_flags_injected_regression(capsys, tmp_path):
    store = tmp_path / "store"
    assert main([
        "record-run", "--store", str(store), "--pairs", "2",
        "--config", "SP+DP", "--out", str(tmp_path / "baseline.json"),
    ]) == 0
    capsys.readouterr()
    # inject a 1.5x overhead increase into a copy of the summary
    tampered = json.loads((tmp_path / "baseline.json").read_text())
    tampered["makespan"] *= 1.5
    tampered["phase_totals"] = {
        key: value * 1.5 for key, value in tampered["phase_totals"].items()
    }
    (store / "run-0002.json").write_text(json.dumps(tampered))
    assert main([
        "compare-runs", "run-0001", "run-0002", "--store", str(store),
    ]) == 1
    out = capsys.readouterr().out
    assert "REGRESSIONS:" in out
    assert "makespan" in out


def test_compare_runs_unknown_ref_exits(tmp_path):
    with pytest.raises(SystemExit):
        main([
            "compare-runs", "run-0001", "run-0002",
            "--store", str(tmp_path / "empty"),
        ])
