"""Cache statistics: counters, snapshots and per-run deltas."""

from repro.cache.stats import CacheStats, CacheStatsSnapshot, ServiceCacheStats


class TestServiceCacheStats:
    def test_hit_rate_counts_coalesced_as_avoided_work(self):
        stats = ServiceCacheStats(hits=2, misses=1, coalesced=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75

    def test_hit_rate_of_nothing_is_zero(self):
        assert ServiceCacheStats().hit_rate == 0.0

    def test_add_and_sub_are_fieldwise(self):
        a = ServiceCacheStats(hits=3, misses=2, stores=2, bytes_stored=100)
        b = ServiceCacheStats(hits=1, misses=1, stores=1, bytes_stored=40)
        assert (a + b).hits == 4
        assert (a - b) == ServiceCacheStats(hits=2, misses=1, stores=1, bytes_stored=60)


class TestCacheStats:
    def test_counters_accumulate_per_service(self):
        stats = CacheStats()
        stats.record_miss("crestLines")
        stats.record_store("crestLines", 128)
        stats.record_hit("crestLines")
        stats.record_coalesced("crestLines")
        stats.record_miss("PFMatchICP")
        snap = stats.snapshot()
        cl = snap.per_service["crestLines"]
        assert (cl.hits, cl.misses, cl.coalesced, cl.stores, cl.bytes_stored) == (
            1, 1, 1, 1, 128,
        )
        assert snap.per_service["PFMatchICP"].misses == 1

    def test_eviction_returns_bytes(self):
        stats = CacheStats()
        stats.record_store("S", 100)
        stats.record_eviction("S", 100)
        row = stats.snapshot().per_service["S"]
        assert row.evictions == 1
        assert row.bytes_stored == 0

    def test_snapshot_is_frozen_in_time(self):
        stats = CacheStats()
        stats.record_hit("S")
        before = stats.snapshot()
        stats.record_hit("S")
        assert before.per_service["S"].hits == 1
        assert stats.snapshot().per_service["S"].hits == 2


class TestSnapshotAlgebra:
    def test_total_sums_services(self):
        snap = CacheStatsSnapshot(
            per_service={
                "A": ServiceCacheStats(hits=2, misses=1),
                "B": ServiceCacheStats(hits=1, misses=1),
            }
        )
        assert snap.total.hits == 3
        assert snap.total.lookups == 5
        assert snap.hit_rate == 3 / 5

    def test_delta_drops_idle_services(self):
        """Per-run numbers from a shared, accumulating cache."""
        stats = CacheStats()
        stats.record_miss("A")
        stats.record_store("A", 10)
        baseline = stats.snapshot()
        # run 2 touches only B
        stats.record_hit("B")
        delta = stats.snapshot() - baseline
        assert set(delta.per_service) == {"B"}
        assert delta.per_service["B"].hits == 1

    def test_iteration_is_name_sorted(self):
        snap = CacheStatsSnapshot(
            per_service={"z": ServiceCacheStats(hits=1), "a": ServiceCacheStats(misses=1)}
        )
        assert [name for name, _ in snap] == ["a", "z"]
        assert snap.services() == ("a", "z")
