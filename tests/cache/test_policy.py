"""CachePolicy: validation, TTL expiry, eviction decisions."""

import pytest

from repro.cache.policy import CachePolicy


class TestValidation:
    def test_defaults_are_unbounded(self):
        policy = CachePolicy.unbounded()
        assert policy.max_entries is None
        assert policy.max_bytes is None
        assert policy.ttl is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_entries": 0},
            {"max_entries": -1},
            {"max_bytes": 0},
            {"max_bytes": -5.0},
            {"ttl": 0},
            {"ttl": -1.0},
        ],
    )
    def test_rejects_nonsense_limits(self, kwargs):
        with pytest.raises(ValueError):
            CachePolicy(**kwargs)

    def test_lru_constructor(self):
        assert CachePolicy.lru(3).max_entries == 3


class TestExpiry:
    def test_no_ttl_never_expires(self):
        assert not CachePolicy().expired(created_at=0.0, now=1e12)

    def test_ttl_boundary(self):
        policy = CachePolicy(ttl=10.0)
        assert not policy.expired(created_at=0.0, now=10.0)  # exactly at TTL: alive
        assert policy.expired(created_at=0.0, now=10.0001)


class TestEvictions:
    def test_unbounded_never_evicts(self):
        entries = [("a", 100.0), ("b", 100.0)]
        assert CachePolicy().evictions_for(entries, incoming_bytes=1e9) == []

    def test_entry_cap_evicts_lru_first(self):
        policy = CachePolicy.lru(2)
        entries = [("old", 1.0), ("mid", 1.0)]  # LRU-first order
        assert policy.evictions_for(entries) == ["old"]

    def test_entry_cap_of_one_clears_everything_else(self):
        policy = CachePolicy.lru(1)
        entries = [("a", 1.0), ("b", 1.0), ("c", 1.0)]
        assert policy.evictions_for(entries) == ["a", "b", "c"]

    def test_byte_cap_counts_incoming(self):
        policy = CachePolicy(max_bytes=100)
        entries = [("a", 40.0), ("b", 40.0)]
        # fits without the newcomer, not with it: evict just enough
        assert policy.evictions_for(entries, incoming_bytes=40.0) == ["a"]
        assert policy.evictions_for(entries, incoming_bytes=10.0) == []

    def test_both_caps_combined(self):
        policy = CachePolicy(max_entries=3, max_bytes=100)
        entries = [("a", 10.0), ("b", 80.0), ("c", 5.0)]
        # count forces one eviction; bytes then still exceed -> two
        assert policy.evictions_for(entries, incoming_bytes=50.0) == ["a", "b"]
