"""Key derivation: deterministic, content-addressed, lineage-aware."""

import numpy as np

from repro.cache.keys import (
    fingerprint_datum,
    fingerprint_value,
    history_fingerprint,
    invocation_key,
    service_fingerprint,
)
from repro.core.provenance import HistoryTree
from repro.grid.storage import LogicalFile
from repro.services.base import GridData, LocalService


class TestValueFingerprints:
    def test_scalars_are_distinguished_by_type(self):
        assert fingerprint_value(1) != fingerprint_value(True)
        assert fingerprint_value(1) != fingerprint_value(1.0)
        assert fingerprint_value(1) != fingerprint_value("1")

    def test_containers(self):
        assert fingerprint_value([1, 2]) == fingerprint_value([1, 2])
        assert fingerprint_value([1, 2]) != fingerprint_value((1, 2))
        assert fingerprint_value({"a": 1, "b": 2}) == fingerprint_value({"b": 2, "a": 1})
        assert fingerprint_value({1, 2, 3}) == fingerprint_value({3, 2, 1})

    def test_numpy_arrays_content_addressed(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 2.0, 3.0])
        c = np.array([1.0, 2.0, 4.0])
        assert fingerprint_value(a) == fingerprint_value(b)
        assert fingerprint_value(a) != fingerprint_value(c)
        # dtype and shape are part of the identity
        assert fingerprint_value(a) != fingerprint_value(a.astype(np.float32))
        assert fingerprint_value(a) != fingerprint_value(a.reshape(3, 1))

    def test_dataclasses_recurse_into_fields(self):
        from repro.apps.transforms import RigidTransform

        t1 = RigidTransform.from_euler_deg([1, 2, 3], [4, 5, 6])
        t2 = RigidTransform.from_euler_deg([1, 2, 3], [4, 5, 6])
        t3 = RigidTransform.from_euler_deg([1, 2, 3], [4, 5, 7])
        assert fingerprint_value(t1) == fingerprint_value(t2)
        assert fingerprint_value(t1) != fingerprint_value(t3)

    def test_datum_includes_grid_identity(self):
        bare = GridData(value=1)
        filed = GridData(value=1, file=LogicalFile("gfn://x", size=10))
        assert fingerprint_datum(bare) != fingerprint_datum(filed)


class TestHistoryFingerprints:
    def test_leaf_and_derived_are_distinct(self):
        leaf = HistoryTree.leaf("src", 0)
        derived = HistoryTree.derive("src", (HistoryTree.leaf("a", 0),))
        assert history_fingerprint(leaf) != history_fingerprint(derived)

    def test_equal_trees_equal_fingerprints(self):
        t1 = HistoryTree.derive("P", (HistoryTree.leaf("s", 1), HistoryTree.leaf("t", 2)))
        t2 = HistoryTree.derive("P", (HistoryTree.leaf("s", 1), HistoryTree.leaf("t", 2)))
        assert history_fingerprint(t1) == history_fingerprint(t2)

    def test_index_and_iteration_matter(self):
        assert history_fingerprint(HistoryTree.leaf("s", 0)) != history_fingerprint(
            HistoryTree.leaf("s", 1)
        )
        base = (HistoryTree.leaf("s", 0),)
        assert history_fingerprint(
            HistoryTree.derive("P", base, iteration=0)
        ) != history_fingerprint(HistoryTree.derive("P", base, iteration=1))

    def test_parent_order_matters(self):
        a, b = HistoryTree.leaf("s", 0), HistoryTree.leaf("t", 1)
        assert history_fingerprint(HistoryTree.derive("P", (a, b))) != history_fingerprint(
            HistoryTree.derive("P", (b, a))
        )


class TestInvocationKeys:
    def _token(self, source, index, value):
        return (HistoryTree.leaf(source, index), GridData(value=value))

    def test_same_inputs_same_key(self, engine):
        svc = LocalService(engine, "S", ("x",), ("y",))
        k1 = invocation_key(svc, {"x": (self._token("src", 0, 5),)})
        k2 = invocation_key(svc, {"x": (self._token("src", 0, 5),)})
        assert k1 == k2
        assert len(k1) == 64  # sha256 hex

    def test_lineage_disambiguates_equal_values(self, engine):
        """Dot-product granularity: (D0, D0) vs (D0, D1) with equal payloads."""
        svc = LocalService(engine, "S", ("a", "b"), ("y",))
        k_d0 = invocation_key(
            svc, {"a": (self._token("s", 0, 9),), "b": (self._token("t", 0, 9),)}
        )
        k_d1 = invocation_key(
            svc, {"a": (self._token("s", 0, 9),), "b": (self._token("t", 1, 9),)}
        )
        assert k_d0 != k_d1

    def test_value_changes_key(self, engine):
        svc = LocalService(engine, "S", ("x",), ("y",))
        k1 = invocation_key(svc, {"x": (self._token("src", 0, 5),)})
        k2 = invocation_key(svc, {"x": (self._token("src", 0, 6),)})
        assert k1 != k2

    def test_service_identity_changes_key(self, engine):
        s1 = LocalService(engine, "S1", ("x",), ("y",))
        s2 = LocalService(engine, "S2", ("x",), ("y",))
        binding = {"x": (self._token("src", 0, 5),)}
        assert invocation_key(s1, binding) != invocation_key(s2, binding)

    def test_unordered_normalizes_stream_order(self, engine):
        """Synchronization keys are arrival-order independent."""
        svc = LocalService(engine, "sync", ("x",), ("y",))
        t0, t1 = self._token("s", 0, "a"), self._token("s", 1, "b")
        assert invocation_key(svc, {"x": (t0, t1)}, unordered=True) == invocation_key(
            svc, {"x": (t1, t0)}, unordered=True
        )
        assert invocation_key(svc, {"x": (t0, t1)}) != invocation_key(svc, {"x": (t1, t0)})


class TestServiceFingerprints:
    def test_wrapper_fingerprint_is_descriptor_derived(self, engine, ideal_grid):
        from repro.services.descriptor import (
            AccessMethod,
            ExecutableDescriptor,
            InputSpec,
            OutputSpec,
        )
        from repro.services.wrapper import GenericWrapperService

        def make(name, option):
            desc = ExecutableDescriptor(
                name=name,
                access=AccessMethod("URL", path="http://x"),
                value="prog.pl",
                inputs=(InputSpec(name="in1", option=option, access=AccessMethod("GFN")),),
                outputs=(OutputSpec(name="out1", option="-o"),),
            )
            return GenericWrapperService(engine, ideal_grid, desc)

        same_a = make("A", "-i").cache_fingerprint()
        same_b = make("A", "-i").cache_fingerprint()
        different = make("A", "-j").cache_fingerprint()
        assert same_a == same_b
        assert same_a != different

    def test_composite_covers_all_stages(self, engine, ideal_grid):
        from repro.services.descriptor import (
            AccessMethod,
            ExecutableDescriptor,
            InputSpec,
            OutputSpec,
        )
        from repro.services.composite import CompositeService
        from repro.services.wrapper import GenericWrapperService

        def stage(name, opt="-i"):
            desc = ExecutableDescriptor(
                name=name,
                access=AccessMethod("URL", path="http://x"),
                value=f"{name}.pl",
                inputs=(InputSpec(name="a", option=opt, access=AccessMethod("GFN")),),
                outputs=(OutputSpec(name="b", option="-o"),),
            )
            return GenericWrapperService(engine, ideal_grid, desc)

        links = {(1, "a"): (0, "b")}
        c1 = CompositeService(engine, [stage("s0"), stage("s1")], links)
        c2 = CompositeService(engine, [stage("s0"), stage("s1")], links)
        c3 = CompositeService(engine, [stage("s0"), stage("s1", opt="-z")], links)
        assert c1.cache_fingerprint() == c2.cache_fingerprint()
        # changing ANY stage invalidates the whole group's identity
        assert c1.cache_fingerprint() != c3.cache_fingerprint()

    def test_base_fallback_uses_class_and_ports(self, engine):
        s1 = LocalService(engine, "S", ("x",), ("y",))
        s2 = LocalService(engine, "S", ("x", "z"), ("y",))
        assert service_fingerprint(s1) != service_fingerprint(s2)
