"""Result stores: LRU/TTL behaviour, atomic persistence, corrupt entries."""

import json
import os

import numpy as np

from repro.cache.policy import CachePolicy
from repro.cache.store import (
    CacheEntry,
    FileStore,
    InMemoryStore,
    ResultStore,
    entry_from_document,
    entry_to_document,
    estimate_entry_bytes,
)
from repro.grid.storage import LogicalFile
from repro.services.base import GridData


def make_entry(key, value=1, size=10, created_at=0.0, service="S"):
    outputs = {"out": GridData(value=value)}
    return CacheEntry(
        key=key, service=service, outputs=outputs, created_at=created_at, size_bytes=size
    )


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestProtocol:
    def test_both_stores_satisfy_result_store(self, cache_dir):
        assert isinstance(InMemoryStore(), ResultStore)
        assert isinstance(FileStore(cache_dir), ResultStore)


class TestInMemoryStore:
    def test_roundtrip(self):
        store = InMemoryStore()
        store.put(make_entry("k"))
        entry = store.get("k")
        assert entry is not None
        assert entry.outputs["out"].value == 1
        assert store.get("absent") is None

    def test_overwrite_keeps_single_entry(self):
        store = InMemoryStore(CachePolicy.lru(5))
        store.put(make_entry("k", value=1))
        store.put(make_entry("k", value=2))
        assert len(store) == 1
        assert store.get("k").outputs["out"].value == 2

    def test_lru_eviction_order_respects_recency(self):
        store = InMemoryStore(CachePolicy.lru(2))
        evicted = []
        store.on_evict = lambda e: evicted.append(e.key)
        store.put(make_entry("a"))
        store.put(make_entry("b"))
        store.get("a")  # refresh "a": "b" becomes LRU
        store.put(make_entry("c"))
        assert evicted == ["b"]
        assert "a" in store and "c" in store and "b" not in store

    def test_byte_cap(self):
        store = InMemoryStore(CachePolicy(max_bytes=100))
        store.put(make_entry("a", size=60))
        store.put(make_entry("b", size=60))  # 120 > 100 -> evict "a"
        assert "a" not in store
        assert "b" in store

    def test_ttl_expiry_on_get(self):
        clock = FakeClock()
        store = InMemoryStore(CachePolicy(ttl=10.0), clock=clock)
        expired = []
        store.on_evict = lambda e: expired.append(e.key)
        store.put(make_entry("k", created_at=0.0))
        clock.now = 5.0
        assert store.get("k") is not None
        clock.now = 11.0
        assert store.get("k") is None
        assert expired == ["k"]
        assert len(store) == 0

    def test_clear_is_not_eviction(self):
        store = InMemoryStore()
        evicted = []
        store.on_evict = lambda e: evicted.append(e.key)
        store.put(make_entry("k"))
        store.clear()
        assert len(store) == 0
        assert evicted == []


class TestDocumentCodec:
    def test_scalars_stay_json(self):
        entry = make_entry("k", value=3)
        doc = entry_to_document(entry)
        assert doc["outputs"]["out"]["value"]["kind"] == "json"
        assert entry_from_document(doc).outputs["out"].value == 3

    def test_numpy_roundtrips_bit_exact(self):
        array = np.array([1.5, 2.5, float(np.pi)])
        entry = CacheEntry(key="k", service="S", outputs={"o": GridData(value=array)})
        doc = json.loads(json.dumps(entry_to_document(entry)))  # through real JSON
        back = entry_from_document(doc).outputs["o"].value
        assert isinstance(back, np.ndarray)
        np.testing.assert_array_equal(back, array)

    def test_nonfinite_floats_take_pickle_path(self):
        entry = CacheEntry(
            key="k", service="S", outputs={"o": GridData(value=float("inf"))}
        )
        doc = json.loads(json.dumps(entry_to_document(entry)))
        assert doc["outputs"]["o"]["value"]["kind"] == "pickle"
        assert entry_from_document(doc).outputs["o"].value == float("inf")

    def test_grid_file_identity_survives(self):
        datum = GridData(value=None, file=LogicalFile("gfn://x/1", size=2048))
        entry = CacheEntry(key="k", service="S", outputs={"o": datum})
        back = entry_from_document(entry_to_document(entry)).outputs["o"]
        assert back.file == LogicalFile("gfn://x/1", size=2048)

    def test_estimate_is_positive(self):
        assert estimate_entry_bytes({"o": GridData(value=list(range(100)))}) > 0


class TestFileStore:
    def test_roundtrip_across_instances(self, cache_dir):
        """The warm-re-execution property: a fresh process sees the entries."""
        FileStore(cache_dir).put(make_entry("k", value=42))
        entry = FileStore(cache_dir).get("k")
        assert entry is not None
        assert entry.outputs["out"].value == 42

    def test_no_tmp_droppings_after_put(self, cache_dir):
        store = FileStore(cache_dir)
        for i in range(5):
            store.put(make_entry(f"k{i}"))
        assert list(cache_dir.glob("*.tmp")) == []
        assert len(store) == 5
        assert sorted(store.keys()) == [f"k{i}" for i in range(5)]

    def test_corrupt_entry_is_a_miss_and_gets_removed(self, cache_dir):
        store = FileStore(cache_dir)
        store.put(make_entry("k"))
        (cache_dir / "k.json").write_text("{ torn write", encoding="utf-8")
        assert store.get("k") is None
        assert not (cache_dir / "k.json").exists()

    def test_ttl_expiry(self, cache_dir):
        clock = FakeClock()
        store = FileStore(cache_dir, CachePolicy(ttl=10.0), clock=clock)
        store.put(make_entry("k", created_at=0.0))
        clock.now = 20.0
        assert store.get("k") is None
        assert len(store) == 0

    def test_lru_eviction_uses_mtimes(self, cache_dir):
        store = FileStore(cache_dir, CachePolicy.lru(2))
        evicted = []
        store.on_evict = lambda e: evicted.append(e.key)
        store.put(make_entry("a"))
        store.put(make_entry("b"))
        # make recency unambiguous on coarse-mtime filesystems
        os.utime(cache_dir / "a.json", (1000, 1000))
        os.utime(cache_dir / "b.json", (2000, 2000))
        store.put(make_entry("c"))
        assert evicted == ["a"]
        assert sorted(store.keys()) == ["b", "c"]

    def test_overwrite_does_not_evict_self(self, cache_dir):
        store = FileStore(cache_dir, CachePolicy.lru(1))
        store.put(make_entry("k", value=1))
        store.put(make_entry("k", value=2))
        assert store.get("k").outputs["out"].value == 2
        assert len(store) == 1

    def test_clear(self, cache_dir):
        store = FileStore(cache_dir)
        store.put(make_entry("a"))
        store.put(make_entry("b"))
        store.clear()
        assert len(store) == 0
