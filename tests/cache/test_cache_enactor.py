"""The cache wired into the enactor: warm re-execution, single-flight.

These are the acceptance tests of the subsystem: a warm run over the
same input data set replays every invocation from the cache — zero grid
jobs, zero makespan on an ideal grid — and produces identical sink
outputs.  A shared in-flight registry de-duplicates identical concurrent
invocations across enactors sharing one engine.
"""

import pickle

import pytest

from repro.cache import FileStore, InMemoryStore, ResultCache
from repro.core import MoteurEnactor, OptimizationConfig
from repro.grid.testbeds import ideal_testbed
from repro.services.base import LocalService
from repro.services.descriptor import (
    AccessMethod,
    ExecutableDescriptor,
    InputSpec,
    OutputSpec,
)
from repro.services.wrapper import GenericWrapperService
from repro.sim.engine import Engine
from repro.workflow.builder import WorkflowBuilder


def wrapped(engine, grid, name, compute=10.0, program=None, calls=None):
    def counting_program(x):
        if calls is not None:
            calls.append(name)
        return {"y": (x or 0) + 1}

    descriptor = ExecutableDescriptor(
        name=name,
        access=AccessMethod("URL", "http://host"),
        value=name,
        inputs=(InputSpec("x", "-i", AccessMethod("GFN")),),
        outputs=(OutputSpec("y", "-o"),),
    )
    return GenericWrapperService(
        engine, grid, descriptor,
        program=program or counting_program,
        compute_time=compute,
    )


def chain_workflow(engine, grid, calls=None):
    """in -> A -> B -> out over two wrapped grid services."""
    a = wrapped(engine, grid, "A", calls=calls)
    b = wrapped(engine, grid, "B", calls=calls)
    return (
        WorkflowBuilder()
        .source("in")
        .service("A", a)
        .service("B", b)
        .sink("out")
        .connect("in:output", "A:x")
        .connect("A:y", "B:x")
        .connect("B:y", "out:input")
        .build()
    )


def run_once(config, cache, dataset, calls=None):
    """One enactment on a fresh engine + ideal grid (simulates a new process)."""
    engine = Engine()
    grid = ideal_testbed(engine)
    workflow = chain_workflow(engine, grid, calls=calls)
    result = MoteurEnactor(engine, workflow, config, cache=cache).run(dataset)
    return result, grid


class TestWarmReexecution:
    def test_second_run_is_all_hits_zero_jobs(self):
        cache = ResultCache(store=InMemoryStore())
        config = OptimizationConfig.sp_dp()
        dataset = {"in": [1, 2, 3]}

        cold, cold_grid = run_once(config, cache, dataset)
        warm, warm_grid = run_once(config, cache, dataset)

        assert len(cold_grid.records) == 6  # 2 services x 3 items
        assert len(warm_grid.records) == 0
        assert warm.makespan == 0.0
        assert cold.makespan > 0.0
        # identical results, byte for byte
        assert pickle.dumps(sorted(warm.output_values("out"))) == pickle.dumps(
            sorted(cold.output_values("out"))
        )
        assert warm.cache_stats.total.hits == 6
        assert warm.cache_stats.total.misses == 0
        assert warm.cache_stats.hit_rate == 1.0
        assert cold.cache_stats.total.misses == 6
        assert cold.cache_stats.total.stores == 6

    def test_cached_events_have_kind_and_no_jobs(self):
        cache = ResultCache(store=InMemoryStore())
        config = OptimizationConfig.nop()
        run_once(config, cache, {"in": [5]})
        warm, _ = run_once(config, cache, {"in": [5]})
        kinds = warm.trace.count_by_kind()
        assert kinds == {"cached": 2}
        for event in warm.trace:
            assert event.job_ids == ()
            assert event.duration == 0.0

    @pytest.mark.cache_files
    def test_file_store_warm_run_across_processes(self, cache_dir):
        """Cold run persists, a *fresh* cache object on the same directory
        replays — the cross-process re-execution story."""
        config = OptimizationConfig.sp_dp()
        dataset = {"in": [10, 20]}
        cold, _ = run_once(config, ResultCache(store=FileStore(cache_dir)), dataset)
        warm, warm_grid = run_once(config, ResultCache(store=FileStore(cache_dir)), dataset)
        assert len(warm_grid.records) == 0
        assert sorted(warm.output_values("out")) == sorted(cold.output_values("out"))
        assert warm.cache_stats.hit_rate == 1.0

    def test_partial_warm_run_executes_only_new_items(self):
        cache = ResultCache(store=InMemoryStore())
        config = OptimizationConfig.sp_dp()
        run_once(config, cache, {"in": [1, 2]})
        mixed, grid = run_once(config, cache, {"in": [1, 2, 3]})
        # only the new item's two invocations executed
        assert len(grid.records) == 2
        assert mixed.cache_stats.total.hits == 4
        assert mixed.cache_stats.total.misses == 2
        assert sorted(mixed.output_values("out")) == [3, 4, 5]

    def test_changed_input_value_misses(self):
        cache = ResultCache(store=InMemoryStore())
        config = OptimizationConfig.nop()
        run_once(config, cache, {"in": [1]})
        warm, grid = run_once(config, cache, {"in": [2]})
        assert len(grid.records) == 2
        assert warm.cache_stats.total.hits == 0

    def test_grouped_chain_caches_as_one_entry(self):
        """Job grouping: the composite A;B invocation is ONE cache entry."""
        cache = ResultCache(store=InMemoryStore())
        config = OptimizationConfig.sp_dp_jg()
        cold, cold_grid = run_once(config, cache, {"in": [1, 2]})
        assert len(cache) == 2  # one grouped entry per item, not per stage
        warm, warm_grid = run_once(config, cache, {"in": [1, 2]})
        assert len(warm_grid.records) == 0
        assert warm.trace.count_by_kind() == {"cached": 2}
        assert sorted(warm.output_values("out")) == sorted(cold.output_values("out"))

    def test_synchronization_hits_despite_stream_order(self):
        """Sync barriers key on the token multiset, not arrival order."""
        cache = ResultCache(store=InMemoryStore())
        config = OptimizationConfig.sp_dp()

        def build(engine):
            grid = ideal_testbed(engine)
            a = wrapped(engine, grid, "A")
            sync = LocalService(
                engine, "collect", ("x",), ("y",),
                function=lambda x: {"y": sorted(v or 0 for v in x)},
            )
            workflow = (
                WorkflowBuilder()
                .source("in")
                .service("A", a)
                .service("collect", sync, synchronization=True)
                .sink("out")
                .connect("in:output", "A:x")
                .connect("A:y", "collect:x")
                .connect("collect:y", "out:input")
                .build()
            )
            return workflow, grid

        engine = Engine()
        workflow, grid = build(engine)
        cold = MoteurEnactor(engine, workflow, config, cache=cache).run({"in": [1, 2, 3]})

        engine2 = Engine()
        workflow2, grid2 = build(engine2)
        warm = MoteurEnactor(engine2, workflow2, config, cache=cache).run({"in": [1, 2, 3]})

        assert len(grid2.records) == 0
        assert warm.cache_stats.total.misses == 0
        assert warm.output_values("out") == cold.output_values("out")


class TestConfigDrivenCache:
    def test_with_cache_builds_a_private_memory_cache(self, engine, ideal_grid):
        config = OptimizationConfig.sp_dp().with_cache()
        workflow = chain_workflow(engine, ideal_grid)
        enactor = MoteurEnactor(engine, workflow, config)
        assert isinstance(enactor.cache, ResultCache)
        result = enactor.run({"in": [1]})
        assert result.cache_stats is not None
        assert result.cache_stats.total.misses == 2

    @pytest.mark.cache_files
    def test_file_store_from_config(self, cache_dir, engine, ideal_grid):
        config = OptimizationConfig.sp_dp().with_cache(
            store="file", directory=str(cache_dir)
        )
        workflow = chain_workflow(engine, ideal_grid)
        MoteurEnactor(engine, workflow, config).run({"in": [1]})
        assert len(list(cache_dir.glob("*.json"))) == 2

    def test_cache_off_reports_no_stats(self, engine, ideal_grid):
        workflow = chain_workflow(engine, ideal_grid)
        result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
            {"in": [1]}
        )
        assert result.cache_stats is None


class TestSingleFlight:
    def test_identical_concurrent_invocations_coalesce(self):
        """Two enactments of the same workflow+data on ONE engine: the
        second must ride the first's in-flight executions, not re-submit."""
        cache = ResultCache(store=InMemoryStore())
        config = OptimizationConfig.sp_dp()
        engine = Engine()
        grid = ideal_testbed(engine)
        calls = []
        wf1 = chain_workflow(engine, grid, calls=calls)
        wf2 = chain_workflow(engine, grid, calls=calls)
        e1 = MoteurEnactor(engine, wf1, config, cache=cache)
        e2 = MoteurEnactor(engine, wf2, config, cache=cache)
        done1 = e1.enact({"in": [7]})
        done2 = e2.enact({"in": [7]})
        engine.run(until=done1)
        r2 = engine.run(until=done2)
        # each service executed once, not twice
        assert sorted(calls) == ["A", "B"]
        assert sorted(r2.output_values("out")) == [9]
        total = cache.snapshot().total
        assert total.coalesced == 2
        assert total.misses == 2
        # flights are cleaned up
        assert cache._inflight == {}

    def test_follower_result_is_identical(self):
        cache = ResultCache(store=InMemoryStore())
        config = OptimizationConfig.sp_dp()
        engine = Engine()
        grid = ideal_testbed(engine)
        wf1 = chain_workflow(engine, grid)
        wf2 = chain_workflow(engine, grid)
        done1 = MoteurEnactor(engine, wf1, config, cache=cache).enact({"in": [1, 2]})
        done2 = MoteurEnactor(engine, wf2, config, cache=cache).enact({"in": [1, 2]})
        r1 = engine.run(until=done1)
        r2 = engine.run(until=done2)
        assert sorted(r1.output_values("out")) == sorted(r2.output_values("out")) == [3, 4]
