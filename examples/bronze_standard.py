#!/usr/bin/env python
"""The Bronze Standard application (Section 4) on the EGEE-like grid.

Enacts the Figure 9 medical-imaging workflow over a set of image pairs
under all six optimization configurations, printing execution times,
job counts and the registration-accuracy outputs — a miniature of the
paper's full experiment.

Run:  python examples/bronze_standard.py [n_pairs]
"""

import sys

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core import OptimizationConfig
from repro.grid.testbeds import egee_like_testbed
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams
from repro.util.units import format_duration


def run_configuration(config: OptimizationConfig, n_pairs: int, seed: int = 42):
    engine = Engine()
    streams = RandomStreams(seed=seed)
    grid = egee_like_testbed(
        engine, streams, n_sites=6, workers_per_ce=30, with_background_load=False
    )
    app = BronzeStandardApplication(engine, grid, streams)
    result = app.enact(config, n_pairs=n_pairs)
    return result, grid


def main() -> None:
    n_pairs = int(sys.argv[1]) if len(sys.argv) > 1 else 12

    print(f"Bronze Standard over {n_pairs} image pairs "
          f"({n_pairs * 6} registration jobs without grouping)\n")
    print(f"{'configuration':>12} | {'makespan':>12} | {'jobs':>5} | "
          f"{'mean overhead':>13} | groups")
    print("-" * 70)

    reference = None
    for config in OptimizationConfig.paper_configurations():
        result, grid = run_configuration(config, n_pairs)
        completed = grid.completed_records()
        overheads = [r.overhead for r in completed if r.overhead is not None]
        mean_overhead = sum(overheads) / len(overheads) if overheads else 0.0
        groups = ",".join(g.name for g in result.groups) or "-"
        if reference is None:
            reference = result.makespan
        speedup = reference / result.makespan
        print(
            f"{config.label:>12} | {format_duration(result.makespan):>12} | "
            f"{len(completed):>5} | {format_duration(mean_overhead):>13} | "
            f"{groups}  (speed-up {speedup:.2f})"
        )

    result, _ = run_configuration(OptimizationConfig.sp_dp_jg(), n_pairs)
    rotation = result.output_values("accuracy_rotation")[0]
    translation = result.output_values("accuracy_translation")[0]
    print(
        f"\ncrestMatch accuracy against the bronze standard: "
        f"{rotation:.3f} deg rotation, {translation:.3f} mm translation"
    )
    print("(computed from real noisy rigid transforms, per Section 4.2)")


if __name__ == "__main__":
    main()
