#!/usr/bin/env python
"""Quickstart: build a tiny service workflow, enact it on a simulated
grid under every optimization configuration, and render the paper-style
execution diagrams (Figures 4 and 5).

Run:  python examples/quickstart.py
"""

from repro.core import MoteurEnactor, OptimizationConfig
from repro.core.diagrams import execution_diagram
from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.workflow.patterns import figure1_workflow


def main() -> None:
    print("The paper's Figure 1 workflow: P1 feeding two parallel branches")
    print("(P2, P3), executed over three data sets D0, D1, D2 with a")
    print("constant per-invocation time T = 1.\n")

    for config in (
        OptimizationConfig.nop(),
        OptimizationConfig.dp(),
        OptimizationConfig.sp(),
        OptimizationConfig.sp_dp(),
    ):
        engine = Engine()

        def factory(name, inputs, outputs):
            return LocalService(engine, name, inputs, outputs, duration=1.0)

        workflow = figure1_workflow(factory)
        enactor = MoteurEnactor(engine, workflow, config)
        result = enactor.run({"source": [0, 1, 2]})

        print(f"=== {config.label}: makespan {result.makespan:.0f} x T ===")
        print(execution_diagram(result.trace, cell=1.0))
        print()

    print("Compare with the paper: Figure 4 is the DP diagram, Figure 5")
    print("the SP diagram; with constant times SP+DP equals DP alone")
    print("(the theoretical S_SDP = 1 of Section 3.5.4).")


if __name__ == "__main__":
    main()
