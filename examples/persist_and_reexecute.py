#!/usr/bin/env python
"""Persisting workflows and data sets as XML, then re-executing.

The paper's two document languages in action (Section 4.1): the
Scufl-dialect workflow description and the input-data-set language,
whose stated purpose is "to save and store the input data set in order
to be able to re-execute workflows on the same data set".

The second half shows what that re-execution costs with the
provenance-keyed result cache: a cold run persists every invocation
result to a :class:`~repro.cache.FileStore`; a warm run — fresh engine,
fresh enactor, same documents — replays entirely from disk in zero
simulated time.

Run:  python examples/persist_and_reexecute.py
"""

import tempfile
from pathlib import Path

from repro.cache import FileStore, ResultCache
from repro.core import MoteurEnactor, OptimizationConfig
from repro.services.base import LocalService
from repro.services.registry import ServiceRegistry
from repro.sim.engine import Engine
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.datasets import InputDataSet, dataset_from_xml, dataset_to_xml
from repro.workflow.scufl import bind_services, workflow_from_scufl, workflow_to_scufl


def make_registry(engine: Engine) -> ServiceRegistry:
    """The site-local service implementations the documents refer to."""
    registry = ServiceRegistry()
    registry.register(
        LocalService(engine, "threshold", ("image",), ("mask",),
                     function=lambda image: {"mask": f"mask({image})"}, duration=4.0),
        description="binary thresholding",
    )
    registry.register(
        LocalService(engine, "measure", ("mask",), ("volume",),
                     function=lambda mask: {"volume": len(str(mask))}, duration=2.0),
        description="volume measurement",
    )
    return registry


def main() -> None:
    # -- author the symbolic workflow and a data set --------------------
    workflow = (
        WorkflowBuilder("volumetry")
        .source("scans")
        .abstract_service("threshold", ("image",), ("mask",))
        .abstract_service("measure", ("mask",), ("volume",))
        .sink("volumes")
        .connect("scans:output", "threshold:image")
        .connect("threshold:mask", "measure:mask")
        .connect("measure:volume", "volumes:input")
        .build()
    )
    dataset = InputDataSet.from_values("cohort-3", scans=["p01-t0", "p02-t0", "p03-t0"])

    with tempfile.TemporaryDirectory() as tmp:
        workflow_path = Path(tmp) / "volumetry.scufl.xml"
        dataset_path = Path(tmp) / "cohort-3.xml"
        workflow_path.write_text(workflow_to_scufl(workflow))
        dataset_path.write_text(dataset_to_xml(dataset))
        print(f"saved {workflow_path.name} ({workflow_path.stat().st_size} bytes)")
        print(f"saved {dataset_path.name} ({dataset_path.stat().st_size} bytes)\n")
        print("--- the Scufl document ---")
        print(workflow_path.read_text())
        print("\n--- the data-set document ---")
        print(dataset_path.read_text())

        # -- somewhere else, later: reload and re-execute ----------------
        engine = Engine()
        reloaded_workflow = workflow_from_scufl(workflow_path.read_text())
        reloaded_dataset = dataset_from_xml(dataset_path.read_text())
        bound = bind_services(reloaded_workflow, make_registry(engine))
        result = MoteurEnactor(engine, bound, OptimizationConfig.sp_dp()).run(
            reloaded_dataset
        )
        print("\nre-executed from disk:")
        print(f"  volumes: {result.output_values('volumes')}")
        print(f"  makespan: {result.makespan:.0f}s "
              f"({result.invocation_count} invocations)")

        # -- cold -> warm: memoized re-execution --------------------------
        cache_dir = Path(tmp) / "result-cache"

        def enact(tag: str) -> None:
            """A fresh 'process': new engine, new services, new enactor —
            only the persisted documents and the cache directory carry
            over."""
            run_engine = Engine()
            run_workflow = bind_services(
                workflow_from_scufl(workflow_path.read_text()),
                make_registry(run_engine),
            )
            run_dataset = dataset_from_xml(dataset_path.read_text())
            cache = ResultCache(store=FileStore(cache_dir))
            run = MoteurEnactor(
                run_engine, run_workflow, OptimizationConfig.sp_dp(), cache=cache
            ).run(run_dataset)
            stats = run.cache_stats.total
            print(f"  {tag}: makespan {run.makespan:.0f}s, "
                  f"hits={stats.hits} misses={stats.misses} "
                  f"stores={stats.stores}, volumes={run.output_values('volumes')}")

        print("\nwith the provenance-keyed result cache:")
        enact("cold run")
        enact("warm run")
        entries = len(list(cache_dir.glob("*.json")))
        print(f"  ({entries} cache entries persisted under {cache_dir.name}/)")


if __name__ == "__main__":
    main()
