#!/usr/bin/env python
"""Wrapping legacy code with the generic wrapper service (Section 3.6).

Shows the full life of an executable descriptor:

1. write (or load) the Figure 8-style XML describing a command-line
   tool — its executable, sandboxed files, inputs and outputs,
2. wrap it into a grid-submitting service with a Python stand-in for
   the binary,
3. invoke it and inspect the dynamically composed command line,
4. group two wrapped services into a single-job virtual service and
   compare the command lines and overhead costs.

Run:  python examples/wrap_legacy_code.py
"""

from repro.grid.middleware import Grid
from repro.grid.overhead import OverheadModel
from repro.grid.resources import ComputingElement, Site
from repro.grid.storage import LogicalFile, StorageElement
from repro.grid.transfer import NetworkModel
from repro.services import CompositeService, GenericWrapperService, GridData
from repro.services.descriptor import descriptor_from_xml, descriptor_to_xml
from repro.sim.engine import Engine
from repro.util.rng import RandomStreams
from repro.util.units import MEBIBYTE

SMOOTH_XML = """
<description>
  <executable name="smooth">
    <access type="URL"><path value="http://tools.example.org"/></access>
    <value value="smooth"/>
    <input name="image" option="-i"><access type="GFN"/></input>
    <input name="sigma" option="-s"/>
    <output name="smoothed" option="-o"><access type="GFN"/></output>
    <sandbox name="kernel-lib">
      <access type="URL"><path value="http://tools.example.org"/></access>
      <value value="libkernels.so"/>
    </sandbox>
  </executable>
</description>
"""

SEGMENT_XML = """
<description>
  <executable name="segment">
    <access type="URL"><path value="http://tools.example.org"/></access>
    <value value="segment"/>
    <input name="image" option="-i"><access type="GFN"/></input>
    <output name="mask" option="-m"><access type="GFN"/></output>
  </executable>
</description>
"""


def build_grid(engine):
    ce = ComputingElement(engine, "ce0", "site0", infinite=True)
    se = StorageElement("se0", "site0")
    return Grid(
        engine,
        RandomStreams(seed=0),
        sites=[Site("site0", [ce], se)],
        overhead=OverheadModel.from_values(submission=30.0, brokering=60.0, queue_extra=210.0),
        network=NetworkModel(),
    )


def main() -> None:
    engine = Engine()
    grid = build_grid(engine)

    smooth_desc = descriptor_from_xml(SMOOTH_XML)
    segment_desc = descriptor_from_xml(SEGMENT_XML)
    print("parsed descriptor:", smooth_desc.name,
          "inputs", smooth_desc.input_ports, "outputs", smooth_desc.output_ports)
    print("round-trips:", descriptor_from_xml(descriptor_to_xml(smooth_desc)) == smooth_desc)

    smooth = GenericWrapperService(
        engine, grid, smooth_desc,
        program=lambda image, sigma: {"smoothed": f"smooth({image}, s={sigma})"},
        compute_time=40.0,
    )
    segment = GenericWrapperService(
        engine, grid, segment_desc,
        program=lambda image: {"mask": f"mask({image})"},
        compute_time=25.0,
    )

    scan = LogicalFile("gfn://scans/patient42.mhd", size=7.8 * MEBIBYTE)
    grid.add_input_file(scan)

    # -- separate invocations: two jobs, two overheads ------------------
    start = engine.now
    out1 = engine.run(until=smooth.invoke({"image": GridData("scan42", scan), "sigma": 2}))
    out2 = engine.run(until=segment.invoke({"image": out1["smoothed"]}))
    separate = engine.now - start
    print("\n--- separate services (two grid jobs) ---")
    for record in grid.records:
        print("  $", record.description.command_line)
    print(f"  result: {out2['mask'].value}")
    print(f"  wall time: {separate:.0f}s (two 300s overheads paid)")

    # -- grouped: one virtual service, one job ---------------------------
    grouped = CompositeService(
        engine, [smooth, segment], internal_links={(1, "image"): (0, "smoothed")}
    )
    start = engine.now
    out3 = engine.run(until=grouped.invoke({"image": GridData("scan42", scan), "sigma": 2}))
    grouped_time = engine.now - start
    print("\n--- grouped virtual service (one grid job) ---")
    print("  $", grid.records[-1].description.command_line)
    print(f"  result: {out3['mask'].value}")
    print(f"  wall time: {grouped_time:.0f}s (one overhead, no intermediate transfer)")
    print(f"\njob grouping saved {separate - grouped_time:.0f}s on this invocation")


if __name__ == "__main__":
    main()
