#!/usr/bin/env python
"""Task-based vs service-based composition (Section 2).

Quantifies the paper's two structural arguments:

1. **combinatorial explosion** — chained cross products make the static
   task-based representation grow as a product of input sizes while the
   service workflow stays constant-size (Section 2.2);
2. **equivalent parallelism** — once expanded, a DAGMan-style executor
   extracts the same parallelism the service enactor gets from SP+DP,
   so the service approach costs nothing in performance while staying
   tractable to describe.

Run:  python examples/task_vs_service.py
"""

from repro.core import MoteurEnactor, OptimizationConfig
from repro.grid.testbeds import ideal_testbed
from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.taskbased.dag import expand_workflow
from repro.taskbased.dagman import DagmanExecutor
from repro.taskbased.jdl import TaskDescription, render_jdl
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.patterns import chain_workflow


def cross_chain(engine, depth):
    """depth chained cross-product services over depth+1 sources."""
    builder = WorkflowBuilder("cross-chain")
    for i in range(depth + 1):
        builder.source(f"s{i}")
    previous = "s0:output"
    for level in range(depth):
        builder.service(
            f"X{level}",
            LocalService(engine, f"X{level}", ("a", "b"), ("y",)),
            iteration_strategy="cross",
        )
        builder.connect(previous, f"X{level}:a")
        builder.connect(f"s{level + 1}:output", f"X{level}:b")
        previous = f"X{level}:y"
    builder.sink("out")
    builder.connect(previous, "out:input")
    return builder.build()


def main() -> None:
    print("1. Combinatorial explosion of the static task representation")
    print(f"{'items n':>8} | {'service processors':>19} | {'static tasks':>12}")
    print("-" * 47)
    for n in (2, 5, 10, 20):
        engine = Engine()
        workflow = cross_chain(engine, depth=3)
        dataset = {f"s{i}": list(range(n)) for i in range(4)}
        dag = expand_workflow(workflow, dataset)
        print(f"{n:>8} | {len(workflow.services()):>19} | {dag.task_count:>12}")
    print("(n^2 + n^3 + n^4 tasks: 'intractable even for a limited")
    print(" number (tens) of input data' — the service graph stays at 3 nodes)\n")

    print("2. One of those tasks, as the JDL a task-based user maintains by hand:")
    print(render_jdl(TaskDescription(
        name="X0-D0_3", executable="combine",
        arguments="-a /data/s0_0.dat -b /data/s1_3.dat -o /data/x0_0_3.dat",
        input_files=("/data/s0_0.dat", "/data/s1_3.dat"),
        output_files=("/data/x0_0_3.dat",),
    )))

    print("\n3. Same pipeline, same grid: DAGMan vs MOTEUR SP+DP")
    durations = {"P1": 30.0, "P2": 60.0, "P3": 45.0}
    items = list(range(8))

    engine = Engine()
    workflow = chain_workflow(
        lambda n, i, o: LocalService(engine, n, i, o, duration=durations[n]), 3
    )
    service_result = MoteurEnactor(engine, workflow, OptimizationConfig.sp_dp()).run(
        {"input": items}
    )

    engine2 = Engine()
    grid2 = ideal_testbed(engine2)
    workflow2 = chain_workflow(
        lambda n, i, o: LocalService(engine2, n, i, o, duration=durations[n]), 3
    )
    dag = expand_workflow(workflow2, {"input": items})
    dag_result = DagmanExecutor(engine2, grid2, durations=durations).run(dag)

    print(f"   MOTEUR (SP+DP), 3-processor workflow: {service_result.makespan:.0f}s")
    print(f"   DAGMan, {dag.task_count}-task static DAG:        {dag_result.makespan:.0f}s")
    print("   -> identical parallelism, radically different description sizes")


if __name__ == "__main__":
    main()
