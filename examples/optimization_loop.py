#!/usr/bin/env python
"""A service-based workflow with a loop (the paper's Figure 2).

Loops are the structural feature task-based DAG managers cannot
express: "the number of iterations is determined during the execution
and thus cannot be statically described" (Section 2.1).  This example
composes an iterative refinement: each pass improves a registration
residual until it falls under a tolerance decided at run time.

Run:  python examples/optimization_loop.py
"""

from repro.core import MoteurEnactor, NO_DATA, OptimizationConfig
from repro.services.base import LocalService
from repro.sim.engine import Engine
from repro.taskbased.dag import expand_workflow
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.graph import WorkflowError

TOLERANCE = 0.05


def build_workflow(engine: Engine):
    initialize = LocalService(
        engine, "initialize", ("image",), ("residual",),
        function=lambda image: {"residual": 1.0},  # start far from converged
        duration=2.0,
    )
    refine = LocalService(
        engine, "refine", ("residual",), ("improved",),
        function=lambda residual: {"improved": residual * 0.4},
        duration=5.0,
    )
    check = LocalService(
        engine, "check", ("improved",), ("again", "converged"),
        function=lambda improved: (
            {"again": NO_DATA, "converged": improved}
            if improved < TOLERANCE
            else {"again": improved, "converged": NO_DATA}
        ),
        duration=1.0,
    )
    return (
        WorkflowBuilder("iterative-registration")
        .source("images")
        .service("initialize", initialize)
        .service("refine", refine)
        .service("check", check)
        .sink("result")
        .connect("images:output", "initialize:image")
        .connect("initialize:residual", "refine:residual")
        .connect("refine:improved", "check:improved")
        .connect("check:again", "refine:residual")  # the loop-back link
        .connect("check:converged", "result:input")
        .build()
    )


def main() -> None:
    engine = Engine()
    workflow = build_workflow(engine)
    print("Workflow has a cycle:", not workflow.is_dag())

    result = MoteurEnactor(engine, workflow, OptimizationConfig.sp()).run(
        {"images": ["scan-A"]}
    )
    residual = result.output_values("result")[0]
    iterations = sum(1 for e in result.trace.events if e.processor == "refine")
    print(f"converged residual: {residual:.4f} (< {TOLERANCE})")
    print(f"refine iterations decided at run time: {iterations}")
    print(f"makespan: {result.makespan:.0f}s")

    print("\nTrying to expand the same workflow as a static task DAG:")
    try:
        expand_workflow(workflow, {"images": ["scan-A"]})
    except WorkflowError as error:
        print(f"  WorkflowError: {error}")


if __name__ == "__main__":
    main()
