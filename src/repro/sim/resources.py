"""Shared-resource primitives for the DES kernel.

``Resource``
    A counting semaphore with FIFO granting — models worker-node slots,
    per-service concurrency caps (data parallelism off = capacity 1),
    and middleware entry points.
``Store``
    An unbounded FIFO of items with blocking ``get`` — models batch
    queues and message channels between simulated processes.

Both grant strictly in request order, which keeps the simulator
deterministic and makes the pipeline-order assumptions of the paper's
equation (3) hold (a service processes data sets in arrival order).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.engine import Engine, Event, SimulationError

__all__ = ["Resource", "Store"]


class Resource:
    """FIFO counting semaphore.

    Usage inside a process generator::

        req = resource.request()
        yield req
        try:
            yield engine.timeout(work)
        finally:
            resource.release(req)
    """

    def __init__(self, engine: Engine, capacity: int | float, name: str = "") -> None:
        if capacity != float("inf"):
            if not isinstance(capacity, int) or capacity < 1:
                raise ValueError(f"capacity must be a positive int or inf, got {capacity!r}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: Deque[Event] = deque()
        self._granted: set[int] = set()  # ids of live grants, to catch bad releases

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that succeeds when a slot is granted."""
        req = self.engine.event(name=f"request:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            self._granted.add(id(req))
            req.succeed(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Event) -> None:
        """Release the slot granted to *request*.

        Releasing a request that was never granted (or already
        released) raises, because silently tolerating it would mask
        accounting bugs in the middleware model.
        """
        if id(request) not in self._granted:
            if request in self._waiting:  # cancel a queued request
                self._waiting.remove(request)
                return
            raise SimulationError(f"release of non-granted request on {self.name!r}")
        self._granted.discard(id(request))
        self._in_use -= 1
        if self._waiting and self._in_use < self.capacity:
            nxt = self._waiting.popleft()
            self._in_use += 1
            self._granted.add(id(nxt))
            nxt.succeed(nxt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity}"
            f" queued={len(self._waiting)}>"
        )


class Store:
    """Unbounded FIFO item store with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that succeeds with
    the oldest item; pending gets are served in request order.
    """

    def __init__(self, engine: Engine, name: str = "") -> None:
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def pending_gets(self) -> int:
        """Number of get requests waiting for an item."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit *item*, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event succeeding with the next item (FIFO)."""
        evt = self.engine.event(name=f"get:{self.name}")
        if self._items:
            evt.succeed(self._items.popleft())
        else:
            self._getters.append(evt)
        return evt

    def peek_items(self) -> tuple:
        """Snapshot of queued items, oldest first (for inspection/tests)."""
        return tuple(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Store {self.name!r} items={len(self._items)} getters={len(self._getters)}>"
