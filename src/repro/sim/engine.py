"""Generator-based discrete-event simulation engine.

Concepts
--------
``Engine``
    Owns the virtual clock and the event heap.  ``run()`` pops events in
    (time, sequence) order and fires their callbacks.
``Event``
    A one-shot occurrence.  It can *succeed* with a value or *fail* with
    an exception.  Processes wait on events by yielding them.
``Timeout``
    An event that triggers after a fixed simulated delay.
``Process``
    Wraps a generator.  Each ``yield`` suspends the process until the
    yielded event triggers; the event's value is sent back into the
    generator (or its exception thrown into it).  A ``Process`` is
    itself an event that triggers when the generator returns, which is
    how processes wait for each other.
``AllOf`` / ``AnyOf``
    Composite events over several sub-events.

Design notes
------------
* Determinism: the heap is keyed by ``(time, sequence)`` where the
  sequence number increases with every ``schedule`` call, so same-time
  events fire in scheduling order.  Nothing iterates over sets or
  dictionaries whose order could vary.
* Failures: an event failure propagates into every waiting process as a
  thrown exception.  A failed event that nobody waits on raises at the
  engine level when popped, so errors are never silently dropped —
  unless the failure was explicitly marked as ``defused`` (the SimPy
  convention, used by code that stores failed events for later
  inspection).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (double trigger, bad run bound...)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


_PENDING = object()  # sentinel: event value not set yet


class Event:
    """A one-shot occurrence processes can wait on.

    An event goes through at most one transition:
    ``pending -> succeeded`` or ``pending -> failed``.
    """

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self.engine = engine
        self.name = name
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set to True by a consumer that handled a failure out-of-band,
        #: suppressing the "unhandled failed event" engine error.
        self.defused = False

    # -- state --------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event succeeded or failed."""
        return self._ok is not None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"event {self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception.  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- transitions --------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value* (at the current time)."""
        if self._ok is not None:
            raise SimulationError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.engine.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception*."""
        if self._ok is not None:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.engine.schedule(self)
        return self

    def __repr__(self) -> str:
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that succeeds ``delay`` time units after creation."""

    def __init__(self, engine: "Engine", delay: float, value: Any = None, name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(engine, name=name)
        self.delay = delay
        self._ok = True
        self._value = value
        engine.schedule(self, delay=delay)


class Initialize(Event):
    """Internal: starts a freshly created process at the current time."""

    def __init__(self, engine: "Engine", process: "Process") -> None:
        super().__init__(engine)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        engine.schedule(self)


class Process(Event):
    """A running simulated process wrapping generator *gen*.

    The process is itself an event: it triggers with the generator's
    return value when the generator finishes, or fails with the
    exception that escaped the generator.
    """

    def __init__(self, engine: "Engine", gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise TypeError(f"Process needs a generator, got {type(gen).__name__}")
        super().__init__(engine, name=name or getattr(gen, "__name__", ""))
        self._gen = gen
        self._target: Optional[Event] = None  # event we are waiting on
        Initialize(engine, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting detaches it from its target event first.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self!r}")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself synchronously")
        # Detach from the event we were waiting on so its later trigger
        # does not resume us twice.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event = Event(self.engine, name=f"interrupt:{self.name}")
        interrupt_event.callbacks.append(self._resume)
        interrupt_event.fail(Interrupt(cause))
        interrupt_event.defused = True

    # -- engine plumbing ----------------------------------------------
    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the trigger's value/exception."""
        self._target = None
        try:
            if trigger._ok:
                next_event = self._gen.send(trigger._value)
            else:
                trigger.defused = True
                next_event = self._gen.throw(trigger._value)
        except StopIteration as stop:
            if self._ok is None:
                self.succeed(stop.value)
            return
        except BaseException as exc:  # escaped the generator: fail the process
            if self._ok is None:
                self.fail(exc)
            return

        if not isinstance(next_event, Event):
            # Tell the generator it misbehaved; this usually fails the process.
            self._gen.throw(
                SimulationError(f"process {self.name!r} yielded non-event {next_event!r}")
            )
            return
        if next_event.engine is not self.engine:
            self._gen.throw(SimulationError("yielded event belongs to a different engine"))
            return
        if next_event.callbacks is None:
            # Already processed event: resume immediately at the current time.
            immediate = Event(self.engine, name="immediate")
            immediate.callbacks.append(self._resume)
            if next_event._ok:
                immediate.succeed(next_event._value)
            else:
                immediate.fail(next_event._value)
                immediate.defused = True
            self._target = immediate
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event


class AllOf(Event):
    """Succeeds when all sub-events succeed; fails on the first failure.

    The success value is the list of sub-event values, in the order the
    sub-events were given (not the order they triggered in).
    """

    def __init__(self, engine: "Engine", events: Iterable[Event], name: str = "") -> None:
        super().__init__(engine, name=name)
        self.events: List[Event] = list(events)
        self._remaining = 0
        for event in self.events:
            if event.engine is not self.engine:
                raise SimulationError("AllOf mixes events from different engines")
            if event.callbacks is None:  # already processed
                if not event._ok:
                    event.defused = True
                    if self._ok is None:
                        self.fail(event._value)
                continue
            self._remaining += 1
            event.callbacks.append(self._check)
        if self._ok is None and self._remaining == 0:
            self.succeed([e._value for e in self.events])

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0 and all(e.triggered and e._ok for e in self.events):
            self.succeed([e._value for e in self.events])


class AnyOf(Event):
    """Succeeds (or fails) with the first sub-event that triggers.

    The success value is a ``(event, value)`` pair identifying which
    sub-event won.
    """

    def __init__(self, engine: "Engine", events: Iterable[Event], name: str = "") -> None:
        super().__init__(engine, name=name)
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf needs at least one event")
        for event in self.events:
            if event.engine is not self.engine:
                raise SimulationError("AnyOf mixes events from different engines")
            if event.callbacks is None:
                if self._ok is None:
                    if event._ok:
                        self.succeed((event, event._value))
                    else:
                        event.defused = True
                        self.fail(event._value)
                continue
            event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            if not event._ok:
                event.defused = True
            return
        if event._ok:
            self.succeed((event, event._value))
        else:
            event.defused = True
            self.fail(event._value)


class Engine:
    """The simulation engine: virtual clock plus event heap."""

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        #: events popped off the heap so far (throughput accounting)
        self.events_processed = 0
        #: largest heap population seen — the working-set size the
        #: planned flat-heap rebuild must not regress
        self.peak_heap_size = 0
        #: failed events absorbed via ``defused`` (the cancel/defuse
        #: idiom: timeout losers of AnyOf races, interrupts, withdrawn
        #: jobs) rather than raised at the engine level
        self.events_cancelled = 0
        #: hot-path profiler (see repro.observability.profiling); None
        #: keeps dispatch at one attribute test of overhead
        self.profiler = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_scheduled(self) -> int:
        """Events pushed onto the heap so far (== the sequence counter)."""
        return self._sequence

    def counters(self) -> dict:
        """Lifetime counters, named for the metrics registry/runstore.

        The denominators for events/sec: how much work the engine did,
        how big its heap got, and how many failures were absorbed.
        """
        return {
            "engine.events_scheduled": float(self._sequence),
            "engine.events_processed": float(self.events_processed),
            "engine.peak_heap_size": float(self.peak_heap_size),
            "engine.events_cancelled": float(self.events_cancelled),
        }

    # -- event factories ----------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event succeeding after *delay* simulated seconds."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start *gen* as a simulated process (begins at the current time)."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event], name: str = "") -> AllOf:
        """Composite event succeeding once all *events* succeed."""
        return AllOf(self, events, name=name)

    def any_of(self, events: Iterable[Event], name: str = "") -> AnyOf:
        """Composite event triggering with the first of *events*."""
        return AnyOf(self, events, name=name)

    # -- scheduling ----------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered *event* for callback processing after *delay*."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, self._sequence, event))
        self._sequence += 1
        if len(self._heap) > self.peak_heap_size:
            self.peak_heap_size = len(self._heap)
        profiler = self.profiler
        if profiler is not None:
            profiler.count("engine.heap_push")

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event off the heap."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        self._now, _, event = heapq.heappop(self._heap)
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        profiler = self.profiler
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            profiler.count("engine.heap_pop")
            profiler.enter("engine.step")
            try:
                for callback in callbacks:
                    callback(event)
            finally:
                profiler.exit()
        if not event._ok:
            if not event.defused:
                raise event._value
            self.events_cancelled += 1

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``: run until the schedule drains.
            a number: run until the clock reaches that time.
            an :class:`Event`: run until that event triggers, then
            return its value (raising if it failed).
        """
        if isinstance(until, Event):
            stop = until
            while not stop.triggered:
                if not self._heap:
                    raise SimulationError(
                        f"schedule ran dry before {stop!r} triggered (deadlock?)"
                    )
                self.step()
            if stop._ok:
                return stop._value
            stop.defused = True
            raise stop._value
        if until is not None:
            bound = float(until)
            if bound < self._now:
                raise SimulationError(f"until={bound} is in the past (now={self._now})")
            while self._heap and self._heap[0][0] <= bound:
                self.step()
            self._now = bound
            return None
        while self._heap:
            self.step()
        return None
