"""Discrete-event simulation kernel.

A small, dependency-free, generator-based DES engine in the style of
SimPy: simulated *processes* are Python generators that ``yield``
events; the :class:`~repro.sim.engine.Engine` advances a virtual clock
and resumes processes when the events they wait on trigger.

The kernel is deterministic: given the same seeded random streams and
the same process structure, two runs produce identical traces.  Ties in
time are broken by event creation order (a monotonically increasing
sequence number), never by hash order.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Resource, Store

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "Resource",
    "Store",
]
