"""Swappable control-plane state: in-memory and SQLite stores.

The scheduler talks to a :class:`StateStore` and never to a concrete
backend, so the same control plane runs ephemeral (tests, demos) or
durable (crash-safe service).  A store persists three things:

* tenant specs (:class:`~repro.service.logic.TenantSpec`),
* run records (:class:`~repro.service.logic.RunRecord`), keyed by id,
* the fair-share ledger snapshot (tenant -> (usage, stamp)),
* the control-plane audit trail
  (:class:`~repro.observability.ops.audit.AuditEvent` per scheduler
  decision; the store assigns the monotonic sequence numbers that make
  the trail totally ordered).

The SQLite store additionally hands out per-run
:class:`~repro.core.journal.EnactmentJournal` paths, so every run's
enactment is journalled next to the control-plane database and a
killed service can :meth:`~repro.service.scheduler.EnactmentService.recover`
in-flight runs to identical results.  SQLite is opened in WAL mode
with ``check_same_thread=False`` plus our own lock — the service may
touch the store from both its API threads and the scheduler thread.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from typing import Dict, Iterable, List, Optional, Protocol, Tuple

from repro.observability.ops.audit import AuditEvent, audit_sort_key
from repro.service.logic import RunRecord, RunState, TenantSpec

__all__ = ["StateStore", "InMemoryStateStore", "SQLiteStateStore"]


class StateStore(Protocol):
    """What the scheduler needs from control-plane persistence."""

    def upsert_tenant(self, spec: TenantSpec) -> None:
        """Create or replace a tenant spec."""
        ...

    def tenants(self) -> Dict[str, TenantSpec]:
        """All tenant specs, keyed by name."""
        ...

    def next_run_seq(self) -> int:
        """Allocate the next global submission sequence number (1-based)."""
        ...

    def put_run(self, run: RunRecord) -> None:
        """Create or replace a run record."""
        ...

    def get_run(self, run_id: str) -> Optional[RunRecord]:
        """The run with *run_id*, or None."""
        ...

    def runs(self, states: Optional[Iterable[RunState]] = None) -> List[RunRecord]:
        """All runs (optionally filtered by state), in submission order."""
        ...

    def save_usage(self, snapshot: Dict[str, Tuple[float, float]]) -> None:
        """Persist the fair-share ledger snapshot."""
        ...

    def load_usage(self) -> Dict[str, Tuple[float, float]]:
        """The persisted fair-share ledger snapshot (may be empty)."""
        ...

    def append_audit(self, event: AuditEvent) -> AuditEvent:
        """Persist one audit event, assigning its sequence number.

        Returns the stored event (same payload, store-issued
        ``sequence``) so callers can fan it out to live telemetry.
        """
        ...

    def audit_events(self, run_id: Optional[str] = None) -> List[AuditEvent]:
        """The audit trail in ``(time, sequence)`` order.

        With *run_id*, only events whose ``run_id`` matches (admission
        events that merely *mention* the run are the caller's problem —
        see :func:`~repro.observability.ops.audit.explain_run`).
        """
        ...

    def journal_path(self, run_id: str) -> Optional[str]:
        """Where to journal *run_id*'s enactment, or None (no durability)."""
        ...

    def close(self) -> None:
        """Release any underlying resources."""
        ...


class InMemoryStateStore:
    """Ephemeral store: plain dicts under a lock.

    ``journal_path`` returns None — runs are not journalled, so a
    process crash loses in-flight work (fine for tests and demos).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantSpec] = {}
        self._runs: Dict[str, RunRecord] = {}
        self._seq = 0
        self._usage: Dict[str, Tuple[float, float]] = {}
        self._audit: List[AuditEvent] = []

    def upsert_tenant(self, spec: TenantSpec) -> None:
        with self._lock:
            self._tenants[spec.name] = spec

    def tenants(self) -> Dict[str, TenantSpec]:
        with self._lock:
            return dict(self._tenants)

    def next_run_seq(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def put_run(self, run: RunRecord) -> None:
        with self._lock:
            self._runs[run.run_id] = run

    def get_run(self, run_id: str) -> Optional[RunRecord]:
        with self._lock:
            return self._runs.get(run_id)

    def runs(self, states: Optional[Iterable[RunState]] = None) -> List[RunRecord]:
        wanted = None if states is None else set(states)
        with self._lock:
            records = [
                run
                for run in self._runs.values()
                if wanted is None or run.state in wanted
            ]
        return sorted(records, key=lambda run: run.seq)

    def save_usage(self, snapshot: Dict[str, Tuple[float, float]]) -> None:
        with self._lock:
            self._usage = dict(snapshot)

    def load_usage(self) -> Dict[str, Tuple[float, float]]:
        with self._lock:
            return dict(self._usage)

    def append_audit(self, event: AuditEvent) -> AuditEvent:
        with self._lock:
            stored = AuditEvent(
                kind=event.kind,
                time=event.time,
                run_id=event.run_id,
                tenant=event.tenant,
                message=event.message,
                sequence=len(self._audit) + 1,
                attributes=dict(event.attributes),
            )
            self._audit.append(stored)
        return stored

    def audit_events(self, run_id: Optional[str] = None) -> List[AuditEvent]:
        with self._lock:
            events = list(self._audit)
        if run_id is not None:
            events = [event for event in events if event.run_id == run_id]
        return sorted(events, key=audit_sort_key)

    def journal_path(self, run_id: str) -> Optional[str]:
        return None

    def close(self) -> None:
        pass


_SCHEMA = """
CREATE TABLE IF NOT EXISTS tenants (
    name TEXT PRIMARY KEY,
    spec TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id TEXT PRIMARY KEY,
    seq INTEGER NOT NULL,
    state TEXT NOT NULL,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    name TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS usage (
    tenant TEXT PRIMARY KEY,
    amount REAL NOT NULL,
    stamp REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS audit (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    time REAL NOT NULL,
    run_id TEXT NOT NULL,
    record TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS audit_run ON audit(run_id);
"""


class SQLiteStateStore:
    """Durable store: one SQLite database plus per-run journal files.

    Layout under *root*::

        <root>/service.db            control-plane state (WAL mode)
        <root>/journals/<run_id>.jsonl   per-run enactment journals

    Records are stored as JSON documents with the state and sequence
    number denormalized into columns for filtering/ordering — the
    control plane is document-shaped, and JSON keeps the schema stable
    across record evolution.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            os.path.join(root, "service.db"), check_same_thread=False
        )
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def upsert_tenant(self, spec: TenantSpec) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT INTO tenants(name, spec) VALUES(?, ?) "
                "ON CONFLICT(name) DO UPDATE SET spec=excluded.spec",
                (spec.name, json.dumps(spec.to_dict(), sort_keys=True)),
            )
            self._conn.commit()

    def tenants(self) -> Dict[str, TenantSpec]:
        with self._lock:
            rows = self._conn.execute("SELECT spec FROM tenants").fetchall()
        specs = [TenantSpec.from_dict(json.loads(row[0])) for row in rows]
        return {spec.name: spec for spec in specs}

    def next_run_seq(self) -> int:
        with self._lock:
            self._conn.execute(
                "INSERT INTO counters(name, value) VALUES('run_seq', 1) "
                "ON CONFLICT(name) DO UPDATE SET value = value + 1"
            )
            row = self._conn.execute(
                "SELECT value FROM counters WHERE name='run_seq'"
            ).fetchone()
            self._conn.commit()
        return int(row[0])

    def put_run(self, run: RunRecord) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT INTO runs(run_id, seq, state, record) VALUES(?, ?, ?, ?) "
                "ON CONFLICT(run_id) DO UPDATE SET "
                "seq=excluded.seq, state=excluded.state, record=excluded.record",
                (
                    run.run_id,
                    run.seq,
                    run.state.value,
                    json.dumps(run.to_dict(), sort_keys=True),
                ),
            )
            self._conn.commit()

    def get_run(self, run_id: str) -> Optional[RunRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT record FROM runs WHERE run_id=?", (run_id,)
            ).fetchone()
        if row is None:
            return None
        return RunRecord.from_dict(json.loads(row[0]))

    def runs(self, states: Optional[Iterable[RunState]] = None) -> List[RunRecord]:
        if states is None:
            query, params = "SELECT record FROM runs ORDER BY seq", ()
        else:
            wanted = [state.value for state in states]
            marks = ",".join("?" for _ in wanted)
            query = f"SELECT record FROM runs WHERE state IN ({marks}) ORDER BY seq"
            params = tuple(wanted)
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [RunRecord.from_dict(json.loads(row[0])) for row in rows]

    def save_usage(self, snapshot: Dict[str, Tuple[float, float]]) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM usage")
            self._conn.executemany(
                "INSERT INTO usage(tenant, amount, stamp) VALUES(?, ?, ?)",
                [(tenant, amount, stamp) for tenant, (amount, stamp) in snapshot.items()],
            )
            self._conn.commit()

    def load_usage(self) -> Dict[str, Tuple[float, float]]:
        with self._lock:
            rows = self._conn.execute("SELECT tenant, amount, stamp FROM usage").fetchall()
        return {tenant: (float(amount), float(stamp)) for tenant, amount, stamp in rows}

    def append_audit(self, event: AuditEvent) -> AuditEvent:
        payload = event.to_dict()
        with self._lock:
            cursor = self._conn.execute(
                "INSERT INTO audit(time, run_id, record) VALUES(?, ?, ?)",
                (event.time, event.run_id, ""),
            )
            sequence = int(cursor.lastrowid)
            payload["sequence"] = sequence
            self._conn.execute(
                "UPDATE audit SET record=? WHERE seq=?",
                (json.dumps(payload, sort_keys=True), sequence),
            )
            self._conn.commit()
        return AuditEvent.from_dict(payload)

    def audit_events(self, run_id: Optional[str] = None) -> List[AuditEvent]:
        if run_id is None:
            query, params = "SELECT record FROM audit", ()
        else:
            query, params = "SELECT record FROM audit WHERE run_id=?", (run_id,)
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        events = [AuditEvent.from_dict(json.loads(row[0])) for row in rows]
        return sorted(events, key=audit_sort_key)

    def journal_path(self, run_id: str) -> Optional[str]:
        journals = os.path.join(self.root, "journals")
        os.makedirs(journals, exist_ok=True)
        return os.path.join(journals, f"{run_id}.jsonl")

    def close(self) -> None:
        with self._lock:
            self._conn.close()
