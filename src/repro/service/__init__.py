"""Multi-tenant enactment service: many workflows, many users, one grid.

The paper's enactor runs one workflow for one user.  This package is
the control plane that turns it into a *service* — the deployment
shape MOTEUR actually had on EGEE, where a portal enacted workflows
for a whole community against shared infrastructure.  Three layers,
innermost first:

``logic``
    Pure decisions: run lifecycle, tenant quotas, usage-decayed
    fair share.  No I/O, no engine.
``store``
    Swappable persistence (:class:`InMemoryStateStore`,
    :class:`SQLiteStateStore` + per-run enactment journals).
``scheduler``
    :class:`EnactmentService`: multiplexes N concurrent
    :class:`~repro.core.enactor.MoteurEnactor` enactments over one
    shared simulated grid, with admission control and crash recovery.

``api`` holds the client-facing request/response types, and
``python -m repro.service`` is the CLI (submit / status / cancel /
tenants / drain / demo).
"""

from repro.service.api import (
    RunStatus,
    ServiceStatus,
    SubmitRequest,
    TelemetryStatus,
    TenantStatus,
    run_status,
    telemetry_status,
)
from repro.service.logic import (
    AdmissionDecision,
    FairShareLedger,
    QuotaError,
    RunRecord,
    RunState,
    TenantSpec,
    TransitionError,
    pick_next,
    pick_next_explained,
)
from repro.service.scheduler import (
    TESTBEDS,
    EnactmentService,
    EnactmentServiceError,
)
from repro.service.store import InMemoryStateStore, SQLiteStateStore, StateStore

__all__ = [
    "EnactmentService",
    "EnactmentServiceError",
    "TESTBEDS",
    "RunState",
    "RunRecord",
    "TenantSpec",
    "FairShareLedger",
    "AdmissionDecision",
    "pick_next",
    "pick_next_explained",
    "TransitionError",
    "QuotaError",
    "StateStore",
    "InMemoryStateStore",
    "SQLiteStateStore",
    "SubmitRequest",
    "RunStatus",
    "TenantStatus",
    "ServiceStatus",
    "TelemetryStatus",
    "run_status",
    "telemetry_status",
]
