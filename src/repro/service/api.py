"""Submission API types: the service's wire-shaped surface.

These dataclasses are what a client (the CLI, a test, a future REST
front) exchanges with the control plane — plain data, JSON-friendly,
decoupled from the scheduler's internals.  Conversions from the
internal :class:`~repro.service.logic.RunRecord` live here so the
scheduler never needs to know how it is presented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.observability.ops.rollup import TenantRollup
from repro.observability.ops.slo import SLOStatus
from repro.service.logic import RunRecord, RunState, TenantSpec

__all__ = [
    "SubmitRequest",
    "RunStatus",
    "TenantStatus",
    "ServiceStatus",
    "TelemetryStatus",
    "run_status",
    "telemetry_status",
    "RunState",
    "TenantSpec",
]


@dataclass(frozen=True)
class SubmitRequest:
    """One run submission, as a client states it."""

    tenant: str
    workload: str = "bronze"
    n_items: int = 2
    config_label: str = "SP+DP"
    seed: Optional[int] = None
    #: earliest simulated time the run may start (traffic scripts)
    not_before: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "workload": self.workload,
            "n_items": self.n_items,
            "config_label": self.config_label,
            "seed": self.seed,
            "not_before": self.not_before,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SubmitRequest":
        return cls(
            tenant=str(payload["tenant"]),
            workload=str(payload.get("workload", "bronze")),
            n_items=int(payload.get("n_items", 2)),  # type: ignore[arg-type]
            config_label=str(payload.get("config_label", "SP+DP")),
            seed=(None if payload.get("seed") is None else int(payload["seed"])),  # type: ignore[arg-type]
            not_before=float(payload.get("not_before", 0.0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class RunStatus:
    """One run, as reported back to a client."""

    run_id: str
    tenant: str
    state: str
    workload: str
    n_items: int
    config_label: str
    seed: int
    submitted_at: float
    started_at: Optional[float]
    finished_at: Optional[float]
    makespan: Optional[float]
    error: Optional[str]
    resumed: bool
    result: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "tenant": self.tenant,
            "state": self.state,
            "workload": self.workload,
            "n_items": self.n_items,
            "config_label": self.config_label,
            "seed": self.seed,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "makespan": self.makespan,
            "error": self.error,
            "resumed": self.resumed,
            "result": dict(self.result),
        }


def run_status(record: RunRecord) -> RunStatus:
    """Present an internal run record to a client."""
    return RunStatus(
        run_id=record.run_id,
        tenant=record.tenant,
        state=record.state.value,
        workload=record.workload,
        n_items=record.n_items,
        config_label=record.config_label,
        seed=record.seed,
        submitted_at=record.submitted_at,
        started_at=record.started_at,
        finished_at=record.finished_at,
        makespan=record.makespan,
        error=record.error,
        resumed=record.resume,
        result=dict(record.result),
    )


@dataclass(frozen=True)
class TenantStatus:
    """One tenant's spec plus current accounting."""

    spec: TenantSpec
    running: int
    queued: int
    finished: int
    usage: float

    def to_dict(self) -> Dict[str, object]:
        return {
            **self.spec.to_dict(),
            "running": self.running,
            "queued": self.queued,
            "finished": self.finished,
            "usage": round(self.usage, 3),
        }


@dataclass(frozen=True)
class ServiceStatus:
    """The whole control plane at a glance."""

    policy: str
    now: float
    max_concurrent_runs: int
    tenants: List[TenantStatus]
    runs: List[RunStatus]

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "now": self.now,
            "max_concurrent_runs": self.max_concurrent_runs,
            "tenants": [t.to_dict() for t in self.tenants],
            "runs": [r.to_dict() for r in self.runs],
        }


@dataclass(frozen=True)
class TelemetryStatus:
    """The control-plane telemetry, as reported back to a client.

    One JSON-friendly bundle of everything the ops layer knows: the
    per-tenant rollups, the independently accumulated global rollup,
    current SLO evaluations, and the wall-clock throughput counters.
    """

    now: float
    rollups: List[Dict[str, object]]
    totals: Dict[str, object]
    slos: List[Dict[str, object]]
    perf: Dict[str, float] = field(default_factory=dict)
    alerts: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "now": self.now,
            "rollups": list(self.rollups),
            "totals": dict(self.totals),
            "slos": list(self.slos),
            "perf": dict(self.perf),
            "alerts": self.alerts,
        }


def telemetry_status(
    now: float,
    rollups: List[TenantRollup],
    totals: TenantRollup,
    slos: List[SLOStatus],
    perf: Optional[Dict[str, float]] = None,
    alerts: int = 0,
) -> TelemetryStatus:
    """Present live ops state to a client (see ``EnactmentService``)."""
    return TelemetryStatus(
        now=now,
        rollups=[r.to_dict() for r in rollups],
        totals=totals.to_dict(),
        slos=[s.to_dict() for s in slos],
        perf=dict(perf or {}),
        alerts=alerts,
    )
