"""The enactment service: N concurrent workflow runs on one shared grid.

:class:`EnactmentService` is the control plane's middle layer.  It owns
the simulation substrate — one :class:`~repro.sim.engine.Engine`, one
shared testbed :class:`~repro.grid.middleware.Grid` — and multiplexes
up to ``max_concurrent_runs`` simultaneous
:class:`~repro.core.enactor.MoteurEnactor` enactments over it, one per
admitted run.  Decisions (who runs next, quota headroom, fair share)
are delegated to the pure functions in :mod:`repro.service.logic`;
persistence to a :class:`~repro.service.store.StateStore`.

Concurrency model
-----------------
The discrete-event engine is cooperative and single-owner: exactly one
thread steps it.  The service therefore serializes everything — API
calls *and* scheduler progress — under one re-entrant lock, and the
optional background worker (:meth:`start`) is a single thread that
repeatedly calls :meth:`tick`.  Submissions from any thread are safe;
run concurrency comes from the enactors interleaving on the engine,
not from Python threads racing the simulation.

Every admitted run gets its own :class:`~repro.util.rng.RandomStreams`
seeded from the run record, its own enactor with
``claim_run_span=False`` and ``run_attributes={"tenant", "run"}``, and
(with a durable store) its own enactment journal — so a killed and
restarted service re-admits in-flight runs with ``resume=True`` and
reproduces the exact same outputs (input-keyed application RNG, see
``repro.apps.registration``).

Control-plane observability
---------------------------
Every scheduler decision is recorded as an
:class:`~repro.observability.ops.audit.AuditEvent` through the store
(which assigns the sequence numbers making the trail byte-identical
across same-seed services) and fanned out to the always-on
:class:`~repro.observability.ops.rollup.ControlPlaneTelemetry` and the
:class:`~repro.observability.ops.slo.SLOTracker`.  Admission events
carry the full :class:`~repro.service.logic.AdmissionDecision` payload
(fair-share scores, usage and provisional charges *at decision time*);
quota blocks are audited on reason transitions only.  Cheap wall-clock
profiling around :meth:`tick` feeds :meth:`perf_counters` — engine
events/sec, µs per invocation, mean tick latency — which land in every
run's runstore row.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.core.config import OptimizationConfig
from repro.core.enactor import EnactmentCancelled, MoteurEnactor
from repro.core.journal import EnactmentJournal
from repro.grid.middleware import Grid
from repro.grid.testbeds import (
    cluster_testbed,
    egee_like_testbed,
    faulty_testbed,
    ideal_testbed,
)
from repro.observability import InstrumentationBus
from repro.observability.alerts import Alert
from repro.observability.ops.audit import AuditEvent
from repro.observability.ops.rollup import ControlPlaneTelemetry
from repro.observability.ops.slo import SLO, SLOTracker
from repro.observability.profiling import Profiler, install, profile_counters, wall_clock
from repro.observability.runstore import RunStore, summarize_run
from repro.service.logic import (
    FairShareLedger,
    RunRecord,
    RunState,
    TenantSpec,
    pick_next_explained,
)
from repro.service.store import StateStore
from repro.sim.engine import Engine, Event
from repro.util.rng import RandomStreams

__all__ = ["EnactmentService", "EnactmentServiceError", "TESTBEDS"]

#: named testbed factories the service can host runs on
TESTBEDS: Dict[str, Callable[[Engine, RandomStreams], Grid]] = {
    "ideal": ideal_testbed,
    "cluster": cluster_testbed,
    "egee": egee_like_testbed,
    "faulty": faulty_testbed,
}


class EnactmentServiceError(RuntimeError):
    """A control-plane operation failed (unknown tenant, bad config...)."""


@dataclass
class _ActiveRun:
    """Bookkeeping for one run currently executing on the engine."""

    record: RunRecord
    enactor: MoteurEnactor
    completion: Event


def _outputs_digest(result) -> str:
    """A stable digest of a run's sink outputs (restart-identity checks)."""
    payload = {
        sink: [str(value) for value in result.output_values(sink)]
        for sink in sorted(result.outputs)
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


class EnactmentService:
    """Run many workflows for many tenants over one shared grid.

    Parameters
    ----------
    store:
        Control-plane persistence (:class:`InMemoryStateStore` for
        ephemeral use, :class:`SQLiteStateStore` for crash safety).
    policy:
        Admission ordering: ``"fair-share"`` (default) or ``"fifo"``.
    max_concurrent_runs:
        Global cap on simultaneously executing enactments (the worker
        pool size); per-tenant caps come from each tenant's spec.
    testbed:
        Name from :data:`TESTBEDS` or a ``(engine, streams) -> Grid``
        factory.  All runs share this one grid.
    seed:
        Seed for the grid's *environment* randomness (overheads,
        faults, background load).  Per-run randomness comes from each
        run's own seed.
    runstore:
        Optional :class:`~repro.observability.runstore.RunStore`; each
        completed run lands there as a summary row tagged
        ``service tenant=<t> run=<id>``.
    instrumentation:
        Optional shared :class:`InstrumentationBus`; spans and metrics
        from every layer carry ``tenant``/``run`` attributes.
    half_life, nominal_makespan:
        Fair-share tuning: usage decay half-life (simulated seconds)
        and the provisional charge assumed for an active run of a
        tenant with no completed history yet.
    slos:
        Objectives for the built-in :class:`SLOTracker` (defaults to
        :func:`~repro.observability.ops.slo.default_slos`).
    alert_sinks:
        Callables invoked with each ``slo-burn``
        :class:`~repro.observability.alerts.Alert` as it fires (e.g. a
        :class:`~repro.observability.alerts.JsonlAlertWriter`).
    """

    def __init__(
        self,
        store: StateStore,
        policy: str = "fair-share",
        max_concurrent_runs: int = 4,
        testbed: "str | Callable[[Engine, RandomStreams], Grid]" = "cluster",
        seed: int = 0,
        runstore: Optional[RunStore] = None,
        instrumentation: Optional[InstrumentationBus] = None,
        half_life: float = 4 * 3600.0,
        nominal_makespan: float = 600.0,
        slos: Optional[List[SLO]] = None,
        alert_sinks: Optional[List[Callable[[Alert], None]]] = None,
        profiler: Optional[Profiler] = None,
    ) -> None:
        self.store = store
        self.policy = policy
        self.max_concurrent_runs = max_concurrent_runs
        self.runstore = runstore
        self.instrumentation = instrumentation
        self.nominal_makespan = nominal_makespan
        self.engine = Engine()
        if callable(testbed):
            factory = testbed
        else:
            try:
                factory = TESTBEDS[testbed]
            except KeyError:
                raise EnactmentServiceError(
                    f"unknown testbed {testbed!r}; options: {sorted(TESTBEDS)}"
                ) from None
        self.grid = factory(self.engine, RandomStreams(seed=seed))
        if instrumentation is not None and self.grid.instrumentation is None:
            self.grid.instrumentation = instrumentation
        self.ledger = FairShareLedger(
            half_life=half_life, initial=store.load_usage()
        )
        self._configs = {
            c.label: c for c in OptimizationConfig.paper_configurations()
        }
        self._lock = threading.RLock()
        self._active: Dict[str, _ActiveRun] = {}
        #: completed makespans per tenant (provisional fair-share charge)
        self._makespans: Dict[str, List[float]] = {}
        self._dirty = True  # queue may hold admissible work
        self._thread: Optional[threading.Thread] = None
        self._stop_flag = threading.Event()
        #: live per-tenant rollups, fed by spans and audit events
        self.telemetry = ControlPlaneTelemetry()
        if instrumentation is not None:
            instrumentation.subscribe(self.telemetry)
        #: incremental SLO evaluation; burns route through alert_sinks
        #: and (when a bus is attached) the monitor.alerts.* gate
        self.slo_tracker = SLOTracker(
            slos=slos,
            telemetry=self.telemetry,
            bus=instrumentation,
            alert_sinks=alert_sinks,
        )
        #: run_id -> last audited quota-block reason (transition dedup)
        self._blocked_reasons: Dict[str, str] = {}
        #: wall-clock profiling (throughput counters; see perf_counters)
        self._wall_seconds = 0.0
        self._tick_count = 0
        self._invocations_total = 0
        #: optional hot-path profiler, installed across the whole stack
        #: (engine dispatch, grid submit/attempt, broker ranking, bus
        #: span lifecycle); per-run enactors are wired in _start.
        self.profiler = profiler
        if profiler is not None:
            install(profiler, self.engine, self.grid, self.grid.broker, instrumentation)

    # -- audit trail -------------------------------------------------------
    def _audit(
        self,
        kind: str,
        run_id: str,
        tenant: str,
        message: str = "",
        **attributes: Any,
    ) -> AuditEvent:
        """Record one control-plane decision (store + telemetry + SLOs).

        The store assigns the sequence number; the stored event is fed
        to the live rollups, the SLO tracker is re-evaluated, and —
        when a bus is attached — an instant ``audit.<kind>`` span is
        emitted so control-plane decisions appear on the trace
        timeline next to the data-plane work they explain.
        """
        now = self.engine.now
        event = self.store.append_audit(
            AuditEvent(
                kind=kind,
                time=now,
                run_id=run_id,
                tenant=tenant,
                message=message,
                attributes=attributes,
            )
        )
        self.telemetry.on_audit(event)
        self.slo_tracker.update(now)
        if self.instrumentation is not None:
            self.instrumentation.record(
                f"audit.{kind}",
                "service",
                now,
                now,
                run_id=run_id,
                tenant=tenant,
                message=message,
                sequence=event.sequence,
            )
        return event

    def audit(self, run_id: Optional[str] = None) -> List[AuditEvent]:
        """The persisted audit trail (optionally for one run)."""
        return self.store.audit_events(run_id=run_id)

    # -- tenants -----------------------------------------------------------
    def add_tenant(self, spec: TenantSpec) -> TenantSpec:
        """Register (or update) a tenant."""
        with self._lock:
            self.store.upsert_tenant(spec)
            self._dirty = True
        return spec

    def tenants(self) -> Dict[str, TenantSpec]:
        return self.store.tenants()

    # -- submission --------------------------------------------------------
    def submit(
        self,
        tenant: str,
        workload: str = "bronze",
        n_items: int = 2,
        config_label: str = "SP+DP",
        seed: Optional[int] = None,
        not_before: float = 0.0,
    ) -> RunRecord:
        """Accept a run for *tenant*; returns the QUEUED record.

        Validation happens here (unknown tenant, workload or
        configuration label are rejected); quota enforcement happens at
        admission — an over-quota run waits in the queue.
        """
        with self._lock:
            if workload != "bronze":
                raise EnactmentServiceError(
                    f"unknown workload {workload!r}; this service runs 'bronze'"
                )
            if config_label not in self._configs:
                raise EnactmentServiceError(
                    f"unknown configuration {config_label!r}; "
                    f"options: {sorted(self._configs)}"
                )
            if n_items < 1:
                raise EnactmentServiceError(f"n_items must be >= 1, got {n_items}")
            if tenant not in self.store.tenants():
                raise EnactmentServiceError(f"unknown tenant {tenant!r}")
            seq = self.store.next_run_seq()
            run = RunRecord(
                run_id=f"svc-{seq:04d}",
                tenant=tenant,
                workload=workload,
                n_items=n_items,
                config_label=config_label,
                seed=seed if seed is not None else seq,
                state=RunState.SUBMITTED,
                seq=seq,
                not_before=not_before,
                jobs_estimate=BronzeStandardApplication.jobs_per_pair() * n_items,
                submitted_at=self.engine.now,
            )
            run = run.advance(RunState.QUEUED)
            self.store.put_run(run)
            self._dirty = True
            spec = self.store.tenants()[tenant]
            self._audit(
                "submit",
                run.run_id,
                tenant,
                message=f"{workload} x{n_items} ({config_label})",
                n_items=n_items,
                config_label=config_label,
                seed=run.seed,
                not_before=not_before,
                jobs_estimate=run.jobs_estimate,
                weight=spec.weight,
            )
            return run

    def status(self, run_id: str) -> RunRecord:
        """The current record for *run_id* (raises if unknown)."""
        run = self.store.get_run(run_id)
        if run is None:
            raise EnactmentServiceError(f"unknown run {run_id!r}")
        return run

    def runs(self, states: Optional[List[RunState]] = None) -> List[RunRecord]:
        return self.store.runs(states=states)

    # -- cancellation ------------------------------------------------------
    def cancel(self, run_id: str, reason: str = "cancelled by user") -> RunRecord:
        """Cancel a queued or running run.

        A queued run goes terminal immediately.  A running run is
        cancelled through its enactor — queued grid jobs are withdrawn
        with ``resubmit=False`` (capacity back to the other tenants)
        and the terminal record lands at the next engine step; this
        method performs that step so the returned record is terminal.
        Cancelling an already-terminal run is a no-op.
        """
        with self._lock:
            run = self.status(run_id)
            if run.state.terminal:
                return run
            if run.state is RunState.QUEUED:
                run = run.advance(RunState.CANCELLED)
                run.finished_at = self.engine.now
                run.error = reason
                self.store.put_run(run)
                self._dirty = True
                self._audit("cancel", run_id, run.tenant, message=reason, was="queued")
                self._audit(
                    "finish", run_id, run.tenant,
                    message=f"cancelled while queued: {reason}",
                    state="cancelled", error=reason, **{"from": "queued"},
                )
                return run
            active = self._active.get(run_id)
            if active is None:
                # Orphan: a previous (killed) service left it RUNNING.
                # Nothing is executing, so the record just goes terminal.
                run = run.advance(RunState.CANCELLED)
                run.finished_at = self.engine.now
                run.error = reason
                self.store.put_run(run)
                self._audit("cancel", run_id, run.tenant, message=reason, was="orphan")
                self._audit(
                    "finish", run_id, run.tenant,
                    message=f"orphan cancelled: {reason}",
                    state="cancelled", error=reason, **{"from": "running"},
                )
                return run
            self._audit("cancel", run_id, run.tenant, message=reason, was="running")
            active.enactor.cancel(reason)
            # The failed completion event is on the heap; step until the
            # harvest callback records the terminal state.
            while run_id in self._active and self.engine.peek() != float("inf"):
                self.engine.step()
            return self.status(run_id)

    # -- scheduling --------------------------------------------------------
    def _running_by_tenant(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for active in self._active.values():
            counts[active.record.tenant] = counts.get(active.record.tenant, 0) + 1
        return counts

    def _jobs_by_tenant(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for active in self._active.values():
            record = active.record
            counts[record.tenant] = counts.get(record.tenant, 0) + record.jobs_estimate
        return counts

    def _typical_makespan(self, tenant: str) -> float:
        history = self._makespans.get(tenant)
        if not history:
            return self.nominal_makespan
        return sum(history) / len(history)

    def _provisional(self) -> Dict[str, float]:
        charges: Dict[str, float] = {}
        for tenant, running in self._running_by_tenant().items():
            charges[tenant] = running * self._typical_makespan(tenant)
        return charges

    def _admit(self) -> int:
        """Admit eligible queued runs into free slots; returns how many."""
        if not self._dirty or len(self._active) >= self.max_concurrent_runs:
            return 0
        admitted = 0
        specs = self.store.tenants()
        queued = self.store.runs(states=[RunState.QUEUED])
        blocked_now: Dict[str, str] = {}
        while len(self._active) < self.max_concurrent_runs:
            decision = pick_next_explained(
                queued,
                specs,
                self._running_by_tenant(),
                self._jobs_by_tenant(),
                self.ledger,
                self.engine.now,
                policy=self.policy,
                provisional=self._provisional(),
            )
            blocked_now = dict(decision.blocked)
            pick = decision.pick
            if pick is None:
                break
            queued.remove(pick)
            self._start(pick)
            self._audit(
                "admit",
                pick.run_id,
                pick.tenant,
                message=f"admitted under {self.policy}",
                wait=max(0.0, self.engine.now - pick.submitted_at),
                **decision.to_attributes(),
            )
            admitted += 1
        # Quota blocks are audited on reason *transitions* only, so a
        # starved run produces one event per cause, not one per tick.
        for run_id, reason in sorted(blocked_now.items()):
            if self._blocked_reasons.get(run_id) != reason:
                record = next((r for r in queued if r.run_id == run_id), None)
                self._audit(
                    "quota-block",
                    run_id,
                    record.tenant if record is not None else "",
                    message=reason,
                )
        self._blocked_reasons = blocked_now
        if not queued:
            self._dirty = False
        return admitted

    def _start(self, run: RunRecord) -> None:
        """Launch *run* on the shared engine (QUEUED -> RUNNING)."""
        record = run.advance(RunState.RUNNING)
        record.started_at = self.engine.now
        streams = RandomStreams(seed=record.seed)
        app = BronzeStandardApplication(
            self.engine,
            self.grid,
            streams,
            owner=record.tenant,
            tags={"tenant": record.tenant, "run": record.run_id},
        )
        dataset = app.build_dataset(record.n_items)
        journal_path = self.store.journal_path(record.run_id)
        replay = None
        if record.resume and journal_path and os.path.exists(journal_path):
            replay = EnactmentJournal(journal_path).load()
        enactor = MoteurEnactor(
            self.engine,
            app.workflow,
            self._configs[record.config_label],
            grid=self.grid,
            instrumentation=self.instrumentation,
            journal=journal_path,
            run_attributes={"tenant": record.tenant, "run": record.run_id},
            claim_run_span=False,
        )
        enactor.profiler = self.profiler
        completion = enactor.enact(dataset, replay=replay)
        # The scheduler harvests failures via callback; an undefused
        # failed event would crash the shared engine for every run.
        completion.defused = True
        completion.callbacks.append(
            lambda event, run_id=record.run_id: self._harvest(run_id, event)
        )
        self._active[record.run_id] = _ActiveRun(
            record=record, enactor=enactor, completion=completion
        )
        self.store.put_run(record)

    def _harvest(self, run_id: str, event: Event) -> None:
        """Record a completed enactment (engine callback, under lock)."""
        active = self._active.pop(run_id, None)
        if active is None:  # pragma: no cover - double-fire guard
            return
        record = active.record
        now = self.engine.now
        record.finished_at = now
        jobs = sum(
            1
            for r in self.grid.records
            if r.description.tags.get("run") == run_id
        )
        if event.ok:
            result = event.value
            record = record.advance(RunState.DONE)
            record.result = {
                "makespan": result.makespan,
                "invocations": result.invocation_count,
                "replayed": result.replayed_count,
                "grid_jobs": jobs,
                "outputs_digest": _outputs_digest(result),
            }
            makespan = result.makespan
            self._makespans.setdefault(record.tenant, []).append(makespan)
            self._invocations_total += result.invocation_count
            if self.runstore is not None:
                summary = summarize_run(
                    result,
                    n_items=record.n_items,
                    seed=record.seed,
                    note=f"service tenant={record.tenant} run={run_id}",
                )
                summary.counters.update(self.perf_counters())
                if self.profiler is not None:
                    # Service-lifetime totals, like the other perf.*
                    # counters: runs interleave on one engine, so
                    # per-run attribution is not meaningful here.
                    summary.counters.update(
                        profile_counters(self.profiler.snapshot())
                    )
                self.runstore.append(summary)
        else:
            error = event.value
            if isinstance(error, EnactmentCancelled):
                record = record.advance(RunState.CANCELLED)
                record.error = error.reason
                record.result = {
                    "cancelled_jobs": error.report.cancelled_jobs,
                    "grid_jobs": jobs,
                }
            else:
                record = record.advance(RunState.FAILED)
                record.error = str(error)
                record.result = {"grid_jobs": jobs}
            # A failed/cancelled run still consumed capacity: charge the
            # time it actually occupied a slot.
            makespan = now - (record.started_at or now)
        self.ledger.charge(record.tenant, makespan, now)
        self.store.save_usage(self.ledger.snapshot())
        self.store.put_run(record)
        self._dirty = True
        self._blocked_reasons.pop(run_id, None)
        self._audit(
            "finish",
            run_id,
            record.tenant,
            message=f"run went {record.state.value}",
            state=record.state.value,
            makespan=record.result.get("makespan") if record.result else None,
            error=record.error,
            grid_jobs=jobs,
            charged=makespan,
            usage=self.ledger.usage(record.tenant, now),
            **{"from": "running"},
        )

    # -- progress ----------------------------------------------------------
    def tick(self, max_events: int = 500) -> int:
        """Make bounded progress; returns units of work done.

        One call admits eligible runs, processes up to *max_events*
        engine events, and — when the service is otherwise idle but
        queued runs have a future ``not_before`` — advances the clock
        to the earliest one.  Returns 0 only when there is genuinely
        nothing to do right now.
        """
        with self._lock:
            wall_start = wall_clock()
            progress = self._admit()
            steps = 0
            while steps < max_events and self.engine.peek() != float("inf"):
                self.engine.step()
                steps += 1
            progress += steps
            if progress == 0 and not self._active:
                queued = self.store.runs(states=[RunState.QUEUED])
                future = [r.not_before for r in queued if r.not_before > self.engine.now]
                if future:
                    self.engine.run(until=min(future))
                    self._dirty = True
                    progress += 1
            self._wall_seconds += wall_clock() - wall_start
            self._tick_count += 1
            return progress

    def drain(self, max_ticks: int = 1_000_000) -> List[RunRecord]:
        """Run until every submitted run is terminal; returns all records.

        Raises when the service stops making progress with queued runs
        that can never be admitted (e.g. a tenant quota smaller than
        any of its submissions).
        """
        with self._lock:
            for _ in range(max_ticks):
                progress = self.tick()
                if progress:
                    continue
                queued = self.store.runs(states=[RunState.QUEUED])
                if not queued and not self._active:
                    return self.store.runs()
                raise EnactmentServiceError(
                    f"service is stuck: {len(queued)} queued run(s) cannot be "
                    f"admitted and {len(self._active)} active run(s) make no "
                    "progress (check tenant quotas)"
                )
            raise EnactmentServiceError(f"drain() exceeded {max_ticks} ticks")

    # -- crash recovery ----------------------------------------------------
    def recover(self) -> List[RunRecord]:
        """Re-queue runs a previous (killed) service left non-terminal.

        RUNNING runs come back with ``resume=True`` so admission
        replays their enactment journal — completed invocations cost
        zero grid jobs and the final outputs are identical to what the
        uninterrupted run would have produced.
        """
        requeued: List[RunRecord] = []
        with self._lock:
            for run in self.store.runs(
                states=[RunState.SUBMITTED, RunState.RUNNING]
            ):
                if run.run_id in self._active:
                    continue  # actually active here, not an orphan
                record = replace(
                    run,
                    state=RunState.QUEUED,
                    resume=run.resume or run.state is RunState.RUNNING,
                    started_at=None,
                    finished_at=None,
                    error=None,
                )
                self.store.put_run(record)
                requeued.append(record)
                self._audit(
                    "recover",
                    record.run_id,
                    record.tenant,
                    message=f"orphan re-queued (was {run.state.value})",
                    resume=record.resume,
                    was=run.state.value,
                )
            if requeued:
                self._dirty = True
        return requeued

    # -- background worker -------------------------------------------------
    def start(self, poll: float = 0.005) -> None:
        """Run the scheduler loop in a daemon thread until :meth:`stop`."""
        with self._lock:
            if self._thread is not None:
                return
            self._stop_flag.clear()
            self._thread = threading.Thread(
                target=self._worker, args=(poll,), name="enactment-service", daemon=True
            )
            self._thread.start()

    def _worker(self, poll: float) -> None:
        while not self._stop_flag.is_set():
            if self.tick() == 0:
                self._stop_flag.wait(poll)

    def stop(self) -> None:
        """Stop the background worker (idempotent; joins the thread)."""
        thread = self._thread
        if thread is None:
            return
        self._stop_flag.set()
        thread.join()
        self._thread = None

    # -- introspection -----------------------------------------------------
    def active_runs(self) -> List[str]:
        """Run ids currently executing on the engine."""
        with self._lock:
            return sorted(self._active)

    def perf_counters(self) -> Dict[str, float]:
        """Wall-clock throughput counters (the ``perf.*`` keys).

        Sampled from cheap accumulators around :meth:`tick` — engine
        events processed per wall-clock second, wall-clock µs per
        completed invocation, and mean tick latency in ms.  These are
        *profiling* numbers: nondeterministic by nature, merged into
        every runstore row, and regression-gated only when
        ``compare-runs --budget-throughput`` is given.  The engine's
        deterministic lifetime counters (``engine.*``: events
        scheduled/processed, peak heap size, cancelled events) ride
        along.
        """
        with self._lock:
            wall = self._wall_seconds
            events = self.engine.events_processed
            out = {
                "perf.events": float(events),
                "perf.ticks": float(self._tick_count),
                "perf.wall_seconds": round(wall, 6),
            }
            if wall > 0:
                out["perf.events_per_sec"] = round(events / wall, 3)
            if self._tick_count:
                out["perf.tick_ms"] = round(1000.0 * wall / self._tick_count, 6)
            if self._invocations_total and wall > 0:
                out["perf.us_per_invocation"] = round(
                    1e6 * wall / self._invocations_total, 3
                )
            out.update(self.engine.counters())
            return out

    def telemetry_status(self):
        """The live ops state as a wire-shaped
        :class:`~repro.service.api.TelemetryStatus`."""
        from repro.service.api import telemetry_status

        with self._lock:
            return telemetry_status(
                now=self.engine.now,
                rollups=self.telemetry.rollups(),
                totals=self.telemetry.totals(),
                slos=self.slo_tracker.statuses(),
                perf=self.perf_counters(),
                alerts=len(self.slo_tracker.alerts),
            )

    def close(self) -> None:
        """Stop the worker and release the store."""
        self.stop()
        self.store.close()
