"""Command-line front for the multi-tenant enactment service.

Every invocation opens the control-plane state directory (SQLite by
default, so runs and tenants persist across commands), builds an
:class:`~repro.service.scheduler.EnactmentService` over it, and
performs one operation::

    python -m repro.service tenants --add alice --weight 2
    python -m repro.service submit --tenant alice --pairs 2
    python -m repro.service status
    python -m repro.service cancel svc-0001
    python -m repro.service drain
    python -m repro.service demo --policy fair-share
    python -m repro.service audit svc-0001
    python -m repro.service metrics --out metrics.prom
    python -m repro.service top --once

``submit`` only enqueues; ``drain`` executes everything queued (after
recovering runs a previous, killed process left in flight — their
journals replay to identical results).  ``demo`` replays a
multi-tenant traffic script end to end and prints per-tenant fairness
numbers.

The observability commands read the persisted control plane, so they
work from a different process than the one draining: ``audit``
explains any run's decision history from the store's audit trail,
``metrics`` renders per-tenant rollups as Prometheus text (``--serve``
exposes a scrape endpoint), and ``top`` is the ops console (``--once``
for one CI-friendly frame, ``--watch`` for a live ANSI refresh).
``--telemetry`` attaches an instrumentation bus to commands that
execute runs; ``--alerts`` streams ``slo-burn`` alerts to a JSONL
file; ``--slo kind=value`` overrides the default objectives;
``--profile PATH`` installs the deterministic hot-path profiler and
writes the profile (``repro.observability.profiling``) after the
command drains.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.observability import InstrumentationBus
from repro.observability.alerts import JsonlAlertWriter, alerts_from_jsonl
from repro.observability.logbridge import cli_logger
from repro.observability.ops import (
    CLEAR_SCREEN,
    ControlPlaneTelemetry,
    MetricsHTTPServer,
    SLOTracker,
    audit_events_to_jsonl,
    explain_run,
    parse_slo,
    render_prometheus,
    render_top,
    rollups_from_records,
)
from repro.observability.profiling import Profiler, TickClock
from repro.observability.runstore import RunStore
from repro.service.api import run_status
from repro.service.logic import RunRecord, RunState, TenantSpec
from repro.service.scheduler import TESTBEDS, EnactmentService, EnactmentServiceError
from repro.service.store import InMemoryStateStore, SQLiteStateStore, StateStore

#: the embedded demo traffic: three unequal tenants, eight runs,
#: submissions staggered in simulated time
DEMO_SCRIPT: Dict[str, object] = {
    "tenants": [
        {"name": "alice", "weight": 2.0, "max_concurrent_runs": 2},
        {"name": "bob", "weight": 1.0, "max_concurrent_runs": 2},
        {"name": "carol", "weight": 1.0, "max_concurrent_runs": 1, "max_grid_jobs": 12},
    ],
    "runs": [
        {"tenant": "alice", "n_items": 2, "config_label": "SP+DP"},
        {"tenant": "alice", "n_items": 2, "config_label": "SP+DP"},
        {"tenant": "bob", "n_items": 2, "config_label": "SP+DP"},
        {"tenant": "bob", "n_items": 2, "config_label": "SP+DP+JG"},
        {"tenant": "carol", "n_items": 2, "config_label": "SP+DP"},
        {"tenant": "carol", "n_items": 2, "config_label": "SP"},
        {"tenant": "alice", "n_items": 2, "config_label": "SP+DP", "not_before": 300.0},
        {"tenant": "bob", "n_items": 2, "config_label": "SP+DP", "not_before": 600.0},
    ],
}


def _open_store(args: argparse.Namespace) -> StateStore:
    if args.store == "memory":
        return InMemoryStateStore()
    return SQLiteStateStore(args.state)


def _slos(args: argparse.Namespace):
    """Objectives from repeated ``--slo kind=value`` (None = defaults)."""
    specs = getattr(args, "slo", None)
    if not specs:
        return None
    return [parse_slo(spec) for spec in specs]


def _service(args: argparse.Namespace, store: StateStore) -> EnactmentService:
    runstore = RunStore(args.runstore) if args.runstore else None
    bus = InstrumentationBus() if getattr(args, "telemetry", False) else None
    profiler = None
    if getattr(args, "profile", None):
        # Deterministic clock: the service-level profile is part of the
        # reproducibility story (byte-identical across same-seed runs).
        profiler = Profiler(clock=TickClock(), label="service drain")
    return EnactmentService(
        store,
        policy=args.policy,
        max_concurrent_runs=args.max_runs,
        testbed=args.testbed,
        seed=args.seed,
        runstore=runstore,
        instrumentation=bus,
        slos=_slos(args),
        alert_sinks=_sinks(args),
        profiler=profiler,
    )


def _sinks(args: argparse.Namespace):
    sinks = []
    if getattr(args, "alerts", None):
        sinks.append(JsonlAlertWriter(args.alerts))
    return sinks or None


def _write_profile(args: argparse.Namespace, service: EnactmentService, out) -> None:
    """Save the installed profiler's snapshot if ``--profile`` was given."""
    profiler = service.profiler
    if profiler is None:
        return
    profile = profiler.snapshot()
    path = profile.save(args.profile)
    out.info(
        f"profile: {profile.total_time * 1000:.1f} ms accounted "
        f"({profile.clock} clock) -> {path}"
    )


def _print_runs(out, runs: List[RunRecord]) -> None:
    if not runs:
        out.info("no runs")
        return
    out.info(
        f"{'run':<10} {'tenant':<8} {'state':<10} {'config':<9} "
        f"{'pairs':>5} {'makespan':>10}  error"
    )
    for run in runs:
        makespan = f"{run.makespan:.1f}" if run.makespan is not None else "-"
        out.info(
            f"{run.run_id:<10} {run.tenant:<8} {run.state.value:<10} "
            f"{run.config_label:<9} {run.n_items:>5} {makespan:>10}  "
            f"{run.error or ''}"
        )


def cmd_tenants(args: argparse.Namespace) -> int:
    out = cli_logger()
    store = _open_store(args)
    try:
        if args.add:
            spec = TenantSpec(
                name=args.add,
                weight=args.weight,
                max_concurrent_runs=args.max_tenant_runs,
                max_grid_jobs=args.max_grid_jobs,
            )
            store.upsert_tenant(spec)
            out.info(f"tenant {spec.name!r} registered: {spec.to_dict()}")
            return 0
        tenants = store.tenants()
        if not tenants:
            out.info("no tenants (register one with: tenants --add NAME)")
            return 0
        for spec in sorted(tenants.values(), key=lambda s: s.name):
            out.info(json.dumps(spec.to_dict(), sort_keys=True))
        return 0
    finally:
        store.close()


def cmd_submit(args: argparse.Namespace) -> int:
    out = cli_logger()
    store = _open_store(args)
    service = _service(args, store)
    try:
        run = service.submit(
            tenant=args.tenant,
            n_items=args.pairs,
            config_label=args.config,
            seed=args.run_seed,
            not_before=args.not_before,
        )
        out.info(f"queued {run.run_id} for tenant {run.tenant!r} "
                 f"({run.n_items} pairs, {run.config_label}, seed {run.seed})")
        out.info("execute with: python -m repro.service drain")
        return 0
    finally:
        service.close()


def cmd_status(args: argparse.Namespace) -> int:
    out = cli_logger()
    store = _open_store(args)
    try:
        if args.run_id:
            run = store.get_run(args.run_id)
            if run is None:
                out.error(f"unknown run {args.run_id!r}")
                return 1
            out.info(json.dumps(run_status(run).to_dict(), indent=2, sort_keys=True))
            return 0
        _print_runs(out, store.runs())
        return 0
    finally:
        store.close()


def cmd_cancel(args: argparse.Namespace) -> int:
    out = cli_logger()
    store = _open_store(args)
    service = _service(args, store)
    try:
        run = service.cancel(args.run_id, reason=args.reason)
        out.info(f"{run.run_id}: {run.state.value} ({run.error or 'no error'})")
        return 0
    finally:
        service.close()


def cmd_drain(args: argparse.Namespace) -> int:
    out = cli_logger()
    store = _open_store(args)
    service = _service(args, store)
    try:
        recovered = service.recover()
        for run in recovered:
            out.info(f"recovered {run.run_id} (resume={run.resume})")
        runs = service.drain()
        _print_runs(out, runs)
        _write_profile(args, service, out)
        return 0
    finally:
        service.close()


def _offline_state(args: argparse.Namespace, store: StateStore):
    """Rollups + SLO statuses rebuilt from the persisted control plane.

    This is the cross-process path (``metrics`` / ``top``): no live
    telemetry exists here, so the rollups come from the stored run
    records, tenant specs and fair-share snapshot.
    """
    tenants = store.tenants()
    usage = {
        tenant: amount for tenant, (amount, _stamp) in store.load_usage().items()
    }
    weights = {name: spec.weight for name, spec in tenants.items()}
    telemetry = ControlPlaneTelemetry()
    for rollup in rollups_from_records(store.runs(), weights=weights, usage=usage):
        telemetry.tenants[rollup.tenant] = rollup
    for name, spec in tenants.items():  # tenants with no runs yet
        rollup = telemetry.tenant(name)
        rollup.weight = spec.weight
        if name in usage:
            rollup.usage = usage[name]
    tracker = SLOTracker(slos=_slos(args), telemetry=telemetry)
    return telemetry.rollups(), tracker.statuses()


def cmd_audit(args: argparse.Namespace) -> int:
    out = cli_logger()
    store = _open_store(args)
    try:
        run_id: Optional[str] = args.run_id
        events = store.audit_events()
        if run_id is not None:
            own = [event for event in events if event.run_id == run_id]
            if not own and store.get_run(run_id) is None:
                out.error(f"unknown run {run_id!r}")
                return 1
        if args.json:
            selected = (
                [e for e in events if e.run_id == run_id]
                if run_id is not None
                else events
            )
            print(audit_events_to_jsonl(selected))
            return 0
        lines = explain_run(events, run_id=run_id)
        if not lines:
            out.info("no audit events")
            return 0
        for line in lines:
            out.info(line)
        return 0
    finally:
        store.close()


def cmd_metrics(args: argparse.Namespace) -> int:
    out = cli_logger()
    store = _open_store(args)
    try:
        def render() -> str:
            rollups, statuses = _offline_state(args, store)
            return render_prometheus(rollups, slo_statuses=statuses)

        text = render()
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            out.info(f"wrote {len(text.splitlines())} metric lines to {args.out}")
        else:
            sys.stdout.write(text)
        if args.serve:
            server = MetricsHTTPServer(render, port=args.port).start()
            out.info(
                f"serving http://127.0.0.1:{server.port}/metrics (Ctrl-C stops)"
            )
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
            finally:
                server.stop()
        return 0
    finally:
        store.close()


def cmd_top(args: argparse.Namespace) -> int:
    store = _open_store(args)
    try:
        def frame() -> str:
            rollups, statuses = _offline_state(args, store)
            alerts = []
            if args.alerts and os.path.exists(args.alerts):
                with open(args.alerts, "r", encoding="utf-8") as handle:
                    alerts = alerts_from_jsonl(handle.read())
            return render_top(
                rollups,
                slo_statuses=statuses,
                alerts=alerts,
                title=f"enactment service [{args.state}]",
            )

        if args.watch:
            try:
                while True:
                    sys.stdout.write(CLEAR_SCREEN + frame())
                    sys.stdout.flush()
                    time.sleep(args.interval)
            except KeyboardInterrupt:
                return 0
        sys.stdout.write(frame())
        return 0
    finally:
        store.close()


def _tenant_spread(runs: List[RunRecord]) -> Dict[str, float]:
    """Per-tenant mean completion time (simulated) of DONE runs."""
    finished: Dict[str, List[float]] = {}
    for run in runs:
        if run.state is RunState.DONE and run.finished_at is not None:
            finished.setdefault(run.tenant, []).append(run.finished_at)
    return {
        tenant: sum(stamps) / len(stamps) for tenant, stamps in sorted(finished.items())
    }


def cmd_demo(args: argparse.Namespace) -> int:
    out = cli_logger()
    if args.script:
        with open(args.script, "r", encoding="utf-8") as handle:
            script = json.load(handle)
    else:
        script = DEMO_SCRIPT
    store = _open_store(args)
    service = _service(args, store)
    try:
        for payload in script["tenants"]:
            service.add_tenant(TenantSpec.from_dict(payload))
        for payload in script["runs"]:
            run = service.submit(
                tenant=str(payload["tenant"]),
                n_items=int(payload.get("n_items", 2)),
                config_label=str(payload.get("config_label", "SP+DP")),
                seed=payload.get("seed"),
                not_before=float(payload.get("not_before", 0.0)),
            )
            out.info(f"submitted {run.run_id} ({run.tenant}, nb={run.not_before:g})")
        runs = service.drain()
        _print_runs(out, runs)
        done = [r for r in runs if r.state is RunState.DONE]
        out.info(
            f"{len(done)}/{len(runs)} runs DONE under {args.policy!r} "
            f"(simulated end: {service.engine.now:.1f}s)"
        )
        for tenant, mean in _tenant_spread(runs).items():
            out.info(f"  {tenant:<8} mean completion {mean:10.1f}s")
        for rollup in service.telemetry.rollups():
            if rollup.tenant == ControlPlaneTelemetry.UNTAGGED:
                continue
            out.info(
                f"  {rollup.tenant:<8} rollup: done={rollup.done} "
                f"failed={rollup.failed} jobs={rollup.jobs_completed} "
                f"cpu={rollup.cpu_seconds:.0f}s "
                f"wait_p95={rollup.queue_wait_p95():.0f}s "
                f"usage={rollup.usage:.0f}"
            )
        burns = service.slo_tracker.alerts
        out.info(f"slo burns: {len(burns)}")
        for alert in burns:
            out.info(f"  [t={alert.time:.1f}s] {alert.subject}: {alert.message}")
        perf = service.perf_counters()
        if "perf.events_per_sec" in perf:
            out.info(
                f"throughput: {perf['perf.events_per_sec']:.0f} engine events/s "
                f"over {perf['perf.ticks']:.0f} ticks"
            )
        _write_profile(args, service, out)
        return 0 if len(done) == len(runs) else 1
    finally:
        service.close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="multi-tenant enactment service (simulated grid)",
    )
    parser.add_argument(
        "--state",
        default="service-state",
        help="control-plane state directory (SQLite store; default %(default)s)",
    )
    parser.add_argument(
        "--store",
        choices=("sqlite", "memory"),
        default="sqlite",
        help="state backend (memory = ephemeral, for demos)",
    )
    parser.add_argument(
        "--policy",
        choices=("fair-share", "fifo"),
        default="fair-share",
        help="admission ordering (default %(default)s)",
    )
    parser.add_argument(
        "--testbed",
        choices=sorted(TESTBEDS),
        default="cluster",
        help="shared grid all runs execute on (default %(default)s)",
    )
    parser.add_argument(
        "--max-runs",
        type=int,
        default=4,
        help="global concurrent-run cap (default %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="grid environment seed (default 0)"
    )
    parser.add_argument(
        "--runstore",
        default=None,
        help="optional run-summary store directory (repro.observability.runstore)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="attach an instrumentation bus (tenant-tagged spans feed the "
        "live rollups on commands that execute runs)",
    )
    parser.add_argument(
        "--alerts",
        default=None,
        metavar="PATH",
        help="stream slo-burn alerts to this JSONL file (top also reads it)",
    )
    parser.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="KIND=VALUE",
        help="override an objective, e.g. queue-wait=900 or "
        "success-rate=0.95:1.5 (repeatable; default: built-in SLOs)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="install the deterministic hot-path profiler and write the "
        "profile JSON here after drain/demo (inspect with: "
        "python -m repro.experiments profile report PATH)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tenants = sub.add_parser("tenants", help="list or register tenants")
    tenants.add_argument("--add", metavar="NAME", help="register this tenant")
    tenants.add_argument("--weight", type=float, default=1.0)
    tenants.add_argument(
        "--max-tenant-runs", type=int, default=2, help="tenant concurrent-run quota"
    )
    tenants.add_argument(
        "--max-grid-jobs", type=int, default=None, help="tenant grid-job quota"
    )
    tenants.set_defaults(func=cmd_tenants)

    submit = sub.add_parser("submit", help="queue one run")
    submit.add_argument("--tenant", required=True)
    submit.add_argument("--pairs", type=int, default=2, help="image pairs (default 2)")
    submit.add_argument(
        "--config", default="SP+DP", help="optimization label (default %(default)s)"
    )
    submit.add_argument("--run-seed", type=int, default=None, help="per-run seed")
    submit.add_argument(
        "--not-before", type=float, default=0.0, help="earliest simulated start time"
    )
    submit.set_defaults(func=cmd_submit)

    status = sub.add_parser("status", help="show all runs, or one in detail")
    status.add_argument("run_id", nargs="?", default=None)
    status.set_defaults(func=cmd_status)

    cancel = sub.add_parser("cancel", help="cancel a queued or in-flight run")
    cancel.add_argument("run_id")
    cancel.add_argument("--reason", default="cancelled by user")
    cancel.set_defaults(func=cmd_cancel)

    drain = sub.add_parser(
        "drain", help="recover + execute every queued run to completion"
    )
    drain.set_defaults(func=cmd_drain)

    demo = sub.add_parser("demo", help="replay a multi-tenant traffic script")
    demo.add_argument(
        "--script", default=None, help="JSON traffic script (default: embedded demo)"
    )
    demo.set_defaults(func=cmd_demo)

    audit = sub.add_parser(
        "audit", help="explain the control plane's decision history"
    )
    audit.add_argument(
        "run_id", nargs="?", default=None,
        help="limit to one run (plus admissions that mention it)",
    )
    audit.add_argument(
        "--json", action="store_true", help="raw JSONL instead of prose"
    )
    audit.set_defaults(func=cmd_audit)

    metrics = sub.add_parser(
        "metrics", help="per-tenant rollups in Prometheus text format"
    )
    metrics.add_argument(
        "--out", default=None, metavar="PATH", help="write to a file (else stdout)"
    )
    metrics.add_argument(
        "--serve", action="store_true",
        help="keep serving GET /metrics over HTTP after rendering",
    )
    metrics.add_argument(
        "--port", type=int, default=0,
        help="scrape-endpoint port (default: ephemeral)",
    )
    metrics.set_defaults(func=cmd_metrics)

    top = sub.add_parser("top", help="the live ops console")
    top.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (default; CI-friendly)",
    )
    top.add_argument(
        "--watch", action="store_true", help="refresh until interrupted"
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between --watch refreshes (default %(default)s)",
    )
    top.set_defaults(func=cmd_top)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except EnactmentServiceError as exc:
        cli_logger().error(str(exc))
        return 2


if __name__ == "__main__":
    sys.exit(main())
