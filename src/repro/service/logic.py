"""Pure control-plane logic: run lifecycle, quotas, fair share.

This module has **no I/O and no simulation dependencies** — it is the
innermost layer of the enactment service (see DESIGN.md).  Everything
here is plain data plus decision functions, which is what makes the
admission policy unit-testable without an engine, a grid, or a store:

* :class:`RunState` / :func:`validate_transition` — the run lifecycle
  ``SUBMITTED -> QUEUED -> RUNNING -> {DONE, FAILED, CANCELLED}`` (a
  queued run may also be cancelled before it ever starts);
* :class:`TenantSpec` — a tenant's identity, fair-share weight and
  quotas (max concurrent runs, max grid jobs in flight);
* :class:`RunRecord` — one submitted run, JSON-plain for the stores;
* :class:`FairShareLedger` — usage-decayed per-tenant accounting;
* :func:`pick_next` — the admission decision: which queued run starts
  when a worker slot frees up, under FIFO or fair-share ordering.

The fair-share rule is the classic usage-decayed share: each tenant
accumulates charged usage (run makespans) that decays exponentially
with a configurable half-life, and the next run admitted belongs to
the eligible tenant with the smallest ``effective_usage / weight``.
Effective usage includes a *provisional* charge for runs currently
executing — without it, one tenant's burst would be admitted wholesale
before any usage lands, starving the others (the Yu/Buyya taxonomy's
market-free approximation of proportional share).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "RunState",
    "TransitionError",
    "QuotaError",
    "validate_transition",
    "TenantSpec",
    "RunRecord",
    "FairShareLedger",
    "quota_headroom",
    "AdmissionDecision",
    "pick_next",
    "pick_next_explained",
    "SCHEDULING_POLICIES",
]


class RunState(Enum):
    """Lifecycle of one workflow run through the enactment service."""

    SUBMITTED = "submitted"
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """True for states a run never leaves."""
        return self in (RunState.DONE, RunState.FAILED, RunState.CANCELLED)


#: state -> states it may legally transition to
_TRANSITIONS: Dict[RunState, Tuple[RunState, ...]] = {
    RunState.SUBMITTED: (RunState.QUEUED, RunState.CANCELLED),
    RunState.QUEUED: (RunState.RUNNING, RunState.CANCELLED),
    RunState.RUNNING: (RunState.DONE, RunState.FAILED, RunState.CANCELLED),
    RunState.DONE: (),
    RunState.FAILED: (),
    RunState.CANCELLED: (),
}

#: admission orderings the scheduler supports
SCHEDULING_POLICIES = ("fair-share", "fifo")


class TransitionError(RuntimeError):
    """An illegal run-state transition was attempted."""


class QuotaError(RuntimeError):
    """A submission or admission violated a tenant quota."""


def validate_transition(current: RunState, target: RunState) -> RunState:
    """Return *target* if ``current -> target`` is legal, else raise."""
    if target not in _TRANSITIONS[current]:
        raise TransitionError(
            f"illegal run transition {current.value} -> {target.value}"
        )
    return target


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity, fair-share weight and quotas.

    ``weight`` scales the tenant's fair share (2.0 = entitled to twice
    the share of a weight-1.0 tenant).  ``max_concurrent_runs`` caps
    how many of the tenant's runs may execute at once;
    ``max_grid_jobs`` caps the tenant's estimated concurrent grid jobs
    (None = unlimited).  Both are admission-control quotas: runs over
    quota wait in the queue, they are not rejected.
    """

    name: str
    weight: float = 1.0
    max_concurrent_runs: int = 2
    max_grid_jobs: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tenant needs a non-empty name")
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be > 0, got {self.weight}")
        if self.max_concurrent_runs < 1:
            raise ValueError(
                f"max_concurrent_runs must be >= 1, got {self.max_concurrent_runs}"
            )
        if self.max_grid_jobs is not None and self.max_grid_jobs < 1:
            raise ValueError(f"max_grid_jobs must be >= 1, got {self.max_grid_jobs}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "weight": self.weight,
            "max_concurrent_runs": self.max_concurrent_runs,
            "max_grid_jobs": self.max_grid_jobs,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TenantSpec":
        return cls(
            name=str(payload["name"]),
            weight=float(payload.get("weight", 1.0)),  # type: ignore[arg-type]
            max_concurrent_runs=int(payload.get("max_concurrent_runs", 2)),  # type: ignore[arg-type]
            max_grid_jobs=(
                None
                if payload.get("max_grid_jobs") is None
                else int(payload["max_grid_jobs"])  # type: ignore[arg-type]
            ),
        )


@dataclass
class RunRecord:
    """One submitted workflow run, as the control plane tracks it.

    JSON-plain so both stores persist it verbatim.  ``seq`` is the
    global submission sequence number (FIFO order); simulated-time
    stamps are in engine seconds.  ``jobs_estimate`` is the workload's
    declared concurrent-grid-job footprint, used by the
    ``max_grid_jobs`` quota.
    """

    run_id: str
    tenant: str
    workload: str = "bronze"
    n_items: int = 1
    config_label: str = "SP+DP"
    seed: int = 0
    state: RunState = RunState.SUBMITTED
    seq: int = 0
    #: earliest simulated time the run may start (traffic scripts)
    not_before: float = 0.0
    jobs_estimate: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: resume an interrupted enactment from its journal (set by recovery)
    resume: bool = False
    #: result excerpt, filled at completion (makespan, outputs digest...)
    result: Dict[str, object] = field(default_factory=dict)

    @property
    def makespan(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def advance(self, target: RunState) -> "RunRecord":
        """This record with a validated state transition applied."""
        return replace(self, state=validate_transition(self.state, target))

    def to_dict(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "tenant": self.tenant,
            "workload": self.workload,
            "n_items": self.n_items,
            "config_label": self.config_label,
            "seed": self.seed,
            "state": self.state.value,
            "seq": self.seq,
            "not_before": self.not_before,
            "jobs_estimate": self.jobs_estimate,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "resume": self.resume,
            "result": dict(self.result),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunRecord":
        return cls(
            run_id=str(payload["run_id"]),
            tenant=str(payload["tenant"]),
            workload=str(payload.get("workload", "bronze")),
            n_items=int(payload.get("n_items", 1)),  # type: ignore[arg-type]
            config_label=str(payload.get("config_label", "SP+DP")),
            seed=int(payload.get("seed", 0)),  # type: ignore[arg-type]
            state=RunState(str(payload.get("state", "submitted"))),
            seq=int(payload.get("seq", 0)),  # type: ignore[arg-type]
            not_before=float(payload.get("not_before", 0.0)),  # type: ignore[arg-type]
            jobs_estimate=int(payload.get("jobs_estimate", 0)),  # type: ignore[arg-type]
            submitted_at=float(payload.get("submitted_at", 0.0)),  # type: ignore[arg-type]
            started_at=(
                None
                if payload.get("started_at") is None
                else float(payload["started_at"])  # type: ignore[arg-type]
            ),
            finished_at=(
                None
                if payload.get("finished_at") is None
                else float(payload["finished_at"])  # type: ignore[arg-type]
            ),
            error=(None if payload.get("error") is None else str(payload["error"])),
            resume=bool(payload.get("resume", False)),
            result=dict(payload.get("result") or {}),  # type: ignore[arg-type]
        )


class FairShareLedger:
    """Usage-decayed per-tenant accounting (pure, time passed in).

    Charged usage decays exponentially: a charge of ``u`` at time ``t``
    is worth ``u * 0.5 ** ((now - t) / half_life)`` at ``now``.  The
    ledger stores one (usage, stamp) pair per tenant and re-bases it on
    every charge, so reads are O(1) and independent of charge history.
    """

    def __init__(
        self,
        half_life: float = 4 * 3600.0,
        initial: Optional[Mapping[str, Tuple[float, float]]] = None,
    ) -> None:
        if half_life <= 0:
            raise ValueError(f"half_life must be > 0, got {half_life}")
        self.half_life = half_life
        #: tenant -> (usage at stamp, stamp)
        self._entries: Dict[str, Tuple[float, float]] = dict(initial or {})

    def usage(self, tenant: str, now: float) -> float:
        """The tenant's decayed usage at simulated time *now*."""
        entry = self._entries.get(tenant)
        if entry is None:
            return 0.0
        amount, stamp = entry
        if now <= stamp:
            return amount
        return amount * math.pow(0.5, (now - stamp) / self.half_life)

    def charge(self, tenant: str, amount: float, now: float) -> float:
        """Add *amount* of usage at *now*; returns the new decayed total."""
        if amount < 0:
            raise ValueError(f"cannot charge negative usage ({amount})")
        total = self.usage(tenant, now) + amount
        self._entries[tenant] = (total, now)
        return total

    def snapshot(self) -> Dict[str, Tuple[float, float]]:
        """The raw (usage, stamp) entries, for persistence."""
        return dict(self._entries)


def quota_headroom(
    spec: TenantSpec,
    running_runs: int,
    jobs_in_flight: int,
    jobs_estimate: int,
) -> Optional[str]:
    """Why the tenant cannot start another run right now, or None.

    Pure quota check: *running_runs* and *jobs_in_flight* describe the
    tenant's current footprint, *jobs_estimate* the candidate run's.
    """
    if running_runs >= spec.max_concurrent_runs:
        return (
            f"tenant {spec.name!r} at max_concurrent_runs "
            f"({running_runs}/{spec.max_concurrent_runs})"
        )
    if (
        spec.max_grid_jobs is not None
        and jobs_in_flight + jobs_estimate > spec.max_grid_jobs
    ):
        return (
            f"tenant {spec.name!r} would exceed max_grid_jobs "
            f"({jobs_in_flight}+{jobs_estimate}>{spec.max_grid_jobs})"
        )
    return None


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission evaluation, with everything that justified it.

    The audit trail's payload: beyond the ``pick`` itself it captures
    the state of the world *at decision time* — per-tenant decayed
    usage, provisional charges and fair-share scores
    (``effective_usage / weight``) over the tenants with eligible runs,
    plus every run that was quota-blocked and why.  All fields are
    JSON-plain so the event can be persisted and replayed verbatim.
    """

    policy: str
    now: float
    pick: Optional[RunRecord]
    #: run ids that passed quota + not_before checks, in queue order
    eligible: Tuple[str, ...] = ()
    #: tenant -> decayed ledger usage at decision time
    usage: Dict[str, float] = field(default_factory=dict)
    #: tenant -> provisional charge for still-executing runs
    provisional: Dict[str, float] = field(default_factory=dict)
    #: tenant -> effective_usage / weight (fair-share rank; lower wins)
    scores: Dict[str, float] = field(default_factory=dict)
    #: (run_id, reason) for every quota-blocked queued run
    blocked: Tuple[Tuple[str, str], ...] = ()

    def to_attributes(self) -> Dict[str, object]:
        """The JSON-plain attribute payload for an audit event."""
        return {
            "policy": self.policy,
            "eligible": list(self.eligible),
            "usage": {k: round(v, 6) for k, v in sorted(self.usage.items())},
            "provisional": {
                k: round(v, 6) for k, v in sorted(self.provisional.items())
            },
            "scores": {k: round(v, 6) for k, v in sorted(self.scores.items())},
            "blocked": [list(pair) for pair in self.blocked],
        }


def pick_next_explained(
    queued: Sequence[RunRecord],
    specs: Mapping[str, TenantSpec],
    running_by_tenant: Mapping[str, int],
    jobs_by_tenant: Mapping[str, int],
    ledger: FairShareLedger,
    now: float,
    policy: str = "fair-share",
    provisional: Optional[Mapping[str, float]] = None,
) -> AdmissionDecision:
    """Like :func:`pick_next`, returning the full decision context.

    A run is eligible when its ``not_before`` has passed and its tenant
    has quota headroom.  Under ``fifo`` the eligible run with the
    smallest submission ``seq`` wins.  Under ``fair-share`` the run of
    the tenant with the smallest ``effective_usage / weight`` wins
    (ties broken by ``seq``), where effective usage is the decayed
    ledger usage plus the tenant's *provisional* charge for runs still
    executing (mapping tenant -> charge; typically active runs x the
    tenant's typical makespan).
    """
    if policy not in SCHEDULING_POLICIES:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; options: {SCHEDULING_POLICIES}"
        )
    provisional = dict(provisional or {})
    eligible: List[RunRecord] = []
    blocked: List[Tuple[str, str]] = []
    for run in queued:
        if run.state is not RunState.QUEUED or run.not_before > now:
            continue
        spec = specs.get(run.tenant)
        if spec is None:
            continue  # unknown tenant: never admitted (surfaced at submit)
        reason = quota_headroom(
            spec,
            running_by_tenant.get(run.tenant, 0),
            jobs_by_tenant.get(run.tenant, 0),
            run.jobs_estimate,
        )
        if reason is None:
            eligible.append(run)
        else:
            blocked.append((run.run_id, reason))

    usage: Dict[str, float] = {}
    scores: Dict[str, float] = {}
    for run in eligible:
        if run.tenant in scores:
            continue
        spec = specs[run.tenant]
        decayed = ledger.usage(run.tenant, now)
        usage[run.tenant] = decayed
        effective = decayed + provisional.get(run.tenant, 0.0)
        scores[run.tenant] = effective / spec.weight

    pick: Optional[RunRecord] = None
    if eligible:
        if policy == "fifo":
            pick = min(eligible, key=lambda run: run.seq)
        else:
            pick = min(eligible, key=lambda run: (scores[run.tenant], run.seq))
    return AdmissionDecision(
        policy=policy,
        now=now,
        pick=pick,
        eligible=tuple(run.run_id for run in eligible),
        usage=usage,
        provisional={t: provisional.get(t, 0.0) for t in scores},
        scores=scores,
        blocked=tuple(blocked),
    )


def pick_next(
    queued: Sequence[RunRecord],
    specs: Mapping[str, TenantSpec],
    running_by_tenant: Mapping[str, int],
    jobs_by_tenant: Mapping[str, int],
    ledger: FairShareLedger,
    now: float,
    policy: str = "fair-share",
    provisional: Optional[Mapping[str, float]] = None,
) -> Optional[RunRecord]:
    """The queued run to admit next, or None if nothing is eligible.

    The decision itself; see :func:`pick_next_explained` for the same
    evaluation with its full justification (scores, provisional
    charges, quota blocks) — the form the audit trail records.
    """
    return pick_next_explained(
        queued,
        specs,
        running_by_tenant,
        jobs_by_tenant,
        ledger,
        now,
        policy=policy,
        provisional=provisional,
    ).pick
