"""Synthetic medical-image database.

The paper's inputs: "a database of injected T1 brain MRIs from the
cancer treatment center 'Centre Antoine Lacassagne' ... All images are
256×256×60 and coded on 16 bits, thus leading to a 7.8 MB size per
image (approximately 2.3 MB when compressed)", acquired "at several
time points to monitor the growth of brain tumors" — experiments used
12, 66 and 126 image pairs from 1, 7 and 25 patients.

We cannot ship that database, so :class:`ImageDatabase` generates an
equivalent synthetic one: per patient, a series of acquisitions whose
inter-acquisition rigid motion (the registration ground truth) is drawn
randomly.  Only the metadata matters to the system — file sizes drive
transfers, ground-truth transforms drive the registration outputs — so
the substitution preserves every code path the paper exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.transforms import RigidTransform
from repro.util.rng import RandomStreams

__all__ = ["MedicalImage", "ImagePair", "ImageDatabase"]

#: the paper's image geometry
DEFAULT_SHAPE = (256, 256, 60)
DEFAULT_BITS = 16


@dataclass(frozen=True)
class MedicalImage:
    """Metadata of one acquisition (the bytes themselves are synthetic)."""

    patient: int
    time_point: int
    shape: tuple = DEFAULT_SHAPE
    bits: int = DEFAULT_BITS
    compressed_ratio: float = 0.30  # ~2.3 MB over 7.8 MB

    @property
    def image_id(self) -> str:
        """Stable identifier: patient + acquisition time point."""
        return f"patient{self.patient:03d}/t{self.time_point:02d}"

    @property
    def gfn(self) -> str:
        """The Grid File Name the image is registered under."""
        return f"gfn://lacassagne/{self.image_id}.mhd"

    @property
    def size_bytes(self) -> float:
        """Raw size: voxels × bytes per voxel (≈ 7.8 MB for the default)."""
        voxels = 1
        for dim in self.shape:
            voxels *= dim
        return voxels * (self.bits / 8)

    @property
    def compressed_bytes(self) -> float:
        """Lossless-compressed size (≈ 2.3 MB for the default)."""
        return self.size_bytes * self.compressed_ratio


@dataclass(frozen=True)
class ImagePair:
    """One registration problem: floating image onto reference image.

    ``true_transform`` maps floating-image coordinates into the
    reference frame — the synthetic ground truth that simulated
    algorithms perturb to produce their estimates.
    """

    pair_id: int
    floating: MedicalImage
    reference: MedicalImage
    true_transform: RigidTransform

    def __repr__(self) -> str:
        return (
            f"<ImagePair #{self.pair_id} {self.floating.image_id} -> "
            f"{self.reference.image_id}>"
        )


class ImageDatabase:
    """Synthetic multi-patient, multi-time-point acquisition database."""

    def __init__(
        self,
        streams: Optional[RandomStreams] = None,
        max_angle_deg: float = 8.0,
        max_translation_mm: float = 15.0,
    ) -> None:
        self._streams = streams or RandomStreams(seed=0)
        self.max_angle_deg = max_angle_deg
        self.max_translation_mm = max_translation_mm

    def generate_pairs(self, n_pairs: int, pairs_per_patient: int = 5) -> List[ImagePair]:
        """Generate *n_pairs* registration problems.

        Patients contribute ``pairs_per_patient`` consecutive-time-point
        pairs each (the paper's 12/66/126 pairs come from 1/7/25
        patients, i.e. roughly 5 pairs per patient).
        """
        if n_pairs < 0:
            raise ValueError(f"n_pairs must be >= 0, got {n_pairs}")
        if pairs_per_patient < 1:
            raise ValueError(f"pairs_per_patient must be >= 1, got {pairs_per_patient}")
        rng = self._streams.get("image-database")
        pairs: List[ImagePair] = []
        patient = 0
        time_point = 0
        for pair_id in range(n_pairs):
            if time_point >= pairs_per_patient:
                patient += 1
                time_point = 0
            floating = MedicalImage(patient=patient, time_point=time_point)
            reference = MedicalImage(patient=patient, time_point=time_point + 1)
            truth = RigidTransform.random(
                rng,
                max_angle_deg=self.max_angle_deg,
                max_translation=self.max_translation_mm,
            )
            pairs.append(
                ImagePair(
                    pair_id=pair_id,
                    floating=floating,
                    reference=reference,
                    true_transform=truth,
                )
            )
            time_point += 1
        return pairs

    @staticmethod
    def patients_of(pairs: List[ImagePair]) -> int:
        """Number of distinct patients across *pairs*."""
        return len({p.floating.patient for p in pairs})
