"""The Bronze Standard application (Section 4.2).

The paper's evaluation workload: assessing medical-image rigid
registration algorithms without ground truth, by registering many image
pairs with many algorithms and treating the per-pair mean transform as
a "bronze standard" reference.

* :mod:`~repro.apps.transforms` — real 6-parameter rigid-transform
  algebra (rotations via quaternions, Fréchet-style rotation means),
* :mod:`~repro.apps.imaging` — a synthetic MRI database generator
  (patients, time points, ground-truth inter-acquisition transforms),
* :mod:`~repro.apps.registration` — the four registration methods
  (crestMatch, Baladin, Yasmina, PFMatchICP/PFRegister) as simulated
  grid services: calibrated compute times, real noisy-transform outputs,
* :mod:`~repro.apps.accuracy` — the MultiTransfoTest statistics
  (per-method rotation/translation accuracy against the bronze
  standard),
* :mod:`~repro.apps.bronze_standard` — the Figure 9 workflow assembled
  and ready to enact.
"""

from repro.apps.bronze_standard import BronzeStandardApplication
from repro.apps.imaging import ImageDatabase, ImagePair, MedicalImage
from repro.apps.transforms import RigidTransform, mean_transform

__all__ = [
    "BronzeStandardApplication",
    "ImageDatabase",
    "ImagePair",
    "MedicalImage",
    "RigidTransform",
    "mean_transform",
]
