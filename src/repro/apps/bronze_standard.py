"""The Figure 9 workflow, assembled and ready to enact.

Structure (data links; ``MultiTransfoTest`` is the double-squared
synchronization processor of the figure)::

    referenceImage --+--> crestLines ---> crestMatch --+--------------+
    floatingImage  --+        ^  (grouped when JG on)  |              |
    scale ------------________|                        v              v
                                              Baladin/Yasmina   PFMatchICP
                                                   |                  |
                                                   |             PFRegister
                                                   v                  |
    methodToTest ----------------------> MultiTransfoTest <-----------+
                                               |        |
                                     accuracy_rotation  accuracy_translation

Reproduction notes:

* the figure's ``getFromEGEE`` processors are the image-download steps;
  they are not compute jobs (the paper counts **6 job submissions per
  image pair**: crestLines, crestMatch, Baladin, Yasmina, PFMatchICP,
  PFRegister) and are absorbed here into the data sources + the
  middleware's stage-in transfers, which is what they physically were;
* ``crestLines`` needs the constant ``scale`` parameter (the ``-s``
  option of Figure 8); dataset builders replicate it to the stream
  length so the dot product pairs it with every image pair;
* the two groupable chains the paper names come out of the grouping
  pass automatically: ``crestLines+crestMatch`` and
  ``PFMatchICP+PFRegister``;
* the critical path carries n_W = 5 services (crestLines, crestMatch,
  PFMatchICP, PFRegister, MultiTransfoTest), matching Section 5.1.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.apps.accuracy import multi_transfo_test
from repro.apps.imaging import ImageDatabase, ImagePair
from repro.apps.registration import build_registration_services
from repro.cache import ResultCache
from repro.core.config import OptimizationConfig
from repro.core.enactor import EnactmentResult, MoteurEnactor
from repro.grid.middleware import Grid
from repro.services.base import LocalService, Service
from repro.sim.engine import Engine
from repro.util.distributions import Distribution, TruncatedNormal
from repro.util.rng import RandomStreams
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.datasets import DataItem, InputDataSet
from repro.workflow.graph import Workflow

__all__ = ["BronzeStandardApplication", "DEFAULT_SCALE"]

#: the crest-line extraction scale used on the command line (-s option)
DEFAULT_SCALE = 8


class BronzeStandardApplication:
    """Builds and enacts the Bronze Standard workflow on a grid.

    Parameters
    ----------
    engine, grid, streams:
        The simulation substrate the services run on.
    timings:
        Optional per-service compute-time overrides (service name ->
        seconds or Distribution); constant values make the workload
        suitable for model-validation runs.
    mtt_time:
        Compute-time model of the MultiTransfoTest statistics job.
    owner, tags:
        Accounting identity stamped on every submitted job description
        (fair-share batch scheduling keys on ``owner``; a multi-tenant
        scheduler passes ``tags={"tenant": ..., "run": ...}`` so jobs
        stay attributable on a shared testbed).
    """

    def __init__(
        self,
        engine: Engine,
        grid: Grid,
        streams: Optional[RandomStreams] = None,
        timings: Optional[Mapping[str, "float | Distribution"]] = None,
        mtt_time: "float | Distribution | None" = None,
        owner: str = "user",
        tags: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.engine = engine
        self.grid = grid
        self.streams = streams or RandomStreams(seed=0)
        self.services: Dict[str, Service] = dict(
            build_registration_services(
                engine, grid, self.streams, timings=timings, owner=owner, tags=tags
            )
        )
        if mtt_time is None:
            mtt_time = (
                timings.get("MultiTransfoTest")
                if timings and "MultiTransfoTest" in timings
                else TruncatedNormal(mu=60.0, sigma=10.0, floor=1.0)
            )
        # The statistics step runs at the enactor host (it collects the
        # whole result set); modelled as a local service with a
        # realistic duration rather than a grid job.
        self.services["MultiTransfoTest"] = LocalService(
            engine,
            "MultiTransfoTest",
            input_ports=(
                "crest_transforms",
                "baladin_transforms",
                "yasmina_transforms",
                "pf_transforms",
                "method",
            ),
            output_ports=("accuracy_rotation", "accuracy_translation"),
            function=multi_transfo_test,
            duration=self._duration_model(mtt_time),
        )
        self.workflow = self._build_workflow()
        self.database = ImageDatabase(self.streams)

    def _duration_model(self, spec: "float | Distribution"):
        if isinstance(spec, Distribution):
            rng = self.streams.get("mtt-duration")
            return lambda _inputs: float(spec.sample(rng))
        return float(spec)

    def _build_workflow(self) -> Workflow:
        builder = (
            WorkflowBuilder("bronze-standard")
            .source("referenceImage")
            .source("floatingImage")
            .source("scale")
            .source("methodToTest")
            .service("crestLines", self.services["crestLines"])
            .service("crestMatch", self.services["crestMatch"])
            .service("Baladin", self.services["Baladin"])
            .service("Yasmina", self.services["Yasmina"])
            .service("PFMatchICP", self.services["PFMatchICP"])
            .service("PFRegister", self.services["PFRegister"])
            .service(
                "MultiTransfoTest",
                self.services["MultiTransfoTest"],
                synchronization=True,
                groupable=False,
            )
            .sink("accuracy_rotation")
            .sink("accuracy_translation")
        )
        builder.connect("floatingImage:output", "crestLines:floating_image")
        builder.connect("referenceImage:output", "crestLines:reference_image")
        builder.connect("scale:output", "crestLines:scale")
        builder.connect("crestLines:crest_reference", "crestMatch:crest_reference")
        builder.connect("crestLines:crest_floating", "crestMatch:crest_floating")
        for method in ("Baladin", "Yasmina", "PFMatchICP"):
            builder.connect("floatingImage:output", f"{method}:floating_image")
            builder.connect("referenceImage:output", f"{method}:reference_image")
            builder.connect("crestMatch:transform", f"{method}:init_transform")
        builder.connect("PFMatchICP:matched_points", "PFRegister:matched_points")
        builder.connect("crestMatch:transform", "MultiTransfoTest:crest_transforms")
        builder.connect("Baladin:transform", "MultiTransfoTest:baladin_transforms")
        builder.connect("Yasmina:transform", "MultiTransfoTest:yasmina_transforms")
        builder.connect("PFRegister:transform", "MultiTransfoTest:pf_transforms")
        builder.connect("methodToTest:output", "MultiTransfoTest:method")
        builder.connect("MultiTransfoTest:accuracy_rotation", "accuracy_rotation:input")
        builder.connect(
            "MultiTransfoTest:accuracy_translation", "accuracy_translation:input"
        )
        return builder.build()

    # -- data sets -----------------------------------------------------------
    def build_dataset(
        self,
        n_pairs: int,
        method_to_test: str = "crestMatch",
        scale: int = DEFAULT_SCALE,
        pairs: Optional[List[ImagePair]] = None,
    ) -> InputDataSet:
        """An input data set registering *n_pairs* image pairs.

        Image items carry both the GFN (7.8 MB files, staged in by every
        registration job) and the :class:`ImagePair` value the simulated
        programs read the ground truth from.
        """
        if pairs is None:
            pairs = self.database.generate_pairs(n_pairs)
        elif len(pairs) < n_pairs:
            raise ValueError(f"need {n_pairs} pairs, got {len(pairs)}")
        pairs = pairs[:n_pairs]
        dataset = InputDataSet(name=f"bronze-{n_pairs}")
        for pair in pairs:
            dataset.add(
                "floatingImage",
                DataItem(value=pair, gfn=pair.floating.gfn, size=pair.floating.size_bytes),
            )
            dataset.add(
                "referenceImage",
                DataItem(value=pair, gfn=pair.reference.gfn, size=pair.reference.size_bytes),
            )
            # scale is a constant parameter; replicate it so the dot
            # product pairs one scale item with every image pair.
            dataset.add("scale", DataItem(value=scale))
        dataset.add("methodToTest", DataItem(value=method_to_test))
        return dataset

    # -- enactment -------------------------------------------------------------
    def enact(
        self,
        config: OptimizationConfig,
        n_pairs: int = 12,
        dataset: Optional[InputDataSet] = None,
        method_to_test: str = "crestMatch",
        cache: "Optional[ResultCache]" = None,
        instrumentation=None,
        journal=None,
        resume: bool = False,
        crash_after: Optional[int] = None,
        profiler=None,
    ) -> EnactmentResult:
        """Run the workflow under *config* over *n_pairs* image pairs.

        Passing a :class:`~repro.cache.ResultCache` (or enabling one on
        *config* via ``with_cache``) memoizes every invocation by
        provenance key, which makes a re-enactment over the same data
        set replay from the cache instead of re-submitting grid jobs.
        An :class:`~repro.observability.InstrumentationBus` turns the
        run into a correlated span stream (enactor + grid layers) and
        attaches the per-run metrics snapshot to the result.

        *journal* (an :class:`~repro.core.journal.EnactmentJournal` or a
        path) enables the crash-safe WAL; ``resume=True`` replays the
        journal's completed invocations before executing the rest.
        *crash_after* raises a simulated crash once that many new
        invocations completed (crash-resume testing).

        A *profiler* (:class:`~repro.observability.profiling.Profiler`)
        is installed across the whole stack — engine, grid, broker,
        enactor, and the bus if one is attached — for the duration of
        the enactment.
        """
        if dataset is None:
            dataset = self.build_dataset(n_pairs, method_to_test=method_to_test)
        enactor = MoteurEnactor(
            self.engine,
            self.workflow,
            config,
            grid=self.grid,
            cache=cache,
            instrumentation=instrumentation,
            journal=journal,
            crash_after_n_invocations=crash_after,
        )
        if profiler is not None:
            from repro.observability.profiling import install

            install(
                profiler,
                self.engine,
                self.grid,
                self.grid.broker,
                enactor,
                instrumentation,
            )
        if resume:
            return enactor.resume(dataset)
        return enactor.run(dataset)

    @staticmethod
    def jobs_per_pair() -> int:
        """The paper's count: 6 job submissions per image pair."""
        return 6
