"""The four registration methods as simulated grid services.

"The first registration algorithm is crestMatch.  Its result is used
to initialize the other registration algorithms which are Baladin,
Yasmina and PFMatchICP/PFRegister.  crestLines is a pre-processing
step."  (Section 4.2)

Each method becomes a :class:`~repro.services.wrapper.GenericWrapperService`
built from a realistic executable descriptor (command-line options
mirror the Figure 8 example), a calibrated compute-time model, and a
*program* producing real outputs: the pair's ground-truth transform
perturbed by method-specific noise.  The noise levels are loosely
inspired by the published bronze-standard assessments (feature-based
methods a bit noisier in translation, intensity-based methods tighter).

The per-method compute times below are this reproduction's calibration
(the paper does not publish per-code timings); what matters to the
reproduction is their order of magnitude relative to the ~10-minute
grid overhead, which is what makes job grouping profitable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.apps.imaging import ImagePair
from repro.apps.transforms import RigidTransform
from repro.grid.middleware import Grid
from repro.services.descriptor import (
    AccessMethod,
    ExecutableDescriptor,
    InputSpec,
    OutputSpec,
    SandboxSpec,
)
from repro.services.wrapper import GenericWrapperService
from repro.sim.engine import Engine
from repro.util.distributions import Distribution, TruncatedNormal, as_distribution
from repro.util.rng import RandomStreams, stable_hash64
from repro.util.units import KIBIBYTE, MEBIBYTE

__all__ = [
    "RegistrationResult",
    "CrestData",
    "MatchedPointSet",
    "AlgorithmProfile",
    "DEFAULT_PROFILES",
    "build_registration_services",
]

_SERVER = "http://colors.unice.fr"


@dataclass(frozen=True)
class RegistrationResult:
    """One method's estimated transform for one image pair."""

    method: str
    pair_id: int
    transform: RigidTransform

    def __repr__(self) -> str:  # compact: these end up on command lines
        return f"{self.method}#{self.pair_id}"


@dataclass(frozen=True)
class CrestData:
    """Crest lines extracted from one image (the crestLines output)."""

    pair: ImagePair
    role: str  # "reference" | "floating"
    n_points: int

    def __repr__(self) -> str:
        return f"crest({self.pair.pair_id},{self.role},{self.n_points}pts)"


@dataclass(frozen=True)
class MatchedPointSet:
    """Point matches produced by PFMatchICP, consumed by PFRegister."""

    pair: ImagePair
    n_matches: int

    def __repr__(self) -> str:
        return f"matches({self.pair.pair_id},{self.n_matches})"


@dataclass(frozen=True)
class AlgorithmProfile:
    """Error and cost model of one registration method."""

    name: str
    rotation_sigma_deg: float
    translation_sigma_mm: float
    compute_time: Distribution


def _tn(mu: float, sigma: float) -> TruncatedNormal:
    return TruncatedNormal(mu=mu, sigma=sigma, floor=1.0)


#: Calibrated defaults (see module docstring).
DEFAULT_PROFILES: Dict[str, AlgorithmProfile] = {
    "crestLines": AlgorithmProfile("crestLines", 0.0, 0.0, _tn(120.0, 20.0)),
    "crestMatch": AlgorithmProfile("crestMatch", 0.30, 1.2, _tn(90.0, 15.0)),
    "Baladin": AlgorithmProfile("Baladin", 0.18, 0.6, _tn(420.0, 60.0)),
    "Yasmina": AlgorithmProfile("Yasmina", 0.15, 0.5, _tn(360.0, 50.0)),
    "PFMatchICP": AlgorithmProfile("PFMatchICP", 0.0, 0.0, _tn(240.0, 40.0)),
    "PFRegister": AlgorithmProfile("PFRegister", 0.25, 0.9, _tn(40.0, 8.0)),
}


def _pair_of(value: object) -> ImagePair:
    """Extract the ImagePair from whatever flowed in on an image port."""
    if isinstance(value, ImagePair):
        return value
    pair = getattr(value, "pair", None)
    if isinstance(pair, ImagePair):
        return pair
    raise TypeError(f"expected an ImagePair-carrying value, got {type(value).__name__}")


def build_registration_services(
    engine: Engine,
    grid: Grid,
    streams: Optional[RandomStreams] = None,
    profiles: Optional[Mapping[str, AlgorithmProfile]] = None,
    timings: Optional[Mapping[str, "float | Distribution"]] = None,
    owner: str = "user",
    tags: Optional[Mapping[str, object]] = None,
) -> Dict[str, GenericWrapperService]:
    """Build the six services of the Figure 9 workflow.

    ``profiles`` overrides the full error/cost models; ``timings``
    overrides just the compute-time models (handy for constant-time
    model-validation runs).  ``owner`` and ``tags`` flow onto every
    submitted job description (fair-share accounting and tenant/run
    attribution when several enactments share the testbed).
    """
    streams = streams or RandomStreams(seed=0)
    tags = dict(tags or {})
    table = dict(DEFAULT_PROFILES)
    if profiles:
        table.update(profiles)

    def time_of(name: str) -> "float | Distribution":
        if timings and name in timings:
            return as_distribution(timings[name])
        return table[name].compute_time

    def rng_for(name: str, pair_id: int) -> np.random.Generator:
        # One generator per (algorithm, image pair), derived from the
        # master seed: an algorithm's draws for pair k are the same no
        # matter which invocations ran before it.  That input-determinism
        # is what makes a crash-resumed run byte-identical to an
        # uninterrupted one — a shared per-algorithm stream would hand
        # out draws in completion order, which a resume reshuffles.
        seq = np.random.SeedSequence(
            [streams.seed, stable_hash64(f"algorithm:{name}"), int(pair_id)]
        )
        return np.random.default_rng(seq)

    services: Dict[str, GenericWrapperService] = {}

    # -- crestLines: pre-processing, extracts crest lines from both images
    def crestlines_program(floating_image, reference_image, scale):
        pair = _pair_of(floating_image)
        crestlines_rng = rng_for("crestLines", pair.pair_id)
        n_ref = int(crestlines_rng.integers(1500, 4000))
        n_flo = int(crestlines_rng.integers(1500, 4000))
        return {
            "crest_reference": CrestData(pair=pair, role="reference", n_points=n_ref),
            "crest_floating": CrestData(pair=pair, role="floating", n_points=n_flo),
        }

    services["crestLines"] = GenericWrapperService(
        engine,
        grid,
        ExecutableDescriptor(
            name="crestLines",
            access=AccessMethod("URL", _SERVER),
            value="CrestLines.pl",
            inputs=(
                InputSpec("floating_image", "-im1", AccessMethod("GFN")),
                InputSpec("reference_image", "-im2", AccessMethod("GFN")),
                InputSpec("scale", "-s"),
            ),
            outputs=(
                OutputSpec("crest_reference", "-c1"),
                OutputSpec("crest_floating", "-c2"),
            ),
            sandboxes=(
                SandboxSpec("convert8bits", AccessMethod("URL", _SERVER), "Convert8bits.pl"),
                SandboxSpec("copy", AccessMethod("URL", _SERVER), "copy"),
                SandboxSpec("cmatch", AccessMethod("URL", _SERVER), "cmatch"),
            ),
        ),
        program=crestlines_program,
        compute_time=time_of("crestLines"),
        output_sizes={"crest_reference": 1 * MEBIBYTE, "crest_floating": 1 * MEBIBYTE},
        owner=owner,
        tags=tags,
    )

    # -- crestMatch: feature-based registration, initializes the others
    crestmatch_profile = table["crestMatch"]

    def crestmatch_program(crest_reference, crest_floating):
        pair = _pair_of(crest_reference)
        estimate = pair.true_transform.perturb(
            rng_for("crestMatch", pair.pair_id),
            crestmatch_profile.rotation_sigma_deg,
            crestmatch_profile.translation_sigma_mm,
        )
        return {"transform": RegistrationResult("crestMatch", pair.pair_id, estimate)}

    services["crestMatch"] = GenericWrapperService(
        engine,
        grid,
        ExecutableDescriptor(
            name="crestMatch",
            access=AccessMethod("URL", _SERVER),
            value="CrestMatch",
            inputs=(
                InputSpec("crest_reference", "-c1", AccessMethod("GFN")),
                InputSpec("crest_floating", "-c2", AccessMethod("GFN")),
            ),
            outputs=(OutputSpec("transform", "-o"),),
        ),
        program=crestmatch_program,
        compute_time=time_of("crestMatch"),
        output_sizes={"transform": 4 * KIBIBYTE},
        owner=owner,
        tags=tags,
    )

    # -- Baladin and Yasmina: intensity-based, need an initialization
    def intensity_method(method: str, executable: str) -> GenericWrapperService:
        profile = table[method]

        def program(floating_image, reference_image, init_transform):
            pair = _pair_of(floating_image)
            estimate = pair.true_transform.perturb(
                rng_for(method, pair.pair_id),
                profile.rotation_sigma_deg,
                profile.translation_sigma_mm,
            )
            return {"transform": RegistrationResult(method, pair.pair_id, estimate)}

        return GenericWrapperService(
            engine,
            grid,
            ExecutableDescriptor(
                name=method,
                access=AccessMethod("URL", _SERVER),
                value=executable,
                inputs=(
                    InputSpec("floating_image", "-flo", AccessMethod("GFN")),
                    InputSpec("reference_image", "-ref", AccessMethod("GFN")),
                    InputSpec("init_transform", "-init", AccessMethod("GFN")),
                ),
                outputs=(OutputSpec("transform", "-res"),),
            ),
            program=program,
            compute_time=time_of(method),
            output_sizes={"transform": 4 * KIBIBYTE},
            owner=owner,
            tags=tags,
        )

    services["Baladin"] = intensity_method("Baladin", "baladin")
    services["Yasmina"] = intensity_method("Yasmina", "yasmina")

    # -- PFMatchICP -> PFRegister: the two-step point/feature pipeline
    def pfmatch_program(floating_image, reference_image, init_transform):
        pair = _pair_of(floating_image)
        rng = rng_for("PFMatchICP", pair.pair_id)
        return {
            "matched_points": MatchedPointSet(
                pair=pair, n_matches=int(rng.integers(800, 2500))
            )
        }

    services["PFMatchICP"] = GenericWrapperService(
        engine,
        grid,
        ExecutableDescriptor(
            name="PFMatchICP",
            access=AccessMethod("URL", _SERVER),
            value="PFMatchICP",
            inputs=(
                InputSpec("floating_image", "-flo", AccessMethod("GFN")),
                InputSpec("reference_image", "-ref", AccessMethod("GFN")),
                InputSpec("init_transform", "-init", AccessMethod("GFN")),
            ),
            outputs=(OutputSpec("matched_points", "-pairs"),),
        ),
        program=pfmatch_program,
        compute_time=time_of("PFMatchICP"),
        output_sizes={"matched_points": 256 * KIBIBYTE},
        owner=owner,
        tags=tags,
    )

    pfregister_profile = table["PFRegister"]

    def pfregister_program(matched_points):
        pair = matched_points.pair
        estimate = pair.true_transform.perturb(
            rng_for("PFRegister", pair.pair_id),
            pfregister_profile.rotation_sigma_deg,
            pfregister_profile.translation_sigma_mm,
        )
        return {"transform": RegistrationResult("PFRegister", pair.pair_id, estimate)}

    services["PFRegister"] = GenericWrapperService(
        engine,
        grid,
        ExecutableDescriptor(
            name="PFRegister",
            access=AccessMethod("URL", _SERVER),
            value="PFRegister",
            inputs=(InputSpec("matched_points", "-pairs", AccessMethod("GFN")),),
            outputs=(OutputSpec("transform", "-res"),),
        ),
        program=pfregister_program,
        compute_time=time_of("PFRegister"),
        output_sizes={"transform": 4 * KIBIBYTE},
        owner=owner,
        tags=tags,
    )

    return services
