"""Rigid 3-D transforms: the data the Bronze Standard actually computes.

"Medical image registration consists in searching a transformation
(that is to say 6 parameters in the rigid case — 3 rotation angles and
3 translation parameters) between two images" (Section 4.2).

:class:`RigidTransform` is a unit quaternion plus a translation vector,
with composition, inversion, perturbation, and distance metrics.  The
bronze-standard statistic needs a **mean of rotations**, computed here
with the standard quaternion-averaging method (the eigenvector of the
accumulated outer-product matrix — Markley et al.), which is exact for
the small dispersions involved.

Everything is numpy/scipy; no simulation concepts — these are the
honest data products flowing through the simulated services.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy.spatial.transform import Rotation

__all__ = ["RigidTransform", "mean_transform", "rotation_angle_deg"]


def _normalize_quaternion(quat: np.ndarray) -> np.ndarray:
    quat = np.asarray(quat, dtype=float)
    if quat.shape != (4,):
        raise ValueError(f"quaternion must have shape (4,), got {quat.shape}")
    norm = float(np.linalg.norm(quat))
    if norm == 0:
        raise ValueError("zero quaternion is not a rotation")
    quat = quat / norm
    # Canonical sign: w >= 0 (q and -q are the same rotation).
    if quat[3] < 0:
        quat = -quat
    return quat


@dataclass(frozen=True)
class RigidTransform:
    """A rigid spatial transform: rotation (unit quaternion) + translation.

    The quaternion uses scipy's ``(x, y, z, w)`` convention and is kept
    normalized with ``w >= 0`` so equal rotations compare equal.
    """

    quaternion: np.ndarray = field(default_factory=lambda: np.array([0.0, 0.0, 0.0, 1.0]))
    translation: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def __post_init__(self) -> None:
        object.__setattr__(self, "quaternion", _normalize_quaternion(self.quaternion))
        translation = np.asarray(self.translation, dtype=float)
        if translation.shape != (3,):
            raise ValueError(f"translation must have shape (3,), got {translation.shape}")
        object.__setattr__(self, "translation", translation)

    # -- constructors ---------------------------------------------------
    @classmethod
    def identity(cls) -> "RigidTransform":
        """The do-nothing transform."""
        return cls()

    @classmethod
    def from_euler_deg(
        cls, angles_deg: Sequence[float], translation: Sequence[float]
    ) -> "RigidTransform":
        """From XYZ Euler angles in degrees plus a translation (mm)."""
        rotation = Rotation.from_euler("xyz", angles_deg, degrees=True)
        return cls(quaternion=rotation.as_quat(), translation=np.asarray(translation, float))

    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        max_angle_deg: float = 10.0,
        max_translation: float = 20.0,
    ) -> "RigidTransform":
        """A random small transform (inter-acquisition patient motion)."""
        if max_angle_deg < 0 or max_translation < 0:
            raise ValueError("bounds must be >= 0")
        angles = rng.uniform(-max_angle_deg, max_angle_deg, size=3)
        translation = rng.uniform(-max_translation, max_translation, size=3)
        return cls.from_euler_deg(angles, translation)

    # -- algebra ------------------------------------------------------------
    @property
    def rotation(self) -> Rotation:
        """The rotation part as a scipy Rotation."""
        return Rotation.from_quat(self.quaternion)

    def compose(self, other: "RigidTransform") -> "RigidTransform":
        """``self ∘ other``: apply *other* first, then *self*."""
        rotation = self.rotation * other.rotation
        translation = self.rotation.apply(other.translation) + self.translation
        return RigidTransform(quaternion=rotation.as_quat(), translation=translation)

    def inverse(self) -> "RigidTransform":
        """The transform undoing this one."""
        inv = self.rotation.inv()
        return RigidTransform(
            quaternion=inv.as_quat(), translation=-inv.apply(self.translation)
        )

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Transform an ``(n, 3)`` (or ``(3,)``) point array."""
        return self.rotation.apply(np.asarray(points, dtype=float)) + self.translation

    def perturb(
        self,
        rng: np.random.Generator,
        rotation_sigma_deg: float,
        translation_sigma: float,
    ) -> "RigidTransform":
        """Compose with small Gaussian noise — a noisy *estimate* of self.

        This is how simulated registration algorithms produce their
        answers: ground truth composed with method-specific error.
        """
        if rotation_sigma_deg < 0 or translation_sigma < 0:
            raise ValueError("sigmas must be >= 0")
        noise_angles = rng.normal(0.0, rotation_sigma_deg, size=3)
        noise_translation = rng.normal(0.0, translation_sigma, size=3)
        noise = RigidTransform.from_euler_deg(noise_angles, noise_translation)
        return noise.compose(self)

    # -- metrics -----------------------------------------------------------------
    def rotation_distance_deg(self, other: "RigidTransform") -> float:
        """Geodesic rotation distance in degrees."""
        relative = self.rotation * other.rotation.inv()
        return float(np.degrees(relative.magnitude()))

    def translation_distance(self, other: "RigidTransform") -> float:
        """Euclidean distance between the translation parts."""
        return float(np.linalg.norm(self.translation - other.translation))

    def is_close(
        self, other: "RigidTransform", angle_tol_deg: float = 1e-6, trans_tol: float = 1e-6
    ) -> bool:
        """Approximate equality within the given tolerances."""
        return (
            self.rotation_distance_deg(other) <= angle_tol_deg
            and self.translation_distance(other) <= trans_tol
        )

    def __repr__(self) -> str:
        angle = float(np.degrees(self.rotation.magnitude()))
        t = self.translation
        return (
            f"RigidTransform(angle={angle:.2f}deg, "
            f"t=[{t[0]:.2f}, {t[1]:.2f}, {t[2]:.2f}])"
        )


def mean_transform(transforms: Sequence[RigidTransform]) -> RigidTransform:
    """The mean rigid transform: quaternion average + arithmetic translation.

    The rotation mean maximizes ``Σ (qᵀ qᵢ)²`` — the principal
    eigenvector of ``Σ qᵢ qᵢᵀ`` (Markley's quaternion averaging), which
    coincides with the Fréchet mean for the dispersion levels of
    registration noise.  This is the "mean registration [that] should
    be more precise and is called a bronze-standard".
    """
    if not transforms:
        raise ValueError("cannot average zero transforms")
    quats = np.stack([t.quaternion for t in transforms])
    accumulator = quats.T @ quats  # 4x4 symmetric
    eigenvalues, eigenvectors = np.linalg.eigh(accumulator)
    mean_quat = eigenvectors[:, int(np.argmax(eigenvalues))]
    translation = np.mean([t.translation for t in transforms], axis=0)
    return RigidTransform(quaternion=mean_quat, translation=translation)


def rotation_angle_deg(transform: RigidTransform) -> float:
    """Magnitude of the rotation part, in degrees."""
    return float(np.degrees(transform.rotation.magnitude()))
