"""MultiTransfoTest: the bronze-standard accuracy statistics.

"The MultiTransfoTest service is responsible for the evaluation of the
accuracy of the registration algorithms [...]  This service evaluates
the accuracy of a specified registration algorithm by comparing its
results with means computed on all the others.  Thus, the
MultiTransfoTest service has to be synchronized: it must be enacted
once every of its ancestor is inactive." (Section 4.2)

The statistic, per image pair:

1. compute the **bronze standard** — the mean transform over the
   *other* methods' estimates for that pair,
2. measure the tested method's rotation error (geodesic angle) and
   translation error (Euclidean norm) against that mean,

then report the standard deviations over all pairs — the method's
rotation/translation accuracy, the two workflow outputs of Figure 9
(``accuracy_rotation`` / ``accuracy_translation``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.apps.registration import RegistrationResult
from repro.apps.transforms import mean_transform

__all__ = ["AccuracyReport", "bronze_standard_assessment", "multi_transfo_test"]


@dataclass(frozen=True)
class AccuracyReport:
    """Per-method accuracy against the bronze standard."""

    method: str
    n_pairs: int
    rotation_accuracy_deg: float  # std of rotation errors
    translation_accuracy_mm: float  # std of translation errors
    rotation_bias_deg: float  # mean rotation error
    translation_bias_mm: float  # mean translation error


def _group_by_pair(
    results: Iterable[RegistrationResult],
) -> Dict[int, List[RegistrationResult]]:
    grouped: Dict[int, List[RegistrationResult]] = defaultdict(list)
    for result in results:
        grouped[result.pair_id].append(result)
    return grouped


def bronze_standard_assessment(
    results_by_method: Mapping[str, Sequence[RegistrationResult]],
    tested_method: str,
) -> AccuracyReport:
    """Assess *tested_method* against the mean of all the other methods."""
    if tested_method not in results_by_method:
        raise KeyError(
            f"unknown method {tested_method!r}; have {sorted(results_by_method)}"
        )
    others = {m: r for m, r in results_by_method.items() if m != tested_method}
    if not others:
        raise ValueError("the bronze standard needs at least one other method")

    tested_by_pair = {r.pair_id: r for r in results_by_method[tested_method]}
    other_by_pair: Dict[int, List[RegistrationResult]] = defaultdict(list)
    for method_results in others.values():
        for result in method_results:
            other_by_pair[result.pair_id].append(result)

    rotation_errors: List[float] = []
    translation_errors: List[float] = []
    for pair_id, tested in sorted(tested_by_pair.items()):
        references = other_by_pair.get(pair_id)
        if not references:
            continue  # no bronze standard available for this pair
        bronze = mean_transform([r.transform for r in references])
        rotation_errors.append(tested.transform.rotation_distance_deg(bronze))
        translation_errors.append(tested.transform.translation_distance(bronze))
    if not rotation_errors:
        raise ValueError(
            f"no overlapping pairs between {tested_method!r} and the other methods"
        )
    rot = np.asarray(rotation_errors)
    trans = np.asarray(translation_errors)
    return AccuracyReport(
        method=tested_method,
        n_pairs=len(rotation_errors),
        rotation_accuracy_deg=float(rot.std(ddof=1)) if rot.size > 1 else 0.0,
        translation_accuracy_mm=float(trans.std(ddof=1)) if trans.size > 1 else 0.0,
        rotation_bias_deg=float(rot.mean()),
        translation_bias_mm=float(trans.mean()),
    )


def multi_transfo_test(
    crest_transforms: Sequence[RegistrationResult],
    baladin_transforms: Sequence[RegistrationResult],
    yasmina_transforms: Sequence[RegistrationResult],
    pf_transforms: Sequence[RegistrationResult],
    method: Sequence[str],
) -> Dict[str, float]:
    """The MultiTransfoTest service program (signature = its input ports).

    Every transform argument is the *whole stream* of one upstream
    registration method (this processor is a synchronization barrier);
    ``method`` is the MethodToTest input — a one-item stream naming the
    method under evaluation.
    """
    if not method:
        raise ValueError("MethodToTest input is empty")
    tested = method[0]
    results_by_method = {
        "crestMatch": list(crest_transforms),
        "Baladin": list(baladin_transforms),
        "Yasmina": list(yasmina_transforms),
        "PFRegister": list(pf_transforms),
    }
    report = bronze_standard_assessment(results_by_method, tested)
    return {
        "accuracy_rotation": report.rotation_accuracy_deg,
        "accuracy_translation": report.translation_accuracy_mm,
    }
