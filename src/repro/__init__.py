"""repro — reproduction of *Efficient services composition for
grid-enabled data-intensive applications* (Glatard, Montagnat, Pennec;
HPDC 2006).

The package rebuilds the paper's full stack:

* :mod:`repro.sim` — a deterministic discrete-event simulation kernel,
* :mod:`repro.grid` — an EGEE/LCG2-like production-grid simulator
  (broker, batch queues, storage, stochastic overheads, faults, load),
* :mod:`repro.services` — the service layer: executable descriptors
  (Figure 8), the generic code wrapper, grouped virtual services
  (Figure 7), SOAP/GridRPC-style transports,
* :mod:`repro.workflow` — the service-based workflow model: ports,
  links, iteration strategies, Scufl documents, input data sets,
* :mod:`repro.core` — **MOTEUR**, the optimized enactor combining
  workflow/data/service parallelism with job grouping, provenance
  history trees and execution diagrams,
* :mod:`repro.cache` — the provenance-keyed result cache that makes
  warm re-execution of a persisted workflow + data set (nearly) free,
* :mod:`repro.model` — the analytical makespan model (equations 1-4),
  asymptotic speed-ups, and the y-intercept/slope metrics,
* :mod:`repro.taskbased` — the DAGMan-style task-based baseline,
* :mod:`repro.apps` — the Bronze Standard medical-imaging application
  with real rigid-transform statistics,
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    from repro.sim import Engine
    from repro.grid import egee_like_testbed
    from repro.apps import BronzeStandardApplication
    from repro.core import OptimizationConfig

    engine = Engine()
    grid = egee_like_testbed(engine)
    app = BronzeStandardApplication(engine, grid)
    result = app.enact(OptimizationConfig.sp_dp_jg(), n_pairs=12)
    print(result.makespan, result.output_values("accuracy_rotation"))
"""

from repro.cache import FileStore, InMemoryStore, ResultCache
from repro.core.config import OptimizationConfig
from repro.core.enactor import EnactmentResult, MoteurEnactor
from repro.sim.engine import Engine
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.datasets import InputDataSet

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "MoteurEnactor",
    "EnactmentResult",
    "OptimizationConfig",
    "WorkflowBuilder",
    "InputDataSet",
    "ResultCache",
    "InMemoryStore",
    "FileStore",
    "__version__",
]
