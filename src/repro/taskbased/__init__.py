"""The task-based (global computing) baseline of Section 2.

In the task-based strategy "the description of a task ... encompasses
both the processing (binary code and command line parameters) and the
data (static declaration)": every computation is spelled out ahead of
time, one task per (processor, data combination), and a DAG manager
(Condor DAGMan is the paper's emblematic example) executes the acyclic
graph.

This package exists for the comparisons the paper draws:

* :mod:`~repro.taskbased.jdl` — static task descriptions rendered in a
  classad-like job description language,
* :mod:`~repro.taskbased.dag` — the **static expansion** of a service
  workflow over an input data set, making the combinatorial explosion
  of chained cross products measurable (Section 2.2), and the
  structural impossibility of loops (Section 2.1) a raised exception,
* :mod:`~repro.taskbased.dagman` — a DAGMan-like executor running the
  expanded graph on the simulated grid.
"""

from repro.taskbased.dag import StaticDag, TaskInstance, expand_workflow
from repro.taskbased.dagman import DagmanExecutor, DagRunResult
from repro.taskbased.jdl import TaskDescription, render_jdl

__all__ = [
    "TaskDescription",
    "render_jdl",
    "StaticDag",
    "TaskInstance",
    "expand_workflow",
    "DagmanExecutor",
    "DagRunResult",
]
