"""Static task descriptions and a classad-like JDL rendering.

Task-based middlewares (GLOBUS, LCG2, gLite) take job description
documents that statically name the executable, its arguments and its
input/output files — "the user is responsible for providing the binary
code to be executed and for writing down the precise invocation
command line" (Section 2.1).  The contrast with the dynamic binding of
the service approach is the point; the renderer exists so tests and
examples can show what the users of the task-based approach actually
maintain by hand, at scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

__all__ = ["TaskDescription", "render_jdl"]


@dataclass(frozen=True)
class TaskDescription:
    """One fully static computing task."""

    name: str
    executable: str
    arguments: str = ""
    input_files: Tuple[str, ...] = ()
    output_files: Tuple[str, ...] = ()
    requirements: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a task needs a name")
        if not self.executable:
            raise ValueError(f"task {self.name!r} needs an executable")


def render_jdl(task: TaskDescription) -> str:
    """Render in the LCG2/gLite classad-like JDL syntax.

    >>> print(render_jdl(TaskDescription(
    ...     name="crestLines-D0", executable="CrestLines.pl",
    ...     arguments="-im1 f0.mhd -im2 r0.mhd -s 8",
    ...     input_files=("f0.mhd", "r0.mhd"), output_files=("c0.crest",))))
    [
      JobName = "crestLines-D0";
      Executable = "CrestLines.pl";
      Arguments = "-im1 f0.mhd -im2 r0.mhd -s 8";
      InputSandbox = {"f0.mhd", "r0.mhd"};
      OutputSandbox = {"c0.crest"};
    ]
    """
    lines = ["["]
    lines.append(f'  JobName = "{task.name}";')
    lines.append(f'  Executable = "{task.executable}";')
    if task.arguments:
        lines.append(f'  Arguments = "{task.arguments}";')
    if task.input_files:
        quoted = ", ".join(f'"{f}"' for f in task.input_files)
        lines.append(f"  InputSandbox = {{{quoted}}};")
    if task.output_files:
        quoted = ", ".join(f'"{f}"' for f in task.output_files)
        lines.append(f"  OutputSandbox = {{{quoted}}};")
    for key in sorted(task.requirements):
        lines.append(f"  {key} = {task.requirements[key]};")
    lines.append("]")
    return "\n".join(lines)
