"""Static DAG expansion of a service workflow over an input data set.

"In a task based workflow, a computation task is defined by a single
input data set and a single processing. [...] This approach enforces
the replication of the execution graph for every input data to be
processed" (Section 2.2) — and with iteration strategies in play, "a
cross product produces an enormous amount of tasks and chaining cross
products just makes the application workflow representation intractable
even for a limited number (tens) of input data."

:func:`expand_workflow` performs exactly that replication: it walks the
(acyclic) workflow in topological order and materializes one
:class:`TaskInstance` per invocation the service enactor *would*
perform, wiring parent/child edges between instances.  Loops raise —
"there cannot be a loop in the graph of a task based workflow".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Mapping, Tuple

from repro.workflow.analysis import topological_order
from repro.workflow.datasets import InputDataSet
from repro.workflow.graph import ProcessorKind, Workflow, WorkflowError

__all__ = ["TaskInstance", "StaticDag", "expand_workflow"]


@dataclass(frozen=True)
class TaskInstance:
    """One statically declared task: a processor applied to one combination.

    ``combination`` maps each ancestor source to the tuple of item
    indices involved — the static analogue of a history tree's lineage.
    """

    task_id: int
    processor: str
    combination: Tuple[Tuple[str, Tuple[int, ...]], ...]

    @property
    def label(self) -> str:
        """Human-readable task name (processor + item indices)."""
        indices = sorted({i for _, idx in self.combination for i in idx})
        if not indices:
            return self.processor
        return f"{self.processor}-D{'_'.join(str(i) for i in indices)}"


@dataclass
class StaticDag:
    """The fully expanded task graph."""

    tasks: List[TaskInstance] = field(default_factory=list)
    #: child task_id -> tuple of parent task_ids
    parents: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    #: processor name -> its task instances, in creation order
    by_processor: Dict[str, List[TaskInstance]] = field(default_factory=dict)

    @property
    def task_count(self) -> int:
        """Total number of static tasks (the paper's explosion metric)."""
        return len(self.tasks)

    def edges(self) -> List[Tuple[int, int]]:
        """All (parent, child) edges."""
        return [
            (parent, child)
            for child, parent_ids in self.parents.items()
            for parent in parent_ids
        ]

    def roots(self) -> List[TaskInstance]:
        """Tasks with no parents (directly fed by sources)."""
        return [t for t in self.tasks if not self.parents.get(t.task_id)]


def expand_workflow(workflow: Workflow, dataset: "InputDataSet | Mapping") -> StaticDag:
    """Statically expand *workflow* over *dataset* (see module docstring).

    Sources and sinks do not become tasks (they are data placement, not
    computation); synchronization processors become a single task
    depending on every instance of their predecessors.
    """
    if not workflow.is_dag():
        raise WorkflowError(
            "task-based workflows cannot contain loops: the number of "
            "iterations cannot be statically described (Section 2.1)"
        )
    if not isinstance(dataset, InputDataSet):
        dataset = InputDataSet.from_values("adhoc", **{k: list(v) for k, v in dict(dataset).items()})

    dag = StaticDag()
    next_id = 0
    # processor -> list of (combination, producing_task_id or None for sources)
    streams: Dict[str, List[Tuple[Tuple[Tuple[str, Tuple[int, ...]], ...], "int | None"]]] = {}

    for name in topological_order(workflow, constraints=False):
        processor = workflow.processor(name)
        if processor.kind is ProcessorKind.SOURCE:
            items = dataset.items(name)
            streams[name] = [
                (((name, (index,)),), None) for index in range(len(items))
            ]
            continue
        if processor.kind is ProcessorKind.SINK:
            continue

        # Gather the per-port input streams (concatenating multi-link ports).
        port_streams: List[List[Tuple[tuple, "int | None"]]] = []
        for port in processor.effective_input_ports():
            merged: List[Tuple[tuple, "int | None"]] = []
            for link in workflow.links_into(name, port):
                merged.extend(streams.get(link.source.processor, []))
            port_streams.append(merged)

        instances: List[Tuple[tuple, "int | None"]] = []
        if processor.synchronization:
            # One task over everything upstream.
            combination = _merge_combinations(
                [combo for stream in port_streams for combo, _ in stream]
            )
            parent_ids = tuple(
                tid for stream in port_streams for _, tid in stream if tid is not None
            )
            task = TaskInstance(task_id=next_id, processor=name, combination=combination)
            next_id += 1
            dag.tasks.append(task)
            dag.parents[task.task_id] = parent_ids
            dag.by_processor.setdefault(name, []).append(task)
            instances.append((combination, task.task_id))
        else:
            if not port_streams:
                combos: List[Tuple[Tuple[tuple, "int | None"], ...]] = [()]
            elif processor.iteration_strategy == "dot":
                width = min(len(s) for s in port_streams)
                combos = [tuple(s[i] for s in port_streams) for i in range(width)]
            else:  # cross
                combos = list(product(*port_streams))
            for combo in combos:
                combination = _merge_combinations([c for c, _ in combo])
                parent_ids = tuple(tid for _, tid in combo if tid is not None)
                task = TaskInstance(
                    task_id=next_id, processor=name, combination=combination
                )
                next_id += 1
                dag.tasks.append(task)
                dag.parents[task.task_id] = parent_ids
                dag.by_processor.setdefault(name, []).append(task)
                instances.append((combination, task.task_id))
        streams[name] = instances

    return dag


def _merge_combinations(
    combos: "List[Tuple[Tuple[str, Tuple[int, ...]], ...]]",
) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
    """Union the (source -> indices) maps of several combinations."""
    merged: Dict[str, set] = {}
    for combo in combos:
        for source, indices in combo:
            merged.setdefault(source, set()).update(indices)
    return tuple(
        (source, tuple(sorted(indices))) for source, indices in sorted(merged.items())
    )
