"""A DAGMan-like executor for statically expanded task graphs.

"An emblematic task-based workflow manager is indeed called Directed
Acyclic Graph Manager (DAGMan)."  The executor walks a
:class:`~repro.taskbased.dag.StaticDag`, submitting each task to the
grid as soon as all its parents completed — in the task-based world
every bit of parallelism is explicit in the expanded graph, so there is
no DP/SP distinction to configure (Sections 3.3-3.4: those levels "do
not make any sense" / are "included in the workflow parallelism").

Task durations come from a caller-provided profile (processor name ->
seconds or Distribution), standing in for the per-code costs that the
service approach would get from the services themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.grid.job import JobDescription
from repro.grid.middleware import Grid
from repro.sim.engine import Engine, Event
from repro.taskbased.dag import StaticDag, TaskInstance
from repro.util.distributions import Distribution

__all__ = ["DagmanExecutor", "DagRunResult"]


@dataclass
class DagRunResult:
    """Outcome of one DAG execution."""

    started_at: float
    finished_at: float
    task_count: int
    #: task_id -> grid job id
    job_ids: Dict[int, int] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Wall-clock seconds from first submission to last completion."""
        return self.finished_at - self.started_at


class DagmanExecutor:
    """Dependency-driven task submission over the simulated grid."""

    def __init__(
        self,
        engine: Engine,
        grid: Grid,
        durations: Mapping[str, "float | Distribution"],
        max_concurrent: Optional[int] = None,
        owner: str = "dagman",
    ) -> None:
        self.engine = engine
        self.grid = grid
        self.durations = dict(durations)
        if max_concurrent is not None and max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        self.max_concurrent = max_concurrent
        self.owner = owner

    def run(self, dag: StaticDag) -> DagRunResult:
        """Execute *dag* to completion, driving the engine."""
        completion = self.engine.event(name="dagman")
        self.engine.process(self._run(dag, completion), name="dagman")
        return self.engine.run(until=completion)

    def _duration_for(self, task: TaskInstance) -> "float | Distribution":
        try:
            return self.durations[task.processor]
        except KeyError:
            raise KeyError(
                f"no duration profile for processor {task.processor!r}; "
                f"profiles exist for {sorted(self.durations)}"
            ) from None

    def _run(self, dag: StaticDag, completion: Event):
        from repro.sim.resources import Resource

        started_at = self.engine.now
        result = DagRunResult(
            started_at=started_at, finished_at=started_at, task_count=dag.task_count
        )
        done_events: Dict[int, Event] = {
            task.task_id: self.engine.event(name=f"task:{task.task_id}") for task in dag.tasks
        }
        throttle = (
            Resource(self.engine, self.max_concurrent, name="dagman-throttle")
            if self.max_concurrent is not None
            else None
        )
        for task in dag.tasks:
            self.engine.process(
                self._run_task(dag, task, done_events, throttle, result),
                name=f"dag-task:{task.task_id}",
            )
        if done_events:
            yield self.engine.all_of(list(done_events.values()))
        result.finished_at = self.engine.now
        completion.succeed(result)

    def _run_task(
        self,
        dag: StaticDag,
        task: TaskInstance,
        done_events: Dict[int, Event],
        throttle,
        result: DagRunResult,
    ):
        parent_ids = dag.parents.get(task.task_id, ())
        if parent_ids:
            yield self.engine.all_of([done_events[p] for p in parent_ids])
        request = None
        if throttle is not None:
            request = throttle.request()
            yield request
        try:
            description = JobDescription(
                name=task.label,
                command_line=f"{task.processor} <static args>",
                compute_time=self._duration_for(task),
                owner=self.owner,
                tags={"task_id": task.task_id, "processor": task.processor},
            )
            handle = self.grid.submit(description)
            record = yield handle.completion
            result.job_ids[task.task_id] = record.job_id
        finally:
            if throttle is not None and request is not None:
                throttle.release(request)
        done_events[task.task_id].succeed(task.task_id)
