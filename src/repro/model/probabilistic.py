"""Probabilistic makespan modelling (Section 5.4 and reference [12]).

The deterministic model of Section 3.5 predicts ``S_SDP = 1`` — no gain
from service parallelism once data parallelism is on.  The experiments
contradict it because per-job times on EGEE are random.  This module
quantifies that effect:

* under DP with a stage barrier, each stage costs the **maximum** of
  ``n_D`` i.i.d. job times, so the workflow costs the sum of ``n_W``
  such maxima.  The expected maximum grows with both ``n_D`` and the
  dispersion of the distribution (extreme-value statistics);
* under DP+SP each item flows independently, so the workflow costs the
  **maximum over items of the sum** of ``n_W`` job times — sums
  concentrate, so this maximum is smaller than the sum of maxima
  whenever the job times have any variance.

``expected_sdp_gain`` Monte-Carlo-estimates ``E[Σ_DP] / E[Σ_DSP]`` —
the service-parallelism gain the deterministic theory misses; it is 1.0
exactly for constant times and grows with variability (benchmark E11).

The module also provides the granularity trade-off behind "grouping
jobs of a single service" (the paper's stated future work): grouping
*k* items into one job divides the number of overhead draws by *k* but
serializes the items inside a job, shrinking data parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.distributions import Distribution

__all__ = [
    "expected_stage_barrier_makespan",
    "expected_pipelined_makespan",
    "expected_sdp_gain",
    "GranularityModel",
]


def _sample_matrix(
    job_time: Distribution, n_w: int, n_d: int, rng: np.random.Generator, rounds: int
) -> np.ndarray:
    """(rounds, n_w, n_d) samples of i.i.d. per-job times."""
    if n_w < 1 or n_d < 1 or rounds < 1:
        raise ValueError("n_w, n_d and rounds must all be >= 1")
    flat = job_time.sample_many(rng, rounds * n_w * n_d)
    return flat.reshape(rounds, n_w, n_d)


def expected_stage_barrier_makespan(
    job_time: Distribution,
    n_w: int,
    n_d: int,
    rng: np.random.Generator,
    rounds: int = 200,
) -> float:
    """Monte-Carlo E[Σ_DP] = E[ Σ_i max_j T_ij ] for i.i.d. T."""
    samples = _sample_matrix(job_time, n_w, n_d, rng, rounds)
    return float(samples.max(axis=2).sum(axis=1).mean())


def expected_pipelined_makespan(
    job_time: Distribution,
    n_w: int,
    n_d: int,
    rng: np.random.Generator,
    rounds: int = 200,
) -> float:
    """Monte-Carlo E[Σ_DSP] = E[ max_j Σ_i T_ij ] for i.i.d. T."""
    samples = _sample_matrix(job_time, n_w, n_d, rng, rounds)
    return float(samples.sum(axis=1).max(axis=1).mean())


def expected_sdp_gain(
    job_time: Distribution,
    n_w: int,
    n_d: int,
    rng: np.random.Generator,
    rounds: int = 200,
) -> float:
    """E[Σ_DP] / E[Σ_DSP]: the SP-on-top-of-DP gain under randomness.

    Equals 1.0 for constant job times (the deterministic S_SDP) and
    grows with dispersion — the quantitative version of the paper's
    Figure 6 narrative.
    """
    samples = _sample_matrix(job_time, n_w, n_d, rng, rounds)
    dp = samples.max(axis=2).sum(axis=1).mean()
    dsp = samples.sum(axis=1).max(axis=1).mean()
    if dsp == 0:
        return 1.0
    return float(dp / dsp)


@dataclass(frozen=True)
class GranularityModel:
    """Expected makespan of one service stage vs intra-service grouping.

    ``n_d`` items are packed into jobs of ``k`` items each
    (``ceil(n_d / k)`` jobs, run fully in parallel).  Each job pays one
    overhead draw plus ``k`` compute times.  Larger *k* pays fewer
    overheads but serializes more compute — the trade-off the paper
    plans to explore "by grouping jobs of a single service, thus
    finding a trade-off between data parallelism and the system's
    overhead".
    """

    overhead: Distribution
    compute: Distribution
    n_d: int

    def expected_makespan(
        self, k: int, rng: np.random.Generator, rounds: int = 200
    ) -> float:
        """Monte-Carlo E[stage makespan] with jobs of *k* items."""
        if k < 1:
            raise ValueError(f"group size k must be >= 1, got {k}")
        if self.n_d < 1:
            raise ValueError(f"n_d must be >= 1, got {self.n_d}")
        n_jobs = -(-self.n_d // k)  # ceil division
        sizes = [k] * (self.n_d // k)
        if self.n_d % k:
            sizes.append(self.n_d % k)
        assert len(sizes) == n_jobs
        totals = np.empty(rounds, dtype=float)
        for r in range(rounds):
            job_times = [
                self.overhead.sample(rng) + sum(self.compute.sample(rng) for _ in range(s))
                for s in sizes
            ]
            totals[r] = max(job_times)
        return float(totals.mean())

    def best_group_size(
        self, rng: np.random.Generator, candidates: "list[int] | None" = None, rounds: int = 200
    ) -> "tuple[int, float]":
        """The candidate k minimizing the expected stage makespan."""
        if candidates is None:
            candidates = sorted({1, 2, 4, 8, 16, self.n_d} & set(range(1, self.n_d + 1))
                                | {1, self.n_d})
        best_k, best_time = None, float("inf")
        for k in candidates:
            time = self.expected_makespan(k, rng, rounds=rounds)
            if time < best_time:
                best_k, best_time = k, time
        assert best_k is not None
        return best_k, best_time
