"""The paper's analysis metrics (Section 5.1).

Three metrics interpret execution-time measurements on a production
grid:

* **speed-up** — "the ratio of the execution time over the reference
  execution time";
* **y-intercept ratio** — the time curves against input-set size are
  nearly straight lines; their y-intercept "denotes the time spent for
  the processing of 0 data set and thus corresponds to the
  incompressible amount of time required to access the infrastructure".
  The ratio compares a reference configuration's intercept to the
  analyzed one's (>1 = the optimization reduced the overhead);
* **slope ratio** — the slope "measures the data scalability of the
  grid"; its ratio works the same way (>1 = better scalability).

Job grouping is expected to move (mostly) the y-intercept ratio, data
parallelism (mostly) the slope ratio — which is exactly what Table 2
shows and what benchmark E10 re-derives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.util.stats import LinearFit, linear_fit

__all__ = ["speedup", "y_intercept_ratio", "slope_ratio", "ConfigurationFit", "fit_configuration"]


def speedup(reference_time: float, optimized_time: float) -> float:
    """Speed-up of *optimized* over *reference* (>1 = faster)."""
    if reference_time < 0 or optimized_time <= 0:
        raise ValueError(
            f"need reference >= 0 and optimized > 0, got {reference_time}, {optimized_time}"
        )
    return reference_time / optimized_time


def y_intercept_ratio(reference: LinearFit, analyzed: LinearFit) -> float:
    """Reference intercept over analyzed intercept (>1 = overhead reduced)."""
    if analyzed.intercept == 0:
        return float("inf")
    return reference.intercept / analyzed.intercept


def slope_ratio(reference: LinearFit, analyzed: LinearFit) -> float:
    """Reference slope over analyzed slope (>1 = scalability improved)."""
    if analyzed.slope == 0:
        return float("inf")
    return reference.slope / analyzed.slope


@dataclass(frozen=True)
class ConfigurationFit:
    """One configuration's regression line over the size sweep (Table 2 row)."""

    label: str
    sizes: tuple
    times: tuple
    fit: LinearFit

    @property
    def y_intercept(self) -> float:
        """Seconds to process zero data sets (infrastructure access cost)."""
        return self.fit.intercept

    @property
    def slope(self) -> float:
        """Seconds per additional data set (data scalability)."""
        return self.fit.slope


def fit_configuration(
    label: str, sizes: Sequence[float], times: Sequence[float]
) -> ConfigurationFit:
    """Regress measured times against data-set sizes for one configuration."""
    return ConfigurationFit(
        label=label,
        sizes=tuple(float(s) for s in sizes),
        times=tuple(float(t) for t in times),
        fit=linear_fit(sizes, times),
    )


def ratios_table(
    fits: Mapping[str, ConfigurationFit], pairs: Sequence[tuple]
) -> "list[dict]":
    """Compute (reference, analyzed) ratio rows, Section 5.2/5.3 style.

    *pairs* is a sequence of ``(analyzed_label, reference_label)``;
    each row carries the two ratios plus per-size speed-ups.
    """
    rows = []
    for analyzed_label, reference_label in pairs:
        analyzed = fits[analyzed_label]
        reference = fits[reference_label]
        speedups = tuple(
            speedup(rt, at) for rt, at in zip(reference.times, analyzed.times)
        )
        rows.append(
            {
                "analyzed": analyzed_label,
                "reference": reference_label,
                "speedups": speedups,
                "y_intercept_ratio": y_intercept_ratio(reference.fit, analyzed.fit),
                "slope_ratio": slope_ratio(reference.fit, analyzed.fit),
            }
        )
    return rows
