"""Analytical performance models (Section 3.5) and metrics (Section 5.1).

* :mod:`~repro.model.makespan` — closed-form workflow execution times
  for the four execution policies: equations (1) to (4),
* :mod:`~repro.model.speedup` — the asymptotic speed-ups of
  Section 3.5.4 (constant execution times),
* :mod:`~repro.model.metrics` — the speed-up, **y-intercept ratio** and
  **slope ratio** metrics introduced for interpreting measurements on
  production grids,
* :mod:`~repro.model.probabilistic` — the stochastic extension sketched
  in Section 5.4 (and reference [12]): expected makespans under random
  per-job overheads, which explains *why* service parallelism keeps
  paying off when data parallelism is already on.
"""

from repro.model.makespan import (
    makespan_dp,
    makespan_dsp,
    makespan_sequential,
    makespan_sp,
    makespans,
)
from repro.model.metrics import ConfigurationFit, speedup, y_intercept_ratio, slope_ratio
from repro.model.speedup import (
    speedup_dp_given_sp,
    speedup_dp_no_sp,
    speedup_sp_given_dp,
    speedup_sp_no_dp,
)

__all__ = [
    "makespan_sequential",
    "makespan_dp",
    "makespan_sp",
    "makespan_dsp",
    "makespans",
    "speedup_dp_no_sp",
    "speedup_sp_no_dp",
    "speedup_dp_given_sp",
    "speedup_sp_given_dp",
    "speedup",
    "y_intercept_ratio",
    "slope_ratio",
    "ConfigurationFit",
]
