"""Closed-form workflow execution times: equations (1)-(4).

Setting (Section 3.5.1): a workflow whose critical path carries ``n_W``
services indexed by ``i``, executed over ``n_D`` input data sets
indexed by ``j``; ``T[i, j]`` is the time service *i* spends on data
set *j* (including any grid overhead).  Hypotheses (Section 3.5.2): the
critical path does not depend on the data set, data parallelism is
unlimited, and no synchronization barrier sits inside the modelled
region.

The four policies:

* sequential (equation 1):      ``Σ     = Σ_i Σ_j T_ij``
* data parallelism (equation 2): ``Σ_DP  = Σ_i max_j T_ij``
* service parallelism (equation 3), the pipeline recursion::

      Σ_SP = T_{nW-1, nD-1} + m_{nW-1, nD-1}
      m_ij = max(T_{i-1,j} + m_{i-1,j},  T_{i,j-1} + m_{i,j-1})
      m_0j = Σ_{k<j} T_0k          m_i0 = Σ_{k<i} T_k0

* both (equation 4):            ``Σ_DSP = max_j Σ_i T_ij``

All functions take an ``(n_W, n_D)`` array-like and are vectorized
with NumPy; the SP recursion is evaluated by dynamic programming over
antidiagonals.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = [
    "makespan_sequential",
    "makespan_dp",
    "makespan_sp",
    "makespan_dsp",
    "makespans",
    "sp_start_matrix",
]


def _validate(T: np.ndarray) -> np.ndarray:
    arr = np.asarray(T, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"T must be 2-D (services x data sets), got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("T must be non-empty")
    if (arr < 0).any():
        raise ValueError("execution times must be >= 0")
    return arr


def makespan_sequential(T: "np.ndarray") -> float:
    """Equation (1): no data or service parallelism."""
    return float(_validate(T).sum())


def makespan_dp(T: "np.ndarray") -> float:
    """Equation (2): data parallelism only (stage barrier between services)."""
    return float(_validate(T).max(axis=1).sum())


def sp_start_matrix(T: "np.ndarray") -> np.ndarray:
    """The ``m_ij`` matrix of equation (3): start time of (service i, item j).

    ``m_ij`` is when service *i* begins processing data set *j* under
    pure pipelining (each service handles one data set at a time, items
    in order).  Exposed because tests check the recursion against an
    independent simulation.
    """
    arr = _validate(T)
    n_w, n_d = arr.shape
    m = np.zeros((n_w, n_d), dtype=float)
    # Borders: first service chews through items back-to-back; first item
    # ripples down the service chain.
    m[0, :] = np.concatenate(([0.0], np.cumsum(arr[0, :-1])))
    m[:, 0] = np.concatenate(([0.0], np.cumsum(arr[:-1, 0])))
    for i in range(1, n_w):
        for j in range(1, n_d):
            m[i, j] = max(arr[i - 1, j] + m[i - 1, j], arr[i, j - 1] + m[i, j - 1])
    return m


def makespan_sp(T: "np.ndarray") -> float:
    """Equation (3): service parallelism only (pipelining)."""
    arr = _validate(T)
    m = sp_start_matrix(arr)
    return float(arr[-1, -1] + m[-1, -1])


def makespan_dsp(T: "np.ndarray") -> float:
    """Equation (4): data and service parallelism together."""
    return float(_validate(T).sum(axis=0).max())


def makespans(T: "np.ndarray") -> Dict[str, float]:
    """All four policies at once, keyed by the paper's configuration names."""
    arr = _validate(T)
    return {
        "NOP": makespan_sequential(arr),
        "DP": makespan_dp(arr),
        "SP": makespan_sp(arr),
        "SP+DP": makespan_dsp(arr),
    }
