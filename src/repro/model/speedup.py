"""Asymptotic speed-ups under constant execution times (Section 3.5.4).

With ``T_ij = T`` the makespans collapse to::

    Σ      = n_D · n_W · T
    Σ_DP   = Σ_DSP = n_W · T
    Σ_SP   = (n_D + n_W − 1) · T

giving the paper's four headline ratios:

* ``S_DP   = Σ / Σ_DP            = n_D``      (DP alone)
* ``S_SP   = Σ / Σ_SP            = n_D·n_W / (n_D + n_W − 1)``  (SP alone)
* ``S_DSP  = Σ_SP / Σ_DSP        = (n_D + n_W − 1) / n_W``  (DP on top of SP)
* ``S_SDP  = Σ_DP / Σ_DSP        = 1``        (SP on top of DP)

The last line is the punchline the experiments overturn: **in theory**
service parallelism adds nothing once data parallelism is on — but only
under the constant-time hypothesis, which production-grid overhead
variability violates (Sections 3.5.4 and 5.2).  The special cases
(massively data-parallel, non-data-intensive) are provided too.
"""

from __future__ import annotations

__all__ = [
    "speedup_dp_no_sp",
    "speedup_sp_no_dp",
    "speedup_dp_given_sp",
    "speedup_sp_given_dp",
    "constant_time_makespans",
]


def _check(n_w: int, n_d: int) -> None:
    if n_w < 1:
        raise ValueError(f"n_W must be >= 1, got {n_w}")
    if n_d < 1:
        raise ValueError(f"n_D must be >= 1, got {n_d}")


def constant_time_makespans(n_w: int, n_d: int, T: float = 1.0) -> dict:
    """The four makespans under T_ij = T (last paragraph of Section 3.5.4)."""
    _check(n_w, n_d)
    if T < 0:
        raise ValueError(f"T must be >= 0, got {T}")
    return {
        "NOP": n_d * n_w * T,
        "DP": n_w * T,
        "SP": (n_d + n_w - 1) * T,
        "SP+DP": n_w * T,
    }


def speedup_dp_no_sp(n_w: int, n_d: int) -> float:
    """``S_DP = n_D``: data parallelism with service parallelism disabled."""
    _check(n_w, n_d)
    return float(n_d)


def speedup_sp_no_dp(n_w: int, n_d: int) -> float:
    """``S_SP = n_D n_W / (n_D + n_W − 1)``: service parallelism alone."""
    _check(n_w, n_d)
    return n_d * n_w / (n_d + n_w - 1)


def speedup_dp_given_sp(n_w: int, n_d: int) -> float:
    """``S_DSP = (n_D + n_W − 1) / n_W``: DP added on top of SP."""
    _check(n_w, n_d)
    return (n_d + n_w - 1) / n_w


def speedup_sp_given_dp(n_w: int, n_d: int) -> float:
    """``S_SDP = 1``: SP added on top of DP — *under constant times*.

    Kept as a function (rather than a constant) for symmetry and
    because benchmark E11 plots the measured value against this
    theoretical floor as overhead variability grows.
    """
    _check(n_w, n_d)
    return 1.0
