"""Grid job descriptions and lifecycle records.

A :class:`JobDescription` is what the service layer hands to the
middleware: the executable identity, its composed command line, the
logical input/output files, a *compute model* (how long the payload
runs on a reference worker), and an optional Python payload executed at
job-completion time so that simulated applications produce **real
outputs** (e.g. actual rigid transforms in the Bronze Standard).

A :class:`JobRecord` accumulates the timestamps of every state
transition, which is what the analysis layer uses to split a job's
wall-clock time into overhead (submission + brokering + queuing) and
useful work (staging + execution) — the decomposition behind the
paper's y-intercept/slope reading of the results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Mapping, Optional, Sequence, Tuple

from repro.util.distributions import Distribution, as_distribution

__all__ = [
    "JobState",
    "JobDescription",
    "JobRecord",
    "AttemptFailure",
    "JobFailedError",
    "JobCancelledError",
]

_job_ids = itertools.count(1)


class JobState(Enum):
    """Lifecycle of a job through LCG2-like middleware.

    The happy path is ``CREATED -> SUBMITTED -> MATCHED -> QUEUED ->
    RUNNING -> DONE``.  A failing attempt goes to ``FAILED`` and, if the
    retry policy allows, back to ``SUBMITTED`` (the record keeps one
    timestamp list per state, so resubmissions are visible).
    """

    CREATED = "created"
    SUBMITTED = "submitted"  # accepted by the user interface
    MATCHED = "matched"  # resource broker picked a computing element
    QUEUED = "queued"  # sitting in the CE batch queue
    RUNNING = "running"  # executing on a worker node
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class AttemptFailure:
    """Why one attempt of a job went wrong (fault, timeout, cancellation...)."""

    attempt: int
    computing_element: Optional[str]
    reason: str
    at: float
    #: "fault" | "timeout" | "cancelled" | "deadline" | "budget" | "error"
    kind: str = "fault"


class JobFailedError(RuntimeError):
    """Raised to submitters when a job exhausts its resubmission budget."""

    def __init__(self, record: "JobRecord", cause: str) -> None:
        super().__init__(f"job {record.job_id} ({record.name}) failed: {cause}")
        self.record = record
        self.cause = cause

    @property
    def attempt_failures(self) -> Tuple[AttemptFailure, ...]:
        """Every attempt-level failure the record accumulated, oldest first."""
        return tuple(self.record.failure_history)


class JobCancelledError(RuntimeError):
    """A queued job was withdrawn from its CE before running.

    With ``resubmit=True`` (the default) this is not terminal for the
    job: the middleware catches it and resubmits elsewhere without
    spending a fault attempt — the proactive-resubmission half of the
    monitoring feedback loop.  With ``resubmit=False`` the withdrawal
    is final (a user or the enactment service cancelled the run that
    owns the job) and the middleware fails the submission instead.
    """

    def __init__(self, record: "JobRecord", reason: str, resubmit: bool = True) -> None:
        super().__init__(f"job {record.job_id} ({record.name}) cancelled: {reason}")
        self.record = record
        self.reason = reason
        self.resubmit = resubmit


@dataclass(frozen=True)
class JobDescription:
    """Immutable description of one grid job.

    Parameters
    ----------
    name:
        Human-readable label (shows up in traces and Gantt diagrams).
    command_line:
        The composed command line(s).  Grouped jobs carry several
        command lines joined by the shell sequencing operator; purely
        informational for the simulator but asserted on by tests since
        command-line composition is a paper contribution (Section 3.6).
    compute_time:
        Distribution (or constant seconds) of the payload's execution
        time on a reference-speed worker node.
    input_files:
        GFNs (strings) staged in before execution; they must already be
        registered in the grid's replica catalog.  Transfer times come
        from the grid's network model.
    output_files:
        :class:`~repro.grid.storage.LogicalFile` objects (GFN + size)
        the job produces; after execution they are transferred to the
        closest storage element and registered.
    payload:
        Optional callable ``payload() -> Any`` evaluated when the job
        completes; its return value is stored on the record.  This is
        how simulated services produce real data products.
    owner:
        Accounting tag (used by fair-share batch scheduling and the
        background-load separation in reports).
    """

    name: str
    command_line: str = ""
    compute_time: "float | Distribution" = 0.0
    input_files: Tuple[str, ...] = ()
    output_files: Tuple[Any, ...] = ()  # tuple[LogicalFile, ...]
    payload: Optional[Callable[[], Any]] = None
    owner: str = "user"
    tags: Mapping[str, Any] = field(default_factory=dict)

    def compute_distribution(self) -> Distribution:
        """The compute-time model as a :class:`Distribution`."""
        return as_distribution(self.compute_time)

    def with_name(self, name: str) -> "JobDescription":
        """Copy with a different display name."""
        return JobDescription(
            name=name,
            command_line=self.command_line,
            compute_time=self.compute_time,
            input_files=self.input_files,
            output_files=self.output_files,
            payload=self.payload,
            owner=self.owner,
            tags=dict(self.tags),
        )


class JobRecord:
    """Mutable per-job execution record kept by the middleware."""

    def __init__(self, description: JobDescription) -> None:
        self.job_id: int = next(_job_ids)
        self.description = description
        self.state: JobState = JobState.CREATED
        #: state -> list of times the state was entered (resubmission => several).
        self.timestamps: dict[JobState, list[float]] = {state: [] for state in JobState}
        self.computing_element: Optional[str] = None
        self.worker_node: Optional[str] = None
        self.attempts: int = 0
        self.result: Any = None
        #: latest failure reason (None after a successful completion)
        self.failure_reason: Optional[str] = None
        #: every attempt-level failure, oldest first — resubmissions
        #: accumulate here instead of overwriting each other
        self.failure_history: list[AttemptFailure] = []
        #: seconds spent moving input/output files for the final attempt
        self.stage_in_time: float = 0.0
        self.stage_out_time: float = 0.0
        #: sampled payload execution seconds for the final attempt
        self.execution_time: float = 0.0

    @property
    def name(self) -> str:
        """The description's display name."""
        return self.description.name

    def enter(self, state: JobState, now: float) -> None:
        """Record entering *state* at simulated time *now*."""
        self.state = state
        self.timestamps[state].append(now)

    def record_failure(
        self,
        attempt: int,
        computing_element: Optional[str],
        reason: str,
        at: float,
        kind: str = "fault",
    ) -> AttemptFailure:
        """Append one attempt-level failure; keeps ``failure_reason`` current."""
        failure = AttemptFailure(
            attempt=attempt,
            computing_element=computing_element,
            reason=reason,
            at=at,
            kind=kind,
        )
        self.failure_history.append(failure)
        self.failure_reason = reason
        return failure

    def first(self, state: JobState) -> Optional[float]:
        """First time the job entered *state*, or None."""
        times = self.timestamps[state]
        return times[0] if times else None

    def last(self, state: JobState) -> Optional[float]:
        """Most recent time the job entered *state*, or None."""
        times = self.timestamps[state]
        return times[-1] if times else None

    # -- derived metrics ------------------------------------------------
    @property
    def makespan(self) -> Optional[float]:
        """Submission-to-completion wall time (None until DONE)."""
        start = self.first(JobState.SUBMITTED)
        end = self.last(JobState.DONE)
        if start is None or end is None:
            return None
        return end - start

    @property
    def overhead(self) -> Optional[float]:
        """Grid overhead: everything except stage-in/out and execution.

        This matches the paper's definition: "the overhead introduced by
        the submission, scheduling and queuing times".
        """
        span = self.makespan
        if span is None:
            return None
        return span - self.execution_time - self.stage_in_time - self.stage_out_time

    @property
    def queue_wait(self) -> Optional[float]:
        """Time spent queued at the CE for the final attempt."""
        queued = self.last(JobState.QUEUED)
        running = self.last(JobState.RUNNING)
        if queued is None or running is None:
            return None
        return running - queued

    def __repr__(self) -> str:
        return f"<JobRecord #{self.job_id} {self.name!r} {self.state.value}>"


def total_compute_mean(descriptions: Sequence[JobDescription]) -> float:
    """Sum of mean compute times over *descriptions* (planning helper)."""
    return sum(d.compute_distribution().mean() for d in descriptions)
