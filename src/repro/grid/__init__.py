"""EGEE-like grid infrastructure simulator.

This subpackage is the substrate the paper's experiments ran on: a
production grid accessed through LCG2-style middleware.  We model the
pieces that shape the measured behaviour:

* a **user interface / resource broker** pipeline with stochastic
  submission and matchmaking latencies (`broker`, `overhead`),
* **computing elements** running internal batch schedulers over pools of
  worker nodes (`resources`, `batch`),
* **storage elements** with a replica catalog resolving Grid File Names
  and a network transfer-time model (`storage`, `transfer`),
* **background multi-user load** and **failures with resubmission**
  (`load`, `faults`),
* a façade tying it together with a submit/poll API (`middleware`), and
* canned configurations, from an idealized zero-overhead grid (used to
  validate the analytical model) to a calibrated EGEE-like testbed
  (`testbeds`).

The paper's central observation — that per-job grid overhead is both
large (~10 min) and highly variable (± 5 min), which is what makes
service parallelism and job grouping pay off — maps directly onto the
`OverheadModel` parameters of the testbed in use.
"""

from repro.grid.faults import DurabilityFaultModel, FaultModel, OutageSchedule
from repro.grid.job import JobDescription, JobRecord, JobState
from repro.grid.middleware import Grid, SubmissionHandle, TransferFailedError
from repro.grid.overhead import OverheadModel
from repro.grid.storage import (
    LogicalFile,
    ReplicaCatalog,
    ReplicaUnavailableError,
    StorageElement,
    UnknownFileError,
)
from repro.grid.testbeds import (
    chaotic_testbed,
    cluster_testbed,
    egee_like_testbed,
    ideal_testbed,
)

__all__ = [
    "JobDescription",
    "JobRecord",
    "JobState",
    "Grid",
    "SubmissionHandle",
    "OverheadModel",
    "LogicalFile",
    "ReplicaCatalog",
    "StorageElement",
    "FaultModel",
    "OutageSchedule",
    "DurabilityFaultModel",
    "ReplicaUnavailableError",
    "UnknownFileError",
    "TransferFailedError",
    "ideal_testbed",
    "cluster_testbed",
    "egee_like_testbed",
    "chaotic_testbed",
]
