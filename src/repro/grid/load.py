"""Background multi-user load.

EGEE is a "large scale and multi-user platform" (Section 3.5.4): the
application's jobs compete with thousands of other users' jobs for the
same batch queues.  That contention is the physical source of the
queuing-time variability at the heart of the paper's analysis.

:class:`BackgroundLoad` is a simulated process that injects dummy jobs
straight into computing-element queues with exponential inter-arrival
times.  The injected jobs occupy real worker slots, so the contention
felt by application jobs is structural, not just an added constant.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.grid.job import JobDescription, JobRecord
from repro.grid.resources import ComputingElement
from repro.sim.engine import Engine
from repro.util.distributions import Distribution, as_distribution

__all__ = ["BackgroundLoad"]


class BackgroundLoad:
    """Poisson stream of other-user jobs hitting the computing elements.

    Parameters
    ----------
    interarrival:
        Distribution of seconds between consecutive background
        submissions (across the whole grid).
    duration:
        Distribution of background-job compute time.
    horizon:
        Stop injecting after this simulated time (None = forever).
        Experiments set a horizon comfortably beyond the measured
        workload so the load is stationary throughout.
    """

    def __init__(
        self,
        engine: Engine,
        computing_elements: List[ComputingElement],
        rng: np.random.Generator,
        interarrival: "float | Distribution",
        duration: "float | Distribution",
        horizon: Optional[float] = None,
    ) -> None:
        if not computing_elements:
            raise ValueError("background load needs at least one CE")
        self.engine = engine
        self.computing_elements = list(computing_elements)
        self._rng = rng
        self.interarrival = as_distribution(interarrival)
        self.duration = as_distribution(duration)
        self.horizon = horizon
        self.injected = 0
        engine.process(self._inject_loop(), name="background-load")

    def _inject_loop(self):
        while True:
            gap = self.interarrival.sample(self._rng)
            yield self.engine.timeout(gap)
            if self.horizon is not None and self.engine.now >= self.horizon:
                return
            target = self.computing_elements[
                int(self._rng.integers(len(self.computing_elements)))
            ]
            description = JobDescription(
                name=f"background-{self.injected}",
                command_line="other-vo-payload",
                compute_time=float(self.duration.sample(self._rng)),
                owner="background",
            )
            record = JobRecord(description)
            # Background jobs bypass the broker: they model load arriving
            # at the site from elsewhere, and we never await their completion.
            target.submit(record)
            self.injected += 1
