"""Network transfer-time model.

Transfers happen when a job stages its input files in from storage
elements and registers its outputs back (Figure 7: "Input data
transfer" / "Output data transfer" around every service invocation —
precisely the cost that job grouping removes for intermediate data).

The model is a per-link affine law::

    time(src_site, dst_site, size) = latency(src, dst) + size / bandwidth(src, dst)

with distinct intra-site (LAN) and inter-site (WAN) defaults and
optional per-pair overrides.  This is intentionally simple — the paper
treats transfer time as part of the lumped grid overhead — but it is a
real model: grouped jobs demonstrably save the intermediate transfers,
and the saving scales with data size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.util.units import MEBIBYTE

__all__ = ["LinkParameters", "NetworkModel", "TransferObserver"]

#: observer signature: ``(src_site, dst_site, size_bytes, seconds)``
TransferObserver = Callable[[str, str, float, float], None]


@dataclass(frozen=True)
class LinkParameters:
    """One directed link: fixed latency (s) + bandwidth (bytes/s)."""

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")

    def transfer_time(self, size: float) -> float:
        """Seconds to move *size* bytes over this link."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        return self.latency + size / self.bandwidth


@dataclass
class NetworkModel:
    """Site-to-site transfer times with LAN/WAN defaults and overrides."""

    lan: LinkParameters = field(
        default_factory=lambda: LinkParameters(latency=0.1, bandwidth=100 * MEBIBYTE)
    )
    wan: LinkParameters = field(
        default_factory=lambda: LinkParameters(latency=2.0, bandwidth=5 * MEBIBYTE)
    )
    overrides: Dict[Tuple[str, str], LinkParameters] = field(default_factory=dict)
    #: observers called as ``(src_site, dst_site, size, seconds)`` for
    #: every transfer-time evaluation, in registration order.  The grid
    #: registers its metrics hook here and a
    #: :class:`~repro.observability.dataflow.DataFlowCollector` adds its
    #: own — they compose instead of replacing each other.  Purely
    #: observational — no timing impact.
    observers: List[TransferObserver] = field(
        default_factory=list, repr=False, compare=False
    )

    @classmethod
    def instantaneous(cls) -> "NetworkModel":
        """Zero-latency, effectively infinite-bandwidth network (ideal grid)."""
        fast = LinkParameters(latency=0.0, bandwidth=float("inf"))
        return cls(lan=fast, wan=fast)

    def link(self, src_site: str, dst_site: str) -> LinkParameters:
        """The parameters governing a src -> dst transfer."""
        override = self.overrides.get((src_site, dst_site))
        if override is not None:
            return override
        return self.lan if src_site == dst_site else self.wan

    def add_observer(self, observer: TransferObserver) -> TransferObserver:
        """Register a transfer observer (multicast; fires in add order)."""
        self.observers.append(observer)
        return observer

    def remove_observer(self, observer: TransferObserver) -> None:
        """Unregister a previously added observer (no-op if absent)."""
        try:
            self.observers.remove(observer)
        except ValueError:
            pass

    @property
    def on_transfer(self) -> Optional[TransferObserver]:
        """Single-callable compatibility view of the observer list.

        Reading yields the first observer (None when empty); assigning
        *replaces* the whole list — the historical single-slot
        semantics.  New code should use :meth:`add_observer`, which
        composes instead of clobbering.
        """
        return self.observers[0] if self.observers else None

    @on_transfer.setter
    def on_transfer(self, observer: Optional[TransferObserver]) -> None:
        self.observers[:] = [] if observer is None else [observer]

    def transfer_time(self, src_site: str, dst_site: str, size: float) -> float:
        """Seconds to move *size* bytes from *src_site* to *dst_site*."""
        seconds = self.link(src_site, dst_site).transfer_time(size)
        for observer in self.observers:
            observer(src_site, dst_site, size, seconds)
        return seconds

    def set_link(self, src_site: str, dst_site: str, params: LinkParameters) -> None:
        """Override one directed site pair."""
        self.overrides[(src_site, dst_site)] = params
