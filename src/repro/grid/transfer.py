"""Network transfer-time model.

Transfers happen when a job stages its input files in from storage
elements and registers its outputs back (Figure 7: "Input data
transfer" / "Output data transfer" around every service invocation —
precisely the cost that job grouping removes for intermediate data).

The model is a per-link affine law::

    time(src_site, dst_site, size) = latency(src, dst) + size / bandwidth(src, dst)

with distinct intra-site (LAN) and inter-site (WAN) defaults and
optional per-pair overrides.  This is intentionally simple — the paper
treats transfer time as part of the lumped grid overhead — but it is a
real model: grouped jobs demonstrably save the intermediate transfers,
and the saving scales with data size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.util.units import MEBIBYTE

__all__ = ["LinkParameters", "NetworkModel", "TransferObserver", "DegradedWindow"]

#: observer signature: ``(src_site, dst_site, size_bytes, seconds)``
TransferObserver = Callable[[str, str, float, float], None]


@dataclass(frozen=True)
class DegradedWindow:
    """A timed bandwidth brown-out on matching links.

    While ``start <= now < end`` every transfer whose endpoints match
    (``None`` endpoints match any site) takes ``factor`` times longer —
    the congested-backbone / throttled-SE pathology, injected
    deterministically so chaos runs stay replayable.
    """

    start: float
    end: float
    factor: float
    src: Optional[str] = None
    dst: Optional[str] = None

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"window must have end > start, got [{self.start}, {self.end})")
        if self.factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {self.factor}")

    def matches(self, src_site: str, dst_site: str, now: float) -> bool:
        """Does this window slow a src -> dst transfer happening at *now*?"""
        if not self.start <= now < self.end:
            return False
        if self.src is not None and self.src != src_site:
            return False
        return self.dst is None or self.dst == dst_site


@dataclass(frozen=True)
class LinkParameters:
    """One directed link: fixed latency (s) + bandwidth (bytes/s)."""

    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")

    def transfer_time(self, size: float) -> float:
        """Seconds to move *size* bytes over this link."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        return self.latency + size / self.bandwidth


@dataclass
class NetworkModel:
    """Site-to-site transfer times with LAN/WAN defaults and overrides."""

    lan: LinkParameters = field(
        default_factory=lambda: LinkParameters(latency=0.1, bandwidth=100 * MEBIBYTE)
    )
    wan: LinkParameters = field(
        default_factory=lambda: LinkParameters(latency=2.0, bandwidth=5 * MEBIBYTE)
    )
    overrides: Dict[Tuple[str, str], LinkParameters] = field(default_factory=dict)
    #: fleet-wide probability that one transfer attempt fails mid-flight
    failure_probability: float = 0.0
    #: per-directed-link failure probability overrides
    link_failure_probability: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: timed bandwidth brown-outs (applied when a transfer passes ``now``)
    degraded_windows: Tuple[DegradedWindow, ...] = ()
    #: observers called as ``(src_site, dst_site, size, seconds)`` for
    #: every transfer-time evaluation, in registration order.  The grid
    #: registers its metrics hook here and a
    #: :class:`~repro.observability.dataflow.DataFlowCollector` adds its
    #: own — they compose instead of replacing each other.  Purely
    #: observational — no timing impact.
    observers: List[TransferObserver] = field(
        default_factory=list, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for label, p in [("failure_probability", self.failure_probability)] + [
            (f"link_failure_probability[{pair}]", p)
            for pair, p in self.link_failure_probability.items()
        ]:
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {p}")

    @classmethod
    def instantaneous(cls) -> "NetworkModel":
        """Zero-latency, effectively infinite-bandwidth network (ideal grid)."""
        fast = LinkParameters(latency=0.0, bandwidth=float("inf"))
        return cls(lan=fast, wan=fast)

    def link(self, src_site: str, dst_site: str) -> LinkParameters:
        """The parameters governing a src -> dst transfer."""
        override = self.overrides.get((src_site, dst_site))
        if override is not None:
            return override
        return self.lan if src_site == dst_site else self.wan

    def add_observer(self, observer: TransferObserver) -> TransferObserver:
        """Register a transfer observer (multicast; fires in add order)."""
        self.observers.append(observer)
        return observer

    def remove_observer(self, observer: TransferObserver) -> None:
        """Unregister a previously added observer (no-op if absent)."""
        try:
            self.observers.remove(observer)
        except ValueError:
            pass

    @property
    def on_transfer(self) -> Optional[TransferObserver]:
        """Single-callable compatibility view of the observer list.

        Reading yields the first observer (None when empty); assigning
        *replaces* the whole list — the historical single-slot
        semantics.  New code should use :meth:`add_observer`, which
        composes instead of clobbering.
        """
        return self.observers[0] if self.observers else None

    @on_transfer.setter
    def on_transfer(self, observer: Optional[TransferObserver]) -> None:
        self.observers[:] = [] if observer is None else [observer]

    @property
    def has_faults(self) -> bool:
        """True when any transfer attempt can fail."""
        return self.failure_probability > 0.0 or any(
            p > 0.0 for p in self.link_failure_probability.values()
        )

    def failure_probability_for(self, src_site: str, dst_site: str) -> float:
        """The failure probability governing a src -> dst attempt."""
        override = self.link_failure_probability.get((src_site, dst_site))
        if override is not None:
            return override
        return self.failure_probability

    def degradation_factor(self, src_site: str, dst_site: str, now: float) -> float:
        """Combined slow-down of every degraded window live at *now*."""
        factor = 1.0
        for window in self.degraded_windows:
            if window.matches(src_site, dst_site, now):
                factor *= window.factor
        return factor

    def raw_transfer_time(
        self,
        src_site: str,
        dst_site: str,
        size: float,
        now: Optional[float] = None,
    ) -> float:
        """Transfer seconds *without* firing observers.

        The chaos stage-in path prices doomed attempts with this (a
        failed transfer delivers no bytes, so it must not enter the
        byte ledger) and only reports the final successful copy through
        :meth:`transfer_time`.  Passing *now* applies any degraded
        windows live at that instant.
        """
        seconds = self.link(src_site, dst_site).transfer_time(size)
        if now is not None:
            seconds *= self.degradation_factor(src_site, dst_site, now)
        return seconds

    def transfer_time(
        self,
        src_site: str,
        dst_site: str,
        size: float,
        now: Optional[float] = None,
    ) -> float:
        """Seconds to move *size* bytes from *src_site* to *dst_site*."""
        seconds = self.raw_transfer_time(src_site, dst_site, size, now=now)
        for observer in self.observers:
            observer(src_site, dst_site, size, seconds)
        return seconds

    def set_link(self, src_site: str, dst_site: str, params: LinkParameters) -> None:
        """Override one directed site pair."""
        self.overrides[(src_site, dst_site)] = params
