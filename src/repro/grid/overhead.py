"""Stochastic middleware-overhead model.

The paper (Sections 3.5.4 and 5.1) attributes the distinctive
performance behaviour of production grids to a large, highly variable
per-job overhead: "the overhead introduced by submission, scheduling,
queuing and data transfers times can be very high (around 10 minutes)
and quite variable (± 5 minutes)".

We decompose that overhead into the phases an LCG2-like stack actually
has; each phase gets its own :class:`~repro.util.distributions.Distribution`:

``submission``
    User interface accepting the job and shipping it to the Resource
    Broker (sandbox upload, authentication, ...).
``brokering``
    Matchmaking at the Resource Broker and dispatch to the chosen
    computing element.
``queue_extra``
    Middleware-induced queue residency at the CE **on top of** the
    contention computed by the batch simulation (information-system
    staleness, ranking errors, jobs landing on busy sites, other VOs'
    jobs ahead in the local queue that we do not simulate
    individually...).  On a heavily shared infrastructure this is the
    dominant, heavy-tailed term.
``completion_notification``
    Delay between the job finishing on the worker and the submitter
    observing DONE (logging & bookkeeping propagation).

`total_mean()` exposes the calibrated expectation so experiment code
can reason about regimes (overhead-dominated vs compute-dominated).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.distributions import Constant, Distribution, as_distribution

__all__ = ["OverheadModel", "OverheadSample"]


@dataclass(frozen=True)
class OverheadSample:
    """One job's sampled overhead phases, in seconds."""

    submission: float
    brokering: float
    queue_extra: float
    completion_notification: float

    @property
    def total(self) -> float:
        """Sum of all overhead phases."""
        return self.submission + self.brokering + self.queue_extra + self.completion_notification

    def under_load(self, scale: float) -> "OverheadSample":
        """Scale the load-sensitive phases (brokering + queue residency).

        Queue waits and matchmaking latency on a shared grid grow with
        how much work is in flight; submission and completion
        notification are per-job constants.  The middleware applies
        this with ``scale`` derived from current grid utilization —
        see :meth:`repro.grid.middleware.Grid.load_factor`.
        """
        if scale < 0:
            raise ValueError(f"scale must be >= 0, got {scale}")
        return OverheadSample(
            submission=self.submission,
            brokering=self.brokering * scale,
            queue_extra=self.queue_extra * scale,
            completion_notification=self.completion_notification,
        )


@dataclass(frozen=True)
class OverheadModel:
    """Per-phase overhead distributions (see module docstring)."""

    submission: Distribution = field(default_factory=lambda: Constant(0.0))
    brokering: Distribution = field(default_factory=lambda: Constant(0.0))
    queue_extra: Distribution = field(default_factory=lambda: Constant(0.0))
    completion_notification: Distribution = field(default_factory=lambda: Constant(0.0))

    @classmethod
    def zero(cls) -> "OverheadModel":
        """No overhead at all — the idealized grid of Section 3.5's model."""
        return cls()

    @classmethod
    def from_values(
        cls,
        submission: "float | Distribution" = 0.0,
        brokering: "float | Distribution" = 0.0,
        queue_extra: "float | Distribution" = 0.0,
        completion_notification: "float | Distribution" = 0.0,
    ) -> "OverheadModel":
        """Build a model coercing bare numbers to constants."""
        return cls(
            submission=as_distribution(submission),
            brokering=as_distribution(brokering),
            queue_extra=as_distribution(queue_extra),
            completion_notification=as_distribution(completion_notification),
        )

    def sample(self, rng: np.random.Generator) -> OverheadSample:
        """Draw one job's worth of overhead phases."""
        return OverheadSample(
            submission=self.submission.sample(rng),
            brokering=self.brokering.sample(rng),
            queue_extra=self.queue_extra.sample(rng),
            completion_notification=self.completion_notification.sample(rng),
        )

    def total_mean(self) -> float:
        """Expected total overhead per job."""
        return (
            self.submission.mean()
            + self.brokering.mean()
            + self.queue_extra.mean()
            + self.completion_notification.mean()
        )
