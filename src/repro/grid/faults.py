"""Failure injection and resubmission policy.

Production-grid jobs fail for reasons unrelated to the application
(middleware hiccups, full scratch disks, expired proxies...).  The
paper's Figure 6 narrative makes this concrete: "D0 was submitted twice
because an error occurred".  Failures interact with the optimization
study in two ways:

* they lengthen *some* jobs enormously, feeding the execution-time
  variability that makes service parallelism profitable even under
  data parallelism, and
* resubmission multiplies the per-job overhead, amplifying what job
  grouping saves.

The model: each *attempt* fails independently with ``probability``.
A failing attempt is detected only after ``detection_delay`` (the user
notices via job monitoring), then the middleware resubmits, up to
``max_attempts`` total attempts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.distributions import Constant, Distribution, as_distribution

__all__ = ["FaultModel"]


@dataclass(frozen=True)
class FaultModel:
    """Per-attempt failure model with bounded resubmission."""

    probability: float = 0.0
    detection_delay: Distribution = field(default_factory=lambda: Constant(0.0))
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    @classmethod
    def none(cls) -> "FaultModel":
        """No failures (ideal and model-validation testbeds)."""
        return cls(probability=0.0, max_attempts=1)

    @classmethod
    def from_values(
        cls,
        probability: float,
        detection_delay: "float | Distribution" = 0.0,
        max_attempts: int = 3,
    ) -> "FaultModel":
        """Build coercing a bare delay number to a constant distribution."""
        return cls(
            probability=probability,
            detection_delay=as_distribution(detection_delay),
            max_attempts=max_attempts,
        )

    def attempt_fails(self, rng: np.random.Generator) -> bool:
        """Sample whether one attempt fails."""
        if self.probability == 0.0:
            return False
        return bool(rng.random() < self.probability)

    def sample_detection_delay(self, rng: np.random.Generator) -> float:
        """How long a failure goes unnoticed before resubmission."""
        return self.detection_delay.sample(rng)

    def expected_attempts(self) -> float:
        """Expected number of attempts per job (truncated geometric)."""
        p = self.probability
        if p == 0.0:
            return 1.0
        n = self.max_attempts
        # E[min(G, n)] for geometric G with success prob (1-p):
        return sum(p ** (k - 1) for k in range(1, n + 1))
