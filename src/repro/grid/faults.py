"""Failure injection and resubmission policy.

Production-grid jobs fail for reasons unrelated to the application
(middleware hiccups, full scratch disks, expired proxies...).  The
paper's Figure 6 narrative makes this concrete: "D0 was submitted twice
because an error occurred".  Failures interact with the optimization
study in two ways:

* they lengthen *some* jobs enormously, feeding the execution-time
  variability that makes service parallelism profitable even under
  data parallelism, and
* resubmission multiplies the per-job overhead, amplifying what job
  grouping saves.

The model: each *attempt* fails independently with ``probability``.
A failing attempt is detected only after ``detection_delay`` (the user
notices via job monitoring), then the middleware resubmits, up to
``max_attempts`` total attempts.

Failure is rarely uniform across a production grid: the classic EGEE
pathology is the *blackhole* site that fails nearly everything it is
given, and fails it fast.  ``ce_probability`` / ``ce_detection_delay``
override the fleet-wide numbers for named computing elements so
testbeds can inject exactly that asymmetry (and the live monitor can
be tested against a known ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.util.distributions import Constant, Distribution, as_distribution

__all__ = ["FaultModel"]


@dataclass(frozen=True)
class FaultModel:
    """Per-attempt failure model with bounded resubmission."""

    probability: float = 0.0
    detection_delay: Distribution = field(default_factory=lambda: Constant(0.0))
    max_attempts: int = 3
    #: per-CE failure probability overrides (CE name -> probability)
    ce_probability: Mapping[str, float] = field(default_factory=dict)
    #: per-CE detection-delay overrides (CE name -> distribution)
    ce_detection_delay: Mapping[str, Distribution] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        for ce, p in self.ce_probability.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"probability for CE {ce!r} must be in [0, 1], got {p}"
                )

    @classmethod
    def none(cls) -> "FaultModel":
        """No failures (ideal and model-validation testbeds)."""
        return cls(probability=0.0, max_attempts=1)

    @classmethod
    def from_values(
        cls,
        probability: float,
        detection_delay: "float | Distribution" = 0.0,
        max_attempts: int = 3,
        ce_probability: Optional[Mapping[str, float]] = None,
        ce_detection_delay: Optional[Mapping[str, "float | Distribution"]] = None,
    ) -> "FaultModel":
        """Build coercing bare delay numbers to constant distributions."""
        delays: Dict[str, Distribution] = {
            ce: as_distribution(delay)
            for ce, delay in (ce_detection_delay or {}).items()
        }
        return cls(
            probability=probability,
            detection_delay=as_distribution(detection_delay),
            max_attempts=max_attempts,
            ce_probability=dict(ce_probability or {}),
            ce_detection_delay=delays,
        )

    def probability_for(self, ce: Optional[str] = None) -> float:
        """The failure probability governing an attempt on *ce*."""
        if ce is not None and ce in self.ce_probability:
            return self.ce_probability[ce]
        return self.probability

    def attempt_fails(self, rng: np.random.Generator, ce: Optional[str] = None) -> bool:
        """Sample whether one attempt (on *ce*, when known) fails.

        The random stream is consumed whenever *any* CE can fail, so
        which CE the broker happened to pick never shifts the draws
        seen by later jobs — keeps seeded runs comparable across
        feedback on/off ablations.
        """
        if self.probability == 0.0 and not self.ce_probability:
            return False
        return bool(rng.random() < self.probability_for(ce))

    def sample_detection_delay(
        self, rng: np.random.Generator, ce: Optional[str] = None
    ) -> float:
        """How long a failure goes unnoticed before resubmission."""
        if ce is not None and ce in self.ce_detection_delay:
            return self.ce_detection_delay[ce].sample(rng)
        return self.detection_delay.sample(rng)

    def expected_attempts(self, ce: Optional[str] = None) -> float:
        """Expected attempts per job (truncated geometric).

        With *ce* given, uses that CE's override probability — the
        planning number behind retry budgets and the wasted-grid-time
        accounting of the retry-policy ablation.
        """
        p = self.probability_for(ce)
        if p == 0.0:
            return 1.0
        n = self.max_attempts
        # E[min(G, n)] for geometric G with success prob (1-p):
        return sum(p ** (k - 1) for k in range(1, n + 1))
