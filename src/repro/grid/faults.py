"""Failure injection and resubmission policy.

Production-grid jobs fail for reasons unrelated to the application
(middleware hiccups, full scratch disks, expired proxies...).  The
paper's Figure 6 narrative makes this concrete: "D0 was submitted twice
because an error occurred".  Failures interact with the optimization
study in two ways:

* they lengthen *some* jobs enormously, feeding the execution-time
  variability that makes service parallelism profitable even under
  data parallelism, and
* resubmission multiplies the per-job overhead, amplifying what job
  grouping saves.

The model: each *attempt* fails independently with ``probability``.
A failing attempt is detected only after ``detection_delay`` (the user
notices via job monitoring), then the middleware resubmits, up to
``max_attempts`` total attempts.

Failure is rarely uniform across a production grid: the classic EGEE
pathology is the *blackhole* site that fails nearly everything it is
given, and fails it fast.  ``ce_probability`` / ``ce_detection_delay``
override the fleet-wide numbers for named computing elements so
testbeds can inject exactly that asymmetry (and the live monitor can
be tested against a known ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.util.distributions import Constant, Distribution, as_distribution

__all__ = ["FaultModel", "OutageSchedule", "DurabilityFaultModel"]


@dataclass(frozen=True)
class FaultModel:
    """Per-attempt failure model with bounded resubmission."""

    probability: float = 0.0
    detection_delay: Distribution = field(default_factory=lambda: Constant(0.0))
    max_attempts: int = 3
    #: per-CE failure probability overrides (CE name -> probability)
    ce_probability: Mapping[str, float] = field(default_factory=dict)
    #: per-CE detection-delay overrides (CE name -> distribution)
    ce_detection_delay: Mapping[str, Distribution] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        for ce, p in self.ce_probability.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"probability for CE {ce!r} must be in [0, 1], got {p}"
                )

    @classmethod
    def none(cls) -> "FaultModel":
        """No failures (ideal and model-validation testbeds)."""
        return cls(probability=0.0, max_attempts=1)

    @classmethod
    def from_values(
        cls,
        probability: float,
        detection_delay: "float | Distribution" = 0.0,
        max_attempts: int = 3,
        ce_probability: Optional[Mapping[str, float]] = None,
        ce_detection_delay: Optional[Mapping[str, "float | Distribution"]] = None,
    ) -> "FaultModel":
        """Build coercing bare delay numbers to constant distributions."""
        delays: Dict[str, Distribution] = {
            ce: as_distribution(delay)
            for ce, delay in (ce_detection_delay or {}).items()
        }
        return cls(
            probability=probability,
            detection_delay=as_distribution(detection_delay),
            max_attempts=max_attempts,
            ce_probability=dict(ce_probability or {}),
            ce_detection_delay=delays,
        )

    def probability_for(self, ce: Optional[str] = None) -> float:
        """The failure probability governing an attempt on *ce*."""
        if ce is not None and ce in self.ce_probability:
            return self.ce_probability[ce]
        return self.probability

    def attempt_fails(self, rng: np.random.Generator, ce: Optional[str] = None) -> bool:
        """Sample whether one attempt (on *ce*, when known) fails.

        The random stream is consumed whenever *any* CE can fail, so
        which CE the broker happened to pick never shifts the draws
        seen by later jobs — keeps seeded runs comparable across
        feedback on/off ablations.
        """
        if self.probability == 0.0 and not self.ce_probability:
            return False
        return bool(rng.random() < self.probability_for(ce))

    def sample_detection_delay(
        self, rng: np.random.Generator, ce: Optional[str] = None
    ) -> float:
        """How long a failure goes unnoticed before resubmission."""
        if ce is not None and ce in self.ce_detection_delay:
            return self.ce_detection_delay[ce].sample(rng)
        return self.detection_delay.sample(rng)

    def expected_attempts(self, ce: Optional[str] = None) -> float:
        """Expected attempts per job (truncated geometric).

        With *ce* given, uses that CE's override probability — the
        planning number behind retry budgets and the wasted-grid-time
        accounting of the retry-policy ablation.
        """
        p = self.probability_for(ce)
        if p == 0.0:
            return 1.0
        n = self.max_attempts
        # E[min(G, n)] for geometric G with success prob (1-p):
        return sum(p ** (k - 1) for k in range(1, n + 1))


def _normalise_windows(
    windows: Iterable[Tuple[float, float]],
) -> Tuple[Tuple[float, float], ...]:
    """Sort, validate, and merge overlapping ``[start, end)`` windows."""
    ordered = sorted((float(s), float(e)) for s, e in windows)
    merged: list = []
    for start, end in ordered:
        if end <= start:
            raise ValueError(f"outage window must have end > start, got [{start}, {end})")
        if start < 0:
            raise ValueError(f"outage window must start at >= 0, got {start}")
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)


@dataclass(frozen=True)
class OutageSchedule:
    """Deterministic down/up timeline for sites, CEs, and storage elements.

    A *subject* is any failure-domain name — a site (``site01``, taking
    its CE and SE down with it), a computing element (``site01-ce``), or
    a storage element (``site01-se``).  Each subject owns a sorted tuple
    of half-open ``[start, end)`` down-windows; outside every window the
    subject is up.  The schedule is a pure value: no clocks, no RNG
    state — given the same seed, :meth:`generate` always produces the
    same timeline, so chaos runs replay byte-identically.
    """

    #: subject name -> merged, sorted ``(start, end)`` down-windows
    windows: Mapping[str, Tuple[Tuple[float, float], ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cleaned = {
            subject: _normalise_windows(spans)
            for subject, spans in self.windows.items()
            if spans
        }
        object.__setattr__(self, "windows", cleaned)

    @classmethod
    def none(cls) -> "OutageSchedule":
        """The always-up schedule (every non-chaotic testbed)."""
        return cls()

    @classmethod
    def from_windows(
        cls, windows: Mapping[str, Iterable[Tuple[float, float]]]
    ) -> "OutageSchedule":
        """Build from a plain mapping of subject -> window list."""
        return cls({subject: tuple(spans) for subject, spans in windows.items()})

    def with_flapping(
        self,
        subject: str,
        start: float,
        down: float,
        up: float,
        cycles: int,
    ) -> "OutageSchedule":
        """A copy where *subject* flaps: *cycles* down-windows of length
        *down* separated by *up* seconds of health, starting at *start*."""
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        if down <= 0 or up < 0:
            raise ValueError(f"need down > 0 and up >= 0, got down={down} up={up}")
        flaps = [
            (start + k * (down + up), start + k * (down + up) + down)
            for k in range(cycles)
        ]
        merged = dict(self.windows)
        merged[subject] = tuple(merged.get(subject, ())) + tuple(flaps)
        return OutageSchedule(merged)

    @classmethod
    def generate(
        cls,
        seed: int,
        subjects: Sequence[str],
        horizon: float,
        outage_rate: float = 1.0,
        mean_downtime: float = 300.0,
    ) -> "OutageSchedule":
        """Draw a random schedule as a pure function of *seed*.

        Each subject suffers ``Poisson(outage_rate)`` outages uniformly
        placed over ``[0, horizon)`` with exponential downtimes of mean
        *mean_downtime* (clipped to the horizon).  Subjects are processed
        in the given order from a dedicated generator, so the timeline
        depends only on the arguments.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        rng = np.random.default_rng(seed)
        windows: Dict[str, list] = {}
        for subject in subjects:
            count = int(rng.poisson(outage_rate))
            spans = []
            for _ in range(count):
                start = float(rng.uniform(0.0, horizon))
                length = float(rng.exponential(mean_downtime))
                spans.append((start, min(start + max(length, 1.0), horizon)))
            if spans:
                windows[subject] = spans
        return cls.from_windows(windows)

    @property
    def empty(self) -> bool:
        """True when no subject ever goes down."""
        return not self.windows

    def subjects(self) -> Tuple[str, ...]:
        """All subjects with at least one down-window, sorted."""
        return tuple(sorted(self.windows))

    def down_windows(self, subject: str) -> Tuple[Tuple[float, float], ...]:
        """The merged down-windows of one subject (empty if always up)."""
        return self.windows.get(subject, ())

    def is_down(self, subject: str, now: float) -> bool:
        """Is *subject* inside one of its ``[start, end)`` down-windows?"""
        for start, end in self.windows.get(subject, ()):
            if start <= now < end:
                return True
            if now < start:
                break
        return False

    def next_up(self, subject: str, now: float) -> float:
        """When *subject* is next up: *now* if already up, else the end
        of the down-window containing *now*."""
        for start, end in self.windows.get(subject, ()):
            if start <= now < end:
                return end
            if now < start:
                break
        return now


@dataclass(frozen=True)
class DurabilityFaultModel:
    """Replica loss and corruption injected on stage-in accesses.

    Every verified access to a replica draws exactly one number (when
    the model is active at all), so which replica the failover logic
    happened to pick never shifts the draws seen by later accesses —
    the same stream-stability rule :meth:`FaultModel.attempt_fails`
    follows for job faults.
    """

    #: probability that the accessed replica turns out to be lost
    loss_probability: float = 0.0
    #: probability that the transfer completes but the checksum mismatches
    corruption_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss_probability", "corruption_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.loss_probability + self.corruption_probability > 1.0:
            raise ValueError("loss + corruption probabilities must not exceed 1")

    @classmethod
    def none(cls) -> "DurabilityFaultModel":
        """Perfectly durable storage (every non-chaotic testbed)."""
        return cls()

    @property
    def active(self) -> bool:
        """True when any replica fault can fire."""
        return self.loss_probability > 0.0 or self.corruption_probability > 0.0

    def access_outcome(self, rng: np.random.Generator) -> str:
        """Sample one access: ``"ok"``, ``"lost"``, or ``"corrupt"``."""
        if not self.active:
            return "ok"
        draw = rng.random()
        if draw < self.loss_probability:
            return "lost"
        if draw < self.loss_probability + self.corruption_probability:
            return "corrupt"
        return "ok"
