"""Storage elements, logical files and the replica catalog.

The paper's executable descriptors reference data by **Grid File Name**
(GFN) and leave physical placement to the middleware (Figure 8: access
``type="GFN"``).  We model:

* :class:`LogicalFile` — a GFN plus a size (sizes drive transfer times;
  the Bronze Standard images are 7.8 MB raw / ~2.3 MB compressed),
* :class:`StorageElement` — a named store attached to a site,
* :class:`ReplicaCatalog` — the GFN -> {storage elements} mapping with
  registration and replica resolution.

A catalog lookup chooses the replica closest to the requesting site
(same site wins, then any remote replica deterministically by name) —
the simulator's stand-in for the LCG replica-selection heuristics.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.util.units import MEBIBYTE

__all__ = [
    "LogicalFile",
    "StorageElement",
    "ReplicaCatalog",
    "UnknownFileError",
    "ReplicaUnavailableError",
]

_file_counter = itertools.count(1)


class UnknownFileError(KeyError):
    """Raised when resolving a GFN the catalog has never seen."""


class ReplicaUnavailableError(LookupError):
    """A *known* GFN has no live replica left.

    Distinct from :class:`UnknownFileError` (the catalog never heard of
    the file — a wiring bug) — this is a durability event: every replica
    is lost, quarantined, or was tried and failed.  Carries the GFN and
    the sites that were tried so failure reports and failover logic can
    say exactly where the data died.
    """

    def __init__(self, gfn: str, sites_tried: Sequence[str] = ()) -> None:
        self.gfn = gfn
        self.sites_tried = tuple(sites_tried)
        where = ", ".join(self.sites_tried) if self.sites_tried else "none"
        super().__init__(f"no live replica of {gfn!r} (sites tried: {where})")


@dataclass(frozen=True)
class LogicalFile:
    """A grid file: logical name (GFN) + size in bytes.

    Sizes are interned as **ints** at construction (fractional byte
    counts from calibration arithmetic are rounded): byte totals
    accumulated across thousands of transfers stay integer-exact, so
    per-link sums equal global totals to the byte — the invariant the
    data-flow accounting is gated on.
    """

    gfn: str
    size: int = 1 * MEBIBYTE

    def __post_init__(self) -> None:
        if not self.gfn:
            raise ValueError("LogicalFile needs a non-empty GFN")
        if self.size < 0:
            raise ValueError(f"size must be >= 0, got {self.size}")
        if not isinstance(self.size, int):
            object.__setattr__(self, "size", int(round(float(self.size))))

    @staticmethod
    def fresh(prefix: str, size: float) -> "LogicalFile":
        """Mint a unique GFN under *prefix* (for newly produced outputs)."""
        return LogicalFile(gfn=f"gfn://{prefix}/{next(_file_counter):08d}", size=size)

    @property
    def checksum(self) -> str:
        """Deterministic content digest for stage-in verification.

        The simulator has no real bytes, so the digest is derived from
        the file identity — what matters is that every healthy replica
        of a GFN agrees on it and an injected corruption does not.
        """
        return hashlib.sha256(f"{self.gfn}:{self.size}".encode()).hexdigest()[:16]


class StorageElement:
    """A storage endpoint living at a site."""

    def __init__(self, name: str, site: str) -> None:
        if not name:
            raise ValueError("StorageElement needs a name")
        self.name = name
        self.site = site
        self._files: Set[str] = set()
        self._lost: Set[str] = set()
        self._quarantined: Set[str] = set()

    def holds(self, gfn: str) -> bool:
        """True if this SE has a replica of *gfn* (healthy or not)."""
        return gfn in self._files

    def healthy(self, gfn: str) -> bool:
        """True if this SE has a usable replica of *gfn*."""
        return gfn in self._files and gfn not in self._lost and gfn not in self._quarantined

    def add(self, gfn: str) -> None:
        """Record a replica of *gfn* on this SE (clears any bad state)."""
        self._files.add(gfn)
        self._lost.discard(gfn)
        self._quarantined.discard(gfn)

    def mark_lost(self, gfn: str) -> None:
        """The replica of *gfn* here is gone (disk loss, deletion)."""
        if gfn in self._files:
            self._lost.add(gfn)

    def quarantine(self, gfn: str) -> None:
        """The replica of *gfn* here failed verification; never serve it."""
        if gfn in self._files:
            self._quarantined.add(gfn)

    @property
    def file_count(self) -> int:
        """Number of replicas stored here."""
        return len(self._files)

    @property
    def lost_count(self) -> int:
        """Replicas marked lost on this SE."""
        return len(self._lost)

    @property
    def quarantined_count(self) -> int:
        """Replicas quarantined on this SE."""
        return len(self._quarantined)

    def __repr__(self) -> str:
        return f"<StorageElement {self.name!r} site={self.site!r} files={len(self._files)}>"


class ReplicaCatalog:
    """GFN -> replicas mapping plus file metadata."""

    def __init__(self) -> None:
        self._replicas: Dict[str, List[StorageElement]] = {}
        self._meta: Dict[str, LogicalFile] = {}
        #: observers called as ``(file, element)`` after every
        #: registration, in add order; the grid registers its metrics
        #: hook here and a data-flow collector adds its own.
        self.observers: List[Callable[[LogicalFile, StorageElement], None]] = []

    def add_observer(
        self, observer: Callable[[LogicalFile, StorageElement], None]
    ) -> Callable[[LogicalFile, StorageElement], None]:
        """Register a registration observer (multicast; fires in add order)."""
        self.observers.append(observer)
        return observer

    @property
    def on_register(self) -> Optional[Callable[[LogicalFile, StorageElement], None]]:
        """Single-callable compatibility view (see ``NetworkModel.on_transfer``)."""
        return self.observers[0] if self.observers else None

    @on_register.setter
    def on_register(
        self, observer: Optional[Callable[[LogicalFile, StorageElement], None]]
    ) -> None:
        self.observers[:] = [] if observer is None else [observer]

    def register(self, file: LogicalFile, element: StorageElement) -> None:
        """Register (or add a replica of) *file* on *element*."""
        known = self._meta.get(file.gfn)
        if known is not None and known.size != file.size:
            raise ValueError(
                f"GFN {file.gfn!r} re-registered with a different size "
                f"({known.size} vs {file.size})"
            )
        self._meta[file.gfn] = file
        replicas = self._replicas.setdefault(file.gfn, [])
        if element not in replicas:
            replicas.append(element)
        element.add(file.gfn)
        for observer in self.observers:
            observer(file, element)

    def lookup(self, gfn: str) -> LogicalFile:
        """Return the :class:`LogicalFile` metadata for *gfn*."""
        try:
            return self._meta[gfn]
        except KeyError:
            raise UnknownFileError(gfn) from None

    def replicas(self, gfn: str) -> List[StorageElement]:
        """All SEs holding *gfn* (registration order)."""
        if gfn not in self._replicas:
            raise UnknownFileError(gfn)
        return list(self._replicas[gfn])

    def healthy_replicas(self, gfn: str) -> List[StorageElement]:
        """SEs holding a usable (not lost, not quarantined) replica."""
        return [se for se in self.replicas(gfn) if se.healthy(gfn)]

    def healthy_replica_count(self, gfn: str) -> int:
        """How many usable replicas *gfn* still has (repair's scan metric)."""
        return len(self.healthy_replicas(gfn))

    def failover_order(
        self, gfn: str, site: str, exclude: Iterable[str] = ()
    ) -> List[StorageElement]:
        """Healthy replicas in deterministic preference order for *site*.

        Same-site replicas first (registration order), then remote ones
        by SE name — the same rule :meth:`closest_replica` applies, kept
        as a full ranking so transfer failover walks replicas in a
        reproducible order.  *exclude* drops SE names already tried.
        """
        excluded = set(exclude)
        candidates = [
            se for se in self.healthy_replicas(gfn) if se.name not in excluded
        ]
        local = [se for se in candidates if se.site == site]
        remote = sorted(
            (se for se in candidates if se.site != site), key=lambda se: se.name
        )
        return local + remote

    def closest_replica(self, gfn: str, site: str) -> StorageElement:
        """Pick the replica to read from for a job running at *site*.

        Same-site replicas win; otherwise the lexicographically first SE
        name is used so that the choice is deterministic.  Raises
        :class:`ReplicaUnavailableError` when the file is known but no
        usable replica survives — the data-death signal the failure
        containment machinery turns into a poisoned lineage.
        """
        ranked = self.failover_order(gfn, site)
        if not ranked:
            tried = tuple(se.site for se in self.replicas(gfn))
            raise ReplicaUnavailableError(gfn, tried)
        return ranked[0]

    def knows(self, gfn: str) -> bool:
        """True if *gfn* has been registered."""
        return gfn in self._meta

    def gfns(self) -> Iterable[str]:
        """All registered GFNs (sorted, for deterministic iteration)."""
        return sorted(self._meta)

    def __len__(self) -> int:
        return len(self._meta)
