"""Storage elements, logical files and the replica catalog.

The paper's executable descriptors reference data by **Grid File Name**
(GFN) and leave physical placement to the middleware (Figure 8: access
``type="GFN"``).  We model:

* :class:`LogicalFile` — a GFN plus a size (sizes drive transfer times;
  the Bronze Standard images are 7.8 MB raw / ~2.3 MB compressed),
* :class:`StorageElement` — a named store attached to a site,
* :class:`ReplicaCatalog` — the GFN -> {storage elements} mapping with
  registration and replica resolution.

A catalog lookup chooses the replica closest to the requesting site
(same site wins, then any remote replica deterministically by name) —
the simulator's stand-in for the LCG replica-selection heuristics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.util.units import MEBIBYTE

__all__ = ["LogicalFile", "StorageElement", "ReplicaCatalog", "UnknownFileError"]

_file_counter = itertools.count(1)


class UnknownFileError(KeyError):
    """Raised when resolving a GFN the catalog has never seen."""


@dataclass(frozen=True)
class LogicalFile:
    """A grid file: logical name (GFN) + size in bytes."""

    gfn: str
    size: float = 1 * MEBIBYTE

    def __post_init__(self) -> None:
        if not self.gfn:
            raise ValueError("LogicalFile needs a non-empty GFN")
        if self.size < 0:
            raise ValueError(f"size must be >= 0, got {self.size}")

    @staticmethod
    def fresh(prefix: str, size: float) -> "LogicalFile":
        """Mint a unique GFN under *prefix* (for newly produced outputs)."""
        return LogicalFile(gfn=f"gfn://{prefix}/{next(_file_counter):08d}", size=size)


class StorageElement:
    """A storage endpoint living at a site."""

    def __init__(self, name: str, site: str) -> None:
        if not name:
            raise ValueError("StorageElement needs a name")
        self.name = name
        self.site = site
        self._files: Set[str] = set()

    def holds(self, gfn: str) -> bool:
        """True if this SE has a replica of *gfn*."""
        return gfn in self._files

    def add(self, gfn: str) -> None:
        """Record a replica of *gfn* on this SE."""
        self._files.add(gfn)

    @property
    def file_count(self) -> int:
        """Number of replicas stored here."""
        return len(self._files)

    def __repr__(self) -> str:
        return f"<StorageElement {self.name!r} site={self.site!r} files={len(self._files)}>"


class ReplicaCatalog:
    """GFN -> replicas mapping plus file metadata."""

    def __init__(self) -> None:
        self._replicas: Dict[str, List[StorageElement]] = {}
        self._meta: Dict[str, LogicalFile] = {}
        #: observer called as ``on_register(file, element)`` after every
        #: registration; the grid points it at its instrumentation bus.
        self.on_register: Optional[Callable[[LogicalFile, StorageElement], None]] = None

    def register(self, file: LogicalFile, element: StorageElement) -> None:
        """Register (or add a replica of) *file* on *element*."""
        known = self._meta.get(file.gfn)
        if known is not None and known.size != file.size:
            raise ValueError(
                f"GFN {file.gfn!r} re-registered with a different size "
                f"({known.size} vs {file.size})"
            )
        self._meta[file.gfn] = file
        replicas = self._replicas.setdefault(file.gfn, [])
        if element not in replicas:
            replicas.append(element)
        element.add(file.gfn)
        if self.on_register is not None:
            self.on_register(file, element)

    def lookup(self, gfn: str) -> LogicalFile:
        """Return the :class:`LogicalFile` metadata for *gfn*."""
        try:
            return self._meta[gfn]
        except KeyError:
            raise UnknownFileError(gfn) from None

    def replicas(self, gfn: str) -> List[StorageElement]:
        """All SEs holding *gfn* (registration order)."""
        if gfn not in self._replicas:
            raise UnknownFileError(gfn)
        return list(self._replicas[gfn])

    def closest_replica(self, gfn: str, site: str) -> StorageElement:
        """Pick the replica to read from for a job running at *site*.

        Same-site replicas win; otherwise the lexicographically first SE
        name is used so that the choice is deterministic.
        """
        candidates = self.replicas(gfn)
        local = [se for se in candidates if se.site == site]
        if local:
            return local[0]
        return min(candidates, key=lambda se: se.name)

    def knows(self, gfn: str) -> bool:
        """True if *gfn* has been registered."""
        return gfn in self._meta

    def gfns(self) -> Iterable[str]:
        """All registered GFNs (sorted, for deterministic iteration)."""
        return sorted(self._meta)

    def __len__(self) -> int:
        return len(self._meta)
